//! Exporters: Chrome trace-event JSON (for `about:tracing` / Perfetto)
//! and Prometheus text exposition.
//!
//! The Prometheus side uses a *collector registry*: higher layers (the
//! serve router, benchmarks) register closures that append their metric
//! families to the scrape output. Registration stores only a `Weak`
//! reference — dropping the returned [`CollectorHandle`] retires the
//! collector, so a shut-down router never contributes stale metrics.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::{
    dropped_spans, dropped_spans_total, flight, mode, recorded_spans, snapshot, SpanRecord,
    TraceMode,
};

// ---------------------------------------------------------------------------
// Chrome trace events

/// Append `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters). Every dynamic string the obs stack embeds in
/// JSON — interned span names, model names, event fields — goes through
/// here; interned names in particular carry kernel identifiers like
/// `main_b{bucket}` and arbitrary user strings.
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render every recorded span as a Chrome trace-event JSON document
/// (`"X"` complete events, microsecond timestamps). Load the string
/// saved to a file in `chrome://tracing` or <https://ui.perfetto.dev>.
///
/// Spans are sorted by start time; ids, parents and trace ids ride in
/// each event's `args` so the request tree can be reconstructed.
pub fn chrome_trace() -> String {
    let mut spans = snapshot();
    spans.sort_by_key(|s| (s.start_ns, s.id));
    chrome_trace_for(&spans, dropped_spans())
}

/// Render an explicit span list as a Chrome trace-event JSON document —
/// the shared builder behind [`chrome_trace`] and the flight recorder's
/// per-retained-trace export. All names go through JSON escaping, so
/// interned dynamic names with quotes/backslashes/control characters
/// stay valid JSON.
pub fn chrome_trace_for(spans: &[SpanRecord], dropped: u64) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(s.name, &mut out);
        out.push_str("\",\"cat\":\"");
        out.push_str(s.cat.label());
        // Chrome expects microsecond floats; keep nanosecond precision
        // with three decimal places.
        let _ = write!(
            out,
            "\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{},\
             \"args\":{{\"trace\":{},\"span\":{},\"parent\":{},\"arg\":{}}}}}",
            s.start_ns / 1_000,
            s.start_ns % 1_000,
            s.dur_ns / 1_000,
            s.dur_ns % 1_000,
            s.tid,
            s.trace,
            s.id,
            s.parent,
            s.arg
        );
    }
    let _ = write!(out, "],\"otherData\":{{\"droppedSpans\":{dropped}}}}}");
    out
}

// ---------------------------------------------------------------------------
// Prometheus text exposition

/// Builder for Prometheus text-format output, handed to registered
/// collectors. Guarantees well-formed `# HELP`/`# TYPE` headers and
/// label escaping.
pub struct PromBuf {
    out: String,
}

impl PromBuf {
    fn new() -> PromBuf {
        PromBuf {
            out: String::with_capacity(4096),
        }
    }

    /// Emit the `# HELP` / `# TYPE` header for a metric family.
    /// `kind` is `counter`, `gauge`, `summary`, or `untyped`.
    pub fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn write_labels(&mut self, labels: &[(&str, &str)]) {
        if labels.is_empty() {
            return;
        }
        self.out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(k);
            self.out.push_str("=\"");
            for c in v.chars() {
                match c {
                    '"' => self.out.push_str("\\\""),
                    '\\' => self.out.push_str("\\\\"),
                    '\n' => self.out.push_str("\\n"),
                    c => self.out.push(c),
                }
            }
            self.out.push('"');
        }
        self.out.push('}');
    }

    /// Emit one integer sample line.
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(name);
        self.write_labels(labels);
        let _ = writeln!(self.out, " {value}");
    }

    /// Emit one floating-point sample line.
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        self.write_labels(labels);
        if value.is_finite() {
            let _ = writeln!(self.out, " {value}");
        } else {
            let _ = writeln!(self.out, " NaN");
        }
    }

    /// Emit one integer sample line with an OpenMetrics exemplar suffix:
    /// `name{labels} value # {exemplar_labels} exemplar_value`. Used by
    /// histogram buckets to link a bucket to the trace id of its most
    /// recent retained flight-recorder sample.
    pub fn sample_with_exemplar(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        value: u64,
        exemplar_labels: &[(&str, &str)],
        exemplar_value: f64,
    ) {
        self.out.push_str(name);
        self.write_labels(labels);
        let _ = write!(self.out, " {value} # ");
        self.write_labels(exemplar_labels);
        if exemplar_value.is_finite() {
            let _ = writeln!(self.out, " {exemplar_value}");
        } else {
            let _ = writeln!(self.out, " NaN");
        }
    }

    /// Finished exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

type Collector = dyn Fn(&mut PromBuf) + Send + Sync;

fn collectors() -> &'static Mutex<Vec<Weak<Collector>>> {
    static COLLECTORS: OnceLock<Mutex<Vec<Weak<Collector>>>> = OnceLock::new();
    COLLECTORS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Keeps a registered collector alive; dropping it retires the collector
/// from future [`prometheus`] scrapes.
pub struct CollectorHandle {
    _strong: Arc<Collector>,
}

/// Register a metrics collector invoked on every [`prometheus`] call.
/// The registry holds only a weak reference — the collector lives as
/// long as the returned handle.
pub fn register_collector(f: impl Fn(&mut PromBuf) + Send + Sync + 'static) -> CollectorHandle {
    let strong: Arc<Collector> = Arc::new(f);
    let mut reg = collectors().lock().unwrap();
    reg.retain(|w| w.strong_count() > 0);
    reg.push(Arc::downgrade(&strong));
    CollectorHandle { _strong: strong }
}

/// Render the unified Prometheus text exposition: obs self-metrics plus
/// every live registered collector (serve latency/queue summaries, arena
/// hit-rate, device-pool gauges, VM profile buckets...).
pub fn prometheus() -> String {
    let mut buf = PromBuf::new();
    buf.header(
        "nimble_obs_spans_recorded",
        "Spans currently retained in thread buffers",
        "gauge",
    );
    buf.sample_u64("nimble_obs_spans_recorded", &[], recorded_spans());
    buf.header(
        "nimble_obs_spans_dropped_total",
        "Spans dropped on thread-buffer overflow since last reset",
        "counter",
    );
    buf.sample_u64("nimble_obs_spans_dropped_total", &[], dropped_spans());
    buf.header(
        "nimble_obs_dropped_spans_total",
        "Spans dropped anywhere (thread-ring overflow + flight request-buffer overflow) since last reset",
        "counter",
    );
    buf.sample_u64("nimble_obs_dropped_spans_total", &[], dropped_spans_total());
    buf.header(
        "nimble_obs_trace_mode",
        "Tracing mode (0=off, 1=all, 2=tail, N=sampled 1-in-N; see nimble_obs_tail_multiplier)",
        "gauge",
    );
    let mode_val = match mode() {
        TraceMode::Off => 0,
        TraceMode::All => 1,
        TraceMode::Tail => 2,
        TraceMode::Sampled(n) => n,
    };
    buf.sample_u64("nimble_obs_trace_mode", &[], mode_val);
    if mode() == TraceMode::Tail {
        buf.header(
            "nimble_obs_tail_multiplier",
            "Rolling-p99 multiplier of the tail retention threshold",
            "gauge",
        );
        buf.sample_f64("nimble_obs_tail_multiplier", &[], flight::tail_multiplier());
    }
    buf.header(
        "nimble_obs_flight_retained_total",
        "Traces retained by the flight recorder since last reset",
        "counter",
    );
    buf.sample_u64(
        "nimble_obs_flight_retained_total",
        &[],
        flight::retained_total(),
    );
    buf.header(
        "nimble_obs_flight_active_buffers",
        "In-flight per-request span buffers currently registered",
        "gauge",
    );
    buf.sample_u64(
        "nimble_obs_flight_active_buffers",
        &[],
        flight::active_buffers() as u64,
    );
    buf.header(
        "nimble_obs_events_total",
        "Structured lifecycle events emitted since last reset",
        "counter",
    );
    buf.sample_u64(
        "nimble_obs_events_total",
        &[],
        crate::events::events_total(),
    );

    let live: Vec<Arc<Collector>> = {
        let mut reg = collectors().lock().unwrap();
        reg.retain(|w| w.strong_count() > 0);
        reg.iter().filter_map(|w| w.upgrade()).collect()
    };
    for c in live {
        c(&mut buf);
    }
    buf.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enter, reset, set_mode, span_full, start_trace, Category};
    use std::sync::Mutex as StdMutex;

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: StdMutex<()> = StdMutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn chrome_trace_emits_events() {
        let _l = lock();
        set_mode(TraceMode::All);
        reset();
        let ctx = start_trace();
        {
            let _g = enter(ctx);
            drop(span_full("gemm \"quoted\"\n", Category::Kernel, 42));
        }
        let json = chrome_trace();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.contains("gemm \\\"quoted\\\"\\n"));
        assert!(json.contains("\"cat\":\"kernel\""));
        assert!(json.contains("\"arg\":42"));
        assert!(json.contains("droppedSpans"));
        set_mode(TraceMode::Off);
        reset();
    }

    #[test]
    fn chrome_trace_escapes_adversarial_interned_names() {
        let _l = lock();
        set_mode(TraceMode::All);
        crate::reset();
        // Kernel-style and hostile dynamic names: braces, quotes,
        // backslashes, raw control bytes, non-ASCII.
        let names = [
            "main_b{bucket}",
            "gemm \"8x8\" \\packed\\",
            "ctl\u{1}\u{1f} tab\t nl\n cr\r",
            "unicode é😀 end",
        ];
        let ctx = start_trace();
        {
            let _g = enter(ctx);
            for n in names {
                drop(span_full(crate::intern(n), Category::Kernel, 1));
            }
        }
        let json = chrome_trace();
        let v = crate::json::parse(&json).expect("chrome export must be valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        for n in names {
            assert!(
                events
                    .iter()
                    .any(|e| e.get("name").unwrap().as_str() == Some(n)),
                "name {n:?} did not round-trip"
            );
        }
        set_mode(TraceMode::Off);
        crate::reset();
    }

    #[test]
    fn chrome_trace_empty_is_valid() {
        let _l = lock();
        set_mode(TraceMode::Off);
        reset();
        let json = chrome_trace();
        assert!(json.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn collectors_live_and_die_with_handle() {
        let _l = lock();
        let handle = register_collector(|buf| {
            buf.header("test_metric_xyz", "A test metric", "gauge");
            buf.sample_f64("test_metric_xyz", &[("model", "bert@\"1\"")], 0.5);
        });
        let text = prometheus();
        assert!(text.contains("# TYPE test_metric_xyz gauge"));
        assert!(text.contains("test_metric_xyz{model=\"bert@\\\"1\\\"\"} 0.5"));
        assert!(text.contains("nimble_obs_trace_mode"));
        drop(handle);
        let text = prometheus();
        assert!(!text.contains("test_metric_xyz"));
    }
}
