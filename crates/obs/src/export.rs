//! Exporters: Chrome trace-event JSON (for `about:tracing` / Perfetto)
//! and Prometheus text exposition.
//!
//! The Prometheus side uses a *collector registry*: higher layers (the
//! serve router, benchmarks) register closures that append their metric
//! families to the scrape output. Registration stores only a `Weak`
//! reference — dropping the returned [`CollectorHandle`] retires the
//! collector, so a shut-down router never contributes stale metrics.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::{dropped_spans, mode, recorded_spans, snapshot, TraceMode};

// ---------------------------------------------------------------------------
// Chrome trace events

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render every recorded span as a Chrome trace-event JSON document
/// (`"X"` complete events, microsecond timestamps). Load the string
/// saved to a file in `chrome://tracing` or <https://ui.perfetto.dev>.
///
/// Spans are sorted by start time; ids, parents and trace ids ride in
/// each event's `args` so the request tree can be reconstructed.
pub fn chrome_trace() -> String {
    let mut spans = snapshot();
    spans.sort_by_key(|s| (s.start_ns, s.id));
    let mut out = String::with_capacity(64 + spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(s.name, &mut out);
        out.push_str("\",\"cat\":\"");
        out.push_str(s.cat.label());
        // Chrome expects microsecond floats; keep nanosecond precision
        // with three decimal places.
        let _ = write!(
            out,
            "\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{},\
             \"args\":{{\"trace\":{},\"span\":{},\"parent\":{},\"arg\":{}}}}}",
            s.start_ns / 1_000,
            s.start_ns % 1_000,
            s.dur_ns / 1_000,
            s.dur_ns % 1_000,
            s.tid,
            s.trace,
            s.id,
            s.parent,
            s.arg
        );
    }
    let _ = write!(
        out,
        "],\"otherData\":{{\"droppedSpans\":{}}}}}",
        dropped_spans()
    );
    out
}

// ---------------------------------------------------------------------------
// Prometheus text exposition

/// Builder for Prometheus text-format output, handed to registered
/// collectors. Guarantees well-formed `# HELP`/`# TYPE` headers and
/// label escaping.
pub struct PromBuf {
    out: String,
}

impl PromBuf {
    fn new() -> PromBuf {
        PromBuf {
            out: String::with_capacity(4096),
        }
    }

    /// Emit the `# HELP` / `# TYPE` header for a metric family.
    /// `kind` is `counter`, `gauge`, `summary`, or `untyped`.
    pub fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn write_labels(&mut self, labels: &[(&str, &str)]) {
        if labels.is_empty() {
            return;
        }
        self.out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(k);
            self.out.push_str("=\"");
            for c in v.chars() {
                match c {
                    '"' => self.out.push_str("\\\""),
                    '\\' => self.out.push_str("\\\\"),
                    '\n' => self.out.push_str("\\n"),
                    c => self.out.push(c),
                }
            }
            self.out.push('"');
        }
        self.out.push('}');
    }

    /// Emit one integer sample line.
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(name);
        self.write_labels(labels);
        let _ = writeln!(self.out, " {value}");
    }

    /// Emit one floating-point sample line.
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        self.write_labels(labels);
        if value.is_finite() {
            let _ = writeln!(self.out, " {value}");
        } else {
            let _ = writeln!(self.out, " NaN");
        }
    }

    /// Finished exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

type Collector = dyn Fn(&mut PromBuf) + Send + Sync;

fn collectors() -> &'static Mutex<Vec<Weak<Collector>>> {
    static COLLECTORS: OnceLock<Mutex<Vec<Weak<Collector>>>> = OnceLock::new();
    COLLECTORS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Keeps a registered collector alive; dropping it retires the collector
/// from future [`prometheus`] scrapes.
pub struct CollectorHandle {
    _strong: Arc<Collector>,
}

/// Register a metrics collector invoked on every [`prometheus`] call.
/// The registry holds only a weak reference — the collector lives as
/// long as the returned handle.
pub fn register_collector(f: impl Fn(&mut PromBuf) + Send + Sync + 'static) -> CollectorHandle {
    let strong: Arc<Collector> = Arc::new(f);
    let mut reg = collectors().lock().unwrap();
    reg.retain(|w| w.strong_count() > 0);
    reg.push(Arc::downgrade(&strong));
    CollectorHandle { _strong: strong }
}

/// Render the unified Prometheus text exposition: obs self-metrics plus
/// every live registered collector (serve latency/queue summaries, arena
/// hit-rate, device-pool gauges, VM profile buckets...).
pub fn prometheus() -> String {
    let mut buf = PromBuf::new();
    buf.header(
        "nimble_obs_spans_recorded",
        "Spans currently retained in thread buffers",
        "gauge",
    );
    buf.sample_u64("nimble_obs_spans_recorded", &[], recorded_spans());
    buf.header(
        "nimble_obs_spans_dropped_total",
        "Spans dropped on thread-buffer overflow since last reset",
        "counter",
    );
    buf.sample_u64("nimble_obs_spans_dropped_total", &[], dropped_spans());
    buf.header(
        "nimble_obs_trace_mode",
        "Tracing mode (0=off, 1=all, N=sampled 1-in-N)",
        "gauge",
    );
    let mode_val = match mode() {
        TraceMode::Off => 0,
        TraceMode::All => 1,
        TraceMode::Sampled(n) => n,
    };
    buf.sample_u64("nimble_obs_trace_mode", &[], mode_val);

    let live: Vec<Arc<Collector>> = {
        let mut reg = collectors().lock().unwrap();
        reg.retain(|w| w.strong_count() > 0);
        reg.iter().filter_map(|w| w.upgrade()).collect()
    };
    for c in live {
        c(&mut buf);
    }
    buf.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enter, reset, set_mode, span_full, start_trace, Category};
    use std::sync::Mutex as StdMutex;

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: StdMutex<()> = StdMutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn chrome_trace_emits_events() {
        let _l = lock();
        set_mode(TraceMode::All);
        reset();
        let ctx = start_trace();
        {
            let _g = enter(ctx);
            drop(span_full("gemm \"quoted\"\n", Category::Kernel, 42));
        }
        let json = chrome_trace();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.contains("gemm \\\"quoted\\\"\\n"));
        assert!(json.contains("\"cat\":\"kernel\""));
        assert!(json.contains("\"arg\":42"));
        assert!(json.contains("droppedSpans"));
        set_mode(TraceMode::Off);
        reset();
    }

    #[test]
    fn chrome_trace_empty_is_valid() {
        let _l = lock();
        set_mode(TraceMode::Off);
        reset();
        let json = chrome_trace();
        assert!(json.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn collectors_live_and_die_with_handle() {
        let _l = lock();
        let handle = register_collector(|buf| {
            buf.header("test_metric_xyz", "A test metric", "gauge");
            buf.sample_f64("test_metric_xyz", &[("model", "bert@\"1\"")], 0.5);
        });
        let text = prometheus();
        assert!(text.contains("# TYPE test_metric_xyz gauge"));
        assert!(text.contains("test_metric_xyz{model=\"bert@\\\"1\\\"\"} 0.5"));
        assert!(text.contains("nimble_obs_trace_mode"));
        drop(handle);
        let text = prometheus();
        assert!(!text.contains("test_metric_xyz"));
    }
}
