//! # nimble-obs
//!
//! End-to-end request observability for the Nimble serving stack: a
//! per-thread span recorder with request-scoped trace propagation, plus
//! unified exporters ([`export::chrome_trace`] for `about:tracing` /
//! Perfetto, [`export::prometheus`] for scrape-able metrics).
//!
//! ## Design
//!
//! * **Spans** are `(trace, id, parent, name, category, start, duration)`
//!   records. A [`span`] guard measures the region between its creation
//!   and drop and parents itself under the thread's current span; closed
//!   spans are pushed into a **per-thread bounded buffer** whose writer
//!   path is lock-free (the owning thread appends with plain atomic word
//!   stores and publishes with one release store; exporters read
//!   concurrently with acquire loads and a generation re-check). When a
//!   buffer fills, further spans are *dropped and counted* — memory stays
//!   bounded, and [`dropped_spans`] reports the loss instead of hiding it.
//! * **Traces** are started at an admission point ([`start_trace`]) which
//!   makes the sampling decision once per request; everything downstream
//!   inherits the decision through the thread-local [`SpanContext`]
//!   (explicitly carried across queues/threads with [`current`] +
//!   [`enter`]).
//! * **Sampling switch**: `NIMBLE_TRACE=off|sampled:<N>|all|tail[:mult]`
//!   (also settable programmatically with [`set_mode`]). The disabled
//!   fast path of every instrumentation site is a single relaxed atomic
//!   load — no clock read, no TLS access, no allocation.
//! * **Tail mode** ([`TraceMode::Tail`]) inverts the sampling decision:
//!   every request records into a bounded per-request buffer (module
//!   [`flight`]) and the keep/drop verdict is rendered at request
//!   *completion* — retain p99 outliers, sheds, requeues, chaos-episode
//!   and specialize-triggering requests; drop the steady state. See the
//!   [`flight`] module docs for the verdict table.
//!
//! Span names must be `&'static str` so records stay plain words; dynamic
//! names (kernel names, model names) are interned once with [`intern`].

pub mod events;
pub mod export;
pub mod flight;
pub mod json;

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Spans retained per thread buffer; one record is eight `u64` words, so
/// this bounds each thread's trace memory at 512 KiB.
pub const THREAD_BUFFER_SPANS: usize = 8192;

const WORDS: usize = 8;

/// Process-wide tracing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Record nothing; every instrumentation site reduces to one relaxed
    /// atomic load.
    Off,
    /// Record one of every `N` traces (decided at [`start_trace`]).
    Sampled(u64),
    /// Record every trace.
    All,
    /// Flight-recorder mode: capture every trace into a per-request
    /// buffer and decide keep/drop at completion (see [`flight`]). The
    /// rolling-quantile multiplier is set separately with
    /// [`flight::set_tail_multiplier`].
    Tail,
}

/// Coarse span categories, mirrored into the Chrome export's `cat` field
/// and aligned with the VM profiler's kernel/shape-func/other buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Category {
    /// Anything without a more specific bucket.
    Other = 0,
    /// Compute-kernel execution (`InvokePacked` on a compute kernel).
    Kernel = 1,
    /// Shape-function execution.
    ShapeFunc = 2,
    /// VM interpretation (dispatch loop, instruction spans).
    Vm = 3,
    /// Engine queueing and per-request execution.
    Engine = 4,
    /// Serving front door (router admission to reply).
    Serve = 5,
    /// Data-parallel worker-pool chunks (GEMM microkernels, packing).
    Pool = 6,
    /// Device-side work (simulated GPU stream, lane synchronization).
    Device = 7,
    /// Chaos-harness episodes (fault injection and quiesce checks).
    Chaos = 8,
    /// Shape-specialization subsystem (observe/tune/install lifecycle).
    Specialize = 9,
}

impl Category {
    fn from_u8(v: u8) -> Category {
        match v {
            1 => Category::Kernel,
            2 => Category::ShapeFunc,
            3 => Category::Vm,
            4 => Category::Engine,
            5 => Category::Serve,
            6 => Category::Pool,
            7 => Category::Device,
            8 => Category::Chaos,
            9 => Category::Specialize,
            _ => Category::Other,
        }
    }

    /// The Chrome trace-event `cat` string.
    pub fn label(self) -> &'static str {
        match self {
            Category::Other => "other",
            Category::Kernel => "kernel",
            Category::ShapeFunc => "shape_func",
            Category::Vm => "vm",
            Category::Engine => "engine",
            Category::Serve => "serve",
            Category::Pool => "pool",
            Category::Device => "device",
            Category::Chaos => "chaos",
            Category::Specialize => "specialize",
        }
    }
}

/// Trace id marking "a sampling decision was made, and it was *no*".
/// Distinct from 0 ("no trace context at all") so a downstream layer does
/// not make a second, independent sampling decision for the same request.
const SUPPRESSED: u64 = u64::MAX;

/// The propagation handle: which trace (if any) the current work belongs
/// to and which span is its parent. `Copy` so it can ride through request
/// queues and closures for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Trace id; 0 = no context, `u64::MAX` = sampled out.
    pub trace: u64,
    /// Parent span id within the trace (the trace root's own id for a
    /// freshly started trace).
    pub span: u64,
}

impl SpanContext {
    /// No context at all (downstream layers may start their own trace).
    pub const NONE: SpanContext = SpanContext { trace: 0, span: 0 };

    /// Whether spans under this context are recorded.
    pub fn is_sampled(self) -> bool {
        self.trace != 0 && self.trace != SUPPRESSED
    }

    /// Whether no sampling decision has been made yet.
    pub fn is_none(self) -> bool {
        self.trace == 0
    }
}

// ---------------------------------------------------------------------------
// Mode + ids + clock

const MODE_UNINIT: u64 = u64::MAX;
const MODE_OFF: u64 = 0;
const MODE_ALL: u64 = 1;
/// Tail-based flight-recorder mode (distinct from any sampled-1-in-N
/// value a caller could plausibly configure).
const MODE_TAIL: u64 = u64::MAX - 1;

static MODE: AtomicU64 = AtomicU64::new(MODE_UNINIT);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static SAMPLE_COUNTER: AtomicU64 = AtomicU64::new(0);
/// Bumped by [`reset`]; buffers lazily self-clear when they notice.
static GENERATION: AtomicU64 = AtomicU64::new(1);

fn parse_env_mode() -> u64 {
    match std::env::var("NIMBLE_TRACE") {
        Ok(v) => {
            let v = v.to_ascii_lowercase();
            match v.as_str() {
                "" | "off" | "0" | "false" | "none" => MODE_OFF,
                "all" | "on" | "1" | "true" => MODE_ALL,
                "tail" => MODE_TAIL,
                _ => {
                    if let Some(mult) = v.strip_prefix("tail:") {
                        match mult.parse::<f64>() {
                            Ok(m) if m.is_finite() && m > 0.0 => {
                                flight::set_tail_multiplier(m);
                                MODE_TAIL
                            }
                            _ => MODE_TAIL,
                        }
                    } else {
                        match v
                            .strip_prefix("sampled:")
                            .and_then(|n| n.parse::<u64>().ok())
                        {
                            Some(0) => MODE_OFF,
                            Some(1) => MODE_ALL,
                            Some(n) => n,
                            None => MODE_OFF,
                        }
                    }
                }
            }
        }
        Err(_) => MODE_OFF,
    }
}

/// The raw mode word; initializes from `NIMBLE_TRACE` on first use. The
/// hot path is the single relaxed load (the env parse runs at most a
/// handful of times under a startup race, with an identical result).
#[inline]
fn mode_raw() -> u64 {
    let m = MODE.load(Ordering::Relaxed);
    if m != MODE_UNINIT {
        return m;
    }
    let parsed = parse_env_mode();
    MODE.store(parsed, Ordering::Relaxed);
    parsed
}

/// Whether tracing is on at all (the one-load fast path).
#[inline]
pub fn enabled() -> bool {
    mode_raw() != MODE_OFF
}

/// Override the process-wide trace mode (tests and benchmarks; production
/// uses the `NIMBLE_TRACE` environment variable).
pub fn set_mode(mode: TraceMode) {
    let v = match mode {
        TraceMode::Off => MODE_OFF,
        TraceMode::All => MODE_ALL,
        TraceMode::Tail => MODE_TAIL,
        TraceMode::Sampled(n) => match n {
            0 => MODE_OFF,
            1 => MODE_ALL,
            // Reserved words can't be expressed as a sampling ratio.
            n if n >= MODE_TAIL => MODE_TAIL - 1,
            n => n,
        },
    };
    MODE.store(v, Ordering::Relaxed);
}

/// The current process-wide trace mode.
pub fn mode() -> TraceMode {
    match mode_raw() {
        MODE_OFF => TraceMode::Off,
        MODE_ALL => TraceMode::All,
        MODE_TAIL => TraceMode::Tail,
        n => TraceMode::Sampled(n),
    }
}

/// Span granularity. `Ops` (the default) records spans around units of
/// real work — kernels, shape functions, allocations, device copies —
/// while skipping register-bookkeeping VM instructions whose execution
/// time (~100-250ns) is comparable to the cost of the span itself.
/// `Instr` records every VM instruction; use it when stepping through a
/// single request, not in steady-state serving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceDetail {
    Ops,
    Instr,
}

const DETAIL_UNINIT: u64 = 0;
const DETAIL_OPS: u64 = 1;
const DETAIL_INSTR: u64 = 2;

static DETAIL: AtomicU64 = AtomicU64::new(DETAIL_UNINIT);

fn detail_raw() -> u64 {
    let d = DETAIL.load(Ordering::Relaxed);
    if d != DETAIL_UNINIT {
        return d;
    }
    let parsed = match std::env::var("NIMBLE_TRACE_DETAIL") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "instr" | "instructions" | "full" => DETAIL_INSTR,
            _ => DETAIL_OPS,
        },
        Err(_) => DETAIL_OPS,
    };
    DETAIL.store(parsed, Ordering::Relaxed);
    parsed
}

/// Whether instruction-level spans are requested (see [`TraceDetail`]).
/// Instrumentation sites cache this per scope, not per span.
#[inline]
pub fn detail_instr() -> bool {
    detail_raw() == DETAIL_INSTR
}

/// Override the span granularity (tests and debugging; production uses
/// the `NIMBLE_TRACE_DETAIL` environment variable).
pub fn set_detail(detail: TraceDetail) {
    let v = match detail {
        TraceDetail::Ops => DETAIL_OPS,
        TraceDetail::Instr => DETAIL_INSTR,
    };
    DETAIL.store(v, Ordering::Relaxed);
}

/// The current span granularity.
pub fn detail() -> TraceDetail {
    match detail_raw() {
        DETAIL_INSTR => TraceDetail::Instr,
        _ => TraceDetail::Ops,
    }
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Calibrated raw-TSC clock. `clock_gettime` through the vDSO costs
/// ~30ns; two calls per span across hundreds of spans per request is the
/// single largest term in the tracing overhead budget, so span timestamps
/// read the TSC directly (~7ns) and convert with a fixed-point
/// nanoseconds-per-tick factor measured once against `Instant` at first
/// use. Falls back to `Instant` off x86_64 or when calibration fails.
#[cfg(target_arch = "x86_64")]
#[inline]
fn rdtsc() -> u64 {
    // SAFETY: RDTSC is unprivileged baseline x86_64.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// TSC calibration: ns-per-tick in 2^24 fixed point, and the tick base of
/// the trace epoch. `TSC_MULT == 0` means uncalibrated (first call does a
/// one-time spin) and `u64::MAX` means the TSC is unusable (fall back to
/// `Instant`). Plain atomics rather than a `OnceLock`: `now_ns` runs
/// twice per span, and the fast path must be two relaxed loads plus the
/// multiply.
#[cfg(target_arch = "x86_64")]
static TSC_MULT: AtomicU64 = AtomicU64::new(0);
#[cfg(target_arch = "x86_64")]
static TSC_BASE: AtomicU64 = AtomicU64::new(0);

#[cfg(target_arch = "x86_64")]
#[cold]
fn tsc_calibrate() -> u64 {
    // One-time ~2ms spin against the OS clock; 2ms bounds the frequency
    // error near the vDSO clock resolution (~10ppm), far below what span
    // durations can resolve.
    let t0 = Instant::now();
    let c0 = rdtsc();
    while t0.elapsed() < std::time::Duration::from_millis(2) {
        std::hint::spin_loop();
    }
    let dt = t0.elapsed().as_nanos();
    let dc = rdtsc().wrapping_sub(c0) as u128;
    let mult = (dt << 24).checked_div(dc).unwrap_or(0);
    let mult = if mult == 0 || mult >= u64::MAX as u128 {
        u64::MAX
    } else {
        mult as u64
    };
    TSC_BASE.store(c0, Ordering::Relaxed);
    // Publish the multiplier last; racing threads may calibrate twice,
    // converging on one base/mult pair (store order is base-then-mult and
    // readers tolerate a torn pair only as a transiently skewed epoch).
    TSC_MULT.store(mult, Ordering::Release);
    mult
}

/// Nanoseconds since the process trace epoch (first obs use). All span
/// timestamps share this clock.
#[inline]
pub fn now_ns() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        let mut mult = TSC_MULT.load(Ordering::Relaxed);
        if mult == 0 {
            mult = tsc_calibrate();
        }
        if mult != u64::MAX {
            let d = rdtsc().wrapping_sub(TSC_BASE.load(Ordering::Relaxed));
            return ((d as u128 * mult as u128) >> 24) as u64;
        }
    }
    epoch().elapsed().as_nanos() as u64
}

/// Span ids per block a thread claims from the global counter at a time.
/// Ids stay process-unique (the counter is monotone, never reset); the
/// hot path is a thread-local increment instead of a shared `fetch_add`
/// per span.
const SPAN_ID_BLOCK: u64 = 256;

fn next_span_id() -> u64 {
    thread_local! {
        static BLOCK: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
    }
    BLOCK.with(|b| {
        let (next, end) = b.get();
        if next < end {
            b.set((next + 1, end));
            return next;
        }
        let start = NEXT_SPAN_ID.fetch_add(SPAN_ID_BLOCK, Ordering::Relaxed);
        b.set((start + 1, start + SPAN_ID_BLOCK));
        start
    })
}

// ---------------------------------------------------------------------------
// Per-thread recorder

/// One recorded span, decoded from the thread buffers by [`snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id (unique per process run).
    pub id: u64,
    /// Parent span id; 0 for trace roots.
    pub parent: u64,
    /// Trace this span belongs to.
    pub trace: u64,
    /// Start, nanoseconds on the [`now_ns`] clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Static (or interned) span name.
    pub name: &'static str,
    /// Coarse bucket.
    pub cat: Category,
    /// Free-form argument (bytes, chunk index, outcome code...).
    pub arg: u64,
    /// Recorder-thread id (buffer registration order, not OS tid).
    pub tid: u64,
}

struct ThreadBuf {
    tid: u64,
    gen: AtomicU64,
    len: AtomicUsize,
    dropped: AtomicU64,
    slots: Box<[AtomicU64]>,
}

impl ThreadBuf {
    fn new(tid: u64) -> ThreadBuf {
        ThreadBuf {
            tid,
            gen: AtomicU64::new(GENERATION.load(Ordering::Relaxed)),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..THREAD_BUFFER_SPANS * WORDS)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Owner-thread append. Slots below the published `len` are never
    /// rewritten within a generation, so readers need no lock.
    fn push(&self, rec: [u64; WORDS]) {
        let g = GENERATION.load(Ordering::Relaxed);
        if self.gen.load(Ordering::Relaxed) != g {
            self.len.store(0, Ordering::Release);
            self.dropped.store(0, Ordering::Relaxed);
            self.gen.store(g, Ordering::Release);
        }
        let n = self.len.load(Ordering::Relaxed);
        if n >= THREAD_BUFFER_SPANS {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let base = n * WORDS;
        for (i, w) in rec.iter().enumerate() {
            self.slots[base + i].store(*w, Ordering::Relaxed);
        }
        self.len.store(n + 1, Ordering::Release);
    }

    /// Concurrent read of every record published under generation `g`.
    /// A generation change mid-read (a concurrent [`reset`] plus reuse)
    /// is detected and the buffer discarded; torn word reads before the
    /// re-check are plain atomic loads, never dereferenced.
    fn read_into(&self, g: u64, out: &mut Vec<SpanRecord>) {
        if self.gen.load(Ordering::Acquire) != g {
            return;
        }
        let n = self.len.load(Ordering::Acquire).min(THREAD_BUFFER_SPANS);
        let mut raw = Vec::with_capacity(n);
        for i in 0..n {
            let base = i * WORDS;
            let mut rec = [0u64; WORDS];
            for (j, w) in rec.iter_mut().enumerate() {
                *w = self.slots[base + j].load(Ordering::Relaxed);
            }
            raw.push(rec);
        }
        if self.gen.load(Ordering::Acquire) != g {
            return;
        }
        // SAFETY of the decode: generation unchanged across the read, so
        // every slot below `n` holds a fully published record whose name
        // words came from a `&'static str` (literal or interned leak).
        for rec in raw {
            out.push(decode_record(rec, self.tid));
        }
    }
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static CURRENT: Cell<SpanContext> = const { Cell::new(SpanContext::NONE) };
    static LOCAL_BUF: std::cell::OnceCell<Arc<ThreadBuf>> = const { std::cell::OnceCell::new() };
}

fn with_local_buf(f: impl FnOnce(&ThreadBuf)) {
    LOCAL_BUF.with(|cell| {
        let buf = cell.get_or_init(|| {
            let mut reg = registry().lock().unwrap();
            let buf = Arc::new(ThreadBuf::new(reg.len() as u64 + 1));
            reg.push(Arc::clone(&buf));
            buf
        });
        f(buf);
    });
}

#[allow(clippy::too_many_arguments)]
fn push_record(
    trace: u64,
    id: u64,
    parent: u64,
    name: &'static str,
    cat: Category,
    start_ns: u64,
    end_ns: u64,
    arg: u64,
    staged: bool,
) {
    let meta = ((cat as u64) << 56) | (arg & ((1u64 << 56) - 1));
    let rec = [
        id,
        parent,
        trace,
        start_ns,
        end_ns.saturating_sub(start_ns),
        name.as_ptr() as u64,
        name.len() as u64,
        meta,
    ];
    // Tail mode routes spans to their request's flight buffer; traces
    // without one (bare roots, already-finished requests) fall through to
    // the thread rings so they still record somewhere. A record pushed
    // while the thread is *inside* the trace's span stack may be staged
    // thread-locally (the stack-unwind hooks flush it); anything else —
    // bare roots, cross-thread `record_under`/`record_root` intervals —
    // publishes immediately, because no unwind on this thread follows.
    if mode_raw() == MODE_TAIL && flight::try_push(trace, rec, staged) {
        return;
    }
    with_local_buf(|buf| buf.push(rec));
}

/// Decode one raw record into a [`SpanRecord`].
///
/// # Safety contract (internal)
/// The name words must have been produced by [`push_record`] from a
/// `&'static str` (literal or [`intern`] leak) — callers only hand this
/// fully published records.
pub(crate) fn decode_record(rec: [u64; WORDS], tid: u64) -> SpanRecord {
    let name: &'static str = unsafe {
        std::str::from_utf8_unchecked(std::slice::from_raw_parts(
            rec[5] as *const u8,
            rec[6] as usize,
        ))
    };
    SpanRecord {
        id: rec[0],
        parent: rec[1],
        trace: rec[2],
        start_ns: rec[3],
        dur_ns: rec[4],
        name,
        cat: Category::from_u8((rec[7] >> 56) as u8),
        arg: rec[7] & ((1u64 << 56) - 1),
        tid,
    }
}

/// Decode every span recorded since the last [`reset`], across all
/// threads (including threads that have since exited). Order is
/// per-thread append order; sort by `start_ns` for a timeline.
pub fn snapshot() -> Vec<SpanRecord> {
    let g = GENERATION.load(Ordering::Acquire);
    let bufs: Vec<Arc<ThreadBuf>> = registry().lock().unwrap().clone();
    let mut out = Vec::new();
    for buf in bufs {
        buf.read_into(g, &mut out);
    }
    out
}

/// Spans dropped on buffer overflow since the last [`reset`].
pub fn dropped_spans() -> u64 {
    let g = GENERATION.load(Ordering::Acquire);
    registry()
        .lock()
        .unwrap()
        .iter()
        .filter(|b| b.gen.load(Ordering::Acquire) == g)
        .map(|b| b.dropped.load(Ordering::Relaxed))
        .sum()
}

/// Spans currently retained (readable by [`snapshot`]).
pub fn recorded_spans() -> u64 {
    let g = GENERATION.load(Ordering::Acquire);
    registry()
        .lock()
        .unwrap()
        .iter()
        .filter(|b| b.gen.load(Ordering::Acquire) == g)
        .map(|b| b.len.load(Ordering::Acquire) as u64)
        .sum()
}

/// Spans dropped anywhere since the last [`reset`]: thread-ring overflow
/// plus flight-recorder request-buffer overflow. This is the
/// `nimble_obs_dropped_spans_total` exposition value.
pub fn dropped_spans_total() -> u64 {
    dropped_spans() + flight::flight_dropped()
}

/// Discard all recorded spans (bumps the generation; thread buffers clear
/// lazily on their next record) and clear all flight-recorder state.
pub fn reset() {
    GENERATION.fetch_add(1, Ordering::AcqRel);
    flight::reset();
}

// ---------------------------------------------------------------------------
// Context + guards

/// The calling thread's current span context ([`SpanContext::NONE`] when
/// tracing is off or nothing is active).
#[inline]
pub fn current() -> SpanContext {
    if !enabled() {
        return SpanContext::NONE;
    }
    CURRENT.with(|c| c.get())
}

/// Make the admission-time sampling decision and open a new trace.
/// Returns a sampled context (whose `span` is the pre-allocated root span
/// id — record it later with [`record_root`]), a suppressed context
/// (decision made, not sampled), or [`SpanContext::NONE`] when off.
pub fn start_trace() -> SpanContext {
    match mode_raw() {
        MODE_OFF => SpanContext::NONE,
        MODE_ALL => SpanContext {
            trace: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            span: next_span_id(),
        },
        MODE_TAIL => {
            // Flight-recorder mode: every request records; the keep/drop
            // decision waits for the terminal verdict (`flight::finish`).
            let trace = NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed);
            flight::begin(trace);
            SpanContext {
                trace,
                span: next_span_id(),
            }
        }
        n => {
            if SAMPLE_COUNTER
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(n)
            {
                SpanContext {
                    trace: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
                    span: next_span_id(),
                }
            } else {
                SpanContext {
                    trace: SUPPRESSED,
                    span: 0,
                }
            }
        }
    }
}

/// Restores the previous thread context on drop (see [`enter`]).
#[must_use]
pub struct ContextGuard {
    prev: SpanContext,
    active: bool,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if self.active {
            let cur = CURRENT.with(|c| c.replace(self.prev));
            // Leaving an adopted trace (a worker finishing a request):
            // publish any staged flight-recorder spans before the request
            // can reach its terminal verdict on another thread.
            if mode_raw() == MODE_TAIL && cur.is_sampled() && cur.trace != self.prev.trace {
                flight::flush_thread(cur.trace);
            }
        }
    }
}

/// Adopt `ctx` as the calling thread's current context (cross-thread
/// propagation: workers enter the context a request carried through a
/// queue). A no-op guard when tracing is off.
pub fn enter(ctx: SpanContext) -> ContextGuard {
    if !enabled() {
        return ContextGuard {
            prev: SpanContext::NONE,
            active: false,
        };
    }
    let prev = CURRENT.with(|c| c.replace(ctx));
    ContextGuard { prev, active: true }
}

/// Overwrite the calling thread's context with no restore guard — for
/// executor threads (device-lane workers) that process a FIFO of jobs,
/// each carrying its own context, and have no frame to unwind to. Sticky
/// contexts let consecutive same-trace jobs skip the per-job
/// flush-and-restore an [`enter`] guard would pay; the executor must pair
/// this with a [`flush_staged`] barrier its completion-waiters run behind
/// (see `GpuStream::synchronize`), since no guard drop will publish the
/// thread's staged spans.
pub fn set_current(ctx: SpanContext) {
    CURRENT.with(|c| c.set(ctx));
}

/// Publish the calling thread's staged flight-recorder spans, whatever
/// trace they belong to. The completion-barrier half of the sticky-
/// context protocol (see [`set_current`]): run this on the executor
/// thread after the jobs whose spans must be visible, before their
/// completion is signalled.
pub fn flush_staged() {
    if mode_raw() == MODE_TAIL {
        flight::flush_thread_any();
    }
}

/// A live span: measures creation-to-drop and records itself into the
/// thread buffer on drop. Inert (a boolean check) when tracing is off or
/// the current trace is not sampled.
#[must_use]
pub struct Span {
    active: bool,
    trace: u64,
    id: u64,
    parent: u64,
    start_ns: u64,
    name: &'static str,
    cat: Category,
    arg: u64,
    prev: SpanContext,
}

impl Span {
    const INERT: Span = Span {
        active: false,
        trace: 0,
        id: 0,
        parent: 0,
        start_ns: 0,
        name: "",
        cat: Category::Other,
        arg: 0,
        prev: SpanContext::NONE,
    };

    /// Whether this span will produce a record (the enclosing trace is
    /// sampled).
    pub fn is_recording(&self) -> bool {
        self.active
    }

    /// This span's context (children recorded under it); NONE when inert.
    pub fn context(&self) -> SpanContext {
        if self.active {
            SpanContext {
                trace: self.trace,
                span: self.id,
            }
        } else {
            SpanContext::NONE
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.active {
            let end = now_ns();
            // Staged iff the restored context still belongs to this trace
            // (a parent span or entered guard remains on this thread, and
            // its own unwind will flush); a bare root restoring to no
            // context publishes immediately instead.
            push_record(
                self.trace,
                self.id,
                self.parent,
                self.name,
                self.cat,
                self.start_ns,
                end,
                self.arg,
                self.prev.trace == self.trace,
            );
            CURRENT.with(|c| c.set(self.prev));
        }
    }
}

/// Open a child span of the thread's current context.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_full(name, Category::Other, 0)
}

/// [`span`] with an explicit category.
#[inline]
pub fn span_cat(name: &'static str, cat: Category) -> Span {
    span_full(name, cat, 0)
}

/// [`span`] with an explicit category and argument word (56 bits kept).
#[inline]
pub fn span_full(name: &'static str, cat: Category, arg: u64) -> Span {
    if !enabled() {
        return Span::INERT;
    }
    // One TLS access for the read-check-update: this path runs for every
    // span of every request in tail/all mode.
    let (parent, id) = CURRENT.with(|c| {
        let parent = c.get();
        if !parent.is_sampled() {
            return (parent, 0);
        }
        let id = next_span_id();
        c.set(SpanContext {
            trace: parent.trace,
            span: id,
        });
        (parent, id)
    });
    if id == 0 {
        return Span::INERT;
    }
    Span {
        active: true,
        trace: parent.trace,
        id,
        parent: parent.span,
        start_ns: now_ns(),
        name,
        cat,
        arg,
        prev: parent,
    }
}

/// [`span_full`] gated on [`TraceDetail::Instr`]: inert at the default
/// `Ops` granularity. For fine-grained sub-phase spans (kernel packing
/// loops, per-instruction VM steps) whose individual durations sit near
/// the cost of the span itself — recorded only when someone is actively
/// stepping through a request with `NIMBLE_TRACE_DETAIL=instr`.
#[inline]
pub fn span_detail(name: &'static str, cat: Category, arg: u64) -> Span {
    if !detail_instr() {
        return Span::INERT;
    }
    span_full(name, cat, arg)
}

/// Like [`span_full`], but when the thread has *no* context at all, make
/// a fresh sampling decision and become a trace root. Lets a bare
/// `VirtualMachine::run` produce a trace without a serving stack above
/// it, while nesting normally when one exists.
pub fn root_span_full(name: &'static str, cat: Category, arg: u64) -> Span {
    if !enabled() {
        return Span::INERT;
    }
    let cur = CURRENT.with(|c| c.get());
    if !cur.is_none() {
        return span_full(name, cat, arg);
    }
    let ctx = start_trace();
    if !ctx.is_sampled() {
        return Span::INERT;
    }
    CURRENT.with(|c| c.set(ctx));
    Span {
        active: true,
        trace: ctx.trace,
        id: ctx.span,
        parent: 0,
        start_ns: now_ns(),
        name,
        cat,
        arg,
        prev: cur,
    }
}

/// Record an already-measured interval as a child of `parent` (used for
/// cross-thread intervals like queue wait, where no guard can live).
/// Returns the new span's id, or 0 when not recorded.
pub fn record_under(
    parent: SpanContext,
    name: &'static str,
    cat: Category,
    start_ns: u64,
    end_ns: u64,
    arg: u64,
) -> u64 {
    if !enabled() || !parent.is_sampled() {
        return 0;
    }
    let id = next_span_id();
    let staged = CURRENT.with(|c| c.get()).trace == parent.trace;
    push_record(
        parent.trace,
        id,
        parent.span,
        name,
        cat,
        start_ns,
        end_ns,
        arg,
        staged,
    );
    id
}

/// Record an already-measured interval as a child of the thread's current
/// context.
pub fn record_current(name: &'static str, cat: Category, start_ns: u64, end_ns: u64, arg: u64) {
    record_under(current(), name, cat, start_ns, end_ns, arg);
}

/// Record the root span of a trace started with [`start_trace`] (its id
/// was pre-allocated as `ctx.span`); call once, when the request reaches
/// its terminal state.
pub fn record_root(
    ctx: SpanContext,
    name: &'static str,
    cat: Category,
    start_ns: u64,
    end_ns: u64,
    arg: u64,
) {
    if !enabled() || !ctx.is_sampled() {
        return;
    }
    let staged = CURRENT.with(|c| c.get()).trace == ctx.trace;
    push_record(
        ctx.trace, ctx.span, 0, name, cat, start_ns, end_ns, arg, staged,
    );
}

// ---------------------------------------------------------------------------
// Interning

/// Intern a dynamic name (kernel name, model name) into a `&'static str`
/// usable in span records. Leaks once per unique string — callers intern
/// at load/registration time, not per request.
pub fn intern(name: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let map = INTERNED.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = map.lock().unwrap();
    if let Some(s) = map.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    map.insert(name.to_string(), leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-mode tests share process state; serialize them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: Mutex<()> = Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn off_mode_records_nothing() {
        let _l = lock();
        set_mode(TraceMode::Off);
        reset();
        let ctx = start_trace();
        assert!(ctx.is_none());
        let s = span("noop");
        assert!(!s.is_recording());
        drop(s);
        assert_eq!(snapshot().len(), 0);
    }

    #[test]
    fn spans_nest_and_record() {
        let _l = lock();
        set_mode(TraceMode::All);
        reset();
        let ctx = start_trace();
        assert!(ctx.is_sampled());
        {
            let _g = enter(ctx);
            let outer = span_cat("outer", Category::Engine);
            let outer_id = outer.context().span;
            {
                let inner = span("inner");
                assert_eq!(inner.context().trace, ctx.trace);
                assert!(inner.is_recording());
            }
            drop(outer);
            record_root(ctx, "root", Category::Serve, 0, now_ns(), 7);
            let recs = snapshot();
            assert_eq!(recs.len(), 3);
            let inner = recs.iter().find(|r| r.name == "inner").unwrap();
            let outer = recs.iter().find(|r| r.name == "outer").unwrap();
            let root = recs.iter().find(|r| r.name == "root").unwrap();
            assert_eq!(inner.parent, outer_id);
            assert_eq!(outer.id, outer_id);
            assert_eq!(outer.parent, ctx.span);
            assert_eq!(root.id, ctx.span);
            assert_eq!(root.parent, 0);
            assert_eq!(root.arg, 7);
            assert_eq!(outer.cat, Category::Engine);
            assert!(recs.iter().all(|r| r.trace == ctx.trace));
        }
        set_mode(TraceMode::Off);
    }

    #[test]
    fn sampling_takes_one_in_n() {
        let _l = lock();
        set_mode(TraceMode::Sampled(4));
        reset();
        let sampled = (0..100).filter(|_| start_trace().is_sampled()).count();
        assert_eq!(sampled, 25);
        // Suppressed contexts do not let children record or re-sample.
        let ctx = SpanContext {
            trace: SUPPRESSED,
            span: 0,
        };
        let _g = enter(ctx);
        assert!(!span("child").is_recording());
        set_mode(TraceMode::Off);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let _l = lock();
        set_mode(TraceMode::All);
        reset();
        let ctx = start_trace();
        let _g = enter(ctx);
        let extra = 100u64;
        for _ in 0..THREAD_BUFFER_SPANS as u64 + extra {
            drop(span("s"));
        }
        // This thread's buffer is full: every further span drops.
        assert!(dropped_spans() >= extra);
        assert!(recorded_spans() <= THREAD_BUFFER_SPANS as u64);
        reset();
        // After reset the buffer self-clears on next use.
        drop(span("fresh"));
        assert_eq!(dropped_spans(), 0);
        assert_eq!(snapshot().len(), 1);
        set_mode(TraceMode::Off);
    }

    #[test]
    fn cross_thread_propagation() {
        let _l = lock();
        set_mode(TraceMode::All);
        reset();
        let ctx = start_trace();
        let h = std::thread::spawn(move || {
            let _g = enter(ctx);
            drop(span_full("worker", Category::Pool, 3));
        });
        h.join().unwrap();
        let recs = snapshot();
        let w = recs.iter().find(|r| r.name == "worker").unwrap();
        assert_eq!(w.trace, ctx.trace);
        assert_eq!(w.parent, ctx.span);
        assert_eq!(w.arg, 3);
        set_mode(TraceMode::Off);
    }

    #[test]
    fn tail_mode_retains_by_verdict() {
        let _l = lock();
        set_mode(TraceMode::Tail);
        flight::set_tail_multiplier(4.0);
        reset();
        assert_eq!(mode(), TraceMode::Tail);

        // Non-Completed outcome retains regardless of latency or warmup.
        let ctx = start_trace();
        assert!(ctx.is_sampled());
        {
            let _g = enter(ctx);
            drop(span_cat("work", Category::Engine));
        }
        record_root(ctx, "req", Category::Serve, 0, 1000, 1);
        let v = flight::finish(ctx, "m", 1000, false).expect("failed request retained");
        assert!(v.reasons.contains("outcome"), "reasons: {}", v.reasons);
        assert_eq!(v.trace, ctx.trace);

        // Steady-state fast request: dropped, leaves no buffer behind.
        let ctx2 = start_trace();
        {
            let _g = enter(ctx2);
            drop(span("work"));
        }
        assert!(flight::finish(ctx2, "m", 1000, true).is_none());
        assert_eq!(flight::active_buffers(), 0);

        // The retained trace exports as valid Chrome JSON with both the
        // root and the child span.
        let json = flight::chrome_json(v.trace).expect("retained trace addressable");
        let parsed = json::parse(&json).expect("per-trace export is valid JSON");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        for name in ["req", "work"] {
            assert!(events
                .iter()
                .any(|e| e.get("name").unwrap().as_str() == Some(name)));
        }
        assert_eq!(flight::slowest_retained("m"), Some((v.trace, 1000)));
        assert!(flight::retained_traces().iter().any(|t| t.trace == v.trace));

        set_mode(TraceMode::Off);
        reset();
    }

    #[test]
    fn tail_mode_rolling_quantile_flags_slow_requests() {
        let _l = lock();
        set_mode(TraceMode::Tail);
        flight::set_tail_multiplier(4.0);
        reset();
        // Warm the window: steady ~1µs completions are never retained.
        for _ in 0..100 {
            let ctx = start_trace();
            assert!(
                flight::finish(ctx, "roll", 1_000, true).is_none(),
                "steady request retained during warmup"
            );
        }
        // p99 upper bound is 1024ns → threshold 4096ns; a 1ms outlier
        // crosses it.
        let ctx = start_trace();
        let v = flight::finish(ctx, "roll", 1_000_000, true).expect("outlier retained");
        assert_eq!(v.reasons, "slow");
        // ... and a fresh steady request after it is still dropped.
        let ctx = start_trace();
        assert!(flight::finish(ctx, "roll", 1_000, true).is_none());
        set_mode(TraceMode::Off);
        reset();
    }

    #[test]
    fn tail_mode_pins_and_episodes_retain() {
        let _l = lock();
        set_mode(TraceMode::Tail);
        reset();
        let ctx = start_trace();
        flight::pin(ctx, flight::PIN_SPECIALIZE | flight::PIN_REQUEUED);
        let v = flight::finish(ctx, "p", 10, true).expect("pinned request retained");
        assert!(v.reasons.contains("specialize"));
        assert!(v.reasons.contains("requeued"));

        {
            let _ep = flight::episode_scope();
            let ctx = start_trace();
            let v = flight::finish(ctx, "p", 10, true).expect("chaos-episode request retained");
            assert_eq!(v.reasons, "chaos");
        }
        let ctx = start_trace();
        assert!(flight::finish(ctx, "p", 10, true).is_none());

        // Shed path: no latency sample, reason verbatim.
        let ctx = start_trace();
        let v = flight::finish_shed(ctx, "p", "shed_queue_full").expect("shed retained");
        assert_eq!(v.reasons, "shed_queue_full");
        set_mode(TraceMode::Off);
        reset();
    }

    #[test]
    fn tail_mode_env_parsing() {
        // The multiplier is process-global state; hold the mode lock.
        let _l = lock();
        // Parse logic only (the env var itself is read once, lazily).
        assert!("tail:2.5"
            .strip_prefix("tail:")
            .unwrap()
            .parse::<f64>()
            .is_ok());
        flight::set_tail_multiplier(2.5);
        assert_eq!(flight::tail_multiplier(), 2.5);
        flight::set_tail_multiplier(f64::NAN);
        assert_eq!(flight::tail_multiplier(), flight::DEFAULT_TAIL_MULT);
    }

    #[test]
    fn interning_is_stable() {
        let a = intern("kernel:dense_0");
        let b = intern("kernel:dense_0");
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, "kernel:dense_0");
    }

    #[test]
    fn env_mode_parsing() {
        // Parse logic only (the env var itself is read once, lazily).
        assert_eq!(
            "sampled:16"
                .strip_prefix("sampled:")
                .unwrap()
                .parse::<u64>()
                .unwrap_or_default(),
            16
        );
    }
}
