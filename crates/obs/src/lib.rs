//! # nimble-obs
//!
//! End-to-end request observability for the Nimble serving stack: a
//! per-thread span recorder with request-scoped trace propagation, plus
//! unified exporters ([`export::chrome_trace`] for `about:tracing` /
//! Perfetto, [`export::prometheus`] for scrape-able metrics).
//!
//! ## Design
//!
//! * **Spans** are `(trace, id, parent, name, category, start, duration)`
//!   records. A [`span`] guard measures the region between its creation
//!   and drop and parents itself under the thread's current span; closed
//!   spans are pushed into a **per-thread bounded buffer** whose writer
//!   path is lock-free (the owning thread appends with plain atomic word
//!   stores and publishes with one release store; exporters read
//!   concurrently with acquire loads and a generation re-check). When a
//!   buffer fills, further spans are *dropped and counted* — memory stays
//!   bounded, and [`dropped_spans`] reports the loss instead of hiding it.
//! * **Traces** are started at an admission point ([`start_trace`]) which
//!   makes the sampling decision once per request; everything downstream
//!   inherits the decision through the thread-local [`SpanContext`]
//!   (explicitly carried across queues/threads with [`current`] +
//!   [`enter`]).
//! * **Sampling switch**: `NIMBLE_TRACE=off|sampled:<N>|all` (also
//!   settable programmatically with [`set_mode`]). The disabled fast path
//!   of every instrumentation site is a single relaxed atomic load — no
//!   clock read, no TLS access, no allocation.
//!
//! Span names must be `&'static str` so records stay plain words; dynamic
//! names (kernel names, model names) are interned once with [`intern`].

pub mod export;

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Spans retained per thread buffer; one record is eight `u64` words, so
/// this bounds each thread's trace memory at 512 KiB.
pub const THREAD_BUFFER_SPANS: usize = 8192;

const WORDS: usize = 8;

/// Process-wide tracing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Record nothing; every instrumentation site reduces to one relaxed
    /// atomic load.
    Off,
    /// Record one of every `N` traces (decided at [`start_trace`]).
    Sampled(u64),
    /// Record every trace.
    All,
}

/// Coarse span categories, mirrored into the Chrome export's `cat` field
/// and aligned with the VM profiler's kernel/shape-func/other buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Category {
    /// Anything without a more specific bucket.
    Other = 0,
    /// Compute-kernel execution (`InvokePacked` on a compute kernel).
    Kernel = 1,
    /// Shape-function execution.
    ShapeFunc = 2,
    /// VM interpretation (dispatch loop, instruction spans).
    Vm = 3,
    /// Engine queueing and per-request execution.
    Engine = 4,
    /// Serving front door (router admission to reply).
    Serve = 5,
    /// Data-parallel worker-pool chunks (GEMM microkernels, packing).
    Pool = 6,
    /// Device-side work (simulated GPU stream, lane synchronization).
    Device = 7,
    /// Chaos-harness episodes (fault injection and quiesce checks).
    Chaos = 8,
    /// Shape-specialization subsystem (observe/tune/install lifecycle).
    Specialize = 9,
}

impl Category {
    fn from_u8(v: u8) -> Category {
        match v {
            1 => Category::Kernel,
            2 => Category::ShapeFunc,
            3 => Category::Vm,
            4 => Category::Engine,
            5 => Category::Serve,
            6 => Category::Pool,
            7 => Category::Device,
            8 => Category::Chaos,
            9 => Category::Specialize,
            _ => Category::Other,
        }
    }

    /// The Chrome trace-event `cat` string.
    pub fn label(self) -> &'static str {
        match self {
            Category::Other => "other",
            Category::Kernel => "kernel",
            Category::ShapeFunc => "shape_func",
            Category::Vm => "vm",
            Category::Engine => "engine",
            Category::Serve => "serve",
            Category::Pool => "pool",
            Category::Device => "device",
            Category::Chaos => "chaos",
            Category::Specialize => "specialize",
        }
    }
}

/// Trace id marking "a sampling decision was made, and it was *no*".
/// Distinct from 0 ("no trace context at all") so a downstream layer does
/// not make a second, independent sampling decision for the same request.
const SUPPRESSED: u64 = u64::MAX;

/// The propagation handle: which trace (if any) the current work belongs
/// to and which span is its parent. `Copy` so it can ride through request
/// queues and closures for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Trace id; 0 = no context, `u64::MAX` = sampled out.
    pub trace: u64,
    /// Parent span id within the trace (the trace root's own id for a
    /// freshly started trace).
    pub span: u64,
}

impl SpanContext {
    /// No context at all (downstream layers may start their own trace).
    pub const NONE: SpanContext = SpanContext { trace: 0, span: 0 };

    /// Whether spans under this context are recorded.
    pub fn is_sampled(self) -> bool {
        self.trace != 0 && self.trace != SUPPRESSED
    }

    /// Whether no sampling decision has been made yet.
    pub fn is_none(self) -> bool {
        self.trace == 0
    }
}

// ---------------------------------------------------------------------------
// Mode + ids + clock

const MODE_UNINIT: u64 = u64::MAX;
const MODE_OFF: u64 = 0;
const MODE_ALL: u64 = 1;

static MODE: AtomicU64 = AtomicU64::new(MODE_UNINIT);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static SAMPLE_COUNTER: AtomicU64 = AtomicU64::new(0);
/// Bumped by [`reset`]; buffers lazily self-clear when they notice.
static GENERATION: AtomicU64 = AtomicU64::new(1);

fn parse_env_mode() -> u64 {
    match std::env::var("NIMBLE_TRACE") {
        Ok(v) => {
            let v = v.to_ascii_lowercase();
            match v.as_str() {
                "" | "off" | "0" | "false" | "none" => MODE_OFF,
                "all" | "on" | "1" | "true" => MODE_ALL,
                _ => match v
                    .strip_prefix("sampled:")
                    .and_then(|n| n.parse::<u64>().ok())
                {
                    Some(0) => MODE_OFF,
                    Some(1) => MODE_ALL,
                    Some(n) => n,
                    None => MODE_OFF,
                },
            }
        }
        Err(_) => MODE_OFF,
    }
}

/// The raw mode word; initializes from `NIMBLE_TRACE` on first use. The
/// hot path is the single relaxed load (the env parse runs at most a
/// handful of times under a startup race, with an identical result).
#[inline]
fn mode_raw() -> u64 {
    let m = MODE.load(Ordering::Relaxed);
    if m != MODE_UNINIT {
        return m;
    }
    let parsed = parse_env_mode();
    MODE.store(parsed, Ordering::Relaxed);
    parsed
}

/// Whether tracing is on at all (the one-load fast path).
#[inline]
pub fn enabled() -> bool {
    mode_raw() != MODE_OFF
}

/// Override the process-wide trace mode (tests and benchmarks; production
/// uses the `NIMBLE_TRACE` environment variable).
pub fn set_mode(mode: TraceMode) {
    let v = match mode {
        TraceMode::Off => MODE_OFF,
        TraceMode::All => MODE_ALL,
        TraceMode::Sampled(n) => match n {
            0 => MODE_OFF,
            1 => MODE_ALL,
            n => n,
        },
    };
    MODE.store(v, Ordering::Relaxed);
}

/// The current process-wide trace mode.
pub fn mode() -> TraceMode {
    match mode_raw() {
        MODE_OFF => TraceMode::Off,
        MODE_ALL => TraceMode::All,
        n => TraceMode::Sampled(n),
    }
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (first obs use). All span
/// timestamps share this clock.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Per-thread recorder

/// One recorded span, decoded from the thread buffers by [`snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id (unique per process run).
    pub id: u64,
    /// Parent span id; 0 for trace roots.
    pub parent: u64,
    /// Trace this span belongs to.
    pub trace: u64,
    /// Start, nanoseconds on the [`now_ns`] clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Static (or interned) span name.
    pub name: &'static str,
    /// Coarse bucket.
    pub cat: Category,
    /// Free-form argument (bytes, chunk index, outcome code...).
    pub arg: u64,
    /// Recorder-thread id (buffer registration order, not OS tid).
    pub tid: u64,
}

struct ThreadBuf {
    tid: u64,
    gen: AtomicU64,
    len: AtomicUsize,
    dropped: AtomicU64,
    slots: Box<[AtomicU64]>,
}

impl ThreadBuf {
    fn new(tid: u64) -> ThreadBuf {
        ThreadBuf {
            tid,
            gen: AtomicU64::new(GENERATION.load(Ordering::Relaxed)),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..THREAD_BUFFER_SPANS * WORDS)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Owner-thread append. Slots below the published `len` are never
    /// rewritten within a generation, so readers need no lock.
    fn push(&self, rec: [u64; WORDS]) {
        let g = GENERATION.load(Ordering::Relaxed);
        if self.gen.load(Ordering::Relaxed) != g {
            self.len.store(0, Ordering::Release);
            self.dropped.store(0, Ordering::Relaxed);
            self.gen.store(g, Ordering::Release);
        }
        let n = self.len.load(Ordering::Relaxed);
        if n >= THREAD_BUFFER_SPANS {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let base = n * WORDS;
        for (i, w) in rec.iter().enumerate() {
            self.slots[base + i].store(*w, Ordering::Relaxed);
        }
        self.len.store(n + 1, Ordering::Release);
    }

    /// Concurrent read of every record published under generation `g`.
    /// A generation change mid-read (a concurrent [`reset`] plus reuse)
    /// is detected and the buffer discarded; torn word reads before the
    /// re-check are plain atomic loads, never dereferenced.
    fn read_into(&self, g: u64, out: &mut Vec<SpanRecord>) {
        if self.gen.load(Ordering::Acquire) != g {
            return;
        }
        let n = self.len.load(Ordering::Acquire).min(THREAD_BUFFER_SPANS);
        let mut raw = Vec::with_capacity(n);
        for i in 0..n {
            let base = i * WORDS;
            let mut rec = [0u64; WORDS];
            for (j, w) in rec.iter_mut().enumerate() {
                *w = self.slots[base + j].load(Ordering::Relaxed);
            }
            raw.push(rec);
        }
        if self.gen.load(Ordering::Acquire) != g {
            return;
        }
        for rec in raw {
            // SAFETY: generation unchanged across the read, so every slot
            // below `n` holds a fully published record whose name words
            // came from a `&'static str` (literal or interned leak).
            let name: &'static str = unsafe {
                std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                    rec[5] as *const u8,
                    rec[6] as usize,
                ))
            };
            out.push(SpanRecord {
                id: rec[0],
                parent: rec[1],
                trace: rec[2],
                start_ns: rec[3],
                dur_ns: rec[4],
                name,
                cat: Category::from_u8((rec[7] >> 56) as u8),
                arg: rec[7] & ((1u64 << 56) - 1),
                tid: self.tid,
            });
        }
    }
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static CURRENT: Cell<SpanContext> = const { Cell::new(SpanContext::NONE) };
    static LOCAL_BUF: std::cell::OnceCell<Arc<ThreadBuf>> = const { std::cell::OnceCell::new() };
}

fn with_local_buf(f: impl FnOnce(&ThreadBuf)) {
    LOCAL_BUF.with(|cell| {
        let buf = cell.get_or_init(|| {
            let mut reg = registry().lock().unwrap();
            let buf = Arc::new(ThreadBuf::new(reg.len() as u64 + 1));
            reg.push(Arc::clone(&buf));
            buf
        });
        f(buf);
    });
}

#[allow(clippy::too_many_arguments)]
fn push_record(
    trace: u64,
    id: u64,
    parent: u64,
    name: &'static str,
    cat: Category,
    start_ns: u64,
    end_ns: u64,
    arg: u64,
) {
    let meta = ((cat as u64) << 56) | (arg & ((1u64 << 56) - 1));
    with_local_buf(|buf| {
        buf.push([
            id,
            parent,
            trace,
            start_ns,
            end_ns.saturating_sub(start_ns),
            name.as_ptr() as u64,
            name.len() as u64,
            meta,
        ]);
    });
}

/// Decode every span recorded since the last [`reset`], across all
/// threads (including threads that have since exited). Order is
/// per-thread append order; sort by `start_ns` for a timeline.
pub fn snapshot() -> Vec<SpanRecord> {
    let g = GENERATION.load(Ordering::Acquire);
    let bufs: Vec<Arc<ThreadBuf>> = registry().lock().unwrap().clone();
    let mut out = Vec::new();
    for buf in bufs {
        buf.read_into(g, &mut out);
    }
    out
}

/// Spans dropped on buffer overflow since the last [`reset`].
pub fn dropped_spans() -> u64 {
    let g = GENERATION.load(Ordering::Acquire);
    registry()
        .lock()
        .unwrap()
        .iter()
        .filter(|b| b.gen.load(Ordering::Acquire) == g)
        .map(|b| b.dropped.load(Ordering::Relaxed))
        .sum()
}

/// Spans currently retained (readable by [`snapshot`]).
pub fn recorded_spans() -> u64 {
    let g = GENERATION.load(Ordering::Acquire);
    registry()
        .lock()
        .unwrap()
        .iter()
        .filter(|b| b.gen.load(Ordering::Acquire) == g)
        .map(|b| b.len.load(Ordering::Acquire) as u64)
        .sum()
}

/// Discard all recorded spans (bumps the generation; thread buffers clear
/// lazily on their next record).
pub fn reset() {
    GENERATION.fetch_add(1, Ordering::AcqRel);
}

// ---------------------------------------------------------------------------
// Context + guards

/// The calling thread's current span context ([`SpanContext::NONE`] when
/// tracing is off or nothing is active).
#[inline]
pub fn current() -> SpanContext {
    if !enabled() {
        return SpanContext::NONE;
    }
    CURRENT.with(|c| c.get())
}

/// Make the admission-time sampling decision and open a new trace.
/// Returns a sampled context (whose `span` is the pre-allocated root span
/// id — record it later with [`record_root`]), a suppressed context
/// (decision made, not sampled), or [`SpanContext::NONE`] when off.
pub fn start_trace() -> SpanContext {
    match mode_raw() {
        MODE_OFF => SpanContext::NONE,
        MODE_ALL => SpanContext {
            trace: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            span: next_span_id(),
        },
        n => {
            if SAMPLE_COUNTER
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(n)
            {
                SpanContext {
                    trace: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
                    span: next_span_id(),
                }
            } else {
                SpanContext {
                    trace: SUPPRESSED,
                    span: 0,
                }
            }
        }
    }
}

/// Restores the previous thread context on drop (see [`enter`]).
#[must_use]
pub struct ContextGuard {
    prev: SpanContext,
    active: bool,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if self.active {
            CURRENT.with(|c| c.set(self.prev));
        }
    }
}

/// Adopt `ctx` as the calling thread's current context (cross-thread
/// propagation: workers enter the context a request carried through a
/// queue). A no-op guard when tracing is off.
pub fn enter(ctx: SpanContext) -> ContextGuard {
    if !enabled() {
        return ContextGuard {
            prev: SpanContext::NONE,
            active: false,
        };
    }
    let prev = CURRENT.with(|c| c.replace(ctx));
    ContextGuard { prev, active: true }
}

/// A live span: measures creation-to-drop and records itself into the
/// thread buffer on drop. Inert (a boolean check) when tracing is off or
/// the current trace is not sampled.
#[must_use]
pub struct Span {
    active: bool,
    trace: u64,
    id: u64,
    parent: u64,
    start_ns: u64,
    name: &'static str,
    cat: Category,
    arg: u64,
    prev: SpanContext,
}

impl Span {
    const INERT: Span = Span {
        active: false,
        trace: 0,
        id: 0,
        parent: 0,
        start_ns: 0,
        name: "",
        cat: Category::Other,
        arg: 0,
        prev: SpanContext::NONE,
    };

    /// Whether this span will produce a record (the enclosing trace is
    /// sampled).
    pub fn is_recording(&self) -> bool {
        self.active
    }

    /// This span's context (children recorded under it); NONE when inert.
    pub fn context(&self) -> SpanContext {
        if self.active {
            SpanContext {
                trace: self.trace,
                span: self.id,
            }
        } else {
            SpanContext::NONE
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.active {
            let end = now_ns();
            push_record(
                self.trace,
                self.id,
                self.parent,
                self.name,
                self.cat,
                self.start_ns,
                end,
                self.arg,
            );
            CURRENT.with(|c| c.set(self.prev));
        }
    }
}

/// Open a child span of the thread's current context.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_full(name, Category::Other, 0)
}

/// [`span`] with an explicit category.
#[inline]
pub fn span_cat(name: &'static str, cat: Category) -> Span {
    span_full(name, cat, 0)
}

/// [`span`] with an explicit category and argument word (56 bits kept).
#[inline]
pub fn span_full(name: &'static str, cat: Category, arg: u64) -> Span {
    if !enabled() {
        return Span::INERT;
    }
    let parent = CURRENT.with(|c| c.get());
    if !parent.is_sampled() {
        return Span::INERT;
    }
    let id = next_span_id();
    CURRENT.with(|c| {
        c.set(SpanContext {
            trace: parent.trace,
            span: id,
        })
    });
    Span {
        active: true,
        trace: parent.trace,
        id,
        parent: parent.span,
        start_ns: now_ns(),
        name,
        cat,
        arg,
        prev: parent,
    }
}

/// Like [`span_full`], but when the thread has *no* context at all, make
/// a fresh sampling decision and become a trace root. Lets a bare
/// `VirtualMachine::run` produce a trace without a serving stack above
/// it, while nesting normally when one exists.
pub fn root_span_full(name: &'static str, cat: Category, arg: u64) -> Span {
    if !enabled() {
        return Span::INERT;
    }
    let cur = CURRENT.with(|c| c.get());
    if !cur.is_none() {
        return span_full(name, cat, arg);
    }
    let ctx = start_trace();
    if !ctx.is_sampled() {
        return Span::INERT;
    }
    CURRENT.with(|c| c.set(ctx));
    Span {
        active: true,
        trace: ctx.trace,
        id: ctx.span,
        parent: 0,
        start_ns: now_ns(),
        name,
        cat,
        arg,
        prev: cur,
    }
}

/// Record an already-measured interval as a child of `parent` (used for
/// cross-thread intervals like queue wait, where no guard can live).
/// Returns the new span's id, or 0 when not recorded.
pub fn record_under(
    parent: SpanContext,
    name: &'static str,
    cat: Category,
    start_ns: u64,
    end_ns: u64,
    arg: u64,
) -> u64 {
    if !enabled() || !parent.is_sampled() {
        return 0;
    }
    let id = next_span_id();
    push_record(
        parent.trace,
        id,
        parent.span,
        name,
        cat,
        start_ns,
        end_ns,
        arg,
    );
    id
}

/// Record an already-measured interval as a child of the thread's current
/// context.
pub fn record_current(name: &'static str, cat: Category, start_ns: u64, end_ns: u64, arg: u64) {
    record_under(current(), name, cat, start_ns, end_ns, arg);
}

/// Record the root span of a trace started with [`start_trace`] (its id
/// was pre-allocated as `ctx.span`); call once, when the request reaches
/// its terminal state.
pub fn record_root(
    ctx: SpanContext,
    name: &'static str,
    cat: Category,
    start_ns: u64,
    end_ns: u64,
    arg: u64,
) {
    if !enabled() || !ctx.is_sampled() {
        return;
    }
    push_record(ctx.trace, ctx.span, 0, name, cat, start_ns, end_ns, arg);
}

// ---------------------------------------------------------------------------
// Interning

/// Intern a dynamic name (kernel name, model name) into a `&'static str`
/// usable in span records. Leaks once per unique string — callers intern
/// at load/registration time, not per request.
pub fn intern(name: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let map = INTERNED.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = map.lock().unwrap();
    if let Some(s) = map.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    map.insert(name.to_string(), leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-mode tests share process state; serialize them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: Mutex<()> = Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn off_mode_records_nothing() {
        let _l = lock();
        set_mode(TraceMode::Off);
        reset();
        let ctx = start_trace();
        assert!(ctx.is_none());
        let s = span("noop");
        assert!(!s.is_recording());
        drop(s);
        assert_eq!(snapshot().len(), 0);
    }

    #[test]
    fn spans_nest_and_record() {
        let _l = lock();
        set_mode(TraceMode::All);
        reset();
        let ctx = start_trace();
        assert!(ctx.is_sampled());
        {
            let _g = enter(ctx);
            let outer = span_cat("outer", Category::Engine);
            let outer_id = outer.context().span;
            {
                let inner = span("inner");
                assert_eq!(inner.context().trace, ctx.trace);
                assert!(inner.is_recording());
            }
            drop(outer);
            record_root(ctx, "root", Category::Serve, 0, now_ns(), 7);
            let recs = snapshot();
            assert_eq!(recs.len(), 3);
            let inner = recs.iter().find(|r| r.name == "inner").unwrap();
            let outer = recs.iter().find(|r| r.name == "outer").unwrap();
            let root = recs.iter().find(|r| r.name == "root").unwrap();
            assert_eq!(inner.parent, outer_id);
            assert_eq!(outer.id, outer_id);
            assert_eq!(outer.parent, ctx.span);
            assert_eq!(root.id, ctx.span);
            assert_eq!(root.parent, 0);
            assert_eq!(root.arg, 7);
            assert_eq!(outer.cat, Category::Engine);
            assert!(recs.iter().all(|r| r.trace == ctx.trace));
        }
        set_mode(TraceMode::Off);
    }

    #[test]
    fn sampling_takes_one_in_n() {
        let _l = lock();
        set_mode(TraceMode::Sampled(4));
        reset();
        let sampled = (0..100).filter(|_| start_trace().is_sampled()).count();
        assert_eq!(sampled, 25);
        // Suppressed contexts do not let children record or re-sample.
        let ctx = SpanContext {
            trace: SUPPRESSED,
            span: 0,
        };
        let _g = enter(ctx);
        assert!(!span("child").is_recording());
        set_mode(TraceMode::Off);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let _l = lock();
        set_mode(TraceMode::All);
        reset();
        let ctx = start_trace();
        let _g = enter(ctx);
        let extra = 100u64;
        for _ in 0..THREAD_BUFFER_SPANS as u64 + extra {
            drop(span("s"));
        }
        // This thread's buffer is full: every further span drops.
        assert!(dropped_spans() >= extra);
        assert!(recorded_spans() <= THREAD_BUFFER_SPANS as u64);
        reset();
        // After reset the buffer self-clears on next use.
        drop(span("fresh"));
        assert_eq!(dropped_spans(), 0);
        assert_eq!(snapshot().len(), 1);
        set_mode(TraceMode::Off);
    }

    #[test]
    fn cross_thread_propagation() {
        let _l = lock();
        set_mode(TraceMode::All);
        reset();
        let ctx = start_trace();
        let h = std::thread::spawn(move || {
            let _g = enter(ctx);
            drop(span_full("worker", Category::Pool, 3));
        });
        h.join().unwrap();
        let recs = snapshot();
        let w = recs.iter().find(|r| r.name == "worker").unwrap();
        assert_eq!(w.trace, ctx.trace);
        assert_eq!(w.parent, ctx.span);
        assert_eq!(w.arg, 3);
        set_mode(TraceMode::Off);
    }

    #[test]
    fn interning_is_stable() {
        let a = intern("kernel:dense_0");
        let b = intern("kernel:dense_0");
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, "kernel:dense_0");
    }

    #[test]
    fn env_mode_parsing() {
        // Parse logic only (the env var itself is read once, lazily).
        assert_eq!(
            "sampled:16"
                .strip_prefix("sampled:")
                .unwrap()
                .parse::<u64>()
                .unwrap_or_default(),
            16
        );
    }
}
