//! Structured JSONL event log for serving-lifecycle events.
//!
//! Hot-swaps, replica kills and retires, autoscale decisions, specialize
//! installs/evictions, shed bursts and SLO watchdog transitions exist
//! today only as counters; this module gives each one a structured JSON
//! line in a bounded in-memory ring (and, optionally, an append-only
//! file sink via `NIMBLE_EVENTS_FILE`). Every line is stamped with the
//! emitting thread's active trace id so an event can be joined against a
//! retained flight-recorder trace.
//!
//! Line schema:
//!
//! ```json
//! {"ts_ns":123,"kind":"replica_killed","model":"bert","trace":42,"replica":3}
//! ```
//!
//! `ts_ns` is the [`crate::now_ns`] clock; `trace` is present only when
//! the emitting thread had a sampled context. Remaining fields are
//! event-specific.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Events retained in the in-memory ring.
pub const EVENT_RING: usize = 1024;

/// One event field value.
#[derive(Debug, Clone, Copy)]
pub enum FieldVal<'a> {
    /// A JSON string (escaped on emit).
    Str(&'a str),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values emit as `null`).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

struct EventLog {
    ring: VecDeque<String>,
    sink: Option<std::fs::File>,
    sink_init: bool,
}

fn log() -> &'static Mutex<EventLog> {
    static LOG: OnceLock<Mutex<EventLog>> = OnceLock::new();
    LOG.get_or_init(|| {
        Mutex::new(EventLog {
            ring: VecDeque::with_capacity(EVENT_RING),
            sink: None,
            sink_init: false,
        })
    })
}

static TOTAL: AtomicU64 = AtomicU64::new(0);

/// Emit one structured event line. `model` may be empty for process-wide
/// events. Cheap enough for lifecycle events (one allocation + one lock);
/// not meant for per-span use.
pub fn emit(kind: &str, model: &str, fields: &[(&str, FieldVal)]) {
    let mut line = String::with_capacity(96);
    let _ = write!(line, "{{\"ts_ns\":{},\"kind\":\"", crate::now_ns());
    crate::export::escape_json(kind, &mut line);
    line.push_str("\",\"model\":\"");
    crate::export::escape_json(model, &mut line);
    line.push('"');
    let ctx = crate::current();
    if ctx.is_sampled() {
        let _ = write!(line, ",\"trace\":{}", ctx.trace);
    }
    for (k, v) in fields {
        line.push_str(",\"");
        crate::export::escape_json(k, &mut line);
        line.push_str("\":");
        match v {
            FieldVal::Str(s) => {
                line.push('"');
                crate::export::escape_json(s, &mut line);
                line.push('"');
            }
            FieldVal::U64(n) => {
                let _ = write!(line, "{n}");
            }
            FieldVal::I64(n) => {
                let _ = write!(line, "{n}");
            }
            FieldVal::F64(f) if f.is_finite() => {
                let _ = write!(line, "{f}");
            }
            FieldVal::F64(_) => line.push_str("null"),
            FieldVal::Bool(b) => {
                let _ = write!(line, "{b}");
            }
        }
    }
    line.push('}');
    TOTAL.fetch_add(1, Ordering::Relaxed);
    let mut log = log().lock().unwrap();
    if !log.sink_init {
        log.sink_init = true;
        if let Ok(path) = std::env::var("NIMBLE_EVENTS_FILE") {
            if !path.is_empty() {
                log.sink = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .ok();
            }
        }
    }
    if let Some(sink) = log.sink.as_mut() {
        let _ = writeln!(sink, "{line}");
    }
    if log.ring.len() == EVENT_RING {
        log.ring.pop_front();
    }
    log.ring.push_back(line);
}

/// The ring's contents as JSONL text (oldest first, one event per line).
pub fn events_jsonl() -> String {
    let log = log().lock().unwrap();
    let mut out = String::with_capacity(log.ring.iter().map(|l| l.len() + 1).sum());
    for line in &log.ring {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// The most recent `n` event lines, oldest first.
pub fn recent_events(n: usize) -> Vec<String> {
    let log = log().lock().unwrap();
    log.ring.iter().rev().take(n).rev().cloned().collect()
}

/// Events emitted since the last [`reset_events`] (including ones that
/// have rolled off the ring).
pub fn events_total() -> u64 {
    TOTAL.load(Ordering::Relaxed)
}

/// Clear the ring and counter (tests; the file sink is left attached).
pub fn reset_events() {
    log().lock().unwrap().ring.clear();
    TOTAL.store(0, Ordering::Relaxed);
}

/// Redirect the file sink (tests). `None` detaches.
pub fn set_event_sink(path: Option<&std::path::Path>) {
    let mut log = log().lock().unwrap();
    log.sink_init = true;
    log.sink = path.and_then(|p| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(p)
            .ok()
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring is process-global; serialize tests that reset it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: Mutex<()> = Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn events_are_valid_jsonl() {
        let _l = lock();
        reset_events();
        emit(
            "hot_swap",
            "bert\"v2\"",
            &[
                ("from", FieldVal::Str("v1")),
                ("to", FieldVal::Str("v2")),
                ("in_flight", FieldVal::U64(7)),
                ("ratio", FieldVal::F64(0.5)),
                ("graceful", FieldVal::Bool(true)),
                ("delta", FieldVal::I64(-3)),
            ],
        );
        let text = events_jsonl();
        let line = text.lines().last().unwrap();
        let v = crate::json::parse(line).expect("event line parses");
        assert_eq!(v.get("kind").unwrap().as_str(), Some("hot_swap"));
        assert_eq!(v.get("model").unwrap().as_str(), Some("bert\"v2\""));
        assert_eq!(v.get("in_flight").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("graceful").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("delta").unwrap().as_f64(), Some(-3.0));
        assert!(v.get("ts_ns").unwrap().as_u64().is_some());
        assert!(events_total() >= 1);
        reset_events();
    }

    #[test]
    fn ring_is_bounded() {
        let _l = lock();
        reset_events();
        for i in 0..EVENT_RING + 50 {
            emit("tick", "m", &[("i", FieldVal::U64(i as u64))]);
        }
        let text = events_jsonl();
        assert_eq!(text.lines().count(), EVENT_RING);
        assert_eq!(events_total(), (EVENT_RING + 50) as u64);
        // Oldest events rolled off.
        let first = crate::json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("i").unwrap().as_u64(), Some(50));
        reset_events();
    }
}
