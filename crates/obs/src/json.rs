//! A minimal, dependency-free JSON value parser.
//!
//! This is the repo's shared validator for everything the observability
//! stack *emits* as JSON — Chrome trace exports, the `/traces` index,
//! JSONL event lines — used by unit tests, the `obs_overhead` gate and
//! the `debug_endpoint` smoke. It is a strict recursive-descent parser
//! over the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null); it is *not* a performance-oriented
//! deserializer and allocates freely.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source key order (duplicate keys are kept).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer (must be a non-negative whole
    /// number that fits `u64` exactly).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing whitespace is allowed;
/// trailing garbage is an error.
pub fn parse(src: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| "eof in escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err("bad low surrogate".to_string());
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp).ok_or("bad surrogate pair")?
                                } else {
                                    return Err("lone high surrogate".to_string());
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err("lone low surrogate".to_string());
                            } else {
                                char::from_u32(hi).ok_or("bad \\u escape")?
                            };
                            out.push(c);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(b) if b < 0x20 => return Err(format!("raw control byte 0x{b:02x} in string")),
                _ => return Err("eof in string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("eof in \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"y\\z\n"},"t":true,"f":false,"n":null}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\"y\\z\n")
        );
        assert_eq!(v.get("t").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n").unwrap(), &JsonValue::Null);
    }

    #[test]
    fn resolves_unicode_escapes() {
        let v = parse(r#""Aé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"raw\u{1}control\"").is_err());
    }
}
