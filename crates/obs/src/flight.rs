//! Tail-based flight recorder: always-on per-request span capture with a
//! keep/drop decision at request *completion*.
//!
//! In `NIMBLE_TRACE=tail[:p99_mult]` mode every admitted request gets a
//! bounded span buffer registered at [`crate::start_trace`] time; span
//! records for that trace are routed here instead of the per-thread
//! rings. When the request reaches its terminal state the serving layer
//! calls [`finish`], which renders the retention verdict:
//!
//! | verdict        | trigger                                              |
//! |----------------|------------------------------------------------------|
//! | `slow`         | latency > rolling-p99 × multiplier (after warmup)    |
//! | `outcome`      | any non-Completed terminal (failed/expired/unloaded) |
//! | `shed`         | rejected at admission (queue full / dead deadline)   |
//! | `requeued`     | replica died holding the request ([`PIN_REQUEUED`])  |
//! | `chaos`        | a chaos episode was active ([`episode_scope`])       |
//! | `specialize`   | the request triggered a tune enqueue                 |
//! | `new_shape`    | first sight of a shape bucket on its shard set       |
//! | `pad_batch`    | ran in a batch dominated by padding                  |
//!
//! Retained traces land in a per-model ring of the last
//! [`RETAINED_PER_MODEL`]; everything else is freed on the spot. The ring
//! is addressable by trace id (`/traces/<id>` on the debug endpoint) and
//! exportable as Chrome trace JSON. Fast steady-state requests therefore
//! cost one buffer allocation and one hash insert/remove — the ≤3%
//! overhead gate in `obs_overhead --smoke` holds the line.

use crate::{SpanRecord, SUPPRESSED, WORDS};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Spans captured per in-flight request before further spans are dropped
/// (and counted in [`flight_dropped`]).
pub const REQUEST_BUFFER_SPANS: usize = 512;

/// Retained traces kept per model (oldest evicted first).
pub const RETAINED_PER_MODEL: usize = 32;

/// Rolling latency window per model used for the p99 threshold.
const WINDOW: usize = 512;

/// Completions a model must see before the rolling-quantile trigger
/// activates (cold models never false-retain on their first requests).
const WARMUP: usize = 64;

/// Active-map shard count (keyed by trace id).
const MAP_SHARDS: usize = 16;

/// Safety valve: in-flight buffers beyond this are abandoned (a caller
/// that starts traces without ever finishing them cannot leak memory).
const MAX_ACTIVE: usize = 8192;

/// Pin bit: request ran while a chaos episode was active.
pub const PIN_CHAOS: u32 = 1 << 0;
/// Pin bit: request triggered a specialize tune / install / rejection.
pub const PIN_SPECIALIZE: u32 = 1 << 1;
/// Pin bit: first sight of a new shape bucket on the shard set.
pub const PIN_NEW_SHAPE: u32 = 1 << 2;
/// Pin bit: executed in a batch whose padded-row fraction was high.
pub const PIN_PAD_BATCH: u32 = 1 << 3;
/// Pin bit: requeued after a replica died holding it.
pub const PIN_REQUEUED: u32 = 1 << 4;

/// Default rolling-quantile multiplier when `tail` is given bare.
pub const DEFAULT_TAIL_MULT: f64 = 4.0;

/// `f64::to_bits` of the tail multiplier; 0 = unset (use default).
static TAIL_MULT: AtomicU64 = AtomicU64::new(0);

/// Spans dropped because a request buffer was full (cumulative since the
/// last [`reset`]).
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Buffers abandoned by the [`MAX_ACTIVE`] safety valve.
static ABANDONED: AtomicU64 = AtomicU64::new(0);

/// Total traces retained since the last [`reset`].
static RETAINED_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Nesting depth of active chaos episodes (process-wide).
static EPISODE_DEPTH: AtomicU32 = AtomicU32::new(0);

/// Set the rolling-quantile multiplier (`tail:<mult>`); also settable by
/// the environment parse. Values ≤ 0 or non-finite reset to the default.
pub fn set_tail_multiplier(mult: f64) {
    let v = if mult.is_finite() && mult > 0.0 {
        mult.to_bits()
    } else {
        0
    };
    TAIL_MULT.store(v, Ordering::Relaxed);
}

/// The active rolling-quantile multiplier.
pub fn tail_multiplier() -> f64 {
    match TAIL_MULT.load(Ordering::Relaxed) {
        0 => DEFAULT_TAIL_MULT,
        bits => f64::from_bits(bits),
    }
}

// ---------------------------------------------------------------------------
// In-flight request buffers

struct RequestBuf {
    pinned: AtomicU32,
    dropped: AtomicU64,
    /// Records admitted across all segments — enforces the per-request
    /// cap without walking the segment list. Monotone; may exceed the cap
    /// transiently (readers clamp with `saturating_sub`).
    admitted: AtomicU64,
    /// Donated staging batches, one `Vec` per flush. Flushing *moves* the
    /// thread's staging vector here (three words under the lock) instead
    /// of copying records; only retained traces ever pay a concatenation.
    segs: Mutex<Vec<Vec<[u64; WORDS]>>>,
}

impl RequestBuf {
    /// Drain and concatenate the donated segments in arrival order.
    fn collect(&self) -> Vec<[u64; WORDS]> {
        let mut segs = self.segs.lock().unwrap();
        match segs.len() {
            0 => Vec::new(),
            1 => segs.pop().unwrap(),
            _ => segs.drain(..).flatten().collect(),
        }
    }
}

type ActiveShard = Mutex<HashMap<u64, Arc<RequestBuf>>>;

fn active() -> &'static Vec<ActiveShard> {
    static ACTIVE: OnceLock<Vec<ActiveShard>> = OnceLock::new();
    ACTIVE.get_or_init(|| {
        (0..MAP_SHARDS)
            .map(|_| Mutex::new(HashMap::new()))
            .collect()
    })
}

fn shard_for(trace: u64) -> &'static Mutex<HashMap<u64, Arc<RequestBuf>>> {
    &active()[(trace as usize) % MAP_SHARDS]
}

/// Spans a thread stages locally before taking the buffer lock once for
/// the whole batch. A worker executing a request emits hundreds of kernel
/// spans back-to-back under one trace; paying an `Arc` clone plus a
/// `Mutex` round trip per span is what the ≤3% overhead gate measures, so
/// the per-span path must be a plain `Vec::push`. Staged spans are
/// flushed on batch overflow, on any trace switch, when the thread's span
/// stack for the trace unwinds (root close / context-guard drop), and by
/// [`finish`] on the finishing thread — every handoff point where another
/// thread may next observe the buffer. The batch matches the per-request
/// cap so a typical request flushes once per participating thread (one
/// lock, one bulk copy); staleness is bounded by the unwind hooks, not by
/// this constant.
const FLUSH_SPANS: usize = REQUEST_BUFFER_SPANS;

/// Flush batches below this size are copied into an existing segment's
/// spare capacity instead of donated — donating a `Vec` per couple of
/// records would cost a malloc/free round trip per flush on threads that
/// publish eagerly (per-kernel device-lane guards).
const DONATE_MIN: usize = 64;

/// Per-thread (trace → buffer) cache plus the local staging batch.
struct Cache {
    trace: u64,
    buf: Option<Arc<RequestBuf>>,
    staging: Vec<[u64; WORDS]>,
}

thread_local! {
    /// One-entry cache so a worker emitting many spans for the same
    /// request resolves the shard map once and locks the buffer once per
    /// [`FLUSH_SPANS`] batch, not per span.
    static BUF_CACHE: RefCell<Cache> = const {
        RefCell::new(Cache {
            trace: 0,
            buf: None,
            staging: Vec::new(),
        })
    };
}

/// Publish `staging` into `buf` by *donating* the vector as a new
/// segment: one lock, one `Vec` move, no record copy. The per-request cap
/// is claimed via `admitted` before the donation; overflow records are
/// truncated off and counted as drops. The thread gets a fresh staging
/// vector sized to its recent batch so steady-state pushes never realloc.
fn flush_into(buf: &RequestBuf, staging: &mut Vec<[u64; WORDS]>) {
    if staging.is_empty() {
        return;
    }
    let prev = buf
        .admitted
        .fetch_add(staging.len() as u64, Ordering::Relaxed) as usize;
    let fit = REQUEST_BUFFER_SPANS.saturating_sub(prev).min(staging.len());
    let overflow = (staging.len() - fit) as u64;
    if overflow > 0 {
        buf.dropped.fetch_add(overflow, Ordering::Relaxed);
        DROPPED.fetch_add(overflow, Ordering::Relaxed);
    }
    if fit == 0 {
        staging.clear();
        return;
    }
    if staging.len() < DONATE_MIN {
        // Small batches (a device-lane thread flushing per kernel launch,
        // a one-off cross-thread record) are *copied*, preferentially
        // into the spare capacity of the newest small segment, and the
        // thread keeps its staging allocation — no malloc on this path.
        let mut segs = buf.segs.lock().unwrap();
        match segs.last_mut() {
            Some(last) if last.capacity() - last.len() >= fit => {
                last.extend_from_slice(&staging[..fit]);
            }
            _ => {
                let mut seg = Vec::with_capacity(DONATE_MIN.max(fit));
                seg.extend_from_slice(&staging[..fit]);
                segs.push(seg);
            }
        }
        drop(segs);
        staging.clear();
    } else {
        // Big batches (a worker's span burst) are donated wholesale; the
        // replacement is sized to the batch so the next request's burst
        // never regrows it.
        let cap = staging.len().clamp(DONATE_MIN, FLUSH_SPANS);
        let mut seg = std::mem::replace(staging, Vec::with_capacity(cap));
        seg.truncate(fit);
        buf.segs.lock().unwrap().push(seg);
    }
}

/// Point the cache at `trace`, flushing spans staged for the previously
/// cached trace first so a thread switching requests never strands
/// records in its staging batch.
fn resolve(cache: &mut Cache, trace: u64) {
    if cache.trace == trace {
        return;
    }
    if let Some(old) = cache.buf.take() {
        flush_into(&old, &mut cache.staging);
    }
    cache.trace = trace;
    cache.buf = shard_for(trace).lock().unwrap().get(&trace).cloned();
}

/// Register a per-request buffer for a freshly started trace (called by
/// [`crate::start_trace`] in tail mode).
pub(crate) fn begin(trace: u64) {
    let buf = Arc::new(RequestBuf {
        pinned: AtomicU32::new(0),
        dropped: AtomicU64::new(0),
        admitted: AtomicU64::new(0),
        segs: Mutex::new(Vec::new()),
    });
    let mut shard = shard_for(trace).lock().unwrap();
    if shard.len() >= MAX_ACTIVE / MAP_SHARDS {
        // Abandon an arbitrary stale buffer rather than grow unbounded.
        if let Some(&stale) = shard.keys().next() {
            shard.remove(&stale);
            ABANDONED.fetch_add(1, Ordering::Relaxed);
        }
    }
    shard.insert(trace, buf);
}

/// Route a raw span record to its request buffer. Returns `false` when no
/// buffer is registered for `trace` (the caller falls back to the
/// per-thread rings, so bare traces still record somewhere). With
/// `staged` the record only joins the thread-local batch (the caller
/// attests the thread is inside the trace's span stack, so an unwind hook
/// will flush it); without it the batch is flushed immediately — the
/// record may be the last this thread ever pushes for the trace.
pub(crate) fn try_push(trace: u64, rec: [u64; WORDS], staged: bool) -> bool {
    if trace == 0 || trace == SUPPRESSED {
        return false;
    }

    BUF_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        resolve(&mut cache, trace);
        let Cache { buf, staging, .. } = &mut *cache;
        let Some(buf) = buf else {
            return false;
        };
        staging.push(rec);
        if !staged || staging.len() >= FLUSH_SPANS {
            flush_into(buf, staging);
        }
        true
    })
}

/// Flush the calling thread's staged spans for `trace` (no-op when the
/// thread's cache points elsewhere). Called from the span-stack unwind
/// hooks in the core crate so staged spans are published before any other
/// thread can reach the request's terminal state.
pub(crate) fn flush_thread(trace: u64) {
    BUF_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.trace == trace {
            let Cache { buf, staging, .. } = &mut *cache;
            if let Some(buf) = buf {
                flush_into(buf, staging);
            }
        }
    });
}

/// Flush the calling thread's staged spans regardless of which trace they
/// belong to — the completion barrier for sticky-context executor threads
/// (see [`crate::flush_staged`]).
pub(crate) fn flush_thread_any() {
    BUF_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        let Cache { buf, staging, .. } = &mut *cache;
        if let Some(buf) = buf {
            flush_into(buf, staging);
        }
    });
}

/// Flag the in-flight buffer for `ctx.trace` so [`finish`] retains it
/// regardless of latency. `reason` is a `PIN_*` bit. No-op when the trace
/// has no buffer (non-tail mode, already finished, suppressed).
pub fn pin(ctx: crate::SpanContext, reason: u32) {
    if !ctx.is_sampled() {
        return;
    }
    BUF_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        resolve(&mut cache, ctx.trace);
        if let Some(buf) = &cache.buf {
            buf.pinned.fetch_or(reason, Ordering::Relaxed);
        }
    });
}

/// RAII marker for a chaos episode: every request finishing while at
/// least one episode guard is live is retained with reason `chaos`.
#[must_use]
pub struct EpisodeGuard(());

impl Drop for EpisodeGuard {
    fn drop(&mut self) {
        EPISODE_DEPTH.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Enter a chaos-episode scope (see [`EpisodeGuard`]).
pub fn episode_scope() -> EpisodeGuard {
    EPISODE_DEPTH.fetch_add(1, Ordering::Relaxed);
    EpisodeGuard(())
}

// ---------------------------------------------------------------------------
// Rolling-quantile threshold

/// Coarse log₂ latency histogram over a rolling window; the p99 estimate
/// is the upper bound of the bucket holding the p99 rank, so thresholds
/// are conservative by at most 2× (absorbed by the multiplier).
struct LatWindow {
    ring: VecDeque<u64>,
    counts: [u32; 64],
}

impl LatWindow {
    fn new() -> LatWindow {
        LatWindow {
            ring: VecDeque::with_capacity(WINDOW),
            counts: [0; 64],
        }
    }

    fn bucket(ns: u64) -> usize {
        (64 - ns.max(1).leading_zeros() as usize) - 1
    }

    fn push(&mut self, ns: u64) {
        if self.ring.len() == WINDOW {
            let old = self.ring.pop_front().unwrap();
            self.counts[Self::bucket(old)] -= 1;
        }
        self.ring.push_back(ns);
        self.counts[Self::bucket(ns)] += 1;
    }

    /// Upper bound of the bucket containing the p99 rank, or `None`
    /// before warmup.
    fn p99_ub(&self) -> Option<u64> {
        let n = self.ring.len();
        if n < WARMUP {
            return None;
        }
        let rank = (n * 99).div_ceil(100).max(1);
        let mut seen = 0usize;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c as usize;
            if seen >= rank {
                return Some(if b >= 63 { u64::MAX } else { 1u64 << (b + 1) });
            }
        }
        None
    }
}

fn windows() -> &'static Mutex<HashMap<String, LatWindow>> {
    static WINDOWS: OnceLock<Mutex<HashMap<String, LatWindow>>> = OnceLock::new();
    WINDOWS.get_or_init(|| Mutex::new(HashMap::new()))
}

// ---------------------------------------------------------------------------
// Retained ring

/// One retained trace, addressable by id.
#[derive(Debug, Clone)]
pub struct RetainedTrace {
    /// Trace id (the `/traces/<id>` key).
    pub trace: u64,
    /// Model the request was served under.
    pub model: String,
    /// Terminal latency in nanoseconds.
    pub latency_ns: u64,
    /// Comma-joined retention reasons (`slow`, `outcome`, `requeued`, ...).
    pub reasons: String,
    /// Completion timestamp on the [`crate::now_ns`] clock.
    pub finished_ns: u64,
    /// Captured span records.
    pub spans: Vec<SpanRecord>,
    /// Spans dropped because the request buffer was full.
    pub dropped: u64,
}

fn retained() -> &'static Mutex<HashMap<String, VecDeque<Arc<RetainedTrace>>>> {
    static RETAINED: OnceLock<Mutex<HashMap<String, VecDeque<Arc<RetainedTrace>>>>> =
        OnceLock::new();
    RETAINED.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A retention decision whose span collection is deferred to read time.
///
/// [`finish`] renders the verdict on the request's critical path, but the
/// device-lane publication barrier is fire-and-forget (the stream thread
/// flushes its staged spans concurrently with terminal accounting, see
/// `GpuStream::synchronize`), so spans may still be in flight for a few
/// microseconds after the verdict. Holding the buffer `Arc` here — late
/// flushes land in it harmlessly — and concatenating at the first read
/// keeps both sides off the steady-state path: debug-endpoint and export
/// reads are human-paced, by which time every flush has long landed.
struct PendingRetained {
    trace: u64,
    model: String,
    latency_ns: u64,
    reasons: String,
    finished_ns: u64,
    buf: Arc<RequestBuf>,
}

/// Pending entries beyond this are drained inline by the finishing thread
/// — a server that retains heavily but is never read must not accumulate
/// unbounded buffers.
const PENDING_MAX: usize = 64;

fn pending() -> &'static Mutex<Vec<PendingRetained>> {
    static PENDING: OnceLock<Mutex<Vec<PendingRetained>>> = OnceLock::new();
    PENDING.get_or_init(|| Mutex::new(Vec::new()))
}

/// Move every pending retention into the per-model ring, collecting span
/// segments. Called by all read paths before they look at the ring.
fn drain_pending() {
    let drained: Vec<PendingRetained> = {
        let mut p = pending().lock().unwrap();
        if p.is_empty() {
            return;
        }
        p.drain(..).collect()
    };
    let mut map = retained().lock().unwrap();
    for p in drained {
        let mut spans: Vec<SpanRecord> = p
            .buf
            .collect()
            .into_iter()
            .map(|rec| crate::decode_record(rec, 0))
            .collect();
        spans.sort_by_key(|s| (s.start_ns, s.id));
        let entry = Arc::new(RetainedTrace {
            trace: p.trace,
            model: p.model.clone(),
            latency_ns: p.latency_ns,
            reasons: p.reasons,
            finished_ns: p.finished_ns,
            spans,
            dropped: p.buf.dropped.load(Ordering::Relaxed),
        });
        let ring = map.entry(p.model).or_default();
        if ring.len() == RETAINED_PER_MODEL {
            ring.pop_front();
        }
        ring.push_back(entry);
    }
}

/// Queue a retention for read-time collection (draining inline past
/// [`PENDING_MAX`]).
fn push_pending(entry: PendingRetained) {
    let overflow = {
        let mut p = pending().lock().unwrap();
        p.push(entry);
        p.len() >= PENDING_MAX
    };
    if overflow {
        drain_pending();
    }
    RETAINED_TOTAL.fetch_add(1, Ordering::Relaxed);
}

/// The retention verdict for one finished request, returned by [`finish`]
/// so the serving layer can stamp exemplars.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Trace id of the retained trace.
    pub trace: u64,
    /// Why it was retained.
    pub reasons: String,
}

/// Render the retention verdict for a finished request and either retain
/// its buffer into the per-model ring or free it. Call exactly once, at
/// the single point where the terminal outcome is known. `ok` is true
/// only for a Completed-with-result terminal. Returns the verdict when
/// retained (for exemplar stamping), `None` when dropped.
pub fn finish(ctx: crate::SpanContext, model: &str, latency_ns: u64, ok: bool) -> Option<Verdict> {
    if !ctx.is_sampled() {
        return None;
    }
    let buf = shard_for(ctx.trace).lock().unwrap().remove(&ctx.trace);
    // Publish this thread's staged spans (the terminal root span was just
    // recorded on it) and drop the cache entry so no further spans route
    // into the finished buffer from here.
    BUF_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.trace == ctx.trace {
            let Cache { buf, staging, .. } = &mut *cache;
            if let Some(b) = buf.take() {
                flush_into(&b, staging);
            }
            cache.trace = 0;
        }
    });
    let buf = buf?;

    // Threshold from the window *before* this sample, then roll it in.
    let threshold = {
        let mut windows = windows().lock().unwrap();
        // Double lookup on the miss path only: `entry()` would allocate a
        // key String on every completion, and this runs per request.
        if !windows.contains_key(model) {
            windows.insert(model.to_string(), LatWindow::new());
        }
        let w = windows.get_mut(model).expect("window just ensured");
        let t = w.p99_ub().map(|ub| (ub as f64 * tail_multiplier()) as u64);
        w.push(latency_ns);
        t
    };

    let mut reasons = Vec::new();
    if let Some(t) = threshold {
        if latency_ns > t {
            reasons.push("slow");
        }
    }
    if !ok {
        reasons.push("outcome");
    }
    let pins = buf.pinned.load(Ordering::Relaxed);
    if pins & PIN_REQUEUED != 0 {
        reasons.push("requeued");
    }
    if pins & PIN_CHAOS != 0 || EPISODE_DEPTH.load(Ordering::Relaxed) > 0 {
        reasons.push("chaos");
    }
    if pins & PIN_SPECIALIZE != 0 {
        reasons.push("specialize");
    }
    if pins & PIN_NEW_SHAPE != 0 {
        reasons.push("new_shape");
    }
    if pins & PIN_PAD_BATCH != 0 {
        reasons.push("pad_batch");
    }
    if reasons.is_empty() {
        return None;
    }

    let verdict = Verdict {
        trace: ctx.trace,
        reasons: reasons.join(","),
    };
    push_pending(PendingRetained {
        trace: ctx.trace,
        model: model.to_string(),
        latency_ns,
        reasons: verdict.reasons.clone(),
        finished_ns: crate::now_ns(),
        buf,
    });
    Some(verdict)
}

/// Shed-path variant of [`finish`] for requests rejected at admission:
/// the trace has only its root span, the outcome is by definition
/// non-Completed, and the latency does not join the rolling window.
pub fn finish_shed(ctx: crate::SpanContext, model: &str, reason: &'static str) -> Option<Verdict> {
    if !ctx.is_sampled() {
        return None;
    }
    let buf = shard_for(ctx.trace).lock().unwrap().remove(&ctx.trace)?;
    BUF_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.trace == ctx.trace {
            let Cache { buf, staging, .. } = &mut *cache;
            if let Some(b) = buf.take() {
                flush_into(&b, staging);
            }
            cache.trace = 0;
        }
    });
    let verdict = Verdict {
        trace: ctx.trace,
        reasons: reason.to_string(),
    };
    push_pending(PendingRetained {
        trace: ctx.trace,
        model: model.to_string(),
        latency_ns: 0,
        reasons: verdict.reasons.clone(),
        finished_ns: crate::now_ns(),
        buf,
    });
    Some(verdict)
}

// ---------------------------------------------------------------------------
// Queries + export

/// Every retained trace, newest first.
pub fn retained_traces() -> Vec<Arc<RetainedTrace>> {
    drain_pending();
    let map = retained().lock().unwrap();
    let mut all: Vec<Arc<RetainedTrace>> = map.values().flatten().cloned().collect();
    all.sort_by_key(|t| std::cmp::Reverse(t.finished_ns));
    all
}

/// Look up one retained trace by id.
pub fn retained_trace(trace: u64) -> Option<Arc<RetainedTrace>> {
    drain_pending();
    retained()
        .lock()
        .unwrap()
        .values()
        .flatten()
        .find(|t| t.trace == trace)
        .cloned()
}

/// The slowest retained trace for `model`: `(trace id, latency ns)`.
pub fn slowest_retained(model: &str) -> Option<(u64, u64)> {
    drain_pending();
    retained()
        .lock()
        .unwrap()
        .get(model)?
        .iter()
        .max_by_key(|t| t.latency_ns)
        .map(|t| (t.trace, t.latency_ns))
}

/// The `/traces` index as a JSON array (newest first).
pub fn index_json() -> String {
    use std::fmt::Write as _;
    let all = retained_traces();
    let mut out = String::with_capacity(64 + all.len() * 128);
    out.push('[');
    for (i, t) in all.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"trace\":");
        let _ = write!(out, "{}", t.trace);
        out.push_str(",\"model\":\"");
        crate::export::escape_json(&t.model, &mut out);
        out.push_str("\",\"latency_ms\":");
        let _ = write!(out, "{:.3}", t.latency_ns as f64 / 1e6);
        out.push_str(",\"reasons\":\"");
        crate::export::escape_json(&t.reasons, &mut out);
        let _ = write!(
            out,
            "\",\"spans\":{},\"dropped\":{}}}",
            t.spans.len(),
            t.dropped
        );
    }
    out.push(']');
    out
}

/// Chrome trace JSON for one retained trace, or `None` if the id is not
/// (or no longer) retained.
pub fn chrome_json(trace: u64) -> Option<String> {
    let t = retained_trace(trace)?;
    Some(crate::export::chrome_trace_for(&t.spans, t.dropped))
}

/// Spans dropped on request-buffer overflow since the last [`reset`].
pub fn flight_dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Buffers abandoned by the in-flight safety valve since the last
/// [`reset`].
pub fn flight_abandoned() -> u64 {
    ABANDONED.load(Ordering::Relaxed)
}

/// Traces retained since the last [`reset`].
pub fn retained_total() -> u64 {
    RETAINED_TOTAL.load(Ordering::Relaxed)
}

/// In-flight request buffers currently registered.
pub fn active_buffers() -> usize {
    active().iter().map(|s| s.lock().unwrap().len()).sum()
}

/// Clear all flight-recorder state: in-flight buffers, rolling windows,
/// retained rings and counters. Called by [`crate::reset`].
pub(crate) fn reset() {
    for shard in active() {
        shard.lock().unwrap().clear();
    }
    windows().lock().unwrap().clear();
    pending().lock().unwrap().clear();
    retained().lock().unwrap().clear();
    DROPPED.store(0, Ordering::Relaxed);
    ABANDONED.store(0, Ordering::Relaxed);
    RETAINED_TOTAL.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lat_window_p99_tracks_bucket_upper_bound() {
        let mut w = LatWindow::new();
        for _ in 0..WARMUP {
            w.push(1000); // bucket [512, 1024) → ub 1024
        }
        assert_eq!(w.p99_ub(), Some(1024));
        // One giant sample in a 64-window is above the p99 rank only when
        // rank ≥ n; with n=64, rank = ceil(64*0.99)=64 → it IS the max.
        w.push(1_000_000);
        let ub = w.p99_ub().unwrap();
        assert!(ub >= 1_000_000, "p99 ub {ub} should cover the max");
    }

    #[test]
    fn lat_window_rolls_off_old_samples() {
        let mut w = LatWindow::new();
        for _ in 0..WINDOW {
            w.push(1 << 30);
        }
        for _ in 0..WINDOW {
            w.push(1000);
        }
        assert_eq!(w.p99_ub(), Some(1024));
        assert_eq!(w.ring.len(), WINDOW);
        assert_eq!(w.counts.iter().map(|&c| c as usize).sum::<usize>(), WINDOW);
    }

    #[test]
    fn bucket_is_monotone() {
        let mut last = 0;
        for ns in [0u64, 1, 2, 3, 4, 1023, 1024, 1 << 40, u64::MAX] {
            let b = LatWindow::bucket(ns);
            assert!(b >= last);
            last = b;
        }
    }
}
