//! Child-sum Tree-LSTM over a binary tree ADT — the paper's *dynamic data
//! structure* workload (Section 6.1: input 300, hidden 150, Stanford
//! Sentiment Treebank structures).
//!
//! Every input sentence parses to a different tree, so the computation
//! graph differs per input; the model is a recursive IR function
//! pattern-matching `Leaf`/`Node` constructors, exactly the workload that
//! defeats define-then-run frameworks and forces TensorFlow Fold to
//! re-compile per input (Section 6.2).

use nimble_ir::adt::TypeDef;
use nimble_ir::attrs::{AttrValue, Attrs};
use nimble_ir::expr::{Clause, Expr, Function, Pattern};
use nimble_ir::types::{TensorType, Type};
use nimble_ir::{Module, Var};
use nimble_tensor::{kernels, DType, Tensor};
use rand::SeedableRng;

use crate::data::TreeNode;

/// Tree-LSTM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeLstmConfig {
    /// Leaf embedding size.
    pub input: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Output classes (SST has 5 sentiment classes).
    pub classes: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for TreeLstmConfig {
    /// The paper's configuration: input 300, hidden 150.
    fn default() -> Self {
        TreeLstmConfig {
            input: 300,
            hidden: 150,
            classes: 5,
            seed: 42,
        }
    }
}

/// An initialized child-sum Tree-LSTM.
#[derive(Debug, Clone)]
pub struct TreeLstmModel {
    /// Configuration.
    pub config: TreeLstmConfig,
    /// Leaf input→(i,o,u) weights `[3H, input]`.
    pub w_iou: Tensor,
    /// Child-sum hidden→(i,o,u) weights `[3H, H]`.
    pub u_iou: Tensor,
    /// (i,o,u) bias `[3H]`.
    pub b_iou: Tensor,
    /// Per-child forget-gate weights `[H, H]`.
    pub u_f: Tensor,
    /// Forget-gate bias `[H]`.
    pub b_f: Tensor,
    /// Sentiment classifier `[classes, H]`.
    pub w_cls: Tensor,
}

impl TreeLstmModel {
    /// Initialize with seeded uniform weights.
    pub fn new(config: TreeLstmConfig) -> TreeLstmModel {
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let h = config.hidden;
        let scale = 1.0 / (h as f32).sqrt();
        TreeLstmModel {
            config,
            w_iou: Tensor::rand_f32(&mut rng, &[3 * h, config.input], scale),
            u_iou: Tensor::rand_f32(&mut rng, &[3 * h, h], scale),
            b_iou: Tensor::rand_f32(&mut rng, &[3 * h], scale),
            u_f: Tensor::rand_f32(&mut rng, &[h, h], scale),
            b_f: Tensor::rand_f32(&mut rng, &[h], scale),
            w_cls: Tensor::rand_f32(&mut rng, &[config.classes, h], scale),
        }
    }

    fn state_type(&self) -> Type {
        Type::Tensor(TensorType::new(&[1, self.config.hidden as u64], DType::F32))
    }

    fn leaf_type(&self) -> Type {
        Type::Tensor(TensorType::new(&[1, self.config.input as u64], DType::F32))
    }

    /// iou-split helper: `let iou = dense(input, w) + b; parts = split` and
    /// the three gate expressions.
    fn iou_bindings(&self, input: Expr, w: &Tensor) -> (Vec<(Var, Expr)>, Expr, Expr, Expr) {
        let mut binds = Vec::new();
        let iou = Var::fresh("iou", Type::Unknown);
        binds.push((
            iou.clone(),
            Expr::call_op(
                "add",
                vec![
                    Expr::call_op(
                        "dense",
                        vec![input, Expr::constant(w.clone())],
                        Attrs::new(),
                    ),
                    Expr::constant(self.b_iou.clone()),
                ],
                Attrs::new(),
            ),
        ));
        let parts = Var::fresh("parts", Type::Unknown);
        binds.push((
            parts.clone(),
            Expr::call_op(
                "split",
                vec![iou.to_expr()],
                Attrs::new()
                    .with("parts", AttrValue::Int(3))
                    .with("axis", AttrValue::Int(1)),
            ),
        ));
        let gate = |idx: usize, f: &str| {
            Expr::call_op(f, vec![Expr::tuple_get(parts.to_expr(), idx)], Attrs::new())
        };
        (
            binds,
            gate(0, "sigmoid"),
            gate(1, "sigmoid"),
            gate(2, "tanh"),
        )
    }

    /// Build the IR module: recursive `node` function returning `(h, c)`
    /// plus `main` classifying the root hidden state.
    pub fn module(&self) -> Module {
        let mut m = Module::new();
        m.add_adt(TypeDef::tree(self.leaf_type()));
        let pair_ty = Type::Tuple(vec![self.state_type(), self.state_type()]);

        // ---- node(t: Tree) -> (h, c) ----
        let t = Var::fresh("t", Type::Adt("Tree".into()));
        // Leaf clause.
        let x = Var::fresh("x", Type::Unknown);
        let (mut leaf_binds, i_e, o_e, u_e) = self.iou_bindings(x.to_expr(), &self.w_iou);
        let c_leaf = Var::fresh("c", Type::Unknown);
        leaf_binds.push((
            c_leaf.clone(),
            Expr::call_op("mul", vec![i_e, u_e], Attrs::new()),
        ));
        let h_leaf = Var::fresh("h", Type::Unknown);
        leaf_binds.push((
            h_leaf.clone(),
            Expr::call_op(
                "mul",
                vec![
                    o_e,
                    Expr::call_op("tanh", vec![c_leaf.to_expr()], Attrs::new()),
                ],
                Attrs::new(),
            ),
        ));
        let mut leaf_body = Expr::tuple(vec![h_leaf.to_expr(), c_leaf.to_expr()]);
        for (v, e) in leaf_binds.into_iter().rev() {
            leaf_body = Expr::let_(v, e, leaf_body);
        }

        // Node clause.
        let left = Var::fresh("left", Type::Adt("Tree".into()));
        let right = Var::fresh("right", Type::Adt("Tree".into()));
        let mut nb: Vec<(Var, Expr)> = Vec::new();
        let lp = Var::fresh("lp", Type::Unknown);
        nb.push((
            lp.clone(),
            Expr::call(Expr::global("node"), vec![left.to_expr()]),
        ));
        let rp = Var::fresh("rp", Type::Unknown);
        nb.push((
            rp.clone(),
            Expr::call(Expr::global("node"), vec![right.to_expr()]),
        ));
        let hl = Var::fresh("hl", Type::Unknown);
        nb.push((hl.clone(), Expr::tuple_get(lp.to_expr(), 0)));
        let cl = Var::fresh("cl", Type::Unknown);
        nb.push((cl.clone(), Expr::tuple_get(lp.to_expr(), 1)));
        let hr = Var::fresh("hr", Type::Unknown);
        nb.push((hr.clone(), Expr::tuple_get(rp.to_expr(), 0)));
        let cr = Var::fresh("cr", Type::Unknown);
        nb.push((cr.clone(), Expr::tuple_get(rp.to_expr(), 1)));
        let hs = Var::fresh("hs", Type::Unknown);
        nb.push((
            hs.clone(),
            Expr::call_op("add", vec![hl.to_expr(), hr.to_expr()], Attrs::new()),
        ));
        let (iou_binds, i_e, o_e, u_e) = self.iou_bindings(hs.to_expr(), &self.u_iou);
        nb.extend(iou_binds);
        let forget = |h: &Var| {
            Expr::call_op(
                "sigmoid",
                vec![Expr::call_op(
                    "add",
                    vec![
                        Expr::call_op(
                            "dense",
                            vec![h.to_expr(), Expr::constant(self.u_f.clone())],
                            Attrs::new(),
                        ),
                        Expr::constant(self.b_f.clone()),
                    ],
                    Attrs::new(),
                )],
                Attrs::new(),
            )
        };
        let c_node = Var::fresh("c", Type::Unknown);
        nb.push((
            c_node.clone(),
            Expr::call_op(
                "add",
                vec![
                    Expr::call_op("mul", vec![i_e, u_e], Attrs::new()),
                    Expr::call_op(
                        "add",
                        vec![
                            Expr::call_op("mul", vec![forget(&hl), cl.to_expr()], Attrs::new()),
                            Expr::call_op("mul", vec![forget(&hr), cr.to_expr()], Attrs::new()),
                        ],
                        Attrs::new(),
                    ),
                ],
                Attrs::new(),
            ),
        ));
        let h_node = Var::fresh("h", Type::Unknown);
        nb.push((
            h_node.clone(),
            Expr::call_op(
                "mul",
                vec![
                    o_e,
                    Expr::call_op("tanh", vec![c_node.to_expr()], Attrs::new()),
                ],
                Attrs::new(),
            ),
        ));
        let mut node_body = Expr::tuple(vec![h_node.to_expr(), c_node.to_expr()]);
        for (v, e) in nb.into_iter().rev() {
            node_body = Expr::let_(v, e, node_body);
        }

        let body = Expr::match_(
            t.to_expr(),
            vec![
                Clause {
                    pattern: Pattern::Constructor {
                        name: "Leaf".into(),
                        fields: vec![Pattern::Bind(x)],
                    },
                    body: leaf_body,
                },
                Clause {
                    pattern: Pattern::Constructor {
                        name: "Node".into(),
                        fields: vec![Pattern::Bind(left), Pattern::Bind(right)],
                    },
                    body: node_body,
                },
            ],
        );
        m.add_function("node", Function::new(vec![t], body, pair_ty));

        // ---- main(t) = dense(h_root, w_cls) ----
        let mt = Var::fresh("t", Type::Adt("Tree".into()));
        let pair = Var::fresh("pair", Type::Unknown);
        let h_root = Var::fresh("h_root", Type::Unknown);
        let main_body = Expr::let_(
            pair.clone(),
            Expr::call(Expr::global("node"), vec![mt.to_expr()]),
            Expr::let_(
                h_root.clone(),
                Expr::tuple_get(pair.to_expr(), 0),
                Expr::call_op(
                    "dense",
                    vec![h_root.to_expr(), Expr::constant(self.w_cls.clone())],
                    Attrs::new(),
                ),
            ),
        );
        m.add_function(
            "main",
            Function::new(
                vec![mt],
                main_body,
                Type::Tensor(TensorType::new(
                    &[1, self.config.classes as u64],
                    DType::F32,
                )),
            ),
        );
        m
    }

    fn iou_reference(&self, input: &Tensor, w: &Tensor) -> (Tensor, Tensor, Tensor) {
        let iou = kernels::add(&kernels::dense(input, w, None).expect("dense"), &self.b_iou)
            .expect("bias");
        let parts = kernels::split(&iou, 3, 1).expect("split");
        (
            kernels::sigmoid(&parts[0]).expect("i"),
            kernels::sigmoid(&parts[1]).expect("o"),
            kernels::tanh(&parts[2]).expect("u"),
        )
    }

    /// Reference recursion with plain kernels: returns `(h, c)`.
    pub fn node_reference(&self, tree: &TreeNode) -> (Tensor, Tensor) {
        match tree {
            TreeNode::Leaf(x) => {
                let (i, o, u) = self.iou_reference(x, &self.w_iou);
                let c = kernels::mul(&i, &u).expect("c");
                let h = kernels::mul(&o, &kernels::tanh(&c).expect("tanh")).expect("h");
                (h, c)
            }
            TreeNode::Node(l, r) => {
                let (hl, cl) = self.node_reference(l);
                let (hr, cr) = self.node_reference(r);
                let hs = kernels::add(&hl, &hr).expect("hs");
                let (i, o, u) = self.iou_reference(&hs, &self.u_iou);
                let f = |h: &Tensor| {
                    kernels::sigmoid(
                        &kernels::add(
                            &kernels::dense(h, &self.u_f, None).expect("dense f"),
                            &self.b_f,
                        )
                        .expect("bias f"),
                    )
                    .expect("sigmoid f")
                };
                let c = kernels::add(
                    &kernels::mul(&i, &u).expect("iu"),
                    &kernels::add(
                        &kernels::mul(&f(&hl), &cl).expect("fl"),
                        &kernels::mul(&f(&hr), &cr).expect("fr"),
                    )
                    .expect("sum"),
                )
                .expect("c");
                let h = kernels::mul(&o, &kernels::tanh(&c).expect("tanh")).expect("h");
                (h, c)
            }
        }
    }

    /// Reference forward pass: class scores for a tree.
    pub fn reference(&self, tree: &TreeNode) -> Tensor {
        let (h, _) = self.node_reference(tree);
        kernels::dense(&h, &self.w_cls, None).expect("classifier")
    }

    /// Random tree with the given number of leaves.
    pub fn random_tree<R: rand::Rng>(&self, rng: &mut R, leaves: usize) -> TreeNode {
        let input = self.config.input;
        crate::data::random_tree(rng, leaves, &mut |r| Tensor::rand_f32(r, &[1, input], 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_core::{compile, CompileOptions};
    use nimble_device::DeviceSet;
    use nimble_vm::VirtualMachine;
    use std::sync::Arc;

    fn tiny() -> TreeLstmConfig {
        TreeLstmConfig {
            input: 5,
            hidden: 6,
            classes: 3,
            seed: 2,
        }
    }

    #[test]
    fn compiles() {
        let model = TreeLstmModel::new(tiny());
        let (exe, _) = compile(&model.module(), &CompileOptions::default()).unwrap();
        assert!(exe.functions.len() >= 2);
    }

    #[test]
    fn vm_matches_reference_across_structures() {
        let model = TreeLstmModel::new(tiny());
        let (exe, _) = compile(&model.module(), &CompileOptions::default()).unwrap();
        let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for leaves in [1usize, 2, 3, 7, 12] {
            let tree = model.random_tree(&mut rng, leaves);
            let out = vm
                .run("main", vec![tree.to_object()])
                .unwrap()
                .wait_tensor()
                .unwrap();
            let want = model.reference(&tree);
            assert_eq!(out.dims(), want.dims());
            for (a, b) in out.as_f32().unwrap().iter().zip(want.as_f32().unwrap()) {
                assert!((a - b).abs() < 1e-4, "leaves {leaves}");
            }
        }
    }

    #[test]
    fn different_structures_give_different_outputs() {
        // Same leaves, different tree shapes → different results (the
        // structure genuinely matters).
        let model = TreeLstmModel::new(tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let l1 = Tensor::rand_f32(&mut rng, &[1, 5], 1.0);
        let l2 = Tensor::rand_f32(&mut rng, &[1, 5], 1.0);
        let l3 = Tensor::rand_f32(&mut rng, &[1, 5], 1.0);
        let left_deep = TreeNode::Node(
            Box::new(TreeNode::Node(
                Box::new(TreeNode::Leaf(l1.clone())),
                Box::new(TreeNode::Leaf(l2.clone())),
            )),
            Box::new(TreeNode::Leaf(l3.clone())),
        );
        let right_deep = TreeNode::Node(
            Box::new(TreeNode::Leaf(l1)),
            Box::new(TreeNode::Node(
                Box::new(TreeNode::Leaf(l2)),
                Box::new(TreeNode::Leaf(l3)),
            )),
        );
        let a = model.reference(&left_deep);
        let b = model.reference(&right_deep);
        let diff: f32 = a
            .as_f32()
            .unwrap()
            .iter()
            .zip(b.as_f32().unwrap())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1e-6);
    }
}
