//! Row-dynamic MLP: a dense/ReLU stack over `x: Tensor[(Any, IN)]`.
//!
//! The minimal *dynamic shape* workload for the shape-specialization
//! tier: every request carries a concrete row count for the `Any`
//! dimension, each layer is one dense anchor (symbolic or fused
//! dense+relu after fusion), and a Zipfian mix of row counts gives the
//! hot-shape cache something to specialize. BERT exercises the same
//! machinery with far more surrounding ops; this model isolates the
//! dense anchors so specialization effects are measurable.

use nimble_ir::attrs::Attrs;
use nimble_ir::expr::{Expr, Function};
use nimble_ir::types::{TensorType, Type};
use nimble_ir::{Module, Var};
use nimble_tensor::{DType, Tensor};
use rand::Rng;
use rand::SeedableRng;

/// MLP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlpConfig {
    /// Input feature width.
    pub input: usize,
    /// Hidden width of every inner layer.
    pub hidden: usize,
    /// Number of hidden (dense+relu) layers.
    pub layers: usize,
    /// Output width of the final (activation-free) dense.
    pub classes: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> MlpConfig {
        MlpConfig {
            input: 64,
            hidden: 128,
            layers: 2,
            classes: 16,
            seed: 42,
        }
    }
}

/// An initialized MLP: `layers` dense+relu blocks and a final dense.
#[derive(Debug, Clone)]
pub struct MlpModel {
    /// Configuration.
    pub config: MlpConfig,
    /// `(weight [out, in], bias [out])` per layer, final layer last.
    pub weights: Vec<(Tensor, Tensor)>,
}

impl MlpModel {
    /// Initialize with seeded uniform weights.
    pub fn new(config: MlpConfig) -> MlpModel {
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let mut mk = |r: usize, c: usize| {
            let scale = 1.0 / (c as f32).sqrt();
            (
                Tensor::rand_f32(&mut rng, &[r, c], scale),
                Tensor::rand_f32(&mut rng, &[r, 1], scale)
                    .reshaped(&[r])
                    .expect("bias reshape"),
            )
        };
        let mut weights = Vec::with_capacity(config.layers + 1);
        let mut width = config.input;
        for _ in 0..config.layers {
            weights.push(mk(config.hidden, width));
            width = config.hidden;
        }
        weights.push(mk(config.classes, width));
        MlpModel { config, weights }
    }

    /// Build the IR module: `main(x: Tensor[(Any, IN)]) -> Tensor[(Any, C)]`.
    pub fn module(&self) -> Module {
        let x = Var::fresh(
            "x",
            Type::Tensor(TensorType::with_any(
                &[None, Some(self.config.input as u64)],
                DType::F32,
            )),
        );
        let mut cur = x.to_expr();
        for (i, (w, b)) in self.weights.iter().enumerate() {
            cur = Expr::call_op(
                "dense",
                vec![cur, Expr::constant(w.clone()), Expr::constant(b.clone())],
                Attrs::new(),
            );
            if i + 1 < self.weights.len() {
                cur = Expr::call_op("relu", vec![cur], Attrs::new());
            }
        }
        let mut m = Module::new();
        m.add_function("main", Function::new(vec![x], cur, Type::Unknown));
        m
    }

    /// A random `[rows, IN]` input.
    pub fn random_input(&self, rng: &mut impl Rng, rows: usize) -> Tensor {
        Tensor::rand_f32(rng, &[rows, self.config.input], 1.0)
    }

    /// Pure scalar reference (naive loops, no blocking): for allclose
    /// sanity checks, not bitwise comparisons.
    pub fn reference(&self, x: &Tensor) -> Tensor {
        let mut rows: Vec<Vec<f32>> = {
            let data = x.as_f32().expect("f32 input");
            data.chunks(self.config.input)
                .map(<[f32]>::to_vec)
                .collect()
        };
        for (i, (w, b)) in self.weights.iter().enumerate() {
            let (n, k) = (w.dims()[0], w.dims()[1]);
            let wd = w.as_f32().expect("f32 weight");
            let bd = b.as_f32().expect("f32 bias");
            rows = rows
                .iter()
                .map(|row| {
                    (0..n)
                        .map(|j| {
                            let mut acc = 0.0f32;
                            for c in 0..k {
                                acc += row[c] * wd[j * k + c];
                            }
                            let v = acc + bd[j];
                            if i + 1 < self.weights.len() {
                                v.max(0.0)
                            } else {
                                v
                            }
                        })
                        .collect()
                })
                .collect();
        }
        let m = rows.len();
        let flat: Vec<f32> = rows.into_iter().flatten().collect();
        Tensor::from_vec_f32(flat, &[m, self.config.classes]).expect("reference output")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_builds_and_reference_shapes() {
        let model = MlpModel::new(MlpConfig::default());
        let module = model.module();
        assert!(module.functions().any(|(n, _)| n.0 == "main"));
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let x = model.random_input(&mut rng, 5);
        let y = model.reference(&x);
        assert_eq!(y.dims(), &[5, 16]);
    }
}
