//! # nimble-models
//!
//! The dynamic models of the paper's evaluation (Section 6.1), expressed as
//! Nimble IR modules, plus pure-kernel reference implementations used for
//! correctness checks and by the baseline frameworks:
//!
//! * [`lstm`] — LSTM (1 or 2 layers) over a recursive list of tokens:
//!   **dynamic control flow** (input size 300 / hidden 512 in the paper's
//!   configuration);
//! * [`tree_lstm`] — child-sum Tree-LSTM over a binary tree ADT: **dynamic
//!   data structures** (input 300 / hidden 150);
//! * [`bert`] — BERT encoder over a variable-length token sequence:
//!   **dynamic shapes**;
//! * [`mlp`] — row-dynamic dense/ReLU stack: the minimal dynamic-shape
//!   workload, used by the shape-specialization tier's benchmarks and
//!   differential tests;
//! * [`cv`] — static computer-vision graphs (ResNet/MobileNet/VGG/
//!   SqueezeNet style) for the memory-planning footprint study
//!   (Section 6.3);
//! * [`data`] — helpers that encode host data (token lists, trees) as VM
//!   objects matching the modules' ADT layouts.

pub mod bert;
pub mod cv;
pub mod data;
pub mod lstm;
pub mod mlp;
pub mod tree_lstm;

pub use bert::{BertConfig, BertModel};
pub use lstm::{LstmConfig, LstmModel};
pub use mlp::{MlpConfig, MlpModel};
pub use tree_lstm::{TreeLstmConfig, TreeLstmModel};
