//! Static computer-vision graphs for the memory-planning footprint study
//! (Section 6.3: "we also compared the memory usage of Nimble with memory
//! planning to TVM … on popular computer vision models such as ResNet,
//! MobileNet, VGG and SqueezeNet").
//!
//! The graphs mirror each family's characteristic block structure
//! (residual adds, pointwise-heavy stacks, deep plain convolutions, fire
//! modules) at a reduced spatial resolution (32×32 input) so that the
//! naive-Rust convolutions keep the study tractable. The *memory plan* —
//! what the experiment measures — depends on the graph structure and
//! channel widths, not on spatial scale.

use nimble_ir::attrs::{AttrValue, Attrs};
use nimble_ir::builder::FunctionBuilder;
use nimble_ir::types::TensorType;
use nimble_ir::{Expr, Module};
use nimble_tensor::{DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Name + module pairs for all four CV graphs.
pub fn all_models(seed: u64) -> Vec<(&'static str, Module)> {
    vec![
        ("resnet", resnet_like(seed)),
        ("mobilenet", mobilenet_like(seed)),
        ("vgg", vgg_like(seed)),
        ("squeezenet", squeezenet_like(seed)),
    ]
}

struct CvBuilder {
    fb: FunctionBuilder,
    rng: StdRng,
}

impl CvBuilder {
    fn new(name: &str, seed: u64) -> (CvBuilder, Expr) {
        let mut fb = FunctionBuilder::new(name);
        let x = fb.param("image", TensorType::new(&[1, 3, 32, 32], DType::F32));
        (
            CvBuilder {
                fb,
                rng: StdRng::seed_from_u64(seed),
            },
            x,
        )
    }

    fn conv(
        &mut self,
        x: Expr,
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Expr {
        let w = Tensor::rand_f32(&mut self.rng, &[out_c, in_c, k, k], 0.1);
        let wc = self.fb.constant(w);
        self.fb.call(
            "conv2d",
            vec![x, wc],
            Attrs::new()
                .with("stride", AttrValue::Int(stride as i64))
                .with("padding", AttrValue::Int(pad as i64)),
        )
    }

    fn relu(&mut self, x: Expr) -> Expr {
        self.fb.call("relu", vec![x], Attrs::new())
    }

    fn add(&mut self, a: Expr, b: Expr) -> Expr {
        self.fb.call("add", vec![a, b], Attrs::new())
    }

    fn max_pool(&mut self, x: Expr) -> Expr {
        self.fb.call(
            "max_pool2d",
            vec![x],
            Attrs::new()
                .with("kernel", AttrValue::Int(2))
                .with("stride", AttrValue::Int(2)),
        )
    }

    fn head(&mut self, x: Expr, channels: usize, classes: usize) -> Expr {
        let g = self.fb.call("global_avg_pool", vec![x], Attrs::new());
        let w = Tensor::rand_f32(&mut self.rng, &[classes, channels], 0.1);
        let wc = self.fb.constant(w);
        self.fb.call("dense", vec![g, wc], Attrs::new())
    }

    fn finish(self, out: Expr) -> Module {
        let mut m = Module::new();
        m.add_function("main", self.fb.finish(out));
        m
    }
}

/// ResNet-style: stem conv then residual blocks with identity shortcuts.
pub fn resnet_like(seed: u64) -> Module {
    let (mut b, x) = CvBuilder::new("main", seed);
    let mut c = 16;
    let mut h = b.conv(x, 3, c, 3, 1, 1);
    h = b.relu(h);
    for stage in 0..3 {
        if stage > 0 {
            // Downsample + widen.
            let next = c * 2;
            h = b.conv(h, c, next, 3, 2, 1);
            h = b.relu(h);
            c = next;
        }
        // Two residual blocks.
        for _ in 0..2 {
            let shortcut = h.clone();
            let mut y = b.conv(h, c, c, 3, 1, 1);
            y = b.relu(y);
            y = b.conv(y, c, c, 3, 1, 1);
            let sum = b.add(y, shortcut);
            h = b.relu(sum);
        }
    }
    let out = b.head(h, c, 10);
    b.finish(out)
}

/// MobileNet-style: alternating 3×3 (stand-in for depthwise) and pointwise
/// 1×1 convolutions.
pub fn mobilenet_like(seed: u64) -> Module {
    let (mut b, x) = CvBuilder::new("main", seed);
    let mut c = 16;
    let mut h = b.conv(x, 3, c, 3, 1, 1);
    h = b.relu(h);
    for (stride, next) in [(1, 32), (2, 64), (1, 64), (2, 128), (1, 128)] {
        // Spatial conv (depthwise stand-in: narrow 3x3).
        h = b.conv(h, c, c, 3, stride, 1);
        h = b.relu(h);
        // Pointwise expansion.
        h = b.conv(h, c, next, 1, 1, 0);
        h = b.relu(h);
        c = next;
    }
    let out = b.head(h, c, 10);
    b.finish(out)
}

/// VGG-style: deep stacks of same-width 3×3 convolutions with pooling.
pub fn vgg_like(seed: u64) -> Module {
    let (mut b, x) = CvBuilder::new("main", seed);
    let mut h = x;
    let mut in_c = 3;
    for &c in &[16usize, 32, 64] {
        h = b.conv(h, in_c, c, 3, 1, 1);
        h = b.relu(h);
        h = b.conv(h, c, c, 3, 1, 1);
        h = b.relu(h);
        h = b.max_pool(h);
        in_c = c;
    }
    let out = b.head(h, in_c, 10);
    b.finish(out)
}

/// SqueezeNet-style: fire modules (1×1 squeeze, 1×1 + 3×3 expand, concat).
pub fn squeezenet_like(seed: u64) -> Module {
    let (mut b, x) = CvBuilder::new("main", seed);
    let mut h = b.conv(x, 3, 24, 3, 1, 1);
    h = b.relu(h);
    let mut c = 24;
    for (squeeze, expand) in [(8usize, 16usize), (8, 16), (16, 32)] {
        // Squeeze.
        let s = b.conv(h, c, squeeze, 1, 1, 0);
        let s = b.relu(s);
        // Expand 1x1 and 3x3, concatenated on channels.
        let e1 = b.conv(s.clone(), squeeze, expand, 1, 1, 0);
        let e1 = b.relu(e1);
        let e3 = b.conv(s, squeeze, expand, 3, 1, 1);
        let e3 = b.relu(e3);
        h = b.fb.call(
            "concat",
            vec![e1, e3],
            Attrs::new().with("axis", AttrValue::Int(1)),
        );
        c = expand * 2;
    }
    let out = b.head(h, c, 10);
    b.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_core::{compile, CompileOptions, StaticGraph};
    use nimble_device::DeviceSet;
    use nimble_vm::{Object, VirtualMachine};
    use std::sync::Arc;

    #[test]
    fn all_models_compile_and_type_check() {
        for (name, module) in all_models(3) {
            let (exe, report) = compile(&module, &CompileOptions::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(exe.num_instructions() > 0, "{name}");
            // Static models need no shape functions at all.
            assert_eq!(report.memplan.shape_funcs, 0, "{name}");
            assert_eq!(report.memplan.dynamic_allocs, 0, "{name}");
        }
    }

    #[test]
    fn resnet_runs_end_to_end() {
        let module = resnet_like(1);
        let (exe, _) = compile(&module, &CompileOptions::default()).unwrap();
        let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let img = Tensor::rand_f32(&mut rng, &[1, 3, 32, 32], 1.0);
        let out = vm
            .run("main", vec![Object::tensor(img)])
            .unwrap()
            .wait_tensor()
            .unwrap();
        assert_eq!(out.dims(), &[1, 10]);
        assert!(out.as_f32().unwrap().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn static_graph_agrees_with_vm() {
        // The footprint comparison requires both runtimes on the same
        // model; verify they compute the same thing.
        let module = vgg_like(2);
        let (exe, _) = compile(&module, &CompileOptions::default()).unwrap();
        let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
        let graph = StaticGraph::compile(&module, true).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let img = Tensor::rand_f32(&mut rng, &[1, 3, 32, 32], 1.0);
        let a = vm
            .run("main", vec![Object::tensor(img.clone())])
            .unwrap()
            .wait_tensor()
            .unwrap();
        let b = graph.run(&[img]).unwrap();
        for (x, y) in a.as_f32().unwrap().iter().zip(b.as_f32().unwrap()) {
            assert!((x - y).abs() < 1e-4);
        }
    }
}
