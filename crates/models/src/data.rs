//! Host-side input encodings: token lists and binary trees as VM objects.

use nimble_tensor::Tensor;
use nimble_vm::object::{AdtObj, Object};
use std::sync::Arc;

/// Constructor tags for the built-in `List` ADT (declaration order in
/// [`nimble_ir::adt::TypeDef::list`]).
pub const NIL_TAG: u32 = 0;
/// `Cons` tag.
pub const CONS_TAG: u32 = 1;
/// `Leaf` tag of the built-in `Tree` ADT.
pub const LEAF_TAG: u32 = 0;
/// `Node` tag.
pub const NODE_TAG: u32 = 1;

/// Encode a token sequence as a `List` object (`Cons(t0, Cons(t1, … Nil))`).
pub fn list_object(tokens: &[Tensor]) -> Object {
    let mut list = Object::Adt(Arc::new(AdtObj {
        tag: NIL_TAG,
        fields: vec![],
    }));
    for t in tokens.iter().rev() {
        list = Object::Adt(Arc::new(AdtObj {
            tag: CONS_TAG,
            fields: vec![Object::tensor(t.clone()), list],
        }));
    }
    list
}

/// A host-side binary tree with tensor payloads at the leaves.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeNode {
    /// Leaf with an input embedding.
    Leaf(Tensor),
    /// Internal node with two children.
    Node(Box<TreeNode>, Box<TreeNode>),
}

impl TreeNode {
    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        match self {
            TreeNode::Leaf(_) => 1,
            TreeNode::Node(l, r) => l.num_leaves() + r.num_leaves(),
        }
    }

    /// Total number of nodes (leaves + internal).
    pub fn num_nodes(&self) -> usize {
        match self {
            TreeNode::Leaf(_) => 1,
            TreeNode::Node(l, r) => 1 + l.num_nodes() + r.num_nodes(),
        }
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        match self {
            TreeNode::Leaf(_) => 1,
            TreeNode::Node(l, r) => 1 + l.depth().max(r.depth()),
        }
    }

    /// Encode as a `Tree` VM object.
    pub fn to_object(&self) -> Object {
        match self {
            TreeNode::Leaf(t) => Object::Adt(Arc::new(AdtObj {
                tag: LEAF_TAG,
                fields: vec![Object::tensor(t.clone())],
            })),
            TreeNode::Node(l, r) => Object::Adt(Arc::new(AdtObj {
                tag: NODE_TAG,
                fields: vec![l.to_object(), r.to_object()],
            })),
        }
    }
}

/// Build a random binary tree with `leaves` leaf tensors drawn from
/// `make_leaf`, using `rng` for the split structure (SST-like random
/// parses).
pub fn random_tree<R: rand::Rng>(
    rng: &mut R,
    leaves: usize,
    make_leaf: &mut impl FnMut(&mut R) -> Tensor,
) -> TreeNode {
    assert!(leaves >= 1, "a tree needs at least one leaf");
    if leaves == 1 {
        return TreeNode::Leaf(make_leaf(rng));
    }
    let left = rng.gen_range(1..leaves);
    let l = random_tree(rng, left, make_leaf);
    let r = random_tree(rng, leaves - left, make_leaf);
    TreeNode::Node(Box::new(l), Box::new(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn list_encoding_structure() {
        let toks = vec![Tensor::scalar_f32(1.0), Tensor::scalar_f32(2.0)];
        let l = list_object(&toks);
        let adt = l.as_adt().unwrap();
        assert_eq!(adt.tag, CONS_TAG);
        assert_eq!(
            adt.fields[0]
                .wait_tensor()
                .unwrap()
                .scalar_value_f32()
                .unwrap(),
            1.0
        );
        let tail = adt.fields[1].as_adt().unwrap();
        assert_eq!(tail.tag, CONS_TAG);
        let nil = tail.fields[1].as_adt().unwrap();
        assert_eq!(nil.tag, NIL_TAG);
        // Empty list is Nil.
        assert_eq!(list_object(&[]).as_adt().unwrap().tag, NIL_TAG);
    }

    #[test]
    fn tree_stats() {
        let t = TreeNode::Node(
            Box::new(TreeNode::Leaf(Tensor::scalar_f32(0.0))),
            Box::new(TreeNode::Node(
                Box::new(TreeNode::Leaf(Tensor::scalar_f32(1.0))),
                Box::new(TreeNode::Leaf(Tensor::scalar_f32(2.0))),
            )),
        );
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.depth(), 3);
        let obj = t.to_object();
        assert_eq!(obj.as_adt().unwrap().tag, NODE_TAG);
    }

    #[test]
    fn random_tree_has_requested_leaves() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for leaves in 1..20 {
            let t = random_tree(&mut rng, leaves, &mut |_| Tensor::scalar_f32(0.0));
            assert_eq!(t.num_leaves(), leaves);
            assert_eq!(t.num_nodes(), 2 * leaves - 1);
        }
    }
}
