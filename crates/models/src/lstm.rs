//! LSTM over a recursive token list — the paper's *dynamic control flow*
//! workload (Section 6.1: input size 300, hidden size 512, 1 or 2 layers).
//!
//! The model is expressed exactly as a dynamic model should be: a
//! recursive IR function pattern-matching a `List` ADT, with the LSTM cell
//! inlined at each step. No static unrolling, no padding — the execution
//! path depends on the input length, which is what defeats static graph
//! compilers (Section 2).

use nimble_ir::adt::TypeDef;
use nimble_ir::attrs::{AttrValue, Attrs};
use nimble_ir::expr::{Clause, Expr, Function, Pattern};
use nimble_ir::types::{TensorType, Type};
use nimble_ir::{Module, Var};
use nimble_tensor::{kernels, DType, Tensor};
use rand::SeedableRng;

/// LSTM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LstmConfig {
    /// Input (embedding) size.
    pub input: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Number of stacked layers (1 or 2 in the paper's tables).
    pub layers: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for LstmConfig {
    /// The paper's configuration: input 300, hidden 512, one layer.
    fn default() -> Self {
        LstmConfig {
            input: 300,
            hidden: 512,
            layers: 1,
            seed: 42,
        }
    }
}

/// Weights of one LSTM layer (gates packed `[i, f, g, o]` along the output
/// dimension, framework-style).
#[derive(Debug, Clone)]
pub struct LstmLayer {
    /// Input-to-hidden weights `[4H, in]`.
    pub w_ih: Tensor,
    /// Hidden-to-hidden weights `[4H, H]`.
    pub w_hh: Tensor,
    /// Gate bias `[4H]`.
    pub bias: Tensor,
}

/// An initialized LSTM model.
#[derive(Debug, Clone)]
pub struct LstmModel {
    /// Configuration.
    pub config: LstmConfig,
    /// Per-layer weights.
    pub layers: Vec<LstmLayer>,
}

impl LstmModel {
    /// Initialize with seeded uniform weights.
    pub fn new(config: LstmConfig) -> LstmModel {
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let scale = 1.0 / (config.hidden as f32).sqrt();
        let mut layers = Vec::with_capacity(config.layers);
        for l in 0..config.layers {
            let in_size = if l == 0 { config.input } else { config.hidden };
            layers.push(LstmLayer {
                w_ih: Tensor::rand_f32(&mut rng, &[4 * config.hidden, in_size], scale),
                w_hh: Tensor::rand_f32(&mut rng, &[4 * config.hidden, config.hidden], scale),
                bias: Tensor::rand_f32(&mut rng, &[4 * config.hidden], scale),
            });
        }
        LstmModel { config, layers }
    }

    /// The element type stored in the input list: `Tensor[(1, input)]`.
    pub fn token_type(&self) -> Type {
        Type::Tensor(TensorType::new(&[1, self.config.input as u64], DType::F32))
    }

    fn state_type(&self) -> Type {
        Type::Tensor(TensorType::new(&[1, self.config.hidden as u64], DType::F32))
    }

    /// Build the IR module: a recursive `step` function over the list plus
    /// `main` seeding zero states.
    pub fn module(&self) -> Module {
        let mut m = Module::new();
        m.add_adt(TypeDef::list(self.token_type()));

        let n = self.config.layers;
        // step(xs, h_0, c_0, …, h_{n-1}, c_{n-1}) -> Tensor[(1, H)]
        let xs = Var::fresh("xs", Type::Adt("List".into()));
        let mut state_vars: Vec<Var> = Vec::new();
        for l in 0..n {
            state_vars.push(Var::fresh(&format!("h{l}"), self.state_type()));
            state_vars.push(Var::fresh(&format!("c{l}"), self.state_type()));
        }

        // Cons clause: run each layer's cell, then recurse.
        let x = Var::fresh("x", Type::Unknown);
        let rest = Var::fresh("rest", Type::Adt("List".into()));
        let mut bindings: Vec<(Var, Expr)> = Vec::new();
        let mut layer_input = x.to_expr();
        let mut new_states: Vec<Var> = Vec::new();
        for l in 0..n {
            let h = state_vars[2 * l].to_expr();
            let c = state_vars[2 * l + 1].to_expr();
            let (h_var, c_var, binds) = self.cell_bindings(l, layer_input.clone(), h, c);
            bindings.extend(binds);
            layer_input = h_var.to_expr();
            new_states.push(h_var);
            new_states.push(c_var);
        }
        let mut rec_args = vec![rest.to_expr()];
        rec_args.extend(new_states.iter().map(|v| v.to_expr()));
        let mut cons_body = Expr::call(Expr::global("step"), rec_args);
        for (v, e) in bindings.into_iter().rev() {
            cons_body = Expr::let_(v, e, cons_body);
        }

        let step_body = Expr::match_(
            xs.to_expr(),
            vec![
                Clause {
                    pattern: Pattern::Constructor {
                        name: "Nil".into(),
                        fields: vec![],
                    },
                    // Final top-layer hidden state.
                    body: state_vars[2 * (n - 1)].to_expr(),
                },
                Clause {
                    pattern: Pattern::Constructor {
                        name: "Cons".into(),
                        fields: vec![Pattern::Bind(x), Pattern::Bind(rest)],
                    },
                    body: cons_body,
                },
            ],
        );
        let mut step_params = vec![xs];
        step_params.extend(state_vars);
        m.add_function(
            "step",
            Function::new(step_params, step_body, self.state_type()),
        );

        // main(xs) = step(xs, zeros, zeros, …)
        let main_xs = Var::fresh("xs", Type::Adt("List".into()));
        let zero = Tensor::zeros(DType::F32, &[1, self.config.hidden]);
        let mut args = vec![main_xs.to_expr()];
        for _ in 0..2 * n {
            args.push(Expr::constant(zero.clone()));
        }
        let main_body = Expr::call(Expr::global("step"), args);
        m.add_function(
            "main",
            Function::new(vec![main_xs], main_body, self.state_type()),
        );
        m
    }

    /// [`LstmModel::module`] plus a batched entry point `main_b{L}` for
    /// every bucket edge in `edges` (see [`nimble_vm::batch`]).
    ///
    /// `main_bL(x, h0_0, c0_0, …)` takes the whole padded batch as one
    /// tensor `x: Tensor[(Any, L·input)]` — row `i` is request `i`'s
    /// tokens concatenated and right-padded with zeros — plus host-fed
    /// zero initial states `Tensor[(Any, H)]` per layer (in-graph
    /// constants cannot carry a dynamic batch dim). The body unrolls `L`
    /// steps of the same cell the recursive `step` uses and returns a
    /// tuple of the top layer's hidden state after every step, so the
    /// scatter side can pick element `len_i − 1` for each request. Row
    /// trajectories are independent (every op is row-local), which is
    /// what makes the batched rows bitwise-identical to unbatched runs.
    pub fn module_batched(&self, edges: &[usize]) -> Module {
        let mut m = self.module();
        for &edge in edges {
            self.add_batched_entry(&mut m, edge);
        }
        m
    }

    fn add_batched_entry(&self, m: &mut Module, steps: usize) {
        assert!(steps >= 1, "bucket edges start at 1");
        let n = self.config.layers;
        let batch_state = Type::Tensor(TensorType::with_any(
            &[None, Some(self.config.hidden as u64)],
            DType::F32,
        ));
        let x = Var::fresh(
            "x",
            Type::Tensor(TensorType::with_any(
                &[None, Some((steps * self.config.input) as u64)],
                DType::F32,
            )),
        );
        let mut params = vec![x.clone()];
        for l in 0..n {
            params.push(Var::fresh(&format!("h{l}"), batch_state.clone()));
            params.push(Var::fresh(&format!("c{l}"), batch_state.clone()));
        }

        let mut bindings: Vec<(Var, Expr)> = Vec::new();
        let split_var = Var::fresh("xs", Type::Unknown);
        bindings.push((
            split_var.clone(),
            Expr::call_op(
                "split",
                vec![x.to_expr()],
                Attrs::new()
                    .with("parts", AttrValue::Int(steps as i64))
                    .with("axis", AttrValue::Int(1)),
            ),
        ));
        // states[l] = (h, c) expressions, starting at the parameters.
        let mut states: Vec<(Expr, Expr)> = (0..n)
            .map(|l| (params[1 + 2 * l].to_expr(), params[2 + 2 * l].to_expr()))
            .collect();
        let mut step_hs: Vec<Expr> = Vec::with_capacity(steps);
        for t in 0..steps {
            let mut layer_input = Expr::tuple_get(split_var.to_expr(), t);
            for (l, state) in states.iter_mut().enumerate() {
                let (h_var, c_var, binds) =
                    self.cell_bindings(l, layer_input, state.0.clone(), state.1.clone());
                bindings.extend(binds);
                layer_input = h_var.to_expr();
                *state = (h_var.to_expr(), c_var.to_expr());
            }
            step_hs.push(states[n - 1].0.clone());
        }
        let mut body = Expr::tuple(step_hs);
        for (v, e) in bindings.into_iter().rev() {
            body = Expr::let_(v, e, body);
        }
        m.add_function(
            &nimble_vm::batch::entry_name("main", steps),
            Function::new(params, body, Type::Unknown),
        );
    }

    /// The dynamic-batching plan pairing [`LstmModel::module_batched`]'s
    /// entry points with host-side gather/scatter. The shape key is the
    /// token-list length; empty lists run unbatched.
    pub fn batch_plan(&self, config: nimble_vm::BatchConfig) -> nimble_vm::BatchPlan {
        use crate::data::{CONS_TAG, NIL_TAG};
        let input = self.config.input;
        let hidden = self.config.hidden;
        let layers = self.config.layers;
        let list_len = |o: &nimble_vm::Object| -> Option<usize> {
            let mut len = 0usize;
            let mut cur = o.clone();
            loop {
                let adt = cur.as_adt().ok()?;
                match adt.tag {
                    NIL_TAG => return Some(len),
                    CONS_TAG => {
                        len += 1;
                        cur = adt.fields[1].clone();
                    }
                    _ => return None,
                }
            }
        };
        nimble_vm::BatchPlan {
            function: "main".to_string(),
            config,
            key: std::sync::Arc::new(move |args| match args {
                [xs] => list_len(xs).filter(|&l| l > 0),
                _ => None,
            }),
            gather: std::sync::Arc::new(move |members, keys, bucket| {
                let b = members.len();
                let mut x = vec![0f32; b * bucket * input];
                for (i, args) in members.iter().enumerate() {
                    let mut cur = args[0].clone();
                    let mut t = 0usize;
                    while let Ok(adt) = cur.as_adt() {
                        if adt.tag != CONS_TAG {
                            break;
                        }
                        let tok = adt.fields[0].wait_tensor()?;
                        let row = tok.as_f32()?;
                        let at = i * bucket * input + t * input;
                        x[at..at + input].copy_from_slice(row);
                        t += 1;
                        cur = adt.fields[1].clone();
                    }
                    debug_assert_eq!(t, keys[i]);
                }
                let mut out = vec![nimble_vm::Object::tensor(Tensor::from_vec_f32(
                    x,
                    &[b, bucket * input],
                )?)];
                for _ in 0..layers {
                    let zero = Tensor::zeros(DType::F32, &[b, hidden]);
                    out.push(nimble_vm::Object::tensor(zero.clone()));
                    out.push(nimble_vm::Object::tensor(zero));
                }
                Ok(out)
            }),
            scatter: std::sync::Arc::new(move |result, keys, _bucket| {
                let steps = result.as_adt()?;
                keys.iter()
                    .enumerate()
                    .map(|(i, &s)| {
                        let h = steps.fields[s - 1].wait_tensor()?;
                        let row = kernels::slice_axis(&h, 0, i, i + 1)?;
                        Ok(nimble_vm::Object::tensor(row))
                    })
                    .collect()
            }),
        }
    }

    /// Cell as explicit bindings, returning the new (h, c) variables.
    fn cell_bindings(
        &self,
        layer: usize,
        x: Expr,
        h: Expr,
        c: Expr,
    ) -> (Var, Var, Vec<(Var, Expr)>) {
        let p = &self.layers[layer];
        let mut binds = Vec::new();
        let gates_var = Var::fresh("gates", Type::Unknown);
        binds.push((
            gates_var.clone(),
            Expr::call_op(
                "add",
                vec![
                    Expr::call_op(
                        "add",
                        vec![
                            Expr::call_op(
                                "dense",
                                vec![x, Expr::constant(p.w_ih.clone())],
                                Attrs::new(),
                            ),
                            Expr::call_op(
                                "dense",
                                vec![h, Expr::constant(p.w_hh.clone())],
                                Attrs::new(),
                            ),
                        ],
                        Attrs::new(),
                    ),
                    Expr::constant(p.bias.clone()),
                ],
                Attrs::new(),
            ),
        ));
        let split_var = Var::fresh("parts", Type::Unknown);
        binds.push((
            split_var.clone(),
            Expr::call_op(
                "split",
                vec![gates_var.to_expr()],
                Attrs::new()
                    .with("parts", AttrValue::Int(4))
                    .with("axis", AttrValue::Int(1)),
            ),
        ));
        let gate = |i: usize, f: &str| {
            Expr::call_op(
                f,
                vec![Expr::tuple_get(split_var.to_expr(), i)],
                Attrs::new(),
            )
        };
        let c_var = Var::fresh("c_new", Type::Unknown);
        binds.push((
            c_var.clone(),
            Expr::call_op(
                "add",
                vec![
                    Expr::call_op("mul", vec![gate(1, "sigmoid"), c], Attrs::new()),
                    Expr::call_op(
                        "mul",
                        vec![gate(0, "sigmoid"), gate(2, "tanh")],
                        Attrs::new(),
                    ),
                ],
                Attrs::new(),
            ),
        ));
        let h_var = Var::fresh("h_new", Type::Unknown);
        binds.push((
            h_var.clone(),
            Expr::call_op(
                "mul",
                vec![
                    gate(3, "sigmoid"),
                    Expr::call_op("tanh", vec![c_var.to_expr()], Attrs::new()),
                ],
                Attrs::new(),
            ),
        ));
        (h_var, c_var, binds)
    }

    /// One cell step with plain kernels (reference semantics).
    ///
    /// # Panics
    /// Panics on shape mismatches — weights and inputs come from this
    /// model, so mismatches are programming errors.
    pub fn cell_reference(
        &self,
        layer: usize,
        x: &Tensor,
        h: &Tensor,
        c: &Tensor,
    ) -> (Tensor, Tensor) {
        let p = &self.layers[layer];
        let gates = kernels::add(
            &kernels::add(
                &kernels::dense(x, &p.w_ih, None).expect("dense x"),
                &kernels::dense(h, &p.w_hh, None).expect("dense h"),
            )
            .expect("add"),
            &p.bias,
        )
        .expect("bias");
        let parts = kernels::split(&gates, 4, 1).expect("split");
        let i = kernels::sigmoid(&parts[0]).expect("i");
        let f = kernels::sigmoid(&parts[1]).expect("f");
        let g = kernels::tanh(&parts[2]).expect("g");
        let o = kernels::sigmoid(&parts[3]).expect("o");
        let c_new = kernels::add(
            &kernels::mul(&f, c).expect("f*c"),
            &kernels::mul(&i, &g).expect("i*g"),
        )
        .expect("c'");
        let h_new = kernels::mul(&o, &kernels::tanh(&c_new).expect("tanh c'")).expect("h'");
        (h_new, c_new)
    }

    /// Full-sequence reference forward pass: returns the top layer's final
    /// hidden state.
    pub fn reference(&self, tokens: &[Tensor]) -> Tensor {
        let zero = Tensor::zeros(DType::F32, &[1, self.config.hidden]);
        let mut states: Vec<(Tensor, Tensor)> = vec![(zero.clone(), zero); self.config.layers];
        for t in tokens {
            let mut input = t.clone();
            for (l, state) in states.iter_mut().enumerate() {
                let (h, c) = self.cell_reference(l, &input, &state.0, &state.1);
                input = h.clone();
                *state = (h, c);
            }
        }
        states[self.config.layers - 1].0.clone()
    }

    /// Random token sequence for testing/benchmarks.
    pub fn random_tokens<R: rand::Rng>(&self, rng: &mut R, len: usize) -> Vec<Tensor> {
        (0..len)
            .map(|_| Tensor::rand_f32(rng, &[1, self.config.input], 1.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::list_object;
    use nimble_core::{compile, CompileOptions};
    use nimble_device::DeviceSet;
    use nimble_vm::VirtualMachine;
    use std::sync::Arc;

    fn tiny() -> LstmConfig {
        LstmConfig {
            input: 6,
            hidden: 8,
            layers: 1,
            seed: 1,
        }
    }

    #[test]
    fn module_type_checks_and_compiles() {
        let model = LstmModel::new(tiny());
        let module = model.module();
        let (exe, report) = compile(&module, &CompileOptions::default()).unwrap();
        assert!(exe.functions.len() >= 2);
        assert!(!report.fusion_groups.is_empty(), "cells fuse");
    }

    #[test]
    fn vm_matches_reference() {
        let model = LstmModel::new(tiny());
        let module = model.module();
        let (exe, _) = compile(&module, &CompileOptions::default()).unwrap();
        let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for len in [1usize, 2, 5, 9] {
            let tokens = model.random_tokens(&mut rng, len);
            let out = vm
                .run("main", vec![list_object(&tokens)])
                .unwrap()
                .wait_tensor()
                .unwrap();
            let want = model.reference(&tokens);
            assert_eq!(out.dims(), want.dims());
            for (a, b) in out.as_f32().unwrap().iter().zip(want.as_f32().unwrap()) {
                assert!((a - b).abs() < 1e-4, "len {len}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn empty_sequence_returns_zero_state() {
        let model = LstmModel::new(tiny());
        let (exe, _) = compile(&model.module(), &CompileOptions::default()).unwrap();
        let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
        let out = vm
            .run("main", vec![list_object(&[])])
            .unwrap()
            .wait_tensor()
            .unwrap();
        assert!(out.as_f32().unwrap().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn two_layer_matches_reference() {
        let model = LstmModel::new(LstmConfig {
            layers: 2,
            ..tiny()
        });
        let (exe, _) = compile(&model.module(), &CompileOptions::default()).unwrap();
        let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let tokens = model.random_tokens(&mut rng, 4);
        let out = vm
            .run("main", vec![list_object(&tokens)])
            .unwrap()
            .wait_tensor()
            .unwrap();
        let want = model.reference(&tokens);
        for (a, b) in out.as_f32().unwrap().iter().zip(want.as_f32().unwrap()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn batched_entry_bitwise_matches_unbatched() {
        let model = LstmModel::new(LstmConfig {
            layers: 2,
            ..tiny()
        });
        let module = model.module_batched(&[4]);
        let (exe, _) = compile(&module, &CompileOptions::default()).unwrap();
        let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
        let plan = model.batch_plan(nimble_vm::BatchConfig {
            buckets: vec![4],
            ..nimble_vm::BatchConfig::default()
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let lens = [2usize, 4, 1];
        let members: Vec<Vec<nimble_vm::Object>> = lens
            .iter()
            .map(|&l| vec![list_object(&model.random_tokens(&mut rng, l))])
            .collect();
        let keys: Vec<usize> = members
            .iter()
            .map(|m| (plan.key)(m).expect("key"))
            .collect();
        assert_eq!(keys, lens);
        assert_eq!(plan.bucket_of(&members[0]), Some(4));
        let batched = (plan.gather)(&members, &keys, 4).unwrap();
        let out = vm.run(&plan.entry(4), batched).unwrap();
        let scattered = (plan.scatter)(&out, &keys, 4).unwrap();
        for (member, obj) in members.iter().zip(&scattered) {
            let got = obj.wait_tensor().unwrap();
            let want = vm
                .run("main", member.clone())
                .unwrap()
                .wait_tensor()
                .unwrap();
            assert_eq!(got.dims(), want.dims());
            for (a, b) in got.as_f32().unwrap().iter().zip(want.as_f32().unwrap()) {
                assert_eq!(a.to_bits(), b.to_bits(), "batched output not bitwise equal");
            }
        }
    }

    #[test]
    fn empty_list_key_is_none() {
        let model = LstmModel::new(tiny());
        let plan = model.batch_plan(nimble_vm::BatchConfig::default());
        assert_eq!((plan.key)(&[list_object(&[])]), None);
    }

    #[test]
    fn cell_gates_bounded() {
        let model = LstmModel::new(tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let x = Tensor::rand_f32(&mut rng, &[1, 6], 1.0);
        let h = Tensor::zeros(DType::F32, &[1, 8]);
        let c = Tensor::zeros(DType::F32, &[1, 8]);
        let (h2, c2) = model.cell_reference(0, &x, &h, &c);
        // h = o * tanh(c) is bounded by 1 in magnitude.
        assert!(h2.as_f32().unwrap().iter().all(|v| v.abs() <= 1.0));
        assert_eq!(c2.dims(), &[1, 8]);
    }
}
