//! BERT encoder with a dynamic sequence length — the paper's *dynamic
//! shape* workload (Section 6.1).
//!
//! The model input is a token-id tensor of type `Tensor[(Any,), i64]`; the
//! sequence length flows through embeddings, attention, and feed-forward
//! layers as an `Any` dimension, exercising shape functions and symbolic
//! dense codegen end to end.
//!
//! **Substitution note** (see DESIGN.md): the default configuration is a
//! reduced encoder (4 layers, hidden 128) so that the naive-Rust kernel
//! substrate keeps the paper's sweep tractable; `BertConfig::base()` gives
//! the paper's BERT-base sizes.

use nimble_ir::attrs::{AttrValue, Attrs};
use nimble_ir::expr::{Expr, Function};
use nimble_ir::types::{TensorType, Type};
use nimble_ir::{Module, Var};
use nimble_tensor::{kernels, DType, Tensor};
use rand::SeedableRng;

/// BERT encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BertConfig {
    /// Number of transformer layers.
    pub layers: usize,
    /// Hidden size (must divide evenly by `heads`).
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward inner size.
    pub ffn: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum position (positional-embedding table size).
    pub max_pos: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for BertConfig {
    /// Reduced configuration used by the benchmarks (documented
    /// substitution for BERT-base).
    fn default() -> Self {
        BertConfig {
            layers: 4,
            hidden: 128,
            heads: 4,
            ffn: 512,
            vocab: 1000,
            max_pos: 512,
            seed: 42,
        }
    }
}

impl BertConfig {
    /// The paper's BERT-base sizes (slow on the naive substrate; provided
    /// for completeness).
    pub fn base() -> BertConfig {
        BertConfig {
            layers: 12,
            hidden: 768,
            heads: 12,
            ffn: 3072,
            vocab: 30522,
            max_pos: 512,
            seed: 42,
        }
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }
}

/// One transformer layer's weights.
#[derive(Debug, Clone)]
pub struct BertLayer {
    /// Query projection `[H, H]` (+ bias `[H]`).
    pub wq: Tensor,
    /// Query bias.
    pub bq: Tensor,
    /// Key projection.
    pub wk: Tensor,
    /// Key bias.
    pub bk: Tensor,
    /// Value projection.
    pub wv: Tensor,
    /// Value bias.
    pub bv: Tensor,
    /// Output projection.
    pub wo: Tensor,
    /// Output bias.
    pub bo: Tensor,
    /// Post-attention layer-norm gamma/beta.
    pub ln1: (Tensor, Tensor),
    /// FFN first dense `[ffn, H]` + bias.
    pub w1: Tensor,
    /// FFN first bias.
    pub b1: Tensor,
    /// FFN second dense `[H, ffn]` + bias.
    pub w2: Tensor,
    /// FFN second bias.
    pub b2: Tensor,
    /// Post-FFN layer-norm gamma/beta.
    pub ln2: (Tensor, Tensor),
}

/// An initialized BERT encoder.
#[derive(Debug, Clone)]
pub struct BertModel {
    /// Configuration.
    pub config: BertConfig,
    /// Token-embedding table `[vocab, H]`.
    pub embed: Tensor,
    /// Positional-embedding table `[max_pos, H]`.
    pub pos_embed: Tensor,
    /// Transformer layers.
    pub layers: Vec<BertLayer>,
}

impl BertModel {
    /// Initialize with seeded uniform weights.
    pub fn new(config: BertConfig) -> BertModel {
        assert_eq!(
            config.hidden % config.heads,
            0,
            "hidden must divide by heads"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let h = config.hidden;
        let scale = 1.0 / (h as f32).sqrt();
        let mut mk = |r: usize, c: usize| Tensor::rand_f32(&mut rng, &[r, c], scale);
        let embed = mk(config.vocab, h);
        let pos_embed = mk(config.max_pos, h);
        let mut layers = Vec::with_capacity(config.layers);
        for _ in 0..config.layers {
            layers.push(BertLayer {
                wq: mk(h, h),
                bq: mk(h, 1).reshaped(&[h]).expect("bias reshape"),
                wk: mk(h, h),
                bk: mk(h, 1).reshaped(&[h]).expect("bias reshape"),
                wv: mk(h, h),
                bv: mk(h, 1).reshaped(&[h]).expect("bias reshape"),
                wo: mk(h, h),
                bo: mk(h, 1).reshaped(&[h]).expect("bias reshape"),
                ln1: (Tensor::ones_f32(&[h]), Tensor::zeros(DType::F32, &[h])),
                w1: mk(config.ffn, h),
                b1: mk(config.ffn, 1)
                    .reshaped(&[config.ffn])
                    .expect("bias reshape"),
                w2: mk(h, config.ffn),
                b2: mk(h, 1).reshaped(&[h]).expect("bias reshape"),
                ln2: (Tensor::ones_f32(&[h]), Tensor::zeros(DType::F32, &[h])),
            });
        }
        BertModel {
            config,
            embed,
            pos_embed,
            layers,
        }
    }

    /// Attention + FFN block as IR over `x: Tensor[(Any, H)]`.
    fn layer_ir(&self, l: usize, x: Expr) -> Expr {
        let cfg = &self.config;
        let p = &self.layers[l];
        let heads = cfg.heads as i64;
        let dh = cfg.head_dim() as i64;
        let h = cfg.hidden as i64;
        let dense = |input: Expr, w: &Tensor, b: &Tensor| {
            Expr::call_op(
                "dense",
                vec![input, Expr::constant(w.clone()), Expr::constant(b.clone())],
                Attrs::new(),
            )
        };
        let reshape = |input: Expr, shape: Vec<i64>| {
            Expr::call_op(
                "reshape",
                vec![input],
                Attrs::new().with("newshape", AttrValue::IntVec(shape)),
            )
        };
        let transpose = |input: Expr, perm: Vec<i64>| {
            Expr::call_op(
                "transpose",
                vec![input],
                Attrs::new().with("perm", AttrValue::IntVec(perm)),
            )
        };

        let q = dense(x.clone(), &p.wq, &p.bq);
        let k = dense(x.clone(), &p.wk, &p.bk);
        let v = dense(x.clone(), &p.wv, &p.bv);
        // [s, H] -> [heads, s, dh] (queries/values) and [heads, dh, s]
        // (keys).
        let qh = transpose(reshape(q, vec![-1, heads, dh]), vec![1, 0, 2]);
        let kh = transpose(reshape(k, vec![-1, heads, dh]), vec![1, 2, 0]);
        let vh = transpose(reshape(v, vec![-1, heads, dh]), vec![1, 0, 2]);
        let scale = Expr::constant(Tensor::scalar_f32(1.0 / (dh as f32).sqrt()));
        let scores = Expr::call_op(
            "mul",
            vec![
                Expr::call_op("batch_matmul", vec![qh, kh], Attrs::new()),
                scale,
            ],
            Attrs::new(),
        );
        let probs = Expr::call_op("softmax", vec![scores], Attrs::new());
        let ctx = Expr::call_op("batch_matmul", vec![probs, vh], Attrs::new());
        let merged = reshape(transpose(ctx, vec![1, 0, 2]), vec![-1, h]);
        let attn = dense(merged, &p.wo, &p.bo);
        let x1 = Expr::call_op(
            "layer_norm",
            vec![
                Expr::call_op("add", vec![x, attn], Attrs::new()),
                Expr::constant(p.ln1.0.clone()),
                Expr::constant(p.ln1.1.clone()),
            ],
            Attrs::new().with("eps", AttrValue::Float(1e-5)),
        );
        let ffn = dense(
            Expr::call_op("gelu", vec![dense(x1.clone(), &p.w1, &p.b1)], Attrs::new()),
            &p.w2,
            &p.b2,
        );
        Expr::call_op(
            "layer_norm",
            vec![
                Expr::call_op("add", vec![x1, ffn], Attrs::new()),
                Expr::constant(p.ln2.0.clone()),
                Expr::constant(p.ln2.1.clone()),
            ],
            Attrs::new().with("eps", AttrValue::Float(1e-5)),
        )
    }

    /// Build the IR module: `main(tokens, positions) -> Tensor[(Any, H)]`.
    ///
    /// Positions are supplied by the host (`0..len`), standing in for an
    /// in-graph `arange` on the sequence length.
    pub fn module(&self) -> Module {
        self.module_with(None)
    }

    /// Build a fully static module for a fixed sequence length — the input
    /// to the TVM-style static baseline of Table 4.
    pub fn module_static(&self, len: usize) -> Module {
        self.module_with(Some(len))
    }

    fn module_with(&self, len: Option<usize>) -> Module {
        let seq_dim = len.map(|l| l as u64);
        let tokens = Var::fresh(
            "tokens",
            Type::Tensor(TensorType::with_any(&[seq_dim], DType::I64)),
        );
        let positions = Var::fresh(
            "positions",
            Type::Tensor(TensorType::with_any(&[seq_dim], DType::I64)),
        );
        let mut x = Expr::call_op(
            "add",
            vec![
                Expr::call_op(
                    "take",
                    vec![Expr::constant(self.embed.clone()), tokens.to_expr()],
                    Attrs::new(),
                ),
                Expr::call_op(
                    "take",
                    vec![Expr::constant(self.pos_embed.clone()), positions.to_expr()],
                    Attrs::new(),
                ),
            ],
            Attrs::new(),
        );
        for l in 0..self.config.layers {
            x = self.layer_ir(l, x);
        }
        let mut m = Module::new();
        m.add_function(
            "main",
            Function::new(vec![tokens, positions], x, Type::Unknown),
        );
        m
    }

    /// [`BertModel::module`] plus a batched entry point `main_b{L}` for
    /// every bucket edge (see [`nimble_vm::batch`]).
    ///
    /// `main_bL(tokens, positions, mask)` flattens the whole padded
    /// batch: `tokens`/`positions` are `Tensor[(Any,), i64]` of length
    /// `b·L` (pad id/position 0), and `mask: Tensor[(Any, L, L)]` holds
    /// one `[L, L]` additive attention mask per `(request, head)` pair —
    /// `-0.0` on real key columns (adding `-0.0` is a bitwise no-op) and
    /// `-inf` on padded ones (`exp(-inf) = +0.0` drops out of the
    /// softmax). The mask add is the only structural difference from the
    /// unbatched graph, which keeps each request's rows bitwise-identical
    /// to its own unbatched run.
    pub fn module_batched(&self, edges: &[usize]) -> Module {
        let mut m = self.module_with(None);
        for &edge in edges {
            self.add_batched_entry(&mut m, edge);
        }
        m
    }

    fn add_batched_entry(&self, m: &mut Module, bucket: usize) {
        assert!(bucket >= 1, "bucket edges start at 1");
        let tokens = Var::fresh(
            "tokens",
            Type::Tensor(TensorType::with_any(&[None], DType::I64)),
        );
        let positions = Var::fresh(
            "positions",
            Type::Tensor(TensorType::with_any(&[None], DType::I64)),
        );
        let mask = Var::fresh(
            "mask",
            Type::Tensor(TensorType::with_any(
                &[None, Some(bucket as u64), Some(bucket as u64)],
                DType::F32,
            )),
        );
        let mut x = Expr::call_op(
            "add",
            vec![
                Expr::call_op(
                    "take",
                    vec![Expr::constant(self.embed.clone()), tokens.to_expr()],
                    Attrs::new(),
                ),
                Expr::call_op(
                    "take",
                    vec![Expr::constant(self.pos_embed.clone()), positions.to_expr()],
                    Attrs::new(),
                ),
            ],
            Attrs::new(),
        );
        for l in 0..self.config.layers {
            x = self.layer_ir_batched(l, x, mask.to_expr(), bucket);
        }
        m.add_function(
            &nimble_vm::batch::entry_name("main", bucket),
            Function::new(vec![tokens, positions, mask], x, Type::Unknown),
        );
    }

    /// Batched attention + FFN block over `x: Tensor[(b·L, H)]`: identical
    /// to [`BertModel::layer_ir`] except heads are split per request
    /// (`[b·heads, L, ·]` batch dims) and the padded-key mask is added to
    /// the scaled scores before the softmax.
    fn layer_ir_batched(&self, l: usize, x: Expr, mask: Expr, bucket: usize) -> Expr {
        let cfg = &self.config;
        let p = &self.layers[l];
        let heads = cfg.heads as i64;
        let dh = cfg.head_dim() as i64;
        let h = cfg.hidden as i64;
        let lb = bucket as i64;
        let dense = |input: Expr, w: &Tensor, b: &Tensor| {
            Expr::call_op(
                "dense",
                vec![input, Expr::constant(w.clone()), Expr::constant(b.clone())],
                Attrs::new(),
            )
        };
        let reshape = |input: Expr, shape: Vec<i64>| {
            Expr::call_op(
                "reshape",
                vec![input],
                Attrs::new().with("newshape", AttrValue::IntVec(shape)),
            )
        };
        let transpose = |input: Expr, perm: Vec<i64>| {
            Expr::call_op(
                "transpose",
                vec![input],
                Attrs::new().with("perm", AttrValue::IntVec(perm)),
            )
        };

        let q = dense(x.clone(), &p.wq, &p.bq);
        let k = dense(x.clone(), &p.wk, &p.bk);
        let v = dense(x.clone(), &p.wv, &p.bv);
        // [bL, H] -> [b, heads, L, dh] -> [b·heads, L, dh] (queries /
        // values) and [b·heads, dh, L] (keys).
        let split_qv = |t: Expr| {
            reshape(
                transpose(reshape(t, vec![-1, lb, heads, dh]), vec![0, 2, 1, 3]),
                vec![-1, lb, dh],
            )
        };
        let qh = split_qv(q);
        let vh = split_qv(v);
        let kh = reshape(
            transpose(reshape(k, vec![-1, lb, heads, dh]), vec![0, 2, 3, 1]),
            vec![-1, dh, lb],
        );
        let scale = Expr::constant(Tensor::scalar_f32(1.0 / (dh as f32).sqrt()));
        let scores = Expr::call_op(
            "mul",
            vec![
                Expr::call_op("batch_matmul", vec![qh, kh], Attrs::new()),
                scale,
            ],
            Attrs::new(),
        );
        let masked = Expr::call_op("add", vec![scores, mask], Attrs::new());
        let probs = Expr::call_op("softmax", vec![masked], Attrs::new());
        let ctx = Expr::call_op("batch_matmul", vec![probs, vh], Attrs::new());
        let merged = reshape(
            transpose(reshape(ctx, vec![-1, heads, lb, dh]), vec![0, 2, 1, 3]),
            vec![-1, h],
        );
        let attn = dense(merged, &p.wo, &p.bo);
        let x1 = Expr::call_op(
            "layer_norm",
            vec![
                Expr::call_op("add", vec![x, attn], Attrs::new()),
                Expr::constant(p.ln1.0.clone()),
                Expr::constant(p.ln1.1.clone()),
            ],
            Attrs::new().with("eps", AttrValue::Float(1e-5)),
        );
        let ffn = dense(
            Expr::call_op("gelu", vec![dense(x1.clone(), &p.w1, &p.b1)], Attrs::new()),
            &p.w2,
            &p.b2,
        );
        Expr::call_op(
            "layer_norm",
            vec![
                Expr::call_op("add", vec![x1, ffn], Attrs::new()),
                Expr::constant(p.ln2.0.clone()),
                Expr::constant(p.ln2.1.clone()),
            ],
            Attrs::new().with("eps", AttrValue::Float(1e-5)),
        )
    }

    /// The dynamic-batching plan pairing [`BertModel::module_batched`]'s
    /// entry points with host-side gather/scatter. The shape key is the
    /// token count; empty sequences run unbatched.
    pub fn batch_plan(&self, config: nimble_vm::BatchConfig) -> nimble_vm::BatchPlan {
        let heads = self.config.heads;
        nimble_vm::BatchPlan {
            function: "main".to_string(),
            config,
            key: std::sync::Arc::new(|args| match args {
                [tokens, _positions] => {
                    let dims = tokens.tensor_shape().ok()?;
                    (dims.len() == 1 && dims[0] > 0).then(|| dims[0])
                }
                _ => None,
            }),
            gather: std::sync::Arc::new(move |members, keys, bucket| {
                let b = members.len();
                let mut tok = vec![0i64; b * bucket];
                let mut pos = vec![0i64; b * bucket];
                let mut mask = vec![f32::NEG_INFINITY; b * heads * bucket * bucket];
                for (i, args) in members.iter().enumerate() {
                    let t = args[0].wait_tensor()?;
                    let p = args[1].wait_tensor()?;
                    let s = keys[i];
                    tok[i * bucket..i * bucket + s].copy_from_slice(t.as_i64()?);
                    pos[i * bucket..i * bucket + s].copy_from_slice(p.as_i64()?);
                    // One [L, L] mask per head: -0.0 on real key columns
                    // (a bitwise no-op under addition), -inf on padded
                    // ones. Query rows past `s` are garbage by design —
                    // scatter never reads them.
                    for hd in 0..heads {
                        let base = (i * heads + hd) * bucket * bucket;
                        for q in 0..bucket {
                            let row = base + q * bucket;
                            mask[row..row + s].fill(-0.0);
                        }
                    }
                }
                Ok(vec![
                    nimble_vm::Object::tensor(Tensor::from_vec_i64(tok, &[b * bucket])?),
                    nimble_vm::Object::tensor(Tensor::from_vec_i64(pos, &[b * bucket])?),
                    nimble_vm::Object::tensor(Tensor::from_vec_f32(
                        mask,
                        &[b * heads, bucket, bucket],
                    )?),
                ])
            }),
            scatter: std::sync::Arc::new(|result, keys, bucket| {
                let out = result.wait_tensor()?;
                keys.iter()
                    .enumerate()
                    .map(|(i, &s)| {
                        let rows = kernels::slice_axis(&out, 0, i * bucket, i * bucket + s)?;
                        Ok(nimble_vm::Object::tensor(rows))
                    })
                    .collect()
            }),
        }
    }

    /// Reference forward pass with plain kernels.
    ///
    /// # Panics
    /// Panics on out-of-vocabulary ids (inputs come from
    /// [`BertModel::random_tokens`]).
    pub fn reference(&self, token_ids: &[i64]) -> Tensor {
        let s = token_ids.len();
        let tok = Tensor::from_vec_i64(token_ids.to_vec(), &[s]).expect("token tensor");
        let pos = Tensor::from_vec_i64((0..s as i64).collect(), &[s]).expect("pos tensor");
        let mut x = kernels::add(
            &kernels::take(&self.embed, &tok).expect("tok embed"),
            &kernels::take(&self.pos_embed, &pos).expect("pos embed"),
        )
        .expect("embed sum");
        for p in &self.layers {
            x = self.layer_reference(p, &x);
        }
        x
    }

    fn layer_reference(&self, p: &BertLayer, x: &Tensor) -> Tensor {
        let cfg = &self.config;
        let s = x.dims()[0];
        let (heads, dh, h) = (cfg.heads, cfg.head_dim(), cfg.hidden);
        let proj = |w: &Tensor, b: &Tensor| kernels::dense(x, w, Some(b)).expect("proj");
        let split_heads = |t: &Tensor, perm: &[usize]| {
            kernels::transpose(&t.reshaped(&[s, heads, dh]).expect("reshape"), perm)
                .expect("transpose")
        };
        let q = split_heads(&proj(&p.wq, &p.bq), &[1, 0, 2]);
        let k = split_heads(&proj(&p.wk, &p.bk), &[1, 2, 0]);
        let v = split_heads(&proj(&p.wv, &p.bv), &[1, 0, 2]);
        let scores = kernels::mul(
            &kernels::batch_matmul(&q, &k).expect("qk"),
            &Tensor::scalar_f32(1.0 / (dh as f32).sqrt()),
        )
        .expect("scale");
        let probs = kernels::softmax(&scores).expect("softmax");
        let ctx = kernels::batch_matmul(&probs, &v).expect("pv");
        let merged = kernels::transpose(&ctx, &[1, 0, 2])
            .expect("merge transpose")
            .reshaped(&[s, h])
            .expect("merge reshape");
        let attn = kernels::dense(&merged, &p.wo, Some(&p.bo)).expect("wo");
        let x1 = kernels::layer_norm(
            &kernels::add(x, &attn).expect("residual 1"),
            &p.ln1.0,
            &p.ln1.1,
            1e-5,
        )
        .expect("ln1");
        let ffn = kernels::dense(
            &kernels::gelu(&kernels::dense(&x1, &p.w1, Some(&p.b1)).expect("w1")).expect("gelu"),
            &p.w2,
            Some(&p.b2),
        )
        .expect("w2");
        kernels::layer_norm(
            &kernels::add(&x1, &ffn).expect("residual 2"),
            &p.ln2.0,
            &p.ln2.1,
            1e-5,
        )
        .expect("ln2")
    }

    /// Random token ids of a given length.
    pub fn random_tokens<R: rand::Rng>(&self, rng: &mut R, len: usize) -> Vec<i64> {
        (0..len)
            .map(|_| rng.gen_range(0..self.config.vocab as i64))
            .collect()
    }

    /// Host-side model inputs `(tokens, positions)` for a sequence.
    pub fn inputs(&self, token_ids: &[i64]) -> (Tensor, Tensor) {
        let s = token_ids.len();
        (
            Tensor::from_vec_i64(token_ids.to_vec(), &[s]).expect("tokens"),
            Tensor::from_vec_i64((0..s as i64).collect(), &[s]).expect("positions"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_core::{compile, CompileOptions};
    use nimble_device::DeviceSet;
    use nimble_vm::{Object, VirtualMachine};
    use std::sync::Arc;

    fn tiny() -> BertConfig {
        BertConfig {
            layers: 2,
            hidden: 8,
            heads: 2,
            ffn: 16,
            vocab: 30,
            max_pos: 64,
            seed: 5,
        }
    }

    #[test]
    fn compiles_with_dynamic_sequence() {
        let model = BertModel::new(tiny());
        let (exe, report) = compile(&model.module(), &CompileOptions::default()).unwrap();
        assert!(exe.functions.len() == 1);
        // Dynamic shapes forced shape functions to be manifested.
        assert!(report.memplan.shape_funcs > 0);
    }

    #[test]
    fn vm_matches_reference_across_lengths() {
        let model = BertModel::new(tiny());
        let (exe, _) = compile(&model.module(), &CompileOptions::default()).unwrap();
        let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for len in [1usize, 3, 8, 13] {
            let ids = model.random_tokens(&mut rng, len);
            let (tok, pos) = model.inputs(&ids);
            let out = vm
                .run("main", vec![Object::tensor(tok), Object::tensor(pos)])
                .unwrap()
                .wait_tensor()
                .unwrap();
            let want = model.reference(&ids);
            assert_eq!(out.dims(), want.dims(), "len {len}");
            for (a, b) in out.as_f32().unwrap().iter().zip(want.as_f32().unwrap()) {
                assert!((a - b).abs() < 1e-3, "len {len}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn output_rows_track_input_length() {
        let model = BertModel::new(tiny());
        let (exe, _) = compile(&model.module(), &CompileOptions::default()).unwrap();
        let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
        let ids = vec![1, 2, 3, 4, 5];
        let (tok, pos) = model.inputs(&ids);
        let out = vm
            .run("main", vec![Object::tensor(tok), Object::tensor(pos)])
            .unwrap()
            .wait_tensor()
            .unwrap();
        assert_eq!(out.dims(), &[5, 8]);
    }

    #[test]
    fn batched_entry_bitwise_matches_unbatched() {
        let model = BertModel::new(tiny());
        let (exe, _) = compile(&model.module_batched(&[8]), &CompileOptions::default()).unwrap();
        let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
        let plan = model.batch_plan(nimble_vm::BatchConfig {
            buckets: vec![8],
            ..nimble_vm::BatchConfig::default()
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let lens = [3usize, 8, 5];
        let members: Vec<Vec<Object>> = lens
            .iter()
            .map(|&l| {
                let (tok, pos) = model.inputs(&model.random_tokens(&mut rng, l));
                vec![Object::tensor(tok), Object::tensor(pos)]
            })
            .collect();
        let keys: Vec<usize> = members
            .iter()
            .map(|m| (plan.key)(m).expect("key"))
            .collect();
        assert_eq!(keys, lens);
        let batched = (plan.gather)(&members, &keys, 8).unwrap();
        let out = vm.run(&plan.entry(8), batched).unwrap();
        let scattered = (plan.scatter)(&out, &keys, 8).unwrap();
        for ((member, obj), &len) in members.iter().zip(&scattered).zip(&lens) {
            let got = obj.wait_tensor().unwrap();
            let want = vm
                .run("main", member.clone())
                .unwrap()
                .wait_tensor()
                .unwrap();
            assert_eq!(got.dims(), want.dims(), "len {len}");
            for (a, b) in got.as_f32().unwrap().iter().zip(want.as_f32().unwrap()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "len {len}: batched output not bitwise equal"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "hidden must divide by heads")]
    fn bad_head_config_rejected() {
        BertModel::new(BertConfig {
            hidden: 10,
            heads: 3,
            ..tiny()
        });
    }

    #[test]
    fn base_config_shapes() {
        let cfg = BertConfig::base();
        assert_eq!(cfg.hidden, 768);
        assert_eq!(cfg.head_dim(), 64);
    }
}
