//! Interpreter tests over hand-assembled bytecode programs, covering each
//! instruction's runtime semantics and the asynchronous GPU path.

use nimble_device::DeviceSet;
use nimble_ir::attrs::{AttrValue, Attrs};
use nimble_tensor::{DType, Tensor};
use nimble_vm::exe::{Executable, KernelDesc, VMFunction};
use nimble_vm::isa::Instruction;
use nimble_vm::object::Object;
use nimble_vm::VirtualMachine;
use std::sync::Arc;

fn add_kernel() -> KernelDesc {
    KernelDesc::Op {
        name: "add".into(),
        attrs: Attrs::new(),
        symbolic: false,
    }
}

/// main(a, b) = a + b via explicit allocation: AllocStorage + AllocTensor +
/// InvokePacked — the paper's Section 4.3 example, executed.
fn add_program(device: u8) -> Executable {
    Executable {
        functions: vec![VMFunction {
            name: "main".into(),
            num_params: 2,
            num_regs: 5,
            code: vec![
                Instruction::AllocStorage {
                    size: 40,
                    alignment: 64,
                    device,
                    dst: 2,
                },
                Instruction::AllocTensor {
                    storage: 2,
                    offset: 0,
                    shape: vec![10],
                    dtype: DType::F32,
                    dst: 3,
                },
                Instruction::InvokePacked {
                    kernel: 0,
                    args: vec![0, 1, 3],
                    num_outputs: 1,
                    device,
                },
                Instruction::Ret { result: 3 },
            ],
        }],
        constants: vec![],
        const_devices: vec![],
        kernels: vec![add_kernel()],
    }
}

fn v10(x: f32) -> Tensor {
    Tensor::from_vec_f32(vec![x; 10], &[10]).unwrap()
}

#[test]
fn explicit_allocation_add_on_cpu() {
    let exe = add_program(0);
    let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
    let out = vm
        .run(
            "main",
            vec![Object::tensor(v10(1.0)), Object::tensor(v10(2.0))],
        )
        .unwrap();
    let t = out.wait_tensor().unwrap();
    assert!(t.as_f32().unwrap().iter().all(|&v| v == 3.0));
    // Storage was drawn from the pool.
    let stats = vm.devices().pool(nimble_device::DeviceId::Cpu).stats();
    assert_eq!(stats.allocs, 1);
}

#[test]
fn async_gpu_execution_returns_host_tensor() {
    let exe = add_program(1);
    let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::with_gpu())).unwrap();
    let out = vm
        .run(
            "main",
            vec![Object::tensor(v10(5.0)), Object::tensor(v10(7.0))],
        )
        .unwrap();
    let t = out.wait_tensor().unwrap();
    assert!(t.as_f32().unwrap().iter().all(|&v| v == 12.0));
    assert_eq!(vm.devices().gpu().launch_count(), 1);
}

#[test]
fn gpu_bytecode_falls_back_on_cpu_only_set() {
    let exe = add_program(1);
    let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
    let out = vm
        .run(
            "main",
            vec![Object::tensor(v10(1.0)), Object::tensor(v10(1.0))],
        )
        .unwrap();
    assert_eq!(out.wait_tensor().unwrap().as_f32().unwrap()[0], 2.0);
}

#[test]
fn control_flow_if_goto() {
    // main(flag) = if flag == 1 { 10 } else { 20 }  (as scalar i64 consts)
    let exe = Executable {
        functions: vec![VMFunction {
            name: "main".into(),
            num_params: 1,
            num_regs: 4,
            code: vec![
                Instruction::LoadConsti { value: 1, dst: 1 },
                Instruction::If {
                    lhs: 0,
                    rhs: 1,
                    true_offset: 1,
                    false_offset: 3,
                },
                Instruction::LoadConsti { value: 10, dst: 2 },
                Instruction::Goto { offset: 2 },
                Instruction::LoadConsti { value: 20, dst: 2 },
                Instruction::Ret { result: 2 },
            ],
        }],
        constants: vec![],
        const_devices: vec![],
        kernels: vec![],
    };
    let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
    let t = vm
        .run("main", vec![Object::tensor(Tensor::scalar_bool(true))])
        .unwrap()
        .wait_tensor()
        .unwrap();
    assert_eq!(t.as_i64().unwrap()[0], 10);
    let t = vm
        .run("main", vec![Object::tensor(Tensor::scalar_bool(false))])
        .unwrap()
        .wait_tensor()
        .unwrap();
    assert_eq!(t.as_i64().unwrap()[0], 20);
}

#[test]
fn adt_alloc_get_tag_get_field() {
    // main() = let x = Cons(42, Nil) in (tag(x), field0(x))
    let exe = Executable {
        functions: vec![VMFunction {
            name: "main".into(),
            num_params: 0,
            num_regs: 6,
            code: vec![
                Instruction::AllocADT {
                    tag: 0,
                    fields: vec![],
                    dst: 0,
                }, // Nil
                Instruction::LoadConsti { value: 42, dst: 1 },
                Instruction::AllocADT {
                    tag: 1,
                    fields: vec![1, 0],
                    dst: 2,
                }, // Cons(42, Nil)
                Instruction::GetTag { object: 2, dst: 3 },
                Instruction::GetField {
                    object: 2,
                    index: 0,
                    dst: 4,
                },
                Instruction::AllocADT {
                    tag: u32::MAX,
                    fields: vec![3, 4],
                    dst: 5,
                }, // tuple
                Instruction::Ret { result: 5 },
            ],
        }],
        constants: vec![],
        const_devices: vec![],
        kernels: vec![],
    };
    let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
    let out = vm.run("main", vec![]).unwrap();
    let adt = out.as_adt().unwrap();
    assert_eq!(adt.fields[0].wait_tensor().unwrap().as_i64().unwrap()[0], 1);
    assert_eq!(
        adt.fields[1].wait_tensor().unwrap().as_i64().unwrap()[0],
        42
    );
}

#[test]
fn closures_capture_and_invoke() {
    // helper(captured, arg) = captured + arg
    // main(x) = (closure capturing x)(x)  = x + x
    let exe = Executable {
        functions: vec![
            VMFunction {
                name: "main".into(),
                num_params: 1,
                num_regs: 3,
                code: vec![
                    Instruction::AllocClosure {
                        func: 1,
                        captures: vec![0],
                        dst: 1,
                    },
                    Instruction::InvokeClosure {
                        closure: 1,
                        args: vec![0],
                        dst: 2,
                    },
                    Instruction::Ret { result: 2 },
                ],
            },
            VMFunction {
                name: "helper".into(),
                num_params: 2,
                num_regs: 4,
                code: vec![
                    Instruction::AllocStorage {
                        size: 4,
                        alignment: 64,
                        device: 0,
                        dst: 2,
                    },
                    Instruction::AllocTensor {
                        storage: 2,
                        offset: 0,
                        shape: vec![],
                        dtype: DType::F32,
                        dst: 3,
                    },
                    Instruction::InvokePacked {
                        kernel: 0,
                        args: vec![0, 1, 3],
                        num_outputs: 1,
                        device: 0,
                    },
                    Instruction::Ret { result: 3 },
                ],
            },
        ],
        constants: vec![],
        const_devices: vec![],
        kernels: vec![add_kernel()],
    };
    let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
    let out = vm
        .run("main", vec![Object::tensor(Tensor::scalar_f32(21.0))])
        .unwrap();
    assert_eq!(out.wait_tensor().unwrap().scalar_value_f32().unwrap(), 42.0);
}

#[test]
fn shape_of_and_reshape() {
    // main(x) = reshape(x, shape_of(x) reversed is not expressible —
    // instead reshape to a constant shape loaded from the pool)
    let exe = Executable {
        functions: vec![VMFunction {
            name: "main".into(),
            num_params: 1,
            num_regs: 4,
            code: vec![
                Instruction::ShapeOf { tensor: 0, dst: 1 },
                Instruction::LoadConst { index: 0, dst: 2 },
                Instruction::ReshapeTensor {
                    tensor: 0,
                    shape: 2,
                    dst: 3,
                },
                Instruction::Ret { result: 3 },
            ],
        }],
        constants: vec![Tensor::from_vec_i64(vec![4, 2], &[2]).unwrap()],
        const_devices: vec![0],
        kernels: vec![],
    };
    let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
    let out = vm
        .run("main", vec![Object::tensor(Tensor::ones_f32(&[2, 4]))])
        .unwrap();
    assert_eq!(out.wait_tensor().unwrap().dims(), &[4, 2]);
}

#[test]
fn shape_function_sizes_dynamic_allocation() {
    // main(x, y) = concat(x, y) with the output allocated from the shape
    // function's result — the full dynamic path of Section 4.3.
    let concat_attrs = Attrs::new().with("axis", AttrValue::Int(0));
    let exe = Executable {
        functions: vec![VMFunction {
            name: "main".into(),
            num_params: 2,
            num_regs: 7,
            code: vec![
                Instruction::ShapeOf { tensor: 0, dst: 2 },
                Instruction::ShapeOf { tensor: 1, dst: 3 },
                // invoke_shape_func(concat): output shape into r4's alloc.
                Instruction::AllocTensorReg {
                    shape: 2, // placeholder: sized like an input shape (rank 2)
                    dtype: DType::I64,
                    device: 0,
                    dst: 4,
                },
                Instruction::InvokePacked {
                    kernel: 1,
                    args: vec![2, 3, 4],
                    num_outputs: 1,
                    device: 0,
                },
                // alloc output from computed shape; run the kernel.
                Instruction::AllocTensorReg {
                    shape: 4,
                    dtype: DType::F32,
                    device: 0,
                    dst: 5,
                },
                Instruction::InvokePacked {
                    kernel: 0,
                    args: vec![0, 1, 5],
                    num_outputs: 1,
                    device: 0,
                },
                Instruction::Ret { result: 5 },
            ],
        }],
        constants: vec![],
        const_devices: vec![],
        kernels: vec![
            KernelDesc::Op {
                name: "concat".into(),
                attrs: concat_attrs.clone(),
                symbolic: false,
            },
            KernelDesc::ShapeFuncOp {
                name: "concat".into(),
                attrs: concat_attrs,
                in_dtypes: vec![DType::F32, DType::F32],
            },
        ],
    };
    let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
    let x = Tensor::ones_f32(&[3, 2]);
    let y = Tensor::from_vec_f32(vec![9.0, 9.0], &[1, 2]).unwrap();
    let out = vm
        .run("main", vec![Object::tensor(x), Object::tensor(y)])
        .unwrap();
    let t = out.wait_tensor().unwrap();
    assert_eq!(t.dims(), &[4, 2]);
    assert_eq!(&t.as_f32().unwrap()[6..], &[9.0, 9.0]);
    // The profiler classified the shape function separately.
    assert_eq!(vm.profile_report().kernel_invocations, 1);
}

#[test]
fn fatal_aborts_with_message() {
    let exe = Executable {
        functions: vec![VMFunction {
            name: "main".into(),
            num_params: 0,
            num_regs: 1,
            code: vec![Instruction::Fatal {
                message: "type constraint violated".into(),
            }],
        }],
        constants: vec![],
        const_devices: vec![],
        kernels: vec![],
    };
    let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
    let err = vm.run("main", vec![]).unwrap_err();
    assert!(err.to_string().contains("type constraint violated"));
}

#[test]
fn device_copy_moves_and_counts() {
    let exe = Executable {
        functions: vec![VMFunction {
            name: "main".into(),
            num_params: 1,
            num_regs: 3,
            code: vec![
                Instruction::DeviceCopy {
                    src: 0,
                    src_device: 0,
                    dst_device: 1,
                    dst: 1,
                },
                Instruction::DeviceCopy {
                    src: 1,
                    src_device: 1,
                    dst_device: 0,
                    dst: 2,
                },
                Instruction::Ret { result: 2 },
            ],
        }],
        constants: vec![],
        const_devices: vec![],
        kernels: vec![],
    };
    let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::with_gpu())).unwrap();
    let out = vm.run("main", vec![Object::tensor(v10(3.0))]).unwrap();
    assert_eq!(out.wait_tensor().unwrap().as_f32().unwrap()[0], 3.0);
    let (h2d, d2h, _) = vm.devices().copy_stats().snapshot();
    assert_eq!((h2d, d2h), (1, 1));
}

#[test]
fn run_round_trips_through_serialization() {
    let exe = add_program(0);
    let bytes = exe.save();
    let loaded = Executable::load(&bytes).unwrap();
    let vm = VirtualMachine::new(loaded, Arc::new(DeviceSet::cpu_only())).unwrap();
    let out = vm
        .run(
            "main",
            vec![Object::tensor(v10(4.0)), Object::tensor(v10(6.0))],
        )
        .unwrap();
    assert!(out
        .wait_tensor()
        .unwrap()
        .as_f32()
        .unwrap()
        .iter()
        .all(|&v| v == 10.0));
}

#[test]
fn profiler_separates_kernel_and_other_time() {
    let exe = add_program(0);
    let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
    vm.set_profiling(true);
    vm.run(
        "main",
        vec![Object::tensor(v10(1.0)), Object::tensor(v10(1.0))],
    )
    .unwrap();
    let r = vm.profile_report();
    assert_eq!(r.instructions, 4);
    assert_eq!(r.kernel_invocations, 1);
    assert!(r.kernel_ns > 0);
    assert!(r.other_ns > 0);
}

#[test]
fn recursion_depth_guard() {
    // main() calls itself forever.
    let exe = Executable {
        functions: vec![VMFunction {
            name: "main".into(),
            num_params: 0,
            num_regs: 1,
            code: vec![
                Instruction::Invoke {
                    func: 0,
                    args: vec![],
                    dst: 0,
                },
                Instruction::Ret { result: 0 },
            ],
        }],
        constants: vec![],
        const_devices: vec![],
        kernels: vec![],
    };
    // Debug-build interpreter frames are large; give the guard room to
    // fire before the native stack runs out.
    let handle = std::thread::Builder::new()
        .stack_size(64 << 20)
        .spawn(move || {
            let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
            vm.run("main", vec![]).unwrap_err()
        })
        .unwrap();
    let err = handle.join().unwrap();
    assert!(err.to_string().contains("depth"));
}

#[test]
fn argument_count_checked() {
    let exe = add_program(0);
    let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
    assert!(vm.run("main", vec![]).is_err());
    assert!(vm.run("missing", vec![]).is_err());
}
