//! Property tests for the session storage arena.
//!
//! 1. Under random alloc/kill sequences, no two live `StorageHandle`s
//!    ever alias the same arena block (a double-pop or double-park bug
//!    would hand one buffer to two owners).
//! 2. `live_bytes` accounting is exact: at every step the arena's gauge
//!    equals the summed capacity of the live handles, and it returns to
//!    zero once every handle is gone; dropping the arena returns every
//!    parked block to the pool (pool `live_bytes` back to baseline — the
//!    leak check).
//! 3. The same holds at the VM level: after running programs through an
//!    arena session and dropping every result and the session, the arena
//!    holds no live bytes and the device pool balances.

use nimble_core::{compile, CompileOptions};
use nimble_device::{size_class, DeviceId, DeviceSet, MemoryPool};
use nimble_ir::builder::FunctionBuilder;
use nimble_ir::types::TensorType;
use nimble_ir::{Attrs, DType, Module};
use nimble_tensor::Tensor;
use nimble_vm::{Object, Session, StorageArena, StorageHandle, VirtualMachine};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// One step of a random allocation workload: allocate `size` bytes, or
/// kill the live handle at `victim` (modulo the live count).
#[derive(Debug, Clone)]
enum Step {
    Alloc(usize),
    Kill(usize),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (1usize..300_000).prop_map(Step::Alloc),
            (0usize..64).prop_map(Step::Kill),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_aliasing_and_exact_live_accounting(steps in arb_steps()) {
        let pool = Arc::new(MemoryPool::new(true));
        let arena = Arc::new(StorageArena::with_poison(true));
        let mut live: Vec<Arc<StorageHandle>> = Vec::new();
        for step in steps {
            match step {
                Step::Alloc(size) => {
                    live.push(Arc::new(StorageHandle::alloc_in(
                        &arena,
                        Arc::clone(&pool),
                        size as u64,
                        DeviceId::Cpu,
                    )));
                }
                Step::Kill(victim) => {
                    if !live.is_empty() {
                        live.swap_remove(victim % live.len());
                    }
                }
            }
            // No two live handles share a block address.
            let mut addrs = HashSet::new();
            for h in &live {
                let (addr, cap) = h.block_id().unwrap();
                prop_assert!(addrs.insert(addr), "two live handles alias {addr:#x}");
                prop_assert!(cap as u64 >= h.size, "capacity below request");
            }
            // The live gauge matches the summed class capacity exactly.
            let expected: u64 = live
                .iter()
                .map(|h| size_class(h.size as usize) as u64)
                .sum();
            prop_assert_eq!(arena.live_bytes(), expected);
        }
        // Kill everything: the arena must read zero live bytes…
        live.clear();
        prop_assert_eq!(arena.live_bytes(), 0);
        // …and dropping the arena must return every parked block, leaving
        // the pool balanced (no leaked storage).
        drop(arena);
        prop_assert_eq!(pool.stats().live_bytes, 0);
        prop_assert_eq!(pool.stats().allocs, pool.stats().frees + pool.stats().pool_hits);
    }
}

fn dynamic_chain_module() -> Module {
    let mut fb = FunctionBuilder::new("main");
    let x = fb.param("x", TensorType::with_any(&[None, Some(4)], DType::F32));
    let a = nimble_ir::Expr::call_op("tanh", vec![x], Attrs::new());
    let b = nimble_ir::Expr::call_op("relu", vec![a.clone()], Attrs::new());
    let c = nimble_ir::Expr::call_op("add", vec![a, b], Attrs::new());
    let mut m = Module::new();
    m.add_function("main", fb.finish(c));
    m
}

#[test]
fn session_drop_returns_live_bytes_to_zero() {
    let (exe, _) = compile(&dynamic_chain_module(), &CompileOptions::default()).unwrap();
    let devices = Arc::new(DeviceSet::cpu_only());
    let vm = VirtualMachine::new(exe, Arc::clone(&devices)).unwrap();
    let baseline = devices.pool(DeviceId::Cpu).stats().live_bytes;
    let arena = Arc::new(StorageArena::with_poison(true));
    {
        let mut session = Session::with_lane_and_arena(0, Some(Arc::clone(&arena)));
        let mut results = Vec::new();
        for rows in [2usize, 6, 2, 6, 3] {
            let x = Object::tensor(Tensor::ones_f32(&[rows, 4]));
            results.push(vm.run_in(&mut session, "main", vec![x]).unwrap());
        }
        // Results (and any storage they escaped with) still alive here.
        drop(results);
        drop(session);
    }
    // Every handle is gone: nothing is live through the arena.
    assert_eq!(arena.live_bytes(), 0, "leaked storage: {:?}", arena.stats());
    // Trim releases the recycled blocks; pool returns to its baseline.
    arena.trim();
    assert_eq!(arena.retained_bytes(), 0);
    assert_eq!(
        devices.pool(DeviceId::Cpu).stats().live_bytes,
        baseline,
        "device pool did not balance after trim"
    );
}
