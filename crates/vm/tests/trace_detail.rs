//! Span-granularity gating: at the default `Ops` detail the interpreter
//! records flat spans only for blocking / data-moving instructions, while
//! `TraceDetail::Instr` restores every-instruction spans.
//!
//! Trace mode and detail are process-global, so this file holds exactly
//! one `#[test]` — a second test in the same binary would race on them.

use nimble_device::DeviceSet;
use nimble_ir::attrs::Attrs;
use nimble_tensor::{DType, Tensor};
use nimble_vm::exe::{Executable, KernelDesc, VMFunction};
use nimble_vm::isa::Instruction;
use nimble_vm::object::Object;
use nimble_vm::VirtualMachine;
use std::sync::Arc;

/// main(a, b) = a + b through explicit AllocStorage/AllocTensor, so the
/// program executes both register-bookkeeping instructions (gated) and a
/// kernel invocation (always spanned).
fn add_program() -> Executable {
    Executable {
        functions: vec![VMFunction {
            name: "main".into(),
            num_params: 2,
            num_regs: 5,
            code: vec![
                Instruction::AllocStorage {
                    size: 40,
                    alignment: 64,
                    device: 0,
                    dst: 2,
                },
                Instruction::AllocTensor {
                    storage: 2,
                    offset: 0,
                    shape: vec![10],
                    dtype: DType::F32,
                    dst: 3,
                },
                Instruction::InvokePacked {
                    kernel: 0,
                    args: vec![0, 1, 3],
                    num_outputs: 1,
                    device: 0,
                },
                Instruction::Ret { result: 3 },
            ],
        }],
        constants: vec![],
        const_devices: vec![],
        kernels: vec![KernelDesc::Op {
            name: "add".into(),
            attrs: Attrs::new(),
            symbolic: false,
        }],
    }
}

fn run_once(vm: &VirtualMachine) {
    let a = Object::tensor(Tensor::from_vec_f32(vec![1.0; 10], &[10]).unwrap());
    let b = Object::tensor(Tensor::from_vec_f32(vec![2.0; 10], &[10]).unwrap());
    vm.run("main", vec![a, b]).expect("add program runs");
}

fn names_recorded(vm: &VirtualMachine) -> Vec<&'static str> {
    nimble_obs::reset();
    run_once(vm);
    nimble_obs::snapshot().into_iter().map(|s| s.name).collect()
}

#[test]
fn ops_detail_skips_bookkeeping_instr_detail_restores_it() {
    let vm = VirtualMachine::new(add_program(), Arc::new(DeviceSet::cpu_only())).expect("vm");
    nimble_obs::set_mode(nimble_obs::TraceMode::All);

    nimble_obs::set_detail(nimble_obs::TraceDetail::Ops);
    let ops = names_recorded(&vm);
    assert!(
        !ops.iter()
            .any(|n| *n == "AllocStorage" || *n == "AllocTensor"),
        "Ops detail must not record register-bookkeeping spans, got {ops:?}"
    );
    assert!(
        ops.contains(&"add"),
        "kernel span must be recorded at every detail, got {ops:?}"
    );

    nimble_obs::set_detail(nimble_obs::TraceDetail::Instr);
    let instr = names_recorded(&vm);
    for want in ["AllocStorage", "AllocTensor", "add"] {
        assert!(
            instr.contains(&want),
            "Instr detail must record {want}, got {instr:?}"
        );
    }
    assert!(
        instr.len() > ops.len(),
        "Instr detail must record strictly more spans ({} vs {})",
        instr.len(),
        ops.len()
    );

    // Restore process defaults for any later in-process harness.
    nimble_obs::set_detail(nimble_obs::TraceDetail::Ops);
    nimble_obs::set_mode(nimble_obs::TraceMode::Off);
    nimble_obs::reset();
}
