//! Robustness fuzzing: the bytecode decoder and executable loader must
//! reject arbitrary garbage with errors, never panic — the paper's VM is
//! meant to load untrusted serialized artifacts ("one can verify the
//! implementation of VM for security and privacy purposes", Section 5.3).

use bytes::Bytes;
use nimble_vm::exe::Executable;
use nimble_vm::isa;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut buf = Bytes::from(data);
        // Decode as many instructions as possible; each step either
        // produces an instruction or a clean error.
        for _ in 0..16 {
            if buf.is_empty() {
                break;
            }
            if isa::decode(&mut buf).is_err() {
                break;
            }
        }
    }

    #[test]
    fn loader_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Executable::load(&data);
    }

    #[test]
    fn loader_never_panics_with_magic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Prefix a valid magic + version so deeper paths are exercised.
        let mut payload = b"NMBL\x01\x00\x00\x00".to_vec();
        payload.extend(data);
        let _ = Executable::load(&payload);
    }

    #[test]
    fn bitflip_round_trip_is_error_or_valid(
        flip_at in 0usize..200,
        bit in 0u8..8,
    ) {
        // Take a real executable, flip one bit: loading must either fail
        // cleanly or succeed (the flip may land in tensor data).
        let exe = Executable {
            functions: vec![nimble_vm::exe::VMFunction {
                name: "main".into(),
                num_params: 1,
                num_regs: 3,
                code: vec![
                    isa::Instruction::Move { src: 0, dst: 1 },
                    isa::Instruction::Ret { result: 1 },
                ],
            }],
            constants: vec![nimble_tensor::Tensor::ones_f32(&[4])],
            const_devices: vec![0],
            kernels: vec![],
        };
        let mut bytes = exe.save().to_vec();
        let pos = flip_at % bytes.len();
        bytes[pos] ^= 1 << bit;
        let _ = Executable::load(&bytes);
    }
}
