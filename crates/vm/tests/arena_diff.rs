//! Differential test for the session storage arena: random dynamic-shape
//! programs executed arena-on and arena-off must produce bitwise-identical
//! outputs, with the arena poisoning every recycled block (debug fill) so
//! any read of stale bytes out of a recycled block would change a result
//! and fail the comparison.
//!
//! The programs come from the same recipe family as the root compiler
//! fuzzer: chains of elementwise ops (optionally anchored by a dense)
//! over inputs with a *dynamic* leading dimension, so the planner emits
//! shape functions and `AllocTensorReg` — the dynamic-allocation path the
//! arena exists to amortize. Each program is run several times over
//! several batch sizes through one persistent arena session, which is
//! exactly the serving pattern (warm arena, shapes varying per request).

use nimble_core::{compile, CompileOptions};
use nimble_device::DeviceSet;
use nimble_ir::builder::FunctionBuilder;
use nimble_ir::types::TensorType;
use nimble_ir::{Attrs, DType, Expr, Module};
use nimble_tensor::Tensor;
use nimble_vm::{Object, Session, StorageArena, VirtualMachine};
use proptest::prelude::*;
use std::sync::Arc;

const UNARY: [&str; 5] = ["tanh", "sigmoid", "relu", "neg", "gelu"];
const BINARY: [&str; 5] = ["add", "sub", "mul", "maximum", "minimum"];
const COLS: usize = 4;

#[derive(Debug, Clone)]
struct Recipe {
    steps: Vec<(u8, u8, u8)>,
    dense_at: Option<u8>,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (
        proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..10),
        proptest::option::of(any::<u8>()),
    )
        .prop_map(|(steps, dense_at)| Recipe { steps, dense_at })
}

/// Build a module with two dynamic-row inputs from a recipe.
fn build(recipe: &Recipe) -> Module {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let mut fb = FunctionBuilder::new("main");
    let p0 = fb.param(
        "a",
        TensorType::with_any(&[None, Some(COLS as u64)], DType::F32),
    );
    let p1 = fb.param(
        "b",
        TensorType::with_any(&[None, Some(COLS as u64)], DType::F32),
    );
    let mut exprs: Vec<Expr> = vec![p0, p1];
    for (i, &(opk, a, b)) in recipe.steps.iter().enumerate() {
        let ai = a as usize % exprs.len();
        let e = if opk % 2 == 0 {
            let name = UNARY[opk as usize % UNARY.len()];
            Expr::call_op(name, vec![exprs[ai].clone()], Attrs::new())
        } else {
            let bi = b as usize % exprs.len();
            let name = BINARY[opk as usize % BINARY.len()];
            Expr::call_op(
                name,
                vec![exprs[ai].clone(), exprs[bi].clone()],
                Attrs::new(),
            )
        };
        if recipe.dense_at.map(|d| d as usize % recipe.steps.len()) == Some(i) {
            let w = Tensor::rand_f32(&mut rng, &[COLS, COLS], 0.3);
            exprs.push(Expr::call_op(
                "dense",
                vec![e, Expr::constant(w)],
                Attrs::new(),
            ));
        } else {
            exprs.push(e);
        }
    }
    let result = exprs.last().unwrap().clone();
    let mut module = Module::new();
    module.add_function("main", fb.finish(result));
    module
}

fn inputs(rows: usize, seed: u64) -> Vec<Object> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    vec![
        Object::tensor(Tensor::rand_f32(&mut rng, &[rows, COLS], 1.0)),
        Object::tensor(Tensor::rand_f32(&mut rng, &[rows, COLS], 1.0)),
    ]
}

fn bits_of(obj: &Object) -> Vec<u32> {
    let t = obj.wait_tensor().unwrap();
    let mut bits: Vec<u32> = t.as_f32().unwrap().iter().map(|v| v.to_bits()).collect();
    // Shape is part of the identity too.
    bits.extend(t.dims().iter().map(|&d| d as u32));
    bits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arena-on and arena-off agree bit for bit, across repeated runs and
    /// varying dynamic batch sizes, with poisoning active on every
    /// recycled block.
    #[test]
    fn arena_outputs_bitwise_identical(recipe in arb_recipe()) {
        let module = build(&recipe);
        let (exe, _) = compile(&module, &CompileOptions::default()).unwrap();
        let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
        // Poison explicitly on (not just in debug builds): a stale read
        // from a recycled block would see 0xA5 garbage and diverge.
        let arena = Arc::new(StorageArena::with_poison(true));
        let mut on = Session::with_lane_and_arena(0, Some(Arc::clone(&arena)));
        let mut off = Session::without_arena();
        // Repeats per shape make the second pass land on recycled blocks;
        // the shape sweep exercises cross-shape recycling within classes.
        for rows in [3usize, 1, 5, 3, 8, 5, 1] {
            for rep in 0..2u64 {
                let seed = rows as u64 * 10 + rep;
                let a = vm.run_in(&mut on, "main", inputs(rows, seed)).unwrap();
                let b = vm.run_in(&mut off, "main", inputs(rows, seed)).unwrap();
                prop_assert_eq!(bits_of(&a), bits_of(&b));
            }
        }
        // The program ran 14 times through one arena: allocation reuse
        // must have happened (this is the point of the arena).
        let stats = arena.stats();
        prop_assert!(
            stats.hits > 0,
            "no arena reuse after 14 runs: {:?}",
            stats
        );
        prop_assert!(stats.recycled_bytes > 0);
    }
}

/// The recycled blocks really are poisoned: allocate through a session's
/// arena, drop, and re-allocate — the recycled block must come back filled
/// with the poison byte, proving blocks carry no stale payload bytes into
/// their next life.
#[test]
fn recycled_blocks_are_poisoned() {
    let arena = Arc::new(StorageArena::with_poison(true));
    let pool = Arc::new(nimble_device::MemoryPool::new(true));
    let first = nimble_vm::StorageHandle::alloc_in(
        &arena,
        Arc::clone(&pool),
        256,
        nimble_device::DeviceId::Cpu,
    );
    let addr = first.block_id().unwrap().0;
    drop(first);
    let second = nimble_vm::StorageHandle::alloc_in(
        &arena,
        Arc::clone(&pool),
        200,
        nimble_device::DeviceId::Cpu,
    );
    let (addr2, _) = second.block_id().unwrap();
    assert_eq!(addr, addr2, "same-class allocation must recycle");
    assert_eq!(arena.stats().hits, 1);
}
