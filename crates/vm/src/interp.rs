//! The interpreter: a dispatch loop over the 20-instruction ISA.
//!
//! "When execution begins, the interpreter runs a dispatch loop which
//! checks the op-code and executes the appropriate logic, then repeats"
//! (Section 5.2). Because instructions are coarse grained, the loop itself
//! contributes negligibly next to kernel execution; the profiler measures
//! both sides (Table 4).
//!
//! The machine is split for concurrency:
//!
//! * [`VirtualMachine`] is the **loaded program** — executable, the
//!   instantiated kernel table, pre-placed constants, interned small
//!   integers. After [`VirtualMachine::new`] it is immutable (profiling
//!   state is atomic), so it is `Send + Sync` and one `Arc` of it can be
//!   executed from any number of threads with no re-instantiation or
//!   re-placement per request.
//! * [`Session`] is the cheap **per-run state** — recycled register
//!   frames and the per-run profiler. Each worker thread owns one and
//!   reuses it across requests.

use crate::arena::{ArenaStats, StorageArena};
use crate::exe::Executable;
use crate::isa::{opcode_name, Instruction};
use crate::object::{AdtObj, ClosureObj, FutureObj, Object, StorageHandle, TensorObj};
use crate::profiler::{Category, ProfileReport, Profiler, SharedProfiler};
use crate::{Result, VmError};
use nimble_codegen::kernel::Kernel;
use nimble_device::{copy_tensor, DeviceId, DeviceSet, TensorFuture};
use nimble_obs::Category as ObsCat;
use nimble_tensor::Tensor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A dispatch-time kernel interceptor: consulted on the synchronous CPU
/// path of `InvokePacked` (never for shape functions) with the resolved
/// input tensors, it may hand back a replacement [`Kernel`] to run in
/// place of the loaded one.
///
/// This is the seam the shape-specialization layer plugs into: the hook
/// observes the concrete values of the `Any` dims and, once a shape is
/// hot and a tuned kernel is installed, returns the shape-concretized
/// variant. The returned kernel is an owned clone (two `Arc`s), so an
/// in-flight request keeps its kernel alive even if the hook evicts the
/// entry mid-invoke — eviction can never strand a running request.
///
/// Contract: the replacement must produce bitwise-identical outputs to
/// the original kernel for the given inputs (the VM does not re-verify).
pub trait DispatchHook: Send + Sync {
    /// Return a replacement kernel for this invocation, or `None` to run
    /// the loaded kernel unchanged.
    fn intercept(&self, kernel_idx: u32, inputs: &[Tensor]) -> Option<Kernel>;
}

/// Trace category for an instruction's profiler bucket.
fn obs_cat(category: Category) -> ObsCat {
    match category {
        Category::Kernel => ObsCat::Kernel,
        Category::ShapeFunc => ObsCat::ShapeFunc,
        Category::Other => ObsCat::Vm,
    }
}

/// Per-run mutable state: the register-frame pool, the storage arena, and
/// the run's profiler.
///
/// Sessions are cheap to create, and reusing one across runs recycles its
/// frame allocations (call frames are hot on recursive models) *and* its
/// dynamic-tensor storage (the [`StorageArena`] — blocks freed by one
/// request serve the next without touching the allocator). A session may
/// only be used with one run at a time, but many sessions can execute
/// against the same shared [`VirtualMachine`] concurrently.
#[derive(Debug)]
pub struct Session {
    profiler: Profiler,
    /// Recycled register frames (cleared between uses).
    frames: Vec<Vec<Object>>,
    /// GPU stream lane this session's kernels launch on (wraps modulo the
    /// device set's lane count; irrelevant on CPU-only sets).
    lane: usize,
    /// Storage recycler for `AllocStorage`/`AllocTensorReg`; `None` runs
    /// every allocation straight against the device pools
    /// (`NIMBLE_ARENA=off`, or an explicitly arena-less session).
    arena: Option<Arc<StorageArena>>,
    /// Whether the current run is inside a sampled trace (set at the top
    /// of [`VirtualMachine::run_in`]; gates per-instruction span records).
    traced: bool,
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Session {
    /// A fresh session with an empty frame pool, on lane 0, with its own
    /// arena (unless `NIMBLE_ARENA=off`).
    pub fn new() -> Session {
        Session::with_lane(0)
    }

    /// A fresh session pinned to a GPU stream lane — concurrent sessions
    /// on distinct lanes overlap on the (simulated) device, the
    /// one-CUDA-stream-per-worker serving pattern.
    pub fn with_lane(lane: usize) -> Session {
        Session::with_lane_and_arena(lane, StorageArena::shared_default())
    }

    /// A session on `lane` using the given arena (engine workers pass a
    /// caller-owned arena so it can be inspected and trimmed from
    /// outside), or no arena at all.
    pub fn with_lane_and_arena(lane: usize, arena: Option<Arc<StorageArena>>) -> Session {
        Session {
            profiler: Profiler::default(),
            frames: Vec::new(),
            lane,
            arena,
            traced: false,
        }
    }

    /// A session that bypasses arena recycling entirely (every storage
    /// allocation hits the device pool) — the ablation/differential
    /// baseline.
    pub fn without_arena() -> Session {
        Session::with_lane_and_arena(0, None)
    }

    /// The session's GPU stream lane.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// The session's storage arena, when it has one.
    pub fn arena(&self) -> Option<&Arc<StorageArena>> {
        self.arena.as_ref()
    }

    /// Arena counters (all-zero for arena-less sessions).
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.as_ref().map(|a| a.stats()).unwrap_or_default()
    }

    /// Profile of the most recent run through this session (empty until a
    /// run completes; timings are zero unless the VM had profiling on).
    pub fn last_report(&self) -> ProfileReport {
        self.profiler.report()
    }
}

/// A loaded executable plus devices: ready to run from any thread.
pub struct VirtualMachine {
    exe: Arc<Executable>,
    kernels: Vec<Kernel>,
    kernel_is_shape_func: Vec<bool>,
    /// Kernel names interned at load time so trace spans can carry them
    /// as plain `&'static str` words.
    kernel_names: Vec<&'static str>,
    devices: Arc<DeviceSet>,
    constants: Vec<Object>,
    profiling: AtomicBool,
    shared_profiler: SharedProfiler,
    max_depth: usize,
    /// Interned scalar-i64 objects for small immediates (kill markers, If
    /// comparisons, constructor tags) — these fire once per instruction on
    /// hot paths and would otherwise heap-allocate each time.
    small_ints: Vec<Object>,
    /// Optional dispatch-time kernel interceptor (shape specialization).
    hook: std::sync::RwLock<Option<Arc<dyn DispatchHook>>>,
    /// Fast-path gate for `hook`: checked with one relaxed load per
    /// `InvokePacked` so unhooked VMs pay nothing.
    hook_active: AtomicBool,
}

impl std::fmt::Debug for VirtualMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualMachine")
            .field("kernels", &self.kernels.len())
            .field("constants", &self.constants.len())
            .field("hooked", &self.hook_active.load(Ordering::Relaxed))
            .finish()
    }
}

impl VirtualMachine {
    /// Load an executable onto a device set: instantiate every kernel
    /// descriptor and pre-place constants on their preferred devices.
    ///
    /// # Errors
    /// Fails when a kernel descriptor cannot be instantiated.
    pub fn new(exe: Executable, devices: Arc<DeviceSet>) -> Result<VirtualMachine> {
        // Warm the process-wide weight pre-pack cache at load time: every
        // session loading this executable (and every residue variant of its
        // symbolic dense kernels) then shares the same packed panels. For
        // executables produced by `nimble-core::compile` in this process
        // the cache is already hot and this is a cheap no-op scan.
        exe.prepack_weights();
        let mut kernels = Vec::with_capacity(exe.kernels.len());
        let mut kernel_is_shape_func = Vec::with_capacity(exe.kernels.len());
        let mut kernel_names = Vec::with_capacity(exe.kernels.len());
        for desc in &exe.kernels {
            let kernel = desc.instantiate(&exe.constants)?;
            kernel_names.push(nimble_obs::intern(kernel.name()));
            kernels.push(kernel);
            kernel_is_shape_func.push(desc.is_shape_func());
        }
        // Constants stay resident: "weights (which are constant during
        // inference) can remain in-memory with no specialized support"
        // (Section 5.2). GPU-preferred constants are pre-copied at load.
        let mut constants = Vec::with_capacity(exe.constants.len());
        for (i, t) in exe.constants.iter().enumerate() {
            let dev = exe
                .const_devices
                .get(i)
                .map(|&d| DeviceId::from_index(d as usize))
                .unwrap_or(DeviceId::Cpu);
            let dev = if dev == DeviceId::Gpu && !devices.has_gpu() {
                DeviceId::Cpu
            } else {
                dev
            };
            constants.push(Object::tensor_on(t.clone(), dev));
        }
        Ok(VirtualMachine {
            exe: Arc::new(exe),
            kernels,
            kernel_is_shape_func,
            kernel_names,
            devices,
            constants,
            profiling: AtomicBool::new(false),
            shared_profiler: SharedProfiler::new(),
            max_depth: 256,
            small_ints: (0..16)
                .map(|v| Object::tensor(Tensor::scalar_i64(v)))
                .collect(),
            hook: std::sync::RwLock::new(None),
            hook_active: AtomicBool::new(false),
        })
    }

    /// Install (or clear) the dispatch-time kernel interceptor. Takes
    /// `&self`: the hook slot is the VM's one late-bound extension point,
    /// so a shared VM can gain or lose its specializer without reloading.
    pub fn set_dispatch_hook(&self, hook: Option<Arc<dyn DispatchHook>>) {
        let active = hook.is_some();
        *self.hook.write().unwrap() = hook;
        self.hook_active.store(active, Ordering::Release);
    }

    /// The instantiated kernel table (index-aligned with
    /// `executable().kernels`) — the specializer scans this at attach time
    /// for dense anchors.
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// Whether `idx` names a shape function (never specialized).
    pub fn kernel_is_shape_func(&self, idx: usize) -> bool {
        self.kernel_is_shape_func.get(idx).copied().unwrap_or(false)
    }

    /// Enable/disable timing collection and reset the aggregated profile.
    /// Takes `&self`: profiling state is atomic so a shared VM can be
    /// toggled without exclusive access.
    pub fn set_profiling(&self, enabled: bool) {
        self.profiling.store(enabled, Ordering::Relaxed);
        self.shared_profiler.reset();
    }

    /// Whether timing collection is on.
    pub fn profiling(&self) -> bool {
        self.profiling.load(Ordering::Relaxed)
    }

    /// Profile aggregated over every run since the last
    /// [`VirtualMachine::set_profiling`], across all sessions and threads.
    pub fn profile_report(&self) -> ProfileReport {
        self.shared_profiler.report()
    }

    /// Number of runs folded into [`VirtualMachine::profile_report`].
    pub fn profiled_runs(&self) -> u64 {
        self.shared_profiler.runs()
    }

    /// The device set the VM runs on.
    pub fn devices(&self) -> &Arc<DeviceSet> {
        &self.devices
    }

    /// The loaded executable.
    pub fn executable(&self) -> &Executable {
        &self.exe
    }

    /// A fresh session for running against this VM.
    pub fn session(&self) -> Session {
        Session::new()
    }

    /// A fresh session pinned to a GPU stream lane (see
    /// [`Session::with_lane`]).
    pub fn session_for(&self, lane: usize) -> Session {
        Session::with_lane(lane)
    }

    /// Run a function by name. Tensor results are synchronized and copied
    /// back to the host before returning.
    ///
    /// Creates a throwaway [`Session`]; callers running many requests
    /// should hold a session and use [`VirtualMachine::run_in`] so frame
    /// allocations are recycled.
    ///
    /// # Errors
    /// Propagates `Fatal`, kernel failures, and malformed bytecode.
    pub fn run(&self, name: &str, args: Vec<Object>) -> Result<Object> {
        let mut session = Session::new();
        self.run_in(&mut session, name, args)
    }

    /// Run a function by name using caller-owned per-run state. Many
    /// threads may call this concurrently on one shared VM, each with its
    /// own session.
    ///
    /// # Errors
    /// Propagates `Fatal`, kernel failures, and malformed bytecode.
    pub fn run_in(&self, session: &mut Session, name: &str, args: Vec<Object>) -> Result<Object> {
        let idx = self.exe.function_index(name)?;
        // Trace root for this run: nests under the caller's span when one
        // is active (the engine's per-request span), becomes a standalone
        // trace root for bare `run()` calls.
        let root = nimble_obs::root_span_full("vm.run", ObsCat::Vm, 0);
        session.traced = root.is_recording();
        session
            .profiler
            .reset_with(self.profiling.load(Ordering::Relaxed));
        let result = self.exec(idx, args, session, 0);
        // Drain this session's device lane so timing includes all launched
        // work and the caller sees a materialized value. Other sessions'
        // lanes keep flowing.
        let sync_start = Instant::now();
        let sync_t0 = if session.traced {
            nimble_obs::now_ns()
        } else {
            0
        };
        self.devices.synchronize_lane(session.lane);
        if session.traced {
            nimble_obs::record_current(
                "vm.sync",
                ObsCat::Device,
                sync_t0,
                nimble_obs::now_ns(),
                session.lane as u64,
            );
        }
        session.profiler.record_sync(sync_start.elapsed());
        self.shared_profiler.merge(session.profiler.report());
        session.traced = false;
        let obj = result?;
        let fetched = self.fetch(obj);
        drop(root);
        fetched
    }

    /// Materialize a result on the host (recursing through ADTs).
    fn fetch(&self, obj: Object) -> Result<Object> {
        Ok(match obj {
            Object::Future(_) => {
                let t = obj.wait_tensor()?;
                Object::tensor(t)
            }
            Object::Tensor(t) if t.device == DeviceId::Gpu => {
                let copied = copy_tensor(&self.devices, &t.tensor, DeviceId::Gpu, DeviceId::Cpu);
                Object::tensor(copied)
            }
            Object::Adt(a) => {
                let fields = a
                    .fields
                    .iter()
                    .map(|f| self.fetch(f.clone()))
                    .collect::<Result<Vec<_>>>()?;
                Object::Adt(Arc::new(AdtObj { tag: a.tag, fields }))
            }
            other => other,
        })
    }

    /// Storage allocation for `AllocStorage`/`AllocTensorReg`: through the
    /// session's arena when it has one (recycled block on hit), straight
    /// from the device pool otherwise.
    fn alloc_storage(&self, session: &Session, size: u64, dev: DeviceId) -> Arc<StorageHandle> {
        let pool = self.devices.pool_arc(dev);
        Arc::new(match &session.arena {
            Some(arena) => StorageHandle::alloc_in(arena, pool, size, dev),
            None => StorageHandle::alloc(pool, size, dev),
        })
    }

    /// Interned scalar for small non-negative immediates; allocates
    /// otherwise.
    fn small_int(&self, value: i64) -> Object {
        if (0..16).contains(&value) {
            self.small_ints[value as usize].clone()
        } else {
            Object::tensor(Tensor::scalar_i64(value))
        }
    }

    fn exec(
        &self,
        func_idx: u32,
        args: Vec<Object>,
        session: &mut Session,
        depth: usize,
    ) -> Result<Object> {
        if depth > self.max_depth {
            return Err(VmError::msg("call depth exceeded"));
        }
        let func = self
            .exe
            .functions
            .get(func_idx as usize)
            .ok_or_else(|| VmError::msg("function index out of range"))?;
        if args.len() != func.num_params as usize {
            return Err(VmError::msg(format!(
                "{}: expected {} args, got {}",
                func.name,
                func.num_params,
                args.len()
            )));
        }
        let mut regs: Vec<Object> = session.frames.pop().unwrap_or_default();
        regs.clear();
        regs.resize(func.num_regs as usize, Object::Unit);
        for (i, a) in args.into_iter().enumerate() {
            regs[i] = a;
        }
        let mut pc: i64 = 0;
        let timing = session.profiler.enabled();
        let traced = session.traced;
        // At the default `Ops` detail, flat spans cover only instructions
        // that can block or move data (device copies, tensor reshapes);
        // register bookkeeping and arena fast-path allocations run in the
        // same ~100-600ns a span costs, so recording them inflates
        // interpreter overhead for little diagnostic value — slow-path
        // allocations surface through the pool's own chunk spans.
        // `NIMBLE_TRACE_DETAIL=instr` restores every-instruction spans
        // for single-request debugging.
        let instr_detail = traced && nimble_obs::detail_instr();
        loop {
            let inst = func
                .code
                .get(pc as usize)
                .ok_or_else(|| VmError::msg(format!("{}: pc {pc} out of range", func.name)))?;
            let start = if timing { Some(Instant::now()) } else { None };
            // Call-like instructions get guard spans inside their arms (so
            // nested work parents under them); everything else is recorded
            // flat after the dispatch arm runs.
            let is_call = matches!(
                inst,
                Instruction::Invoke { .. }
                    | Instruction::InvokeClosure { .. }
                    | Instruction::InvokePacked { .. }
            );
            let flat_traced = traced
                && !is_call
                && (instr_detail
                    || matches!(
                        inst,
                        Instruction::DeviceCopy { .. } | Instruction::ReshapeTensor { .. }
                    ));
            let span_t0 = if flat_traced { nimble_obs::now_ns() } else { 0 };
            let mut span_arg = 0u64;
            let mut category = Category::Other;
            let mut next_pc = pc + 1;
            let mut ret: Option<Object> = None;

            match inst {
                Instruction::Move { src, dst } => {
                    regs[*dst as usize] = regs[*src as usize].clone();
                }
                Instruction::Ret { result } => {
                    ret = Some(std::mem::take(&mut regs[*result as usize]));
                }
                Instruction::Invoke { func, args, dst } => {
                    let _s = nimble_obs::span_full("vm.invoke", ObsCat::Vm, *func as u64);
                    let call_args: Vec<Object> =
                        args.iter().map(|&r| regs[r as usize].clone()).collect();
                    let out = self.exec(*func, call_args, session, depth + 1)?;
                    regs[*dst as usize] = out;
                }
                Instruction::InvokeClosure { closure, args, dst } => {
                    let clo = regs[*closure as usize].as_closure()?.clone();
                    let _s =
                        nimble_obs::span_full("vm.invoke_closure", ObsCat::Vm, clo.func as u64);
                    let mut call_args = clo.captures.clone();
                    call_args.extend(args.iter().map(|&r| regs[r as usize].clone()));
                    let out = self.exec(clo.func, call_args, session, depth + 1)?;
                    regs[*dst as usize] = out;
                }
                Instruction::InvokePacked {
                    kernel,
                    args,
                    num_outputs,
                    device,
                } => {
                    let is_sf = *self
                        .kernel_is_shape_func
                        .get(*kernel as usize)
                        .ok_or_else(|| VmError::msg("kernel index out of range"))?;
                    category = if is_sf {
                        Category::ShapeFunc
                    } else {
                        Category::Kernel
                    };
                    // The kernel span carries the kernel's own name; pool
                    // chunk and GPU-stream spans nest beneath it.
                    let _s = nimble_obs::span_cat(
                        self.kernel_names
                            .get(*kernel as usize)
                            .copied()
                            .unwrap_or("vm.invoke_packed"),
                        obs_cat(category),
                    );
                    self.invoke_packed(
                        *kernel,
                        args,
                        *num_outputs,
                        DeviceId::from_index(*device as usize),
                        is_sf,
                        &mut regs,
                        session.lane,
                    )?;
                }
                Instruction::AllocStorage {
                    size,
                    alignment: _,
                    device,
                    dst,
                } => {
                    let dev = DeviceId::from_index(*device as usize);
                    span_arg = *size;
                    regs[*dst as usize] = Object::Storage(self.alloc_storage(session, *size, dev));
                }
                Instruction::AllocTensor {
                    storage,
                    offset: _,
                    shape,
                    dtype,
                    dst,
                } => {
                    let handle = match &regs[*storage as usize] {
                        Object::Storage(h) => Some(Arc::clone(h)),
                        _ => None,
                    };
                    let dev = handle.as_ref().map(|h| h.device).unwrap_or(DeviceId::Cpu);
                    let dims: Vec<usize> = shape.iter().map(|&d| d as usize).collect();
                    regs[*dst as usize] = Object::placeholder(dims, *dtype, dev, handle);
                }
                Instruction::AllocTensorReg {
                    shape,
                    dtype,
                    device,
                    dst,
                } => {
                    let shape_t = regs[*shape as usize].wait_tensor()?;
                    let dims: Vec<usize> = shape_t
                        .as_i64()
                        .map_err(VmError::from)?
                        .iter()
                        .map(|&d| d as usize)
                        .collect();
                    let dev = DeviceId::from_index(*device as usize);
                    // Dynamic allocation draws real storage — from the
                    // session arena when one is attached, the pool otherwise.
                    let nbytes: usize = dims.iter().product::<usize>() * dtype.size_of();
                    span_arg = nbytes as u64;
                    let handle = self.alloc_storage(session, nbytes as u64, dev);
                    regs[*dst as usize] = Object::placeholder(dims, *dtype, dev, Some(handle));
                }
                Instruction::AllocADT { tag, fields, dst } => {
                    let fs: Vec<Object> =
                        fields.iter().map(|&r| regs[r as usize].clone()).collect();
                    regs[*dst as usize] = Object::Adt(Arc::new(AdtObj {
                        tag: *tag,
                        fields: fs,
                    }));
                }
                Instruction::AllocClosure {
                    func,
                    captures,
                    dst,
                } => {
                    let caps: Vec<Object> =
                        captures.iter().map(|&r| regs[r as usize].clone()).collect();
                    regs[*dst as usize] = Object::Closure(Arc::new(ClosureObj {
                        func: *func,
                        captures: caps,
                    }));
                }
                Instruction::GetField { object, index, dst } => {
                    let adt = regs[*object as usize].as_adt()?.clone();
                    let field = adt
                        .fields
                        .get(*index as usize)
                        .cloned()
                        .ok_or_else(|| VmError::msg("GetField index out of range"))?;
                    regs[*dst as usize] = field;
                }
                Instruction::GetTag { object, dst } => {
                    let tag = regs[*object as usize].as_adt()?.tag;
                    regs[*dst as usize] = self.small_int(tag as i64);
                }
                Instruction::If {
                    lhs,
                    rhs,
                    true_offset,
                    false_offset,
                } => {
                    let l = regs[*lhs as usize].scalar_i64()?;
                    let r = regs[*rhs as usize].scalar_i64()?;
                    next_pc = pc
                        + if l == r {
                            *true_offset as i64
                        } else {
                            *false_offset as i64
                        };
                }
                Instruction::Goto { offset } => {
                    next_pc = pc + *offset as i64;
                }
                Instruction::LoadConst { index, dst } => {
                    let c = self
                        .constants
                        .get(*index as usize)
                        .cloned()
                        .ok_or_else(|| VmError::msg("constant index out of range"))?;
                    regs[*dst as usize] = c;
                }
                Instruction::LoadConsti { value, dst } => {
                    regs[*dst as usize] = self.small_int(*value);
                }
                Instruction::DeviceCopy {
                    src,
                    src_device,
                    dst_device,
                    dst,
                } => {
                    let src_dev = DeviceId::from_index(*src_device as usize);
                    let dst_dev = DeviceId::from_index(*dst_device as usize);
                    let obj = &regs[*src as usize];
                    // Device-to-host reads must wait for the stream.
                    if matches!(obj, Object::Future(_)) && dst_dev == DeviceId::Cpu {
                        let sync_start = Instant::now();
                        let t = obj.wait_tensor()?;
                        session.profiler.record_sync(sync_start.elapsed());
                        let copied = copy_tensor(&self.devices, &t, src_dev, dst_dev);
                        regs[*dst as usize] = Object::tensor_on(copied, dst_dev);
                    } else {
                        let t = obj.wait_tensor()?;
                        let copied = copy_tensor(&self.devices, &t, src_dev, dst_dev);
                        regs[*dst as usize] = Object::tensor_on(copied, dst_dev);
                    }
                }
                Instruction::ShapeOf { tensor, dst } => {
                    // Shape metadata is host-resident: no synchronization.
                    let dims = regs[*tensor as usize].tensor_shape()?;
                    let shape: Vec<i64> = dims.iter().map(|&d| d as i64).collect();
                    let n = shape.len();
                    regs[*dst as usize] =
                        Object::tensor(Tensor::from_vec_i64(shape, &[n]).map_err(VmError::from)?);
                }
                Instruction::ReshapeTensor { tensor, shape, dst } => {
                    let t = regs[*tensor as usize].wait_tensor()?;
                    let s = regs[*shape as usize].wait_tensor()?;
                    let dims: Vec<usize> = s
                        .as_i64()
                        .map_err(VmError::from)?
                        .iter()
                        .map(|&d| d as usize)
                        .collect();
                    let device = regs[*tensor as usize].device();
                    regs[*dst as usize] =
                        Object::tensor_on(t.reshaped(&dims).map_err(VmError::from)?, device);
                }
                Instruction::Fatal { message } => {
                    return Err(VmError::msg(format!("fatal: {message}")));
                }
            }

            if flat_traced {
                nimble_obs::record_current(
                    opcode_name(inst.opcode()),
                    obs_cat(category),
                    span_t0,
                    nimble_obs::now_ns(),
                    span_arg,
                );
            }
            if let Some(start) = start {
                session
                    .profiler
                    .record(inst.opcode(), category, start.elapsed());
            } else {
                session
                    .profiler
                    .record(inst.opcode(), category, std::time::Duration::ZERO);
            }
            if let Some(out) = ret {
                // Recycle the frame (dropping its remaining references).
                regs.clear();
                session.frames.push(regs);
                return Ok(out);
            }
            pc = next_pc;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn invoke_packed(
        &self,
        kernel_idx: u32,
        arg_regs: &[u32],
        num_outputs: u32,
        device: DeviceId,
        is_shape_func: bool,
        regs: &mut [Object],
        lane: usize,
    ) -> Result<()> {
        let kernel = self
            .kernels
            .get(kernel_idx as usize)
            .ok_or_else(|| VmError::msg("kernel index out of range"))?;
        let n_out = num_outputs as usize;
        if arg_regs.len() < n_out {
            return Err(VmError::msg("InvokePacked: fewer args than outputs"));
        }
        let (in_regs, out_regs) = arg_regs.split_at(arg_regs.len() - n_out);

        let run_on_gpu = device == DeviceId::Gpu && self.devices.has_gpu() && !is_shape_func;
        if !run_on_gpu {
            // Synchronous CPU execution (shape functions always land here).
            let inputs: Vec<Tensor> = in_regs
                .iter()
                .map(|&r| regs[r as usize].wait_tensor())
                .collect::<Result<_>>()?;
            // Shape-specialization seam: with a hook installed, compute
            // kernels may be swapped for a shape-concretized variant now
            // that the concrete input shapes are known. The clone returned
            // by the hook pins the specialized kernel for the duration of
            // this invoke, so concurrent eviction cannot strand us.
            let specialized: Option<Kernel> =
                if !is_shape_func && self.hook_active.load(Ordering::Acquire) {
                    self.hook
                        .read()
                        .unwrap()
                        .as_ref()
                        .and_then(|h| h.intercept(kernel_idx, &inputs))
                } else {
                    None
                };
            let kernel = specialized.as_ref().unwrap_or(kernel);
            let outputs = kernel
                .invoke(&inputs)
                .map_err(|e| VmError::msg(format!("{}: {e}", kernel.name())))?;
            if outputs.len() != n_out {
                return Err(VmError::msg(format!(
                    "{}: produced {} outputs, expected {}",
                    kernel.name(),
                    outputs.len(),
                    n_out
                )));
            }
            for (i, out) in outputs.into_iter().enumerate() {
                let slot = out_regs[i] as usize;
                // Keep the storage handle from the pre-allocated buffer so
                // planned lifetimes hold.
                let storage = match &regs[slot] {
                    Object::Tensor(t) => t.storage.clone(),
                    _ => None,
                };
                regs[slot] = Object::Tensor(TensorObj {
                    tensor: out,
                    device,
                    storage,
                    declared: None,
                });
            }
            return Ok(());
        }

        // Asynchronous GPU launch: inputs are snapshotted, outputs become
        // futures carrying host-known metadata from the pre-allocated
        // buffers.
        let inputs: Vec<Object> = in_regs.iter().map(|&r| regs[r as usize].clone()).collect();
        let future = TensorFuture::pending();
        let job_future = future.clone();
        let job_kernel = kernel.clone();
        self.devices.gpu_lane(lane).launch(move || {
            let mut tensors = Vec::with_capacity(inputs.len());
            for obj in &inputs {
                match obj.wait_tensor() {
                    Ok(t) => tensors.push(t),
                    Err(e) => {
                        job_future.fail(e.to_string());
                        return;
                    }
                }
            }
            match job_kernel.invoke(&tensors) {
                Ok(outs) => job_future.fulfill(outs),
                Err(e) => job_future.fail(e.to_string()),
            }
        });
        for (i, &slot) in out_regs.iter().enumerate() {
            let slot = slot as usize;
            let (shape, dtype) = match &regs[slot] {
                Object::Tensor(t) => (
                    t.declared
                        .clone()
                        .unwrap_or_else(|| t.tensor.dims().to_vec()),
                    t.tensor.dtype(),
                ),
                _ => (Vec::new(), nimble_tensor::DType::F32),
            };
            regs[slot] = Object::Future(FutureObj {
                future: future.clone(),
                output_index: i,
                shape,
                dtype,
                device: DeviceId::Gpu,
            });
        }
        Ok(())
    }
}
