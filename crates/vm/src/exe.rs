//! The VM executable: platform-independent bytecode, the constant pool,
//! and kernel descriptors.
//!
//! "Nimble compiles a dynamic model into a VM executable that contains
//! platform-independent bytecode and platform-dependent kernel code"
//! (Section 5). Closures cannot be serialized, so the executable stores
//! *kernel descriptors* — enough information to re-instantiate each kernel
//! on the loading platform via `nimble-codegen`. The bytecode itself
//! serializes with the variable-length format of [`crate::isa`].

use crate::isa::{self, Instruction};
use crate::{Result, VmError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use nimble_codegen::kernel::Kernel;
use nimble_codegen::shape_func::ShapeFuncKernel;
use nimble_ir::attrs::{AttrValue, Attrs};
use nimble_ir::expr::{Expr, Function};
use nimble_ir::types::Type;
use nimble_ir::Var;
use nimble_tensor::{DType, Data, Tensor};

/// An argument of a fused-kernel member operation.
#[derive(Debug, Clone, PartialEq)]
pub enum MemberArg {
    /// The i-th kernel parameter.
    Param(u32),
    /// The output of an earlier member.
    Member(u32),
    /// An entry of the executable's constant pool.
    Const(u32),
}

/// One operation inside a fused kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedMember {
    /// Operator name.
    pub op: String,
    /// Static attributes.
    pub attrs: Attrs,
    /// Argument sources.
    pub args: Vec<MemberArg>,
}

/// A serializable description of one kernel-table entry.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelDesc {
    /// A single operator kernel.
    Op {
        /// Operator name.
        name: String,
        /// Static attributes.
        attrs: Attrs,
        /// Use symbolic (residue-dispatch) codegen.
        symbolic: bool,
    },
    /// A fused primitive kernel.
    Fused {
        /// Number of parameters.
        num_params: u32,
        /// Member operations in execution order.
        members: Vec<FusedMember>,
    },
    /// The shape function of a single operator.
    ShapeFuncOp {
        /// Operator name.
        name: String,
        /// Static attributes.
        attrs: Attrs,
        /// Dtypes of the operator's tensor inputs.
        in_dtypes: Vec<DType>,
    },
    /// The composite shape function of a fused primitive.
    ShapeFuncFused {
        /// Number of parameters.
        num_params: u32,
        /// Member operations.
        members: Vec<FusedMember>,
        /// Dtypes of the primitive's parameters.
        in_dtypes: Vec<DType>,
    },
}

/// Rebuild an IR function from a fused descriptor (fresh variables).
fn rebuild_function(
    num_params: u32,
    members: &[FusedMember],
    constants: &[Tensor],
) -> Result<Function> {
    let params: Vec<Var> = (0..num_params)
        .map(|i| Var::fresh(&format!("p{i}"), Type::Unknown))
        .collect();
    let member_vars: Vec<Var> = (0..members.len())
        .map(|i| Var::fresh(&format!("m{i}"), Type::Unknown))
        .collect();
    let result = member_vars
        .last()
        .ok_or_else(|| VmError::msg("fused kernel with no members"))?
        .to_expr();
    let mut body = result;
    for (i, m) in members.iter().enumerate().rev() {
        let args: Vec<Expr> = m
            .args
            .iter()
            .map(|a| match a {
                MemberArg::Param(p) => params
                    .get(*p as usize)
                    .map(|v| v.to_expr())
                    .ok_or_else(|| VmError::msg("fused param index out of range")),
                MemberArg::Member(j) => member_vars
                    .get(*j as usize)
                    .map(|v| v.to_expr())
                    .ok_or_else(|| VmError::msg("fused member index out of range")),
                MemberArg::Const(c) => constants
                    .get(*c as usize)
                    .map(|t| Expr::constant(t.clone()))
                    .ok_or_else(|| VmError::msg("fused constant index out of range")),
            })
            .collect::<Result<_>>()?;
        body = Expr::let_(
            member_vars[i].clone(),
            Expr::new(nimble_ir::ExprKind::Call {
                callee: Expr::op(&m.op),
                args,
                attrs: m.attrs.clone(),
            }),
            body,
        );
    }
    Ok(Function::new(params, body, Type::Unknown))
}

impl KernelDesc {
    /// Instantiate the kernel on the loading platform.
    ///
    /// # Errors
    /// Fails for unknown operators or malformed fused bodies.
    pub fn instantiate(&self, constants: &[Tensor]) -> Result<Kernel> {
        match self {
            KernelDesc::Op {
                name,
                attrs,
                symbolic,
            } => Ok(Kernel::from_op(name, attrs, *symbolic)?),
            KernelDesc::Fused {
                num_params,
                members,
            } => {
                let f = rebuild_function(*num_params, members, constants)?;
                Ok(Kernel::from_primitive(&f)?)
            }
            KernelDesc::ShapeFuncOp {
                name,
                attrs,
                in_dtypes,
            } => {
                let sf = ShapeFuncKernel::from_op(name, attrs, in_dtypes.clone())?;
                Ok(wrap_shape_func(sf))
            }
            KernelDesc::ShapeFuncFused {
                num_params,
                members,
                in_dtypes,
            } => {
                let f = rebuild_function(*num_params, members, constants)?;
                let sf = ShapeFuncKernel::from_primitive(&f, in_dtypes.clone())?;
                Ok(wrap_shape_func(sf))
            }
        }
    }

    /// Whether this entry is a shape function (always CPU-executed).
    pub fn is_shape_func(&self) -> bool {
        matches!(
            self,
            KernelDesc::ShapeFuncOp { .. } | KernelDesc::ShapeFuncFused { .. }
        )
    }
}

fn wrap_shape_func(sf: ShapeFuncKernel) -> Kernel {
    let name = format!("shape_func({})", sf.name());
    Kernel::new(&name, move |inputs| sf.invoke(inputs))
}

/// A lowered function: named bytecode with a register budget.
#[derive(Debug, Clone, PartialEq)]
pub struct VMFunction {
    /// Function name (entry point is `main`).
    pub name: String,
    /// Number of parameters (occupying registers `0..num_params`).
    pub num_params: u32,
    /// Total registers used.
    pub num_regs: u32,
    /// Instruction sequence.
    pub code: Vec<Instruction>,
}

/// A complete, loadable VM program.
#[derive(Debug, Clone, Default)]
pub struct Executable {
    /// Function table.
    pub functions: Vec<VMFunction>,
    /// Constant pool (weights live here and stay in memory, referenced by
    /// `LoadConst`).
    pub constants: Vec<Tensor>,
    /// Preferred device index per constant (pre-placement).
    pub const_devices: Vec<u8>,
    /// Kernel table descriptors.
    pub kernels: Vec<KernelDesc>,
}

impl Executable {
    /// Index of a function by name.
    ///
    /// # Errors
    /// Fails when the function does not exist.
    pub fn function_index(&self, name: &str) -> Result<u32> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
            .ok_or_else(|| VmError::msg(format!("no function named {name}")))
    }

    /// Total bytecode instruction count (diagnostics).
    pub fn num_instructions(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }

    /// Pre-pack every constant that feeds a dense/conv2d weight slot into
    /// the process-wide pack cache (`nimble_tensor::prepack`), so the first
    /// inference of every VM session — and every residue variant of the
    /// symbolic dense kernels — starts from already-packed panels.
    ///
    /// Two sources are scanned: fused kernel bodies whose members embed the
    /// weight as a `MemberArg::Const`, and bytecode `InvokePacked` calls to
    /// plain dense/conv2d kernels whose weight register traces back to a
    /// `LoadConst`. Returns the number of constants packed (deduplicated by
    /// the cache itself; re-running is a no-op).
    pub fn prepack_weights(&self) -> usize {
        self.weight_constants()
            .filter(|t| nimble_tensor::prepack::prepack_weight_tensor(t))
            .count()
    }

    /// Buffer identities of every constant [`Executable::prepack_weights`]
    /// would cache — the handle a model server passes to
    /// `nimble_tensor::prepack::release_buffers` when this program is
    /// unloaded, so its packed panels stop pinning memory.
    pub fn weight_buffer_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.weight_constants().map(|t| t.buffer_id()).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Constants feeding dense/conv2d weight slots (see
    /// [`Executable::prepack_weights`] for the two scan sources).
    fn weight_constants(&self) -> impl Iterator<Item = &Tensor> {
        let mut const_ids: Vec<u32> = Vec::new();
        for desc in &self.kernels {
            if let KernelDesc::Fused { members, .. } = desc {
                for m in members {
                    if (m.op == "dense" || m.op == "conv2d") && m.args.len() >= 2 {
                        if let MemberArg::Const(c) = m.args[1] {
                            const_ids.push(c);
                        }
                    }
                }
            }
        }
        for f in &self.functions {
            // reg -> constant index, tracked linearly (registers are SSA-ish
            // in lowered code; a later overwrite simply replaces the entry).
            let mut reg_const: std::collections::HashMap<u32, u32> =
                std::collections::HashMap::new();
            for inst in &f.code {
                match inst {
                    Instruction::LoadConst { index, dst } => {
                        reg_const.insert(*dst, *index);
                    }
                    Instruction::InvokePacked { kernel, args, .. } => {
                        let is_weighted_op = matches!(
                            self.kernels.get(*kernel as usize),
                            Some(KernelDesc::Op { name, .. })
                                if name == "dense" || name == "conv2d"
                        );
                        if is_weighted_op && args.len() >= 2 {
                            if let Some(&c) = reg_const.get(&args[1]) {
                                const_ids.push(c);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        const_ids.sort_unstable();
        const_ids.dedup();
        const_ids
            .into_iter()
            .filter_map(|c| self.constants.get(c as usize))
    }

    /// Write the serialized executable to a file.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn save_to(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.save()).map_err(|e| VmError::msg(e.to_string()))
    }

    /// Load an executable from a file written by [`Executable::save_to`].
    ///
    /// # Errors
    /// Propagates I/O failures and format errors.
    pub fn load_from(path: impl AsRef<std::path::Path>) -> Result<Executable> {
        let bytes = std::fs::read(path).map_err(|e| VmError::msg(e.to_string()))?;
        Executable::load(&bytes)
    }

    /// Serialize to bytes.
    pub fn save(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(b"NMBL");
        buf.put_u32_le(1); // format version
                           // Constants.
        buf.put_u32_le(self.constants.len() as u32);
        for (t, dev) in self
            .constants
            .iter()
            .zip(self.const_devices.iter().chain(std::iter::repeat(&0u8)))
        {
            put_tensor(&mut buf, t);
            buf.put_u8(*dev);
        }
        // Kernels.
        buf.put_u32_le(self.kernels.len() as u32);
        for k in &self.kernels {
            put_kernel_desc(&mut buf, k);
        }
        // Functions.
        buf.put_u32_le(self.functions.len() as u32);
        for f in &self.functions {
            put_string(&mut buf, &f.name);
            buf.put_u32_le(f.num_params);
            buf.put_u32_le(f.num_regs);
            buf.put_u32_le(f.code.len() as u32);
            for inst in &f.code {
                isa::encode(inst, &mut buf);
            }
        }
        buf.freeze()
    }

    /// Load from bytes produced by [`Executable::save`].
    ///
    /// # Errors
    /// Fails on bad magic, version, or truncated/corrupt payloads.
    pub fn load(data: &[u8]) -> Result<Executable> {
        let mut buf = Bytes::copy_from_slice(data);
        if buf.remaining() < 8 || &buf.copy_to_bytes(4)[..] != b"NMBL" {
            return Err(VmError::msg("bad executable magic"));
        }
        let version = buf.get_u32_le();
        if version != 1 {
            return Err(VmError::msg(format!("unsupported version {version}")));
        }
        let n_const = checked_len(&mut buf)?;
        let mut constants = Vec::with_capacity(n_const);
        let mut const_devices = Vec::with_capacity(n_const);
        for _ in 0..n_const {
            constants.push(get_tensor(&mut buf)?);
            const_devices.push(get_u8(&mut buf)?);
        }
        let n_kern = checked_len(&mut buf)?;
        let mut kernels = Vec::with_capacity(n_kern);
        for _ in 0..n_kern {
            kernels.push(get_kernel_desc(&mut buf)?);
        }
        let n_func = checked_len(&mut buf)?;
        let mut functions = Vec::with_capacity(n_func);
        for _ in 0..n_func {
            let name = get_string(&mut buf)?;
            let num_params = get_u32(&mut buf)?;
            let num_regs = get_u32(&mut buf)?;
            let n_inst = checked_len(&mut buf)?;
            let mut code = Vec::with_capacity(n_inst);
            for _ in 0..n_inst {
                code.push(isa::decode(&mut buf)?);
            }
            functions.push(VMFunction {
                name,
                num_params,
                num_regs,
                code,
            });
        }
        Ok(Executable {
            functions,
            constants,
            const_devices,
            kernels,
        })
    }
}

// ---- low-level codecs ----

fn checked_len(buf: &mut Bytes) -> Result<usize> {
    let n = get_u32(buf)? as usize;
    if n > 1 << 24 {
        return Err(VmError::msg("length field too large"));
    }
    Ok(n)
}

fn get_u8(buf: &mut Bytes) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(VmError::msg("truncated executable"));
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut Bytes) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(VmError::msg("truncated executable"));
    }
    Ok(buf.get_u32_le())
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String> {
    let n = checked_len(buf)?;
    if buf.remaining() < n {
        return Err(VmError::msg("truncated string"));
    }
    let mut bytes = vec![0u8; n];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| VmError::msg("invalid utf8"))
}

fn put_tensor(buf: &mut BytesMut, t: &Tensor) {
    buf.put_u8(t.dtype().code());
    buf.put_u32_le(t.rank() as u32);
    for &d in t.dims() {
        buf.put_u64_le(d as u64);
    }
    match t.data() {
        Data::F32(v) => {
            for &x in v {
                buf.put_f32_le(x);
            }
        }
        Data::I64(v) => {
            for &x in v {
                buf.put_i64_le(x);
            }
        }
        Data::I32(v) => {
            for &x in v {
                buf.put_i32_le(x);
            }
        }
        Data::Bool(v) => {
            for &x in v {
                buf.put_u8(x as u8);
            }
        }
    }
}

fn get_tensor(buf: &mut Bytes) -> Result<Tensor> {
    let dtype = DType::from_code(get_u8(buf)?).ok_or_else(|| VmError::msg("bad dtype"))?;
    let rank = get_u32(buf)? as usize;
    if rank > 64 {
        return Err(VmError::msg("rank too large"));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        if buf.remaining() < 8 {
            return Err(VmError::msg("truncated tensor dims"));
        }
        dims.push(buf.get_u64_le() as usize);
    }
    // Corrupt inputs can carry dims whose product overflows; reject with
    // checked arithmetic rather than panicking.
    let volume = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or_else(|| VmError::msg("tensor volume overflow"))?;
    let nbytes = volume
        .checked_mul(dtype.size_of())
        .ok_or_else(|| VmError::msg("tensor byte size overflow"))?;
    if buf.remaining() < nbytes {
        return Err(VmError::msg("truncated tensor data"));
    }
    let data = match dtype {
        DType::F32 => Data::F32((0..volume).map(|_| buf.get_f32_le()).collect()),
        DType::I64 => Data::I64((0..volume).map(|_| buf.get_i64_le()).collect()),
        DType::I32 => Data::I32((0..volume).map(|_| buf.get_i32_le()).collect()),
        DType::Bool => Data::Bool((0..volume).map(|_| buf.get_u8() != 0).collect()),
    };
    Tensor::new(data, &dims).map_err(|e| VmError(e.to_string()))
}

fn put_attr_value(buf: &mut BytesMut, v: &AttrValue) {
    match v {
        AttrValue::Int(x) => {
            buf.put_u8(0);
            buf.put_i64_le(*x);
        }
        AttrValue::IntVec(xs) => {
            buf.put_u8(1);
            buf.put_u32_le(xs.len() as u32);
            for &x in xs {
                buf.put_i64_le(x);
            }
        }
        AttrValue::Float(x) => {
            buf.put_u8(2);
            buf.put_f64_le(*x);
        }
        AttrValue::Bool(x) => {
            buf.put_u8(3);
            buf.put_u8(*x as u8);
        }
        AttrValue::Str(s) => {
            buf.put_u8(4);
            put_string(buf, s);
        }
        AttrValue::DType(d) => {
            buf.put_u8(5);
            buf.put_u8(d.code());
        }
    }
}

fn get_attr_value(buf: &mut Bytes) -> Result<AttrValue> {
    Ok(match get_u8(buf)? {
        0 => {
            if buf.remaining() < 8 {
                return Err(VmError::msg("truncated attr"));
            }
            AttrValue::Int(buf.get_i64_le())
        }
        1 => {
            let n = checked_len(buf)?;
            if buf.remaining() < n * 8 {
                return Err(VmError::msg("truncated attr vec"));
            }
            AttrValue::IntVec((0..n).map(|_| buf.get_i64_le()).collect())
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(VmError::msg("truncated attr"));
            }
            AttrValue::Float(buf.get_f64_le())
        }
        3 => AttrValue::Bool(get_u8(buf)? != 0),
        4 => AttrValue::Str(get_string(buf)?),
        5 => AttrValue::DType(
            DType::from_code(get_u8(buf)?).ok_or_else(|| VmError::msg("bad attr dtype"))?,
        ),
        other => return Err(VmError::msg(format!("bad attr tag {other}"))),
    })
}

fn put_attrs(buf: &mut BytesMut, attrs: &Attrs) {
    buf.put_u32_le(attrs.0.len() as u32);
    for (k, v) in &attrs.0 {
        put_string(buf, k);
        put_attr_value(buf, v);
    }
}

fn get_attrs(buf: &mut Bytes) -> Result<Attrs> {
    let n = checked_len(buf)?;
    let mut attrs = Attrs::new();
    for _ in 0..n {
        let k = get_string(buf)?;
        let v = get_attr_value(buf)?;
        attrs.0.insert(k, v);
    }
    Ok(attrs)
}

fn put_members(buf: &mut BytesMut, members: &[FusedMember]) {
    buf.put_u32_le(members.len() as u32);
    for m in members {
        put_string(buf, &m.op);
        put_attrs(buf, &m.attrs);
        buf.put_u32_le(m.args.len() as u32);
        for a in &m.args {
            match a {
                MemberArg::Param(i) => {
                    buf.put_u8(0);
                    buf.put_u32_le(*i);
                }
                MemberArg::Member(i) => {
                    buf.put_u8(1);
                    buf.put_u32_le(*i);
                }
                MemberArg::Const(i) => {
                    buf.put_u8(2);
                    buf.put_u32_le(*i);
                }
            }
        }
    }
}

fn get_members(buf: &mut Bytes) -> Result<Vec<FusedMember>> {
    let n = checked_len(buf)?;
    let mut members = Vec::with_capacity(n);
    for _ in 0..n {
        let op = get_string(buf)?;
        let attrs = get_attrs(buf)?;
        let n_args = checked_len(buf)?;
        let mut args = Vec::with_capacity(n_args);
        for _ in 0..n_args {
            let tag = get_u8(buf)?;
            let idx = get_u32(buf)?;
            args.push(match tag {
                0 => MemberArg::Param(idx),
                1 => MemberArg::Member(idx),
                2 => MemberArg::Const(idx),
                other => return Err(VmError::msg(format!("bad member arg tag {other}"))),
            });
        }
        members.push(FusedMember { op, attrs, args });
    }
    Ok(members)
}

fn put_dtypes(buf: &mut BytesMut, dts: &[DType]) {
    buf.put_u32_le(dts.len() as u32);
    for d in dts {
        buf.put_u8(d.code());
    }
}

fn get_dtypes(buf: &mut Bytes) -> Result<Vec<DType>> {
    let n = checked_len(buf)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(DType::from_code(get_u8(buf)?).ok_or_else(|| VmError::msg("bad dtype"))?);
    }
    Ok(out)
}

fn put_kernel_desc(buf: &mut BytesMut, k: &KernelDesc) {
    match k {
        KernelDesc::Op {
            name,
            attrs,
            symbolic,
        } => {
            buf.put_u8(0);
            put_string(buf, name);
            put_attrs(buf, attrs);
            buf.put_u8(*symbolic as u8);
        }
        KernelDesc::Fused {
            num_params,
            members,
        } => {
            buf.put_u8(1);
            buf.put_u32_le(*num_params);
            put_members(buf, members);
        }
        KernelDesc::ShapeFuncOp {
            name,
            attrs,
            in_dtypes,
        } => {
            buf.put_u8(2);
            put_string(buf, name);
            put_attrs(buf, attrs);
            put_dtypes(buf, in_dtypes);
        }
        KernelDesc::ShapeFuncFused {
            num_params,
            members,
            in_dtypes,
        } => {
            buf.put_u8(3);
            buf.put_u32_le(*num_params);
            put_members(buf, members);
            put_dtypes(buf, in_dtypes);
        }
    }
}

fn get_kernel_desc(buf: &mut Bytes) -> Result<KernelDesc> {
    Ok(match get_u8(buf)? {
        0 => KernelDesc::Op {
            name: get_string(buf)?,
            attrs: get_attrs(buf)?,
            symbolic: get_u8(buf)? != 0,
        },
        1 => KernelDesc::Fused {
            num_params: get_u32(buf)?,
            members: get_members(buf)?,
        },
        2 => KernelDesc::ShapeFuncOp {
            name: get_string(buf)?,
            attrs: get_attrs(buf)?,
            in_dtypes: get_dtypes(buf)?,
        },
        3 => KernelDesc::ShapeFuncFused {
            num_params: get_u32(buf)?,
            members: get_members(buf)?,
            in_dtypes: get_dtypes(buf)?,
        },
        other => return Err(VmError::msg(format!("bad kernel desc tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_ir::attrs::AttrValue;

    fn sample_exe() -> Executable {
        Executable {
            functions: vec![VMFunction {
                name: "main".into(),
                num_params: 1,
                num_regs: 4,
                code: vec![
                    Instruction::LoadConst { index: 0, dst: 1 },
                    Instruction::InvokePacked {
                        kernel: 0,
                        args: vec![0, 1, 2],
                        num_outputs: 1,
                        device: 0,
                    },
                    Instruction::Ret { result: 2 },
                ],
            }],
            constants: vec![
                Tensor::from_vec_f32(vec![1.0, 2.0, 3.0], &[3]).unwrap(),
                Tensor::from_vec_i64(vec![5, 7], &[2]).unwrap(),
                Tensor::from_vec_bool(vec![true, false], &[2]).unwrap(),
            ],
            const_devices: vec![0, 0, 1],
            kernels: vec![
                KernelDesc::Op {
                    name: "add".into(),
                    attrs: Attrs::new(),
                    symbolic: false,
                },
                KernelDesc::Fused {
                    num_params: 2,
                    members: vec![
                        FusedMember {
                            op: "dense".into(),
                            attrs: Attrs::new(),
                            args: vec![MemberArg::Param(0), MemberArg::Param(1)],
                        },
                        FusedMember {
                            op: "tanh".into(),
                            attrs: Attrs::new(),
                            args: vec![MemberArg::Member(0)],
                        },
                    ],
                },
                KernelDesc::ShapeFuncOp {
                    name: "concat".into(),
                    attrs: Attrs::new().with("axis", AttrValue::Int(0)),
                    in_dtypes: vec![DType::F32, DType::F32],
                },
            ],
        }
    }

    #[test]
    fn save_load_round_trip() {
        let exe = sample_exe();
        let bytes = exe.save();
        let loaded = Executable::load(&bytes).unwrap();
        assert_eq!(loaded.functions, exe.functions);
        assert_eq!(loaded.constants.len(), 3);
        assert_eq!(
            loaded.constants[0].as_f32().unwrap(),
            exe.constants[0].as_f32().unwrap()
        );
        assert_eq!(loaded.constants[1].as_i64().unwrap(), &[5, 7]);
        assert_eq!(loaded.constants[2].as_bool().unwrap(), &[true, false]);
        assert_eq!(loaded.const_devices, vec![0, 0, 1]);
        assert_eq!(loaded.kernels, exe.kernels);
    }

    #[test]
    fn load_rejects_corrupt() {
        assert!(Executable::load(b"JUNK").is_err());
        assert!(Executable::load(b"").is_err());
        let exe = sample_exe();
        let bytes = exe.save();
        // Truncation anywhere must be an error, not a panic.
        for cut in [5, 9, 20, bytes.len() - 1] {
            assert!(Executable::load(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Bad version.
        let mut bad = bytes.to_vec();
        bad[4] = 99;
        assert!(Executable::load(&bad).is_err());
    }

    #[test]
    fn kernel_descs_instantiate() {
        let exe = sample_exe();
        for k in &exe.kernels {
            let kernel = k.instantiate(&exe.constants).unwrap();
            assert!(!kernel.name().is_empty());
        }
        // The fused kernel computes tanh(dense(x, w)).
        let fused = exe.kernels[1].instantiate(&exe.constants).unwrap();
        let x = Tensor::ones_f32(&[2, 3]);
        let w = Tensor::ones_f32(&[4, 3]);
        let out = fused.invoke(&[x, w]).unwrap();
        assert_eq!(out[0].dims(), &[2, 4]);
        let expect = 3.0f32.tanh();
        assert!(out[0]
            .as_f32()
            .unwrap()
            .iter()
            .all(|&v| (v - expect).abs() < 1e-6));
    }

    #[test]
    fn shape_func_desc_instantiates_and_runs() {
        let exe = sample_exe();
        let sf = exe.kernels[2].instantiate(&exe.constants).unwrap();
        let a = Tensor::from_vec_i64(vec![3, 2], &[2]).unwrap();
        let b = Tensor::from_vec_i64(vec![4, 2], &[2]).unwrap();
        let out = sf.invoke(&[a, b]).unwrap();
        assert_eq!(out[0].as_i64().unwrap(), &[7, 2]);
        assert!(exe.kernels[2].is_shape_func());
        assert!(!exe.kernels[0].is_shape_func());
    }

    #[test]
    fn function_lookup() {
        let exe = sample_exe();
        assert_eq!(exe.function_index("main").unwrap(), 0);
        assert!(exe.function_index("missing").is_err());
        assert_eq!(exe.num_instructions(), 3);
    }

    #[test]
    fn fused_desc_with_constants() {
        // A fused member referencing the constant pool.
        let exe = sample_exe();
        let desc = KernelDesc::Fused {
            num_params: 1,
            members: vec![FusedMember {
                op: "add".into(),
                attrs: Attrs::new(),
                args: vec![MemberArg::Param(0), MemberArg::Const(0)],
            }],
        };
        let k = desc.instantiate(&exe.constants).unwrap();
        let x = Tensor::from_vec_f32(vec![10.0, 10.0, 10.0], &[3]).unwrap();
        let out = k.invoke(&[x]).unwrap();
        assert_eq!(out[0].as_f32().unwrap(), &[11.0, 12.0, 13.0]);
    }
}
