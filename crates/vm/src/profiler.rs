//! Per-category execution profiler.
//!
//! Table 4 of the paper splits BERT latency into "kernel" time (the
//! `InvokePacked` instructions doing real compute) and "others" (shape
//! functions, allocation, dispatch, control flow). This profiler
//! accumulates exactly those buckets plus per-opcode counts.

use crate::isa::{opcode_name, NUM_OPCODES};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Which bucket an instruction's time lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Compute-kernel invocation.
    Kernel,
    /// Shape-function invocation.
    ShapeFunc,
    /// Everything else (allocation, moves, control flow, copies).
    Other,
}

/// Accumulated profile.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    enabled: bool,
    kernel_ns: u64,
    shape_func_ns: u64,
    other_ns: u64,
    counts: [u64; NUM_OPCODES],
    op_ns: [u64; NUM_OPCODES],
    kernel_invocations: u64,
}

/// A finished profile snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileReport {
    /// Time in compute kernels (ns).
    pub kernel_ns: u64,
    /// Time in shape functions (ns).
    pub shape_func_ns: u64,
    /// Time in all other instructions (ns).
    pub other_ns: u64,
    /// Total instructions executed.
    pub instructions: u64,
    /// Compute-kernel invocations.
    pub kernel_invocations: u64,
    /// Executions per opcode.
    pub counts: [u64; NUM_OPCODES],
    /// Time per opcode (ns); zero when the profiler ran count-only.
    pub op_ns: [u64; NUM_OPCODES],
}

/// One row of [`ProfileReport::top_opcodes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpcodeStat {
    /// Raw opcode byte.
    pub opcode: u8,
    /// Mnemonic for display.
    pub name: &'static str,
    /// Executions.
    pub count: u64,
    /// Accumulated time (ns).
    pub ns: u64,
}

impl ProfileReport {
    /// "others" as the paper defines it: everything that is not kernel
    /// execution.
    pub fn others_total_ns(self) -> u64 {
        self.shape_func_ns + self.other_ns
    }

    /// The `n` most expensive opcodes by accumulated time (ties broken by
    /// execution count), skipping opcodes that never ran. Used by the
    /// serve stats printer and the Prometheus exporter.
    pub fn top_opcodes(&self, n: usize) -> Vec<OpcodeStat> {
        let mut stats: Vec<OpcodeStat> = (0..NUM_OPCODES)
            .filter(|&i| self.counts[i] > 0)
            .map(|i| OpcodeStat {
                opcode: i as u8,
                name: opcode_name(i as u8),
                count: self.counts[i],
                ns: self.op_ns[i],
            })
            .collect();
        stats.sort_by(|a, b| b.ns.cmp(&a.ns).then(b.count.cmp(&a.count)));
        stats.truncate(n);
        stats
    }
}

impl std::ops::Add for ProfileReport {
    type Output = ProfileReport;
    fn add(self, rhs: ProfileReport) -> ProfileReport {
        let mut counts = self.counts;
        let mut op_ns = self.op_ns;
        for i in 0..NUM_OPCODES {
            counts[i] += rhs.counts[i];
            op_ns[i] += rhs.op_ns[i];
        }
        ProfileReport {
            kernel_ns: self.kernel_ns + rhs.kernel_ns,
            shape_func_ns: self.shape_func_ns + rhs.shape_func_ns,
            other_ns: self.other_ns + rhs.other_ns,
            instructions: self.instructions + rhs.instructions,
            kernel_invocations: self.kernel_invocations + rhs.kernel_invocations,
            counts,
            op_ns,
        }
    }
}

impl std::ops::AddAssign for ProfileReport {
    fn add_assign(&mut self, rhs: ProfileReport) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for ProfileReport {
    fn sum<I: Iterator<Item = ProfileReport>>(iter: I) -> ProfileReport {
        iter.fold(ProfileReport::default(), |acc, r| acc + r)
    }
}

/// Lock-free cross-thread profile aggregate: every [`crate::Session`]
/// merges its per-run [`Profiler`] here, so Table-4-style breakdowns stay
/// exact when many worker threads share one loaded program.
#[derive(Debug, Default)]
pub struct SharedProfiler {
    kernel_ns: AtomicU64,
    shape_func_ns: AtomicU64,
    other_ns: AtomicU64,
    instructions: AtomicU64,
    kernel_invocations: AtomicU64,
    counts: [AtomicU64; NUM_OPCODES],
    op_ns: [AtomicU64; NUM_OPCODES],
    runs: AtomicU64,
}

impl SharedProfiler {
    /// Fresh, empty aggregate.
    pub fn new() -> SharedProfiler {
        SharedProfiler::default()
    }

    /// Fold one finished per-run profile into the totals.
    pub fn merge(&self, report: ProfileReport) {
        self.kernel_ns
            .fetch_add(report.kernel_ns, Ordering::Relaxed);
        self.shape_func_ns
            .fetch_add(report.shape_func_ns, Ordering::Relaxed);
        self.other_ns.fetch_add(report.other_ns, Ordering::Relaxed);
        self.instructions
            .fetch_add(report.instructions, Ordering::Relaxed);
        self.kernel_invocations
            .fetch_add(report.kernel_invocations, Ordering::Relaxed);
        for i in 0..NUM_OPCODES {
            if report.counts[i] != 0 {
                self.counts[i].fetch_add(report.counts[i], Ordering::Relaxed);
            }
            if report.op_ns[i] != 0 {
                self.op_ns[i].fetch_add(report.op_ns[i], Ordering::Relaxed);
            }
        }
        self.runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of runs merged since the last reset.
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// Snapshot the aggregated totals.
    pub fn report(&self) -> ProfileReport {
        let mut counts = [0u64; NUM_OPCODES];
        let mut op_ns = [0u64; NUM_OPCODES];
        for i in 0..NUM_OPCODES {
            counts[i] = self.counts[i].load(Ordering::Relaxed);
            op_ns[i] = self.op_ns[i].load(Ordering::Relaxed);
        }
        ProfileReport {
            kernel_ns: self.kernel_ns.load(Ordering::Relaxed),
            shape_func_ns: self.shape_func_ns.load(Ordering::Relaxed),
            other_ns: self.other_ns.load(Ordering::Relaxed),
            instructions: self.instructions.load(Ordering::Relaxed),
            kernel_invocations: self.kernel_invocations.load(Ordering::Relaxed),
            counts,
            op_ns,
        }
    }

    /// Clear all accumulated data.
    pub fn reset(&self) {
        self.kernel_ns.store(0, Ordering::Relaxed);
        self.shape_func_ns.store(0, Ordering::Relaxed);
        self.other_ns.store(0, Ordering::Relaxed);
        self.instructions.store(0, Ordering::Relaxed);
        self.kernel_invocations.store(0, Ordering::Relaxed);
        for i in 0..NUM_OPCODES {
            self.counts[i].store(0, Ordering::Relaxed);
            self.op_ns[i].store(0, Ordering::Relaxed);
        }
        self.runs.store(0, Ordering::Relaxed);
    }
}

impl Profiler {
    /// Create a profiler; disabled profilers cost one branch per
    /// instruction.
    pub fn new(enabled: bool) -> Profiler {
        Profiler {
            enabled,
            ..Profiler::default()
        }
    }

    /// Whether timing is being collected.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record one executed instruction.
    pub fn record(&mut self, opcode: u8, category: Category, elapsed: Duration) {
        self.counts[opcode as usize] += 1;
        if category == Category::Kernel {
            self.kernel_invocations += 1;
        }
        if !self.enabled {
            return;
        }
        let ns = elapsed.as_nanos() as u64;
        self.op_ns[opcode as usize] += ns;
        match category {
            Category::Kernel => self.kernel_ns += ns,
            Category::ShapeFunc => self.shape_func_ns += ns,
            Category::Other => self.other_ns += ns,
        }
    }

    /// Attribute host-blocking synchronization (waiting for the device
    /// stream) to kernel time, as the paper does for the GPU row of
    /// Table 4.
    pub fn record_sync(&mut self, elapsed: Duration) {
        if self.enabled {
            self.kernel_ns += elapsed.as_nanos() as u64;
        }
    }

    /// Executions of one opcode.
    pub fn count(&self, opcode: u8) -> u64 {
        self.counts[opcode as usize]
    }

    /// Snapshot totals.
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            kernel_ns: self.kernel_ns,
            shape_func_ns: self.shape_func_ns,
            other_ns: self.other_ns,
            instructions: self.counts.iter().sum(),
            kernel_invocations: self.kernel_invocations,
            counts: self.counts,
            op_ns: self.op_ns,
        }
    }

    /// Clear all accumulated data, keeping the enabled flag.
    pub fn reset(&mut self) {
        let enabled = self.enabled;
        *self = Profiler::new(enabled);
    }

    /// Clear all accumulated data and set the enabled flag (sessions call
    /// this at the start of each run with the VM's current profiling mode).
    pub fn reset_with(&mut self, enabled: bool) {
        *self = Profiler::new(enabled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate() {
        let mut p = Profiler::new(true);
        p.record(4, Category::Kernel, Duration::from_nanos(100));
        p.record(4, Category::ShapeFunc, Duration::from_nanos(30));
        p.record(0, Category::Other, Duration::from_nanos(5));
        p.record_sync(Duration::from_nanos(50));
        let r = p.report();
        assert_eq!(r.kernel_ns, 150);
        assert_eq!(r.shape_func_ns, 30);
        assert_eq!(r.other_ns, 5);
        assert_eq!(r.others_total_ns(), 35);
        assert_eq!(r.instructions, 3);
        assert_eq!(r.kernel_invocations, 1);
        assert_eq!(p.count(4), 2);
    }

    #[test]
    fn disabled_profiler_counts_but_does_not_time() {
        let mut p = Profiler::new(false);
        p.record(4, Category::Kernel, Duration::from_nanos(1000));
        let r = p.report();
        assert_eq!(r.kernel_ns, 0);
        assert_eq!(r.instructions, 1);
        assert_eq!(r.kernel_invocations, 1);
    }

    #[test]
    fn shared_profiler_aggregates_across_threads() {
        let shared = std::sync::Arc::new(SharedProfiler::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        let mut p = Profiler::new(true);
                        p.record(4, Category::Kernel, Duration::from_nanos(10));
                        shared.merge(p.report());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let r = shared.report();
        assert_eq!(r.kernel_ns, 400);
        assert_eq!(r.instructions, 40);
        assert_eq!(r.kernel_invocations, 40);
        assert_eq!(shared.runs(), 40);
        shared.reset();
        assert_eq!(shared.report(), ProfileReport::default());
        assert_eq!(shared.runs(), 0);
    }

    #[test]
    fn report_sum_matches_merge() {
        let a = ProfileReport {
            kernel_ns: 5,
            shape_func_ns: 2,
            other_ns: 1,
            instructions: 7,
            kernel_invocations: 3,
            ..ProfileReport::default()
        };
        let b = ProfileReport {
            kernel_ns: 10,
            ..ProfileReport::default()
        };
        let total: ProfileReport = [a, b].into_iter().sum();
        assert_eq!(total.kernel_ns, 15);
        assert_eq!(total.instructions, 7);
        let shared = SharedProfiler::new();
        shared.merge(a);
        shared.merge(b);
        assert_eq!(shared.report(), total);
    }

    #[test]
    fn per_opcode_time_and_top_opcodes() {
        let mut p = Profiler::new(true);
        p.record(4, Category::Kernel, Duration::from_nanos(500));
        p.record(4, Category::Kernel, Duration::from_nanos(300));
        p.record(5, Category::Other, Duration::from_nanos(90));
        p.record(0, Category::Other, Duration::from_nanos(10));
        let r = p.report();
        assert_eq!(r.op_ns[4], 800);
        assert_eq!(r.op_ns[5], 90);
        assert_eq!(r.counts[4], 2);
        let top = r.top_opcodes(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].name, "InvokePacked");
        assert_eq!(top[0].ns, 800);
        assert_eq!(top[0].count, 2);
        assert_eq!(top[1].name, "AllocStorage");
        // Opcodes that never ran are excluded even with a large n.
        assert_eq!(r.top_opcodes(100).len(), 3);
        // Per-opcode arrays ride through the shared aggregate.
        let shared = SharedProfiler::new();
        shared.merge(r);
        shared.merge(r);
        let agg = shared.report();
        assert_eq!(agg.op_ns[4], 1600);
        assert_eq!(agg.counts[4], 4);
        shared.reset();
        assert_eq!(shared.report().op_ns[4], 0);
    }

    #[test]
    fn reset_preserves_enabled() {
        let mut p = Profiler::new(true);
        p.record(1, Category::Other, Duration::from_nanos(10));
        p.reset();
        assert!(p.enabled());
        assert_eq!(p.report().instructions, 0);
    }
}
