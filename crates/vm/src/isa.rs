//! The VM instruction set — the 20 opcodes of paper Table A.1.
//!
//! Instructions are CISC-style: each corresponds to a primitive IR
//! expression on tensors ("if we treat kernel invocation as a single
//! instruction, the cost of surrounding instructions is negligible").
//! Registers are frame-local and unbounded; the compiler allocates them as
//! in SSA. The binary encoding is variable length ("due to the inclusion
//! of variable sized operands such as data shapes").

use crate::{Result, VmError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use nimble_tensor::DType;

/// A virtual register index within the current call frame.
pub type RegId = u32;

/// One VM instruction. Variants map 1:1 onto Table A.1.
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// Moves data from one register to another.
    Move {
        /// Source register.
        src: RegId,
        /// Destination register.
        dst: RegId,
    },
    /// Returns the object in the result register to the caller's register.
    Ret {
        /// Register holding the return value.
        result: RegId,
    },
    /// Invokes a (global) function by index.
    Invoke {
        /// Index into the executable's function table.
        func: u32,
        /// Argument registers.
        args: Vec<RegId>,
        /// Destination register for the return value.
        dst: RegId,
    },
    /// Invokes a closure object.
    InvokeClosure {
        /// Register holding the closure.
        closure: RegId,
        /// Argument registers.
        args: Vec<RegId>,
        /// Destination register for the return value.
        dst: RegId,
    },
    /// Invokes an optimized operator kernel. The last `num_outputs`
    /// entries of `args` are the pre-allocated output registers.
    InvokePacked {
        /// Index into the executable's kernel table.
        kernel: u32,
        /// Input registers followed by output registers.
        args: Vec<RegId>,
        /// How many trailing `args` are outputs.
        num_outputs: u32,
        /// Device index the kernel executes on (0 = CPU, 1 = GPU).
        device: u8,
    },
    /// Allocates a storage block on a specified device.
    AllocStorage {
        /// Size in bytes.
        size: u64,
        /// Alignment in bytes.
        alignment: u32,
        /// Device index.
        device: u8,
        /// Destination register.
        dst: RegId,
    },
    /// Allocates a tensor object with a static shape from a storage.
    AllocTensor {
        /// Register holding the storage object.
        storage: RegId,
        /// Byte offset within the storage.
        offset: u64,
        /// Static shape.
        shape: Vec<i64>,
        /// Element type.
        dtype: DType,
        /// Destination register.
        dst: RegId,
    },
    /// Allocates a tensor object given the shape in a register.
    AllocTensorReg {
        /// Register holding a rank-1 i64 shape tensor.
        shape: RegId,
        /// Element type.
        dtype: DType,
        /// Device index.
        device: u8,
        /// Destination register.
        dst: RegId,
    },
    /// Allocates a data type (ADT) using the entries from registers.
    AllocADT {
        /// Constructor tag.
        tag: u32,
        /// Field registers.
        fields: Vec<RegId>,
        /// Destination register.
        dst: RegId,
    },
    /// Allocates a closure with a lowered virtual machine function.
    AllocClosure {
        /// Index into the executable's function table.
        func: u32,
        /// Captured-variable registers.
        captures: Vec<RegId>,
        /// Destination register.
        dst: RegId,
    },
    /// Gets the value at a certain index from a VM object.
    GetField {
        /// Register holding an ADT/tuple object.
        object: RegId,
        /// Field index.
        index: u32,
        /// Destination register.
        dst: RegId,
    },
    /// Gets the tag of an ADT constructor.
    GetTag {
        /// Register holding an ADT object.
        object: RegId,
        /// Destination register (scalar i64 tensor).
        dst: RegId,
    },
    /// Jumps to the true or false offset depending on the comparison of
    /// two scalar registers.
    If {
        /// Left-hand scalar register.
        lhs: RegId,
        /// Right-hand scalar register.
        rhs: RegId,
        /// Relative pc offset taken when `lhs == rhs`.
        true_offset: i32,
        /// Relative pc offset taken otherwise.
        false_offset: i32,
    },
    /// Unconditionally jumps to an offset.
    Goto {
        /// Relative pc offset.
        offset: i32,
    },
    /// Loads a constant at an index from the constant pool.
    LoadConst {
        /// Constant-pool index.
        index: u32,
        /// Destination register.
        dst: RegId,
    },
    /// Loads a constant immediate (scalar i64).
    LoadConsti {
        /// Immediate value.
        value: i64,
        /// Destination register.
        dst: RegId,
    },
    /// Copies a chunk of data from one device to another.
    DeviceCopy {
        /// Source register.
        src: RegId,
        /// Source device index.
        src_device: u8,
        /// Destination device index.
        dst_device: u8,
        /// Destination register.
        dst: RegId,
    },
    /// Retrieves the shape of a tensor.
    ShapeOf {
        /// Register holding a tensor.
        tensor: RegId,
        /// Destination register (rank-1 i64 tensor).
        dst: RegId,
    },
    /// Assigns a new shape to a tensor without altering its data.
    ReshapeTensor {
        /// Register holding the tensor.
        tensor: RegId,
        /// Register holding the new shape (rank-1 i64 tensor).
        shape: RegId,
        /// Destination register.
        dst: RegId,
    },
    /// Raises fatal in the VM.
    Fatal {
        /// Diagnostic message.
        message: String,
    },
}

impl Instruction {
    /// The opcode byte used by the serializer; also the opcode-category
    /// index used by the profiler.
    pub fn opcode(&self) -> u8 {
        match self {
            Instruction::Move { .. } => 0,
            Instruction::Ret { .. } => 1,
            Instruction::Invoke { .. } => 2,
            Instruction::InvokeClosure { .. } => 3,
            Instruction::InvokePacked { .. } => 4,
            Instruction::AllocStorage { .. } => 5,
            Instruction::AllocTensor { .. } => 6,
            Instruction::AllocTensorReg { .. } => 7,
            Instruction::AllocADT { .. } => 8,
            Instruction::AllocClosure { .. } => 9,
            Instruction::GetField { .. } => 10,
            Instruction::GetTag { .. } => 11,
            Instruction::If { .. } => 12,
            Instruction::Goto { .. } => 13,
            Instruction::LoadConst { .. } => 14,
            Instruction::LoadConsti { .. } => 15,
            Instruction::DeviceCopy { .. } => 16,
            Instruction::ShapeOf { .. } => 17,
            Instruction::ReshapeTensor { .. } => 18,
            Instruction::Fatal { .. } => 19,
        }
    }

    /// Human-readable mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        opcode_name(self.opcode())
    }
}

/// Mnemonic for a raw opcode byte (out-of-range bytes map to `"Unknown"`).
/// Shared by [`Instruction::mnemonic`], the profiler's per-opcode report,
/// and trace span names.
pub fn opcode_name(opcode: u8) -> &'static str {
    const NAMES: [&str; NUM_OPCODES] = [
        "Move",
        "Ret",
        "Invoke",
        "InvokeClosure",
        "InvokePacked",
        "AllocStorage",
        "AllocTensor",
        "AllocTensorReg",
        "AllocADT",
        "AllocClosure",
        "GetField",
        "GetTag",
        "If",
        "Goto",
        "LoadConst",
        "LoadConsti",
        "DeviceCopy",
        "ShapeOf",
        "ReshapeTensor",
        "Fatal",
    ];
    NAMES.get(opcode as usize).copied().unwrap_or("Unknown")
}

/// Total number of opcodes (the paper: "the current instruction set only
/// contains 20 instructions").
pub const NUM_OPCODES: usize = 20;

fn put_regs(buf: &mut BytesMut, regs: &[RegId]) {
    buf.put_u32_le(regs.len() as u32);
    for &r in regs {
        buf.put_u32_le(r);
    }
}

fn get_regs(buf: &mut Bytes) -> Result<Vec<RegId>> {
    let n = get_u32(buf)? as usize;
    if n > 1 << 20 {
        return Err(VmError::msg("register list too long"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_u32(buf)?);
    }
    Ok(out)
}

fn need(buf: &Bytes, n: usize) -> Result<()> {
    if buf.remaining() < n {
        Err(VmError::msg("truncated bytecode"))
    } else {
        Ok(())
    }
}

fn get_u32(buf: &mut Bytes) -> Result<u32> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes) -> Result<u64> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

fn get_i64(buf: &mut Bytes) -> Result<i64> {
    need(buf, 8)?;
    Ok(buf.get_i64_le())
}

fn get_i32(buf: &mut Bytes) -> Result<i32> {
    need(buf, 4)?;
    Ok(buf.get_i32_le())
}

fn get_u8(buf: &mut Bytes) -> Result<u8> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

/// Serialize one instruction (variable-length format).
pub fn encode(inst: &Instruction, buf: &mut BytesMut) {
    buf.put_u8(inst.opcode());
    match inst {
        Instruction::Move { src, dst } => {
            buf.put_u32_le(*src);
            buf.put_u32_le(*dst);
        }
        Instruction::Ret { result } => buf.put_u32_le(*result),
        Instruction::Invoke { func, args, dst } => {
            buf.put_u32_le(*func);
            put_regs(buf, args);
            buf.put_u32_le(*dst);
        }
        Instruction::InvokeClosure { closure, args, dst } => {
            buf.put_u32_le(*closure);
            put_regs(buf, args);
            buf.put_u32_le(*dst);
        }
        Instruction::InvokePacked {
            kernel,
            args,
            num_outputs,
            device,
        } => {
            buf.put_u32_le(*kernel);
            put_regs(buf, args);
            buf.put_u32_le(*num_outputs);
            buf.put_u8(*device);
        }
        Instruction::AllocStorage {
            size,
            alignment,
            device,
            dst,
        } => {
            buf.put_u64_le(*size);
            buf.put_u32_le(*alignment);
            buf.put_u8(*device);
            buf.put_u32_le(*dst);
        }
        Instruction::AllocTensor {
            storage,
            offset,
            shape,
            dtype,
            dst,
        } => {
            buf.put_u32_le(*storage);
            buf.put_u64_le(*offset);
            buf.put_u32_le(shape.len() as u32);
            for &d in shape {
                buf.put_i64_le(d);
            }
            buf.put_u8(dtype.code());
            buf.put_u32_le(*dst);
        }
        Instruction::AllocTensorReg {
            shape,
            dtype,
            device,
            dst,
        } => {
            buf.put_u32_le(*shape);
            buf.put_u8(dtype.code());
            buf.put_u8(*device);
            buf.put_u32_le(*dst);
        }
        Instruction::AllocADT { tag, fields, dst } => {
            buf.put_u32_le(*tag);
            put_regs(buf, fields);
            buf.put_u32_le(*dst);
        }
        Instruction::AllocClosure {
            func,
            captures,
            dst,
        } => {
            buf.put_u32_le(*func);
            put_regs(buf, captures);
            buf.put_u32_le(*dst);
        }
        Instruction::GetField { object, index, dst } => {
            buf.put_u32_le(*object);
            buf.put_u32_le(*index);
            buf.put_u32_le(*dst);
        }
        Instruction::GetTag { object, dst } => {
            buf.put_u32_le(*object);
            buf.put_u32_le(*dst);
        }
        Instruction::If {
            lhs,
            rhs,
            true_offset,
            false_offset,
        } => {
            buf.put_u32_le(*lhs);
            buf.put_u32_le(*rhs);
            buf.put_i32_le(*true_offset);
            buf.put_i32_le(*false_offset);
        }
        Instruction::Goto { offset } => buf.put_i32_le(*offset),
        Instruction::LoadConst { index, dst } => {
            buf.put_u32_le(*index);
            buf.put_u32_le(*dst);
        }
        Instruction::LoadConsti { value, dst } => {
            buf.put_i64_le(*value);
            buf.put_u32_le(*dst);
        }
        Instruction::DeviceCopy {
            src,
            src_device,
            dst_device,
            dst,
        } => {
            buf.put_u32_le(*src);
            buf.put_u8(*src_device);
            buf.put_u8(*dst_device);
            buf.put_u32_le(*dst);
        }
        Instruction::ShapeOf { tensor, dst } => {
            buf.put_u32_le(*tensor);
            buf.put_u32_le(*dst);
        }
        Instruction::ReshapeTensor { tensor, shape, dst } => {
            buf.put_u32_le(*tensor);
            buf.put_u32_le(*shape);
            buf.put_u32_le(*dst);
        }
        Instruction::Fatal { message } => {
            let b = message.as_bytes();
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
    }
}

/// Deserialize one instruction.
///
/// # Errors
/// Fails on truncated input or unknown opcodes.
pub fn decode(buf: &mut Bytes) -> Result<Instruction> {
    let op = get_u8(buf)?;
    Ok(match op {
        0 => Instruction::Move {
            src: get_u32(buf)?,
            dst: get_u32(buf)?,
        },
        1 => Instruction::Ret {
            result: get_u32(buf)?,
        },
        2 => Instruction::Invoke {
            func: get_u32(buf)?,
            args: get_regs(buf)?,
            dst: get_u32(buf)?,
        },
        3 => Instruction::InvokeClosure {
            closure: get_u32(buf)?,
            args: get_regs(buf)?,
            dst: get_u32(buf)?,
        },
        4 => Instruction::InvokePacked {
            kernel: get_u32(buf)?,
            args: get_regs(buf)?,
            num_outputs: get_u32(buf)?,
            device: get_u8(buf)?,
        },
        5 => Instruction::AllocStorage {
            size: get_u64(buf)?,
            alignment: get_u32(buf)?,
            device: get_u8(buf)?,
            dst: get_u32(buf)?,
        },
        6 => {
            let storage = get_u32(buf)?;
            let offset = get_u64(buf)?;
            let n = get_u32(buf)? as usize;
            if n > 64 {
                return Err(VmError::msg("tensor rank too large"));
            }
            let mut shape = Vec::with_capacity(n);
            for _ in 0..n {
                shape.push(get_i64(buf)?);
            }
            let dtype =
                DType::from_code(get_u8(buf)?).ok_or_else(|| VmError::msg("bad dtype code"))?;
            Instruction::AllocTensor {
                storage,
                offset,
                shape,
                dtype,
                dst: get_u32(buf)?,
            }
        }
        7 => Instruction::AllocTensorReg {
            shape: get_u32(buf)?,
            dtype: DType::from_code(get_u8(buf)?).ok_or_else(|| VmError::msg("bad dtype code"))?,
            device: get_u8(buf)?,
            dst: get_u32(buf)?,
        },
        8 => Instruction::AllocADT {
            tag: get_u32(buf)?,
            fields: get_regs(buf)?,
            dst: get_u32(buf)?,
        },
        9 => Instruction::AllocClosure {
            func: get_u32(buf)?,
            captures: get_regs(buf)?,
            dst: get_u32(buf)?,
        },
        10 => Instruction::GetField {
            object: get_u32(buf)?,
            index: get_u32(buf)?,
            dst: get_u32(buf)?,
        },
        11 => Instruction::GetTag {
            object: get_u32(buf)?,
            dst: get_u32(buf)?,
        },
        12 => Instruction::If {
            lhs: get_u32(buf)?,
            rhs: get_u32(buf)?,
            true_offset: get_i32(buf)?,
            false_offset: get_i32(buf)?,
        },
        13 => Instruction::Goto {
            offset: get_i32(buf)?,
        },
        14 => Instruction::LoadConst {
            index: get_u32(buf)?,
            dst: get_u32(buf)?,
        },
        15 => Instruction::LoadConsti {
            value: get_i64(buf)?,
            dst: get_u32(buf)?,
        },
        16 => Instruction::DeviceCopy {
            src: get_u32(buf)?,
            src_device: get_u8(buf)?,
            dst_device: get_u8(buf)?,
            dst: get_u32(buf)?,
        },
        17 => Instruction::ShapeOf {
            tensor: get_u32(buf)?,
            dst: get_u32(buf)?,
        },
        18 => Instruction::ReshapeTensor {
            tensor: get_u32(buf)?,
            shape: get_u32(buf)?,
            dst: get_u32(buf)?,
        },
        19 => {
            let n = get_u32(buf)? as usize;
            need(buf, n)?;
            let mut bytes = vec![0u8; n];
            buf.copy_to_slice(&mut bytes);
            Instruction::Fatal {
                message: String::from_utf8(bytes).map_err(|_| VmError::msg("bad fatal message"))?,
            }
        }
        other => return Err(VmError::msg(format!("unknown opcode {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_instructions() -> Vec<Instruction> {
        vec![
            Instruction::Move { src: 1, dst: 2 },
            Instruction::Ret { result: 3 },
            Instruction::Invoke {
                func: 7,
                args: vec![1, 2, 3],
                dst: 4,
            },
            Instruction::InvokeClosure {
                closure: 9,
                args: vec![],
                dst: 1,
            },
            Instruction::InvokePacked {
                kernel: 5,
                args: vec![0, 1, 2],
                num_outputs: 1,
                device: 1,
            },
            Instruction::AllocStorage {
                size: 40,
                alignment: 64,
                device: 0,
                dst: 3,
            },
            Instruction::AllocTensor {
                storage: 3,
                offset: 0,
                shape: vec![10],
                dtype: DType::F32,
                dst: 4,
            },
            Instruction::AllocTensorReg {
                shape: 5,
                dtype: DType::I64,
                device: 1,
                dst: 6,
            },
            Instruction::AllocADT {
                tag: 1,
                fields: vec![2, 3],
                dst: 4,
            },
            Instruction::AllocClosure {
                func: 2,
                captures: vec![8],
                dst: 9,
            },
            Instruction::GetField {
                object: 1,
                index: 0,
                dst: 2,
            },
            Instruction::GetTag { object: 1, dst: 2 },
            Instruction::If {
                lhs: 1,
                rhs: 2,
                true_offset: 1,
                false_offset: 5,
            },
            Instruction::Goto { offset: -3 },
            Instruction::LoadConst { index: 12, dst: 1 },
            Instruction::LoadConsti { value: -7, dst: 2 },
            Instruction::DeviceCopy {
                src: 1,
                src_device: 0,
                dst_device: 1,
                dst: 2,
            },
            Instruction::ShapeOf { tensor: 1, dst: 2 },
            Instruction::ReshapeTensor {
                tensor: 1,
                shape: 2,
                dst: 3,
            },
            Instruction::Fatal {
                message: "broadcast type constraint violated".into(),
            },
        ]
    }

    #[test]
    fn exactly_twenty_opcodes() {
        let insts = sample_instructions();
        assert_eq!(insts.len(), NUM_OPCODES);
        let mut opcodes: Vec<u8> = insts.iter().map(|i| i.opcode()).collect();
        opcodes.sort_unstable();
        opcodes.dedup();
        assert_eq!(opcodes.len(), NUM_OPCODES, "opcodes must be distinct");
    }

    #[test]
    fn round_trip_all_instructions() {
        for inst in sample_instructions() {
            let mut buf = BytesMut::new();
            encode(&inst, &mut buf);
            let mut bytes = buf.freeze();
            let back = decode(&mut bytes).unwrap();
            assert_eq!(back, inst);
            assert_eq!(bytes.remaining(), 0, "no trailing bytes for {inst:?}");
        }
    }

    #[test]
    fn variable_length_encoding() {
        // Instruction sizes differ with operand payloads.
        let mut small = BytesMut::new();
        encode(&Instruction::Goto { offset: 1 }, &mut small);
        let mut big = BytesMut::new();
        encode(
            &Instruction::AllocTensor {
                storage: 0,
                offset: 0,
                shape: vec![1, 2, 3, 4, 5, 6],
                dtype: DType::F32,
                dst: 1,
            },
            &mut big,
        );
        assert!(big.len() > small.len());
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut empty = Bytes::new();
        assert!(decode(&mut empty).is_err());
        let mut bad_op = Bytes::from_static(&[200u8]);
        assert!(decode(&mut bad_op).is_err());
        // Truncated Move.
        let mut short = Bytes::from_static(&[0u8, 1, 0, 0]);
        assert!(decode(&mut short).is_err());
    }

    #[test]
    fn mnemonics_cover_table_a1() {
        let names: Vec<&str> = sample_instructions().iter().map(|i| i.mnemonic()).collect();
        for expected in [
            "Move",
            "Ret",
            "Invoke",
            "InvokeClosure",
            "InvokePacked",
            "AllocStorage",
            "AllocTensor",
            "AllocTensorReg",
            "AllocADT",
            "AllocClosure",
            "GetField",
            "GetTag",
            "If",
            "Goto",
            "LoadConst",
            "LoadConsti",
            "DeviceCopy",
            "ShapeOf",
            "ReshapeTensor",
            "Fatal",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    proptest! {
        #[test]
        fn invoke_packed_round_trip(
            kernel in 0u32..1000,
            args in proptest::collection::vec(0u32..100, 0..8),
            num_outputs in 0u32..4,
            device in 0u8..2,
        ) {
            let inst = Instruction::InvokePacked { kernel, args, num_outputs, device };
            let mut buf = BytesMut::new();
            encode(&inst, &mut buf);
            let mut bytes = buf.freeze();
            prop_assert_eq!(decode(&mut bytes).unwrap(), inst);
        }

        #[test]
        fn fatal_round_trip(msg in ".{0,64}") {
            let inst = Instruction::Fatal { message: msg };
            let mut buf = BytesMut::new();
            encode(&inst, &mut buf);
            let mut bytes = buf.freeze();
            prop_assert_eq!(decode(&mut bytes).unwrap(), inst);
        }
    }
}
