//! Per-session storage arena: size-classed free lists over the device
//! pools.
//!
//! Nimble makes allocation explicit (`AllocStorage` / `AllocTensorReg`)
//! precisely so the runtime can recycle storage across invocations of a
//! dynamic model. The arena is that recycler: a [`Session`] owns one, every
//! storage allocation first tries to pop a recycled block of sufficient
//! capacity, and dropping the last reference to a handle (the lowered
//! `kill`, frame teardown, or a result going out of scope) returns the
//! block here instead of to the device pool. A warm arena turns the
//! per-request allocation cost of a dynamic model into a handful of
//! free-list pops.
//!
//! Layering: the arena sits *above* the per-device [`MemoryPool`]. A miss
//! falls through to `pool.alloc` (that is the "system allocation" the
//! `arena_reuse` bench counts); blocks retained by the arena remain live
//! from the pool's point of view until [`StorageArena::trim`] (or the
//! arena's drop) hands them back. Size classes mirror the pool's
//! (power-of-two, minimum 64 bytes); requests above [`LARGE_CLASS`] use a
//! first-fit overflow list instead of exact-class matching so huge dynamic
//! intermediates of slightly-varying shape still reuse each other's
//! buffers.
//!
//! In debug builds recycled blocks are poison-filled (`0xA5`) on release,
//! so any code path that read stale bytes out of a recycled block would be
//! caught by the differential tests — storage blocks are lifetime/
//! accounting objects, kernels materialize their own output tensors, and
//! the poison proves it stays that way.
//!
//! [`Session`]: crate::Session

use nimble_device::{size_class, DeviceId, MemoryPool, StorageBlock};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Requests whose size class exceeds this go to the first-fit overflow
/// list instead of an exact-class free list (1 MiB).
pub const LARGE_CLASS: usize = 1 << 20;

/// Byte written over recycled blocks in debug builds.
pub const POISON_BYTE: u8 = 0xA5;

/// Whether sessions should use an arena by default: on, unless the
/// `NIMBLE_ARENA` environment variable is `off`/`0`/`false` (the escape
/// hatch for A/B-ing allocator behaviour in production). Read once per
/// process.
pub fn arena_enabled_by_env() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| match std::env::var("NIMBLE_ARENA") {
        Ok(v) => !matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"),
        Err(_) => true,
    })
}

/// Snapshot of one arena's counters (or a sum over several — see
/// [`ArenaStats::merge`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Allocations served from the free lists (no pool/system allocation).
    pub hits: u64,
    /// Allocations that fell through to the device pool.
    pub misses: u64,
    /// Total bytes served from recycled blocks over time.
    pub recycled_bytes: u64,
    /// Bytes currently handed out to live storage handles.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub high_water_bytes: u64,
    /// Bytes parked in the free lists, ready for reuse.
    pub retained_bytes: u64,
    /// Blocks parked in the free lists.
    pub retained_blocks: u64,
}

impl ArenaStats {
    /// Fraction of allocations served from the free lists (0 when the
    /// arena has served nothing).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulate another arena's counters (engine-level aggregation over
    /// per-worker arenas; `high_water_bytes` sums, making it an upper
    /// bound on simultaneous footprint).
    pub fn merge(&mut self, other: &ArenaStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.recycled_bytes += other.recycled_bytes;
        self.live_bytes += other.live_bytes;
        self.high_water_bytes += other.high_water_bytes;
        self.retained_bytes += other.retained_bytes;
        self.retained_blocks += other.retained_blocks;
    }
}

/// A block parked in the arena, remembering the pool it must eventually
/// return to (sessions can allocate on both devices; trim must not mix
/// them up).
struct CachedBlock {
    block: StorageBlock,
    pool: Arc<MemoryPool>,
}

#[derive(Default)]
struct ArenaInner {
    /// Exact-class free lists, keyed by (device index, size class).
    classes: HashMap<(usize, usize), Vec<CachedBlock>>,
    /// First-fit overflow for blocks above [`LARGE_CLASS`], keyed by
    /// device index.
    large: HashMap<usize, Vec<CachedBlock>>,
}

/// A size-classed free-list recycler for VM storage blocks. Shared
/// (`Arc`) between a session and every storage handle it allocates, so
/// handles that outlive the session still return their blocks here — and
/// the last reference's drop trims everything back to the pools.
pub struct StorageArena {
    inner: Mutex<ArenaInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled_bytes: AtomicU64,
    live_bytes: AtomicU64,
    high_water_bytes: AtomicU64,
    retained_bytes: AtomicU64,
    retained_blocks: AtomicU64,
    poison: bool,
}

impl std::fmt::Debug for StorageArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageArena")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for StorageArena {
    fn default() -> Self {
        StorageArena::new()
    }
}

impl StorageArena {
    /// An empty arena. Poisoning of recycled blocks is on in debug builds.
    pub fn new() -> StorageArena {
        StorageArena::with_poison(cfg!(debug_assertions))
    }

    /// An empty arena with recycled-block poisoning explicitly on or off.
    pub fn with_poison(poison: bool) -> StorageArena {
        StorageArena {
            inner: Mutex::new(ArenaInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recycled_bytes: AtomicU64::new(0),
            live_bytes: AtomicU64::new(0),
            high_water_bytes: AtomicU64::new(0),
            retained_bytes: AtomicU64::new(0),
            retained_blocks: AtomicU64::new(0),
            poison,
        }
    }

    /// A shared arena, or `None` when `NIMBLE_ARENA=off` disables arenas
    /// process-wide.
    pub fn shared_default() -> Option<Arc<StorageArena>> {
        arena_enabled_by_env().then(|| Arc::new(StorageArena::new()))
    }

    /// Allocate a block of at least `nbytes` for `device`: a recycled
    /// block when one of sufficient capacity is parked, `pool.alloc`
    /// otherwise.
    pub fn acquire(&self, pool: &Arc<MemoryPool>, nbytes: usize, device: DeviceId) -> StorageBlock {
        let class = size_class(nbytes);
        let recycled = {
            let mut inner = self.inner.lock();
            if class <= LARGE_CLASS {
                inner
                    .classes
                    .get_mut(&(device.index(), class))
                    .and_then(|list| list.pop())
            } else {
                // First fit over the overflow list: any parked block with
                // enough capacity serves the request.
                let list = inner.large.entry(device.index()).or_default();
                list.iter()
                    .position(|c| c.block.capacity() >= nbytes)
                    .map(|i| list.swap_remove(i))
            }
        };
        match recycled {
            Some(CachedBlock { mut block, .. }) => {
                let cap = block.capacity() as u64;
                block.retag(nbytes);
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.recycled_bytes.fetch_add(cap, Ordering::Relaxed);
                self.retained_bytes.fetch_sub(cap, Ordering::Relaxed);
                self.retained_blocks.fetch_sub(1, Ordering::Relaxed);
                self.note_live(cap);
                block
            }
            None => {
                // Miss: this is the system allocation the arena exists to
                // amortize away.
                let block = pool.alloc(nbytes);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.note_live(block.capacity() as u64);
                block
            }
        }
    }

    /// Park a block for reuse. Called from `StorageHandle::drop`; the
    /// block stays live from the pool's perspective until [`trim`].
    ///
    /// [`trim`]: StorageArena::trim
    pub fn release(&self, mut block: StorageBlock, pool: &Arc<MemoryPool>, device: DeviceId) {
        if self.poison {
            block.bytes_mut().fill(POISON_BYTE);
        }
        let cap = block.capacity() as u64;
        self.live_bytes.fetch_sub(cap, Ordering::Relaxed);
        self.retained_bytes.fetch_add(cap, Ordering::Relaxed);
        self.retained_blocks.fetch_add(1, Ordering::Relaxed);
        let class = block.capacity();
        let cached = CachedBlock {
            block,
            pool: Arc::clone(pool),
        };
        let mut inner = self.inner.lock();
        if class <= LARGE_CLASS {
            inner
                .classes
                .entry((device.index(), class))
                .or_default()
                .push(cached);
        } else {
            inner.large.entry(device.index()).or_default().push(cached);
        }
    }

    /// Return every parked block to its device pool; yields the number of
    /// bytes released. Live handles are unaffected (their blocks come back
    /// to the arena on drop). Used on engine shutdown / model unload to
    /// bring retained memory back to baseline.
    pub fn trim(&self) -> u64 {
        let (classes, large) = {
            let mut inner = self.inner.lock();
            (
                std::mem::take(&mut inner.classes),
                std::mem::take(&mut inner.large),
            )
        };
        let mut released = 0u64;
        for cached in classes
            .into_values()
            .flatten()
            .chain(large.into_values().flatten())
        {
            released += cached.block.capacity() as u64;
            self.retained_blocks.fetch_sub(1, Ordering::Relaxed);
            cached.pool.free(cached.block);
        }
        self.retained_bytes.fetch_sub(released, Ordering::Relaxed);
        released
    }

    /// Bytes currently handed out to live storage handles.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// Bytes parked in the free lists.
    pub fn retained_bytes(&self) -> u64 {
        self.retained_bytes.load(Ordering::Relaxed)
    }

    /// Whether recycled blocks are poison-filled.
    pub fn poisons(&self) -> bool {
        self.poison
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recycled_bytes: self.recycled_bytes.load(Ordering::Relaxed),
            live_bytes: self.live_bytes.load(Ordering::Relaxed),
            high_water_bytes: self.high_water_bytes.load(Ordering::Relaxed),
            retained_bytes: self.retained_bytes.load(Ordering::Relaxed),
            retained_blocks: self.retained_blocks.load(Ordering::Relaxed),
        }
    }

    /// Reset the cumulative counters (hits/misses/recycled) between
    /// benchmark phases; live/retained gauges are left alone and the
    /// high-water mark restarts from current liveness.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.recycled_bytes.store(0, Ordering::Relaxed);
        self.high_water_bytes
            .store(self.live_bytes.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn note_live(&self, cap: u64) {
        let live = self.live_bytes.fetch_add(cap, Ordering::Relaxed) + cap;
        self.high_water_bytes.fetch_max(live, Ordering::Relaxed);
    }
}

impl Drop for StorageArena {
    fn drop(&mut self) {
        // Hand every parked block back so pool accounting balances: after
        // the last handle and the arena are gone, pool live_bytes is back
        // to its pre-session baseline.
        self.trim();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Arc<MemoryPool> {
        Arc::new(MemoryPool::new(true))
    }

    #[test]
    fn recycles_within_class() {
        let arena = StorageArena::new();
        let p = pool();
        let b1 = arena.acquire(&p, 100, DeviceId::Cpu);
        let addr = b1.bytes().as_ptr() as usize;
        arena.release(b1, &p, DeviceId::Cpu);
        // 120 rounds to the same 128-byte class: must reuse the block.
        let b2 = arena.acquire(&p, 120, DeviceId::Cpu);
        assert_eq!(b2.bytes().as_ptr() as usize, addr);
        assert_eq!(b2.size, 120);
        let s = arena.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.recycled_bytes, 128);
        // Only the original miss reached the pool.
        assert_eq!(p.stats().allocs, 1);
        arena.release(b2, &p, DeviceId::Cpu);
        assert_eq!(arena.live_bytes(), 0);
        assert_eq!(arena.retained_bytes(), 128);
    }

    #[test]
    fn classes_do_not_cross() {
        let arena = StorageArena::new();
        let p = pool();
        let b = arena.acquire(&p, 64, DeviceId::Cpu);
        arena.release(b, &p, DeviceId::Cpu);
        // A 128-class request must not get the parked 64-byte block.
        let big = arena.acquire(&p, 100, DeviceId::Cpu);
        assert_eq!(arena.stats().hits, 0);
        assert_eq!(big.capacity(), 128);
        arena.release(big, &p, DeviceId::Cpu);
    }

    #[test]
    fn devices_do_not_cross() {
        let arena = StorageArena::new();
        let (pc, pg) = (pool(), pool());
        let b = arena.acquire(&pc, 64, DeviceId::Cpu);
        arena.release(b, &pc, DeviceId::Cpu);
        let g = arena.acquire(&pg, 64, DeviceId::Gpu);
        assert_eq!(arena.stats().hits, 0, "CPU block must not serve GPU");
        arena.release(g, &pg, DeviceId::Gpu);
        // Trim returns each block to the pool it came from.
        arena.trim();
        assert_eq!(pc.stats().live_bytes, 0);
        assert_eq!(pg.stats().live_bytes, 0);
    }

    #[test]
    fn large_blocks_first_fit() {
        let arena = StorageArena::new();
        let p = pool();
        let big = arena.acquire(&p, LARGE_CLASS * 4, DeviceId::Cpu);
        let addr = big.bytes().as_ptr() as usize;
        arena.release(big, &p, DeviceId::Cpu);
        // A smaller (but still large-path) request fits in the parked block.
        let again = arena.acquire(&p, LARGE_CLASS * 2 + 1, DeviceId::Cpu);
        assert_eq!(again.bytes().as_ptr() as usize, addr);
        assert_eq!(arena.stats().hits, 1);
        arena.release(again, &p, DeviceId::Cpu);
        // A larger request cannot: new allocation.
        let over = arena.acquire(&p, LARGE_CLASS * 8, DeviceId::Cpu);
        assert_ne!(over.bytes().as_ptr() as usize, addr);
        assert_eq!(arena.stats().misses, 2);
        arena.release(over, &p, DeviceId::Cpu);
    }

    #[test]
    fn poison_fills_released_blocks() {
        let arena = StorageArena::with_poison(true);
        let p = pool();
        let mut b = arena.acquire(&p, 64, DeviceId::Cpu);
        b.bytes_mut().fill(0x11);
        arena.release(b, &p, DeviceId::Cpu);
        let b2 = arena.acquire(&p, 64, DeviceId::Cpu);
        assert!(b2.bytes().iter().all(|&x| x == POISON_BYTE));
        arena.release(b2, &p, DeviceId::Cpu);
    }

    #[test]
    fn trim_and_drop_balance_pool_accounting() {
        let p = pool();
        {
            let arena = StorageArena::new();
            for _ in 0..3 {
                let b = arena.acquire(&p, 256, DeviceId::Cpu);
                arena.release(b, &p, DeviceId::Cpu);
            }
            let held = arena.acquire(&p, 4096, DeviceId::Cpu);
            assert!(p.stats().live_bytes > 0);
            let released = arena.trim();
            assert_eq!(released, 256);
            assert_eq!(arena.retained_bytes(), 0);
            // The held block is still live through the pool.
            assert_eq!(p.stats().live_bytes, 4096);
            arena.release(held, &p, DeviceId::Cpu);
            // Arena drop trims the rest.
        }
        assert_eq!(pool_live(&p), 0);
    }

    fn pool_live(p: &Arc<MemoryPool>) -> u64 {
        p.stats().live_bytes
    }

    #[test]
    fn high_water_tracks_peak() {
        let arena = StorageArena::new();
        let p = pool();
        let a = arena.acquire(&p, 64, DeviceId::Cpu);
        let b = arena.acquire(&p, 64, DeviceId::Cpu);
        arena.release(a, &p, DeviceId::Cpu);
        arena.release(b, &p, DeviceId::Cpu);
        let _c = arena.acquire(&p, 64, DeviceId::Cpu);
        let s = arena.stats();
        assert_eq!(s.high_water_bytes, 128);
        assert_eq!(s.live_bytes, 64);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn stats_merge_sums() {
        let mut a = ArenaStats {
            hits: 1,
            misses: 2,
            recycled_bytes: 64,
            live_bytes: 10,
            high_water_bytes: 20,
            retained_bytes: 30,
            retained_blocks: 1,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.hits, 2);
        assert_eq!(a.misses, 4);
        assert_eq!(a.high_water_bytes, 40);
        assert!((a.hit_rate() - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(ArenaStats::default().hit_rate(), 0.0);
    }
}
