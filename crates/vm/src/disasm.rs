//! Bytecode disassembler: human-readable listings of compiled executables
//! ("a compact bytecode, which is easy for users to read and modify" —
//! Section 5.1).

use crate::exe::{Executable, KernelDesc};
use crate::isa::Instruction;
use std::fmt::Write;

fn regs(rs: &[u32]) -> String {
    rs.iter()
        .map(|r| format!("$r{r}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Render one instruction.
pub fn disasm_instruction(inst: &Instruction) -> String {
    match inst {
        Instruction::Move { src, dst } => format!("Move $r{src} -> $r{dst}"),
        Instruction::Ret { result } => format!("Ret $r{result}"),
        Instruction::Invoke { func, args, dst } => {
            format!("Invoke fn[{func}]({}) -> $r{dst}", regs(args))
        }
        Instruction::InvokeClosure { closure, args, dst } => {
            format!("InvokeClosure $r{closure}({}) -> $r{dst}", regs(args))
        }
        Instruction::InvokePacked {
            kernel,
            args,
            num_outputs,
            device,
        } => format!(
            "InvokePacked kernel[{kernel}]({}) outs={num_outputs} dev={device}",
            regs(args)
        ),
        Instruction::AllocStorage {
            size,
            alignment,
            device,
            dst,
        } => format!("AllocStorage {size}B align={alignment} dev={device} -> $r{dst}"),
        Instruction::AllocTensor {
            storage,
            offset,
            shape,
            dtype,
            dst,
        } => format!("AllocTensor $r{storage}+{offset} {shape:?} {dtype} -> $r{dst}"),
        Instruction::AllocTensorReg {
            shape,
            dtype,
            device,
            dst,
        } => format!("AllocTensorReg shape=$r{shape} {dtype} dev={device} -> $r{dst}"),
        Instruction::AllocADT { tag, fields, dst } => {
            format!("AllocADT tag={tag} ({}) -> $r{dst}", regs(fields))
        }
        Instruction::AllocClosure {
            func,
            captures,
            dst,
        } => {
            format!(
                "AllocClosure fn[{func}] caps=({}) -> $r{dst}",
                regs(captures)
            )
        }
        Instruction::GetField { object, index, dst } => {
            format!("GetField $r{object}.{index} -> $r{dst}")
        }
        Instruction::GetTag { object, dst } => format!("GetTag $r{object} -> $r{dst}"),
        Instruction::If {
            lhs,
            rhs,
            true_offset,
            false_offset,
        } => format!("If $r{lhs} == $r{rhs} ? {true_offset:+} : {false_offset:+}"),
        Instruction::Goto { offset } => format!("Goto {offset:+}"),
        Instruction::LoadConst { index, dst } => format!("LoadConst const[{index}] -> $r{dst}"),
        Instruction::LoadConsti { value, dst } => format!("LoadConsti {value} -> $r{dst}"),
        Instruction::DeviceCopy {
            src,
            src_device,
            dst_device,
            dst,
        } => format!("DeviceCopy $r{src} dev{src_device}->dev{dst_device} -> $r{dst}"),
        Instruction::ShapeOf { tensor, dst } => format!("ShapeOf $r{tensor} -> $r{dst}"),
        Instruction::ReshapeTensor { tensor, shape, dst } => {
            format!("ReshapeTensor $r{tensor} shape=$r{shape} -> $r{dst}")
        }
        Instruction::Fatal { message } => format!("Fatal {message:?}"),
    }
}

fn kernel_summary(desc: &KernelDesc) -> String {
    match desc {
        KernelDesc::Op { name, symbolic, .. } => {
            if *symbolic {
                format!("op {name} (symbolic dispatch)")
            } else {
                format!("op {name}")
            }
        }
        KernelDesc::Fused { members, .. } => format!(
            "fused {}",
            members
                .iter()
                .map(|m| m.op.as_str())
                .collect::<Vec<_>>()
                .join("+")
        ),
        KernelDesc::ShapeFuncOp { name, .. } => format!("shape_func {name}"),
        KernelDesc::ShapeFuncFused { members, .. } => format!(
            "shape_func fused {}",
            members
                .iter()
                .map(|m| m.op.as_str())
                .collect::<Vec<_>>()
                .join("+")
        ),
    }
}

/// Render a whole executable: kernel table, constant summary, and per
/// function annotated bytecode.
pub fn disassemble(exe: &Executable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; nimble executable");
    let _ = writeln!(
        out,
        "; {} function(s), {} constant(s), {} kernel(s)",
        exe.functions.len(),
        exe.constants.len(),
        exe.kernels.len()
    );
    for (i, k) in exe.kernels.iter().enumerate() {
        let _ = writeln!(out, "kernel[{i}] = {}", kernel_summary(k));
    }
    for (i, c) in exe.constants.iter().enumerate() {
        let _ = writeln!(
            out,
            "const[{i}] = Tensor{:?} {} ({} B)",
            c.dims(),
            c.dtype(),
            c.nbytes()
        );
    }
    for f in &exe.functions {
        let _ = writeln!(
            out,
            "\nfn {} (params={}, regs={}):",
            f.name, f.num_params, f.num_regs
        );
        for (pc, inst) in f.code.iter().enumerate() {
            let _ = writeln!(out, "  {pc:4}: {}", disasm_instruction(inst));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exe::VMFunction;
    use nimble_ir::attrs::Attrs;
    use nimble_tensor::{DType, Tensor};

    fn sample() -> Executable {
        Executable {
            functions: vec![VMFunction {
                name: "main".into(),
                num_params: 1,
                num_regs: 4,
                code: vec![
                    Instruction::LoadConst { index: 0, dst: 1 },
                    Instruction::AllocStorage {
                        size: 40,
                        alignment: 64,
                        device: 0,
                        dst: 2,
                    },
                    Instruction::AllocTensor {
                        storage: 2,
                        offset: 0,
                        shape: vec![10],
                        dtype: DType::F32,
                        dst: 3,
                    },
                    Instruction::InvokePacked {
                        kernel: 0,
                        args: vec![0, 1, 3],
                        num_outputs: 1,
                        device: 0,
                    },
                    Instruction::Ret { result: 3 },
                ],
            }],
            constants: vec![Tensor::ones_f32(&[10])],
            const_devices: vec![0],
            kernels: vec![KernelDesc::Op {
                name: "add".into(),
                attrs: Attrs::new(),
                symbolic: false,
            }],
        }
    }

    #[test]
    fn listing_contains_everything() {
        let text = disassemble(&sample());
        assert!(text.contains("kernel[0] = op add"));
        assert!(text.contains("const[0] = Tensor[10] float32 (40 B)"));
        assert!(text.contains("fn main (params=1, regs=4):"));
        assert!(text.contains("InvokePacked kernel[0]($r0, $r1, $r3) outs=1 dev=0"));
        assert!(text.contains("Ret $r3"));
        assert_eq!(text.lines().count(), 11);
    }

    #[test]
    fn every_opcode_renders() {
        // Smoke: each variant produces non-empty distinct text.
        let insts = [
            Instruction::Move { src: 0, dst: 1 },
            Instruction::Goto { offset: -2 },
            Instruction::If {
                lhs: 0,
                rhs: 1,
                true_offset: 1,
                false_offset: 3,
            },
            Instruction::Fatal {
                message: "x".into(),
            },
            Instruction::ShapeOf { tensor: 0, dst: 1 },
            Instruction::DeviceCopy {
                src: 0,
                src_device: 0,
                dst_device: 1,
                dst: 1,
            },
        ];
        let mut texts: Vec<String> = insts.iter().map(disasm_instruction).collect();
        texts.sort();
        texts.dedup();
        assert_eq!(texts.len(), insts.len());
    }
}
