//! Cross-request dynamic batching: shape buckets and per-model batch
//! plans.
//!
//! A [`BatchPlan`] teaches an engine replica how to coalesce concurrent
//! requests for one model into a single padded VM execution:
//!
//! * **bucketing** — each request's dynamic shape is reduced to a single
//!   integer *key* (LSTM sequence length, BERT token count) which is
//!   rounded up to the nearest configured bucket edge. Only requests in
//!   the same bucket batch together, so every member pads to the same
//!   target shape and the compiled `main_b{bucket}` entry point can run
//!   them as one `batch_matmul`-backed execution.
//! * **gather / scatter** — host-side closures that pack the member
//!   argument sets into one padded batch tensor set and slice each
//!   member's rows back out of the batched result. The contract is
//!   strict: scattered per-request outputs must be **bitwise identical**
//!   to what the unbatched `main` would have produced.
//! * **pacing** — `min_batch`/`max_batch`/`max_wait` shape the
//!   batch-forming stage in the engine drain loop; the engine itself
//!   enforces the close-batch-on-deadline-pressure rule.
//!
//! The escape hatch `NIMBLE_BATCH=off` disables batching process-wide at
//! engine construction time, restoring the unbatched path unchanged.

use crate::object::Object;
use crate::Result;
use std::sync::Arc;
use std::time::Duration;

/// Derive the batched entry-point name for `function` at `bucket`. Model
/// builders that emit batched entries must follow this convention.
pub fn entry_name(function: &str, bucket: usize) -> String {
    format!("{function}_b{bucket}")
}

/// Whether `NIMBLE_BATCH=off|0|false` disables batching process-wide.
/// Read at engine construction (not per request), so flipping the
/// variable mid-run does not change a live engine.
pub fn batching_disabled() -> bool {
    matches!(
        std::env::var("NIMBLE_BATCH").as_deref(),
        Ok("off") | Ok("0") | Ok("false") | Ok("none")
    )
}

/// Knobs shaping how aggressively a replica forms batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchConfig {
    /// Sorted shape-bucket edges; a request with key `k` lands in the
    /// smallest edge `>= k`, and a key past the last edge (or a key the
    /// plan cannot extract) runs unbatched.
    pub buckets: Vec<usize>,
    /// Smallest group worth running batched; singleton groups take the
    /// unbatched path (no pad waste for nothing).
    pub min_batch: usize,
    /// Largest group gathered into one execution.
    pub max_batch: usize,
    /// How long a worker may hold an undersized group open waiting for
    /// more same-bucket arrivals. Zero disables the top-up wait.
    pub max_wait: Duration,
}

impl BatchConfig {
    /// Power-of-two bucket edges up to `max` (inclusive when `max` is
    /// itself reached), the sane default the issue asks for.
    pub fn pow2_buckets(max: usize) -> Vec<usize> {
        let mut edges = Vec::new();
        let mut e = 1usize;
        while e < max {
            edges.push(e);
            e *= 2;
        }
        edges.push(max);
        edges.dedup();
        edges
    }
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            buckets: BatchConfig::pow2_buckets(128),
            min_batch: 2,
            max_batch: 8,
            max_wait: Duration::from_micros(200),
        }
    }
}

/// Extract the shape key of one request's argument set; `None` means
/// "this request cannot batch" (empty input, key past the last bucket).
pub type KeyFn = dyn Fn(&[Object]) -> Option<usize> + Send + Sync;

/// Pack member argument sets (each with the given true keys) into the
/// padded argument set for `main_b{bucket}`.
pub type GatherFn = dyn Fn(&[Vec<Object>], &[usize], usize) -> Result<Vec<Object>> + Send + Sync;

/// Slice each member's output back out of the batched result, given the
/// members' true keys and the bucket they padded to.
pub type ScatterFn = dyn Fn(&Object, &[usize], usize) -> Result<Vec<Object>> + Send + Sync;

/// Everything an engine replica needs to batch one model's requests.
/// Immutable and shared (`Arc`) across replicas of the same model.
#[derive(Clone)]
pub struct BatchPlan {
    /// The unbatched entry point this plan shadows (normally `"main"`).
    pub function: String,
    /// Pacing and bucket-edge knobs.
    pub config: BatchConfig,
    /// Shape-key extractor.
    pub key: Arc<KeyFn>,
    /// Padded batch packer.
    pub gather: Arc<GatherFn>,
    /// Batched-result slicer.
    pub scatter: Arc<ScatterFn>,
}

impl std::fmt::Debug for BatchPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchPlan")
            .field("function", &self.function)
            .field("config", &self.config)
            .finish()
    }
}

impl BatchPlan {
    /// The smallest bucket edge `>= key`, or `None` when the key exceeds
    /// every edge (the request then runs unbatched).
    pub fn bucket_for(&self, key: usize) -> Option<usize> {
        self.config.buckets.iter().copied().find(|&e| e >= key)
    }

    /// Bucket for one request's argument set, or `None` when it cannot
    /// batch (no key, or key past the last edge).
    pub fn bucket_of(&self, args: &[Object]) -> Option<usize> {
        (self.key)(args).and_then(|k| self.bucket_for(k))
    }

    /// Batched entry-point name for `bucket` (see [`entry_name`]).
    pub fn entry(&self, bucket: usize) -> String {
        entry_name(&self.function, bucket)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(buckets: Vec<usize>) -> BatchPlan {
        BatchPlan {
            function: "main".to_string(),
            config: BatchConfig {
                buckets,
                ..BatchConfig::default()
            },
            key: Arc::new(|_| None),
            gather: Arc::new(|_, _, _| Ok(vec![])),
            scatter: Arc::new(|_, _, _| Ok(vec![])),
        }
    }

    #[test]
    fn pow2_edges() {
        assert_eq!(BatchConfig::pow2_buckets(8), vec![1, 2, 4, 8]);
        assert_eq!(BatchConfig::pow2_buckets(24), vec![1, 2, 4, 8, 16, 24]);
        assert_eq!(BatchConfig::pow2_buckets(1), vec![1]);
    }

    #[test]
    fn bucket_rounding() {
        let p = plan(vec![4, 8, 16]);
        assert_eq!(p.bucket_for(1), Some(4));
        assert_eq!(p.bucket_for(4), Some(4));
        assert_eq!(p.bucket_for(5), Some(8));
        assert_eq!(p.bucket_for(16), Some(16));
        assert_eq!(p.bucket_for(17), None);
    }

    #[test]
    fn entry_naming() {
        let p = plan(vec![4]);
        assert_eq!(p.entry(4), "main_b4");
        assert_eq!(entry_name("main", 16), "main_b16");
    }
}
