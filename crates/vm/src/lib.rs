//! # nimble-vm
//!
//! The Nimble virtual machine (paper Section 5): a register-based abstract
//! machine whose CISC-style instructions operate on tensors, executing the
//! platform-independent bytecode produced by the compiler.
//!
//! * [`isa`] — the 20-instruction set of Table A.1, with variable-length
//!   binary serialization;
//! * [`object`] — the tagged object representation (tensors, ADTs,
//!   closures, storage), reference counted with copy-on-write;
//! * [`exe`] — the executable: bytecode + constant pool + kernel
//!   descriptors, serializable to a byte stream and loadable anywhere;
//! * [`interp`] — the dispatch-loop interpreter with asynchronous GPU
//!   kernel launch and the per-category profiler behind Table 4;
//! * [`arena`] — the per-session storage arena recycling dynamic-tensor
//!   allocations across requests.

pub mod arena;
pub mod batch;
pub mod disasm;
pub mod exe;
pub mod interp;
pub mod isa;
pub mod object;
pub mod profiler;

pub use arena::{ArenaStats, StorageArena};
pub use batch::{batching_disabled, BatchConfig, BatchPlan};
pub use disasm::disassemble;
pub use exe::{Executable, KernelDesc, VMFunction};
pub use interp::{DispatchHook, Session, VirtualMachine};
pub use isa::{Instruction, RegId};
pub use object::{Object, StorageHandle};
pub use profiler::{ProfileReport, Profiler, SharedProfiler};

/// Errors raised while building, serializing, or executing VM programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmError(pub String);

impl VmError {
    /// Construct from anything printable.
    pub fn msg(m: impl Into<String>) -> VmError {
        VmError(m.into())
    }
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm error: {}", self.0)
    }
}

impl std::error::Error for VmError {}

impl From<nimble_tensor::TensorError> for VmError {
    fn from(e: nimble_tensor::TensorError) -> Self {
        VmError(e.to_string())
    }
}

impl From<nimble_codegen::KernelError> for VmError {
    fn from(e: nimble_codegen::KernelError) -> Self {
        VmError(e.to_string())
    }
}

impl From<nimble_ir::IrError> for VmError {
    fn from(e: nimble_ir::IrError) -> Self {
        VmError(e.to_string())
    }
}

/// Result alias for VM operations.
pub type Result<T> = std::result::Result<T, VmError>;
