//! The VM's tagged object representation (paper Section 5.2).
//!
//! "VM uses a tagged object representation reminiscent of those used by
//! programming languages such as Haskell and OCaml" — objects are
//! reference counted, copied on write, and passed by reference, so
//! register operations are cheap even for large payloads.

use crate::arena::StorageArena;
use crate::{Result, VmError};
use nimble_device::{DeviceId, MemoryPool, StorageBlock, TensorFuture};
use nimble_tensor::Tensor;
use parking_lot::Mutex;
use std::sync::Arc;

/// A storage region allocated by `AllocStorage`; when the last reference
/// drops the block returns to its session's [`StorageArena`] (recycled for
/// the next request) or, for arena-less allocations, straight to its pool.
#[derive(Debug)]
pub struct StorageHandle {
    /// Requested size in bytes.
    pub size: u64,
    /// Device the storage lives on.
    pub device: DeviceId,
    block: Mutex<Option<StorageBlock>>,
    pool: Arc<MemoryPool>,
    /// The arena this block recycles into; also keeps the arena alive for
    /// handles that escape their session (result tensors).
    arena: Option<Arc<StorageArena>>,
}

impl StorageHandle {
    /// Allocate from a pool (no recycling on drop).
    pub fn alloc(pool: Arc<MemoryPool>, size: u64, device: DeviceId) -> StorageHandle {
        let block = pool.alloc(size as usize);
        StorageHandle {
            size,
            device,
            block: Mutex::new(Some(block)),
            pool,
            arena: None,
        }
    }

    /// Allocate through an arena: recycled block on hit, `pool.alloc` on
    /// miss; the block returns to the arena when the handle drops.
    pub fn alloc_in(
        arena: &Arc<StorageArena>,
        pool: Arc<MemoryPool>,
        size: u64,
        device: DeviceId,
    ) -> StorageHandle {
        let block = arena.acquire(&pool, size as usize, device);
        StorageHandle {
            size,
            device,
            block: Mutex::new(Some(block)),
            pool,
            arena: Some(Arc::clone(arena)),
        }
    }

    /// Identity and capacity of the backing block, as
    /// `(address, capacity)` — test instrumentation for aliasing checks.
    pub fn block_id(&self) -> Option<(usize, usize)> {
        self.block
            .lock()
            .as_ref()
            .map(|b| (b.bytes().as_ptr() as usize, b.capacity()))
    }

    /// Whether this handle recycles into an arena.
    pub fn arena_backed(&self) -> bool {
        self.arena.is_some()
    }
}

impl Drop for StorageHandle {
    fn drop(&mut self) {
        if let Some(block) = self.block.lock().take() {
            match &self.arena {
                Some(arena) => arena.release(block, &self.pool, self.device),
                None => self.pool.free(block),
            }
        }
    }
}

/// A tensor resident on a device, optionally backed by explicit storage
/// (keeping the storage alive for the tensor's lifetime, which is what
/// makes `kill` + refcounting reclaim coalesced buffers correctly).
#[derive(Debug, Clone)]
pub struct TensorObj {
    /// The tensor payload.
    pub tensor: Tensor,
    /// Residency.
    pub device: DeviceId,
    /// Backing storage handle, when allocated via `AllocTensor`.
    pub storage: Option<Arc<StorageHandle>>,
    /// For placeholder outputs created by `AllocTensor`/`AllocTensorReg`:
    /// the declared shape the kernel will fill. `None` once materialized.
    pub declared: Option<Vec<usize>>,
}

/// A pending asynchronous kernel output: shape/dtype metadata is known on
/// the host immediately (it was computed by the shape function before
/// launch), the data materializes when the device stream retires the job.
#[derive(Debug, Clone)]
pub struct FutureObj {
    /// Resolves to the kernel's outputs.
    pub future: TensorFuture,
    /// Which output of the kernel this register refers to.
    pub output_index: usize,
    /// Host-known shape metadata.
    pub shape: Vec<usize>,
    /// Host-known dtype.
    pub dtype: nimble_tensor::DType,
    /// Residency of the eventual tensor.
    pub device: DeviceId,
}

/// An algebraic-data-type value (tuples use [`TUPLE_TAG`]).
#[derive(Debug)]
pub struct AdtObj {
    /// Constructor tag.
    pub tag: u32,
    /// Field objects.
    pub fields: Vec<Object>,
}

/// A closure: function index plus captured environment.
#[derive(Debug)]
pub struct ClosureObj {
    /// Index into the executable's function table.
    pub func: u32,
    /// Captured objects, prepended to call arguments.
    pub captures: Vec<Object>,
}

/// Tag used for tuple objects.
pub const TUPLE_TAG: u32 = u32::MAX;

/// A VM register value.
#[derive(Debug, Clone, Default)]
pub enum Object {
    /// Empty register (also the result of `kill`).
    #[default]
    Unit,
    /// Device-resident tensor.
    Tensor(TensorObj),
    /// Pending asynchronous tensor.
    Future(FutureObj),
    /// Raw storage region.
    Storage(Arc<StorageHandle>),
    /// ADT value / tuple.
    Adt(Arc<AdtObj>),
    /// Closure.
    Closure(Arc<ClosureObj>),
}

impl Object {
    /// Wrap a CPU tensor.
    pub fn tensor(t: Tensor) -> Object {
        Object::Tensor(TensorObj {
            tensor: t,
            device: DeviceId::Cpu,
            storage: None,
            declared: None,
        })
    }

    /// Wrap a tensor on a device.
    pub fn tensor_on(t: Tensor, device: DeviceId) -> Object {
        Object::Tensor(TensorObj {
            tensor: t,
            device,
            storage: None,
            declared: None,
        })
    }

    /// A placeholder output buffer of declared shape/dtype, optionally
    /// backed by explicit storage. The kernel invocation that consumes it
    /// replaces it with the materialized tensor.
    pub fn placeholder(
        shape: Vec<usize>,
        dtype: nimble_tensor::DType,
        device: DeviceId,
        storage: Option<Arc<StorageHandle>>,
    ) -> Object {
        Object::Tensor(TensorObj {
            tensor: Tensor::zeros(dtype, &[0]),
            device,
            storage,
            declared: Some(shape),
        })
    }

    /// Build a tuple object.
    pub fn tuple(fields: Vec<Object>) -> Object {
        Object::Adt(Arc::new(AdtObj {
            tag: TUPLE_TAG,
            fields,
        }))
    }

    /// The device a tensor-like object resides on (CPU for the rest).
    pub fn device(&self) -> DeviceId {
        match self {
            Object::Tensor(t) => t.device,
            Object::Future(f) => f.device,
            Object::Storage(s) => s.device,
            _ => DeviceId::Cpu,
        }
    }

    /// Materialize as a tensor, blocking on futures.
    ///
    /// # Errors
    /// Fails for non-tensor objects or failed kernels.
    pub fn wait_tensor(&self) -> Result<Tensor> {
        match self {
            Object::Tensor(t) => Ok(t.tensor.clone()),
            Object::Future(f) => {
                let outs = f.future.wait().map_err(VmError)?;
                outs.get(f.output_index)
                    .cloned()
                    .ok_or_else(|| VmError::msg("future output index out of range"))
            }
            other => Err(VmError::msg(format!(
                "expected tensor object, got {}",
                other.kind_name()
            ))),
        }
    }

    /// Tensor shape without forcing synchronization: futures carry
    /// host-side metadata.
    ///
    /// # Errors
    /// Fails for non-tensor objects.
    pub fn tensor_shape(&self) -> Result<Vec<usize>> {
        match self {
            Object::Tensor(t) => Ok(t
                .declared
                .clone()
                .unwrap_or_else(|| t.tensor.dims().to_vec())),
            Object::Future(f) => Ok(f.shape.clone()),
            other => Err(VmError::msg(format!(
                "expected tensor object, got {}",
                other.kind_name()
            ))),
        }
    }

    /// View as an ADT object.
    ///
    /// # Errors
    /// Fails for non-ADT objects.
    pub fn as_adt(&self) -> Result<&Arc<AdtObj>> {
        match self {
            Object::Adt(a) => Ok(a),
            other => Err(VmError::msg(format!(
                "expected ADT object, got {}",
                other.kind_name()
            ))),
        }
    }

    /// View as a closure object.
    ///
    /// # Errors
    /// Fails for non-closure objects.
    pub fn as_closure(&self) -> Result<&Arc<ClosureObj>> {
        match self {
            Object::Closure(c) => Ok(c),
            other => Err(VmError::msg(format!(
                "expected closure object, got {}",
                other.kind_name()
            ))),
        }
    }

    /// Scalar comparison value used by the `If` instruction: bool scalars
    /// map to 0/1, i64/i32 scalars to their value.
    ///
    /// # Errors
    /// Fails for non-scalar or non-integer/bool tensors.
    pub fn scalar_i64(&self) -> Result<i64> {
        let t = self.wait_tensor()?;
        if t.volume() != 1 {
            return Err(VmError::msg("If operand must be a scalar"));
        }
        match t.data() {
            nimble_tensor::Data::Bool(v) => Ok(v[0] as i64),
            nimble_tensor::Data::I64(v) => Ok(v[0]),
            nimble_tensor::Data::I32(v) => Ok(v[0] as i64),
            nimble_tensor::Data::F32(_) => Err(VmError::msg("If operand must be integral")),
        }
    }

    /// Short name for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Object::Unit => "unit",
            Object::Tensor(_) => "tensor",
            Object::Future(_) => "future",
            Object::Storage(_) => "storage",
            Object::Adt(_) => "adt",
            Object::Closure(_) => "closure",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_returns_to_pool_on_drop() {
        let pool = Arc::new(MemoryPool::new(true));
        {
            let _h = StorageHandle::alloc(Arc::clone(&pool), 100, DeviceId::Cpu);
            assert_eq!(pool.stats().live_bytes, 128);
        }
        assert_eq!(pool.stats().live_bytes, 0);
        assert_eq!(pool.stats().frees, 1);
    }

    #[test]
    fn arena_backed_handle_recycles_on_drop() {
        let pool = Arc::new(MemoryPool::new(true));
        let arena = Arc::new(crate::arena::StorageArena::new());
        let id1 = {
            let h = StorageHandle::alloc_in(&arena, Arc::clone(&pool), 100, DeviceId::Cpu);
            assert!(h.arena_backed());
            h.block_id().unwrap()
        };
        // The block parked in the arena, so the pool still counts it live.
        assert_eq!(pool.stats().live_bytes, 128);
        assert_eq!(arena.retained_bytes(), 128);
        // Same-class allocation reuses it without touching the pool.
        let h2 = StorageHandle::alloc_in(&arena, Arc::clone(&pool), 90, DeviceId::Cpu);
        assert_eq!(h2.block_id().unwrap().0, id1.0);
        assert_eq!(pool.stats().allocs, 1);
        drop(h2);
        // Dropping the arena returns parked blocks to the pool.
        drop(arena);
        assert_eq!(pool.stats().live_bytes, 0);
    }

    #[test]
    fn object_accessors() {
        let o = Object::tensor(Tensor::scalar_f32(2.0));
        assert_eq!(o.device(), DeviceId::Cpu);
        assert_eq!(o.wait_tensor().unwrap().scalar_value_f32().unwrap(), 2.0);
        assert_eq!(o.tensor_shape().unwrap(), Vec::<usize>::new());
        assert!(o.as_adt().is_err());
        assert!(Object::Unit.wait_tensor().is_err());
    }

    #[test]
    fn tuple_fields() {
        let t = Object::tuple(vec![
            Object::tensor(Tensor::scalar_f32(1.0)),
            Object::tensor(Tensor::scalar_f32(2.0)),
        ]);
        let adt = t.as_adt().unwrap();
        assert_eq!(adt.tag, TUPLE_TAG);
        assert_eq!(adt.fields.len(), 2);
    }

    #[test]
    fn scalar_comparison_values() {
        assert_eq!(
            Object::tensor(Tensor::scalar_bool(true))
                .scalar_i64()
                .unwrap(),
            1
        );
        assert_eq!(
            Object::tensor(Tensor::scalar_i64(42)).scalar_i64().unwrap(),
            42
        );
        assert!(Object::tensor(Tensor::scalar_f32(1.0))
            .scalar_i64()
            .is_err());
        assert!(Object::tensor(Tensor::ones_f32(&[2])).scalar_i64().is_err());
    }

    #[test]
    fn future_metadata_without_sync() {
        let f = TensorFuture::pending();
        let obj = Object::Future(FutureObj {
            future: f.clone(),
            output_index: 0,
            shape: vec![3, 4],
            dtype: nimble_tensor::DType::F32,
            device: DeviceId::Gpu,
        });
        // Shape is available before the future resolves.
        assert_eq!(obj.tensor_shape().unwrap(), vec![3, 4]);
        assert_eq!(obj.device(), DeviceId::Gpu);
        f.fulfill(vec![Tensor::ones_f32(&[3, 4])]);
        assert_eq!(obj.wait_tensor().unwrap().dims(), &[3, 4]);
    }

    #[test]
    fn clone_is_shallow() {
        let t = Tensor::ones_f32(&[1024]);
        let o1 = Object::tensor(t);
        let o2 = o1.clone();
        match (&o1, &o2) {
            (Object::Tensor(a), Object::Tensor(b)) => {
                // Same underlying buffer (reference counted, copy on write).
                assert!(!a.tensor.is_unique());
                assert!(!b.tensor.is_unique());
            }
            _ => unreachable!(),
        }
    }
}
