//! Tuner regression tests: the schedule search space must change *measured
//! cost only* — every `MatmulSchedule` produces the identical result, and
//! selection over the tuner's top-k is never worse than the default
//! schedule.

use nimble_codegen::select_schedule;
use nimble_codegen::tuner::{self, measure, search_space, TunerConfig};
use nimble_tensor::kernels::MatmulSchedule;
use nimble_tensor::Tensor;
use rand::SeedableRng;

/// A deliberately bad schedule: 1-wide reduction blocks maximize packing
/// and loop overhead per accumulated element.
fn pathological() -> MatmulSchedule {
    MatmulSchedule {
        tile_m: 8,
        tile_n: 8,
        tile_k: 1,
    }
}

#[test]
fn distinct_schedules_identical_outputs() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let x = Tensor::rand_f32(&mut rng, &[19, 48], 1.0);
    let w = Tensor::rand_f32(&mut rng, &[33, 48], 0.5);
    let reference: Vec<u32> = tuner::dense_with_schedule(&x, &w, MatmulSchedule::default())
        .unwrap()
        .as_f32()
        .unwrap()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let mut configs = search_space();
    configs.push(pathological());
    assert!(configs.len() >= 2, "need at least two distinct configs");
    for sched in configs {
        let got: Vec<u32> = tuner::dense_with_schedule(&x, &w, sched)
            .unwrap()
            .as_f32()
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(got, reference, "schedule {sched:?} changed the output");
    }
}

#[test]
fn schedules_have_distinguishable_costs() {
    // Cost must be a real function of the schedule: the 1-wide-reduction
    // pathological config has to measure slower than the default on a
    // mid-size GEMM. Best-of-three medians on each side to shrug off
    // scheduler noise in CI.
    let (m, n, k) = (96, 128, 128);
    let best_of = |sched: MatmulSchedule| -> f64 {
        (0..3)
            .map(|_| measure(m, n, k, sched, 5))
            .fold(f64::INFINITY, f64::min)
    };
    let good = best_of(MatmulSchedule::default());
    let bad = best_of(pathological());
    assert!(
        bad > good * 1.1,
        "schedules must have distinguishable costs: default {good:.0} ns vs \
         pathological {bad:.0} ns"
    );
}

#[test]
fn tuner_top_k_selection_never_worse_than_default() {
    let (n, k) = (64, 64);
    let report = tune_small(n, k);
    assert!(!report.top_configs.is_empty());
    let choice = select_schedule(n, k, &report.top_configs, &[16, 96], 3);
    assert!(
        choice.cost <= choice.default_cost,
        "selected {:?} at {:.0} ns/row must not be worse than default at {:.0} ns/row",
        choice.schedule,
        choice.cost,
        choice.default_cost
    );
}

fn tune_small(n: usize, k: usize) -> tuner::TuneReport {
    tune_with(
        n,
        k,
        TunerConfig {
            proxy_dim: 32,
            top_k: 4,
            eval_shapes: vec![8, 64],
            repeats: 2,
            max_trials: 12,
            seed: 7,
        },
    )
}

fn tune_with(n: usize, k: usize, cfg: TunerConfig) -> tuner::TuneReport {
    tuner::tune_dense_symbolic(n, k, &cfg)
}
