//! Template-based kernel tuning for symbolic shapes (Section 4.5).
//!
//! Naively tuning every possible dynamic shape would take "exponentially
//! longer"; the paper's algorithm instead:
//!
//! 1. replaces the symbolic dimension with a large-enough proxy value
//!    (64) and tunes the template on that static shape;
//! 2. takes the top-k configurations and evaluates them on a selection of
//!    other shapes (powers of two up to 256);
//! 3. picks the configuration with the best *average* across those shapes.
//!
//! The template here is a cache-blocked dense kernel parameterized by
//! [`ScheduleConfig`] (n-tile, k-tile, unroll factor) — the same role a
//! TVM schedule template plays for AutoTVM.

use nimble_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// One point in the schedule search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduleConfig {
    /// Column-block size.
    pub tile_n: usize,
    /// Reduction-block size.
    pub tile_k: usize,
    /// Reduction unroll factor.
    pub unroll: usize,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            tile_n: 32,
            tile_k: 32,
            unroll: 4,
        }
    }
}

/// Dense `out[m,n] = x[m,k] · wtᵀ[n,k]` through the schedule template.
pub fn dense_templated(
    x: &[f32],
    wt: &[f32],
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
    cfg: ScheduleConfig,
) {
    debug_assert!(cfg.tile_n > 0 && cfg.tile_k > 0 && cfg.unroll > 0);
    out.iter_mut().for_each(|v| *v = 0.0);
    let mut jb = 0;
    while jb < n {
        let jend = (jb + cfg.tile_n).min(n);
        let mut pb = 0;
        while pb < k {
            let pend = (pb + cfg.tile_k).min(k);
            for i in 0..m {
                let x_row = &x[i * k..(i + 1) * k];
                for j in jb..jend {
                    let w_row = &wt[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    let span = pend - pb;
                    let chunks = span / cfg.unroll * cfg.unroll;
                    let mut p = 0;
                    while p < chunks {
                        for u in 0..cfg.unroll {
                            acc += x_row[pb + p + u] * w_row[pb + p + u];
                        }
                        p += cfg.unroll;
                    }
                    for q in chunks..span {
                        acc += x_row[pb + q] * w_row[pb + q];
                    }
                    out[i * n + j] += acc;
                }
            }
            pb = pend;
        }
        jb = jend;
    }
}

/// Tuner parameters.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Static proxy value substituted for the symbolic dimension (step 1).
    pub proxy_dim: usize,
    /// Configurations carried to cross-shape evaluation (step 2). The paper
    /// uses k = 100 against a large AutoTVM space; the template space here
    /// is smaller, so the default keeps the same ~20% ratio.
    pub top_k: usize,
    /// Shapes evaluated in step 2 (powers of two up to 256 by default).
    pub eval_shapes: Vec<usize>,
    /// Timing repetitions per measurement.
    pub repeats: usize,
    /// Upper bound on configurations measured in step 1 (random subsample
    /// of the grid when the grid is larger).
    pub max_trials: usize,
    /// RNG seed for subsampling.
    pub seed: u64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            proxy_dim: 64,
            top_k: 8,
            eval_shapes: (0..=8).map(|e| 1usize << e).collect(),
            repeats: 3,
            max_trials: 48,
            seed: 0,
        }
    }
}

/// Tuning outcome.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Configuration chosen by step 3 (best cross-shape average).
    pub best: ScheduleConfig,
    /// Configuration that was fastest on the proxy shape alone.
    pub proxy_best: ScheduleConfig,
    /// Candidates measured in step 1.
    pub trials: usize,
    /// Mean latency (ns) of `best` per evaluation shape.
    pub cross_scores: Vec<(usize, f64)>,
}

fn search_space() -> Vec<ScheduleConfig> {
    let mut space = Vec::new();
    for &tile_n in &[8usize, 16, 32, 64] {
        for &tile_k in &[8usize, 16, 32, 64] {
            for &unroll in &[1usize, 2, 4] {
                space.push(ScheduleConfig {
                    tile_n,
                    tile_k,
                    unroll,
                });
            }
        }
    }
    space
}

fn measure(m: usize, n: usize, k: usize, cfg: ScheduleConfig, repeats: usize) -> f64 {
    let x: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 * 0.1).collect();
    let wt: Vec<f32> = (0..n * k).map(|i| (i % 7) as f32 * 0.1).collect();
    let mut out = vec![0.0f32; m * n];
    // Warm-up.
    dense_templated(&x, &wt, m, n, k, &mut out, cfg);
    let start = Instant::now();
    for _ in 0..repeats {
        dense_templated(&x, &wt, m, n, k, &mut out, cfg);
    }
    std::hint::black_box(&out);
    start.elapsed().as_nanos() as f64 / repeats as f64
}

/// Run the three-step tuning algorithm for a dense operator of weight
/// shape `[n, k]` with a symbolic row dimension.
pub fn tune_dense_symbolic(n: usize, k: usize, cfg: &TunerConfig) -> TuneReport {
    // Step 1: tune on the static proxy shape.
    let mut space = search_space();
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    space.shuffle(&mut rng);
    space.truncate(cfg.max_trials);
    let mut scored: Vec<(f64, ScheduleConfig)> = space
        .iter()
        .map(|&c| (measure(cfg.proxy_dim, n, k, c, cfg.repeats), c))
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let trials = scored.len();
    let proxy_best = scored[0].1;

    // Step 2: evaluate the top-k on the other shapes.
    let top: Vec<ScheduleConfig> = scored
        .into_iter()
        .take(cfg.top_k.max(1))
        .map(|(_, c)| c)
        .collect();
    let mut best = top[0];
    let mut best_avg = f64::INFINITY;
    let mut best_scores = Vec::new();
    for c in top {
        let scores: Vec<(usize, f64)> = cfg
            .eval_shapes
            .iter()
            .map(|&m| (m, measure(m, n, k, c, cfg.repeats)))
            .collect();
        // Normalize by shape volume so large shapes don't dominate the
        // average.
        let avg: f64 =
            scores.iter().map(|(m, t)| t / (*m as f64)).sum::<f64>() / scores.len() as f64;
        // Step 3: best average wins.
        if avg < best_avg {
            best_avg = avg;
            best = c;
            best_scores = scores;
        }
    }
    TuneReport {
        best,
        proxy_best,
        trials,
        cross_scores: best_scores,
    }
}

/// Convenience: run the tuned template as a tensor-level dense kernel.
///
/// # Errors
/// Propagates shape/dtype mismatches.
pub fn dense_with_schedule(
    x: &Tensor,
    weight: &Tensor,
    cfg: ScheduleConfig,
) -> nimble_tensor::Result<Tensor> {
    if weight.rank() != 2 || x.rank() < 1 {
        return Err(nimble_tensor::TensorError::invalid(
            "dense_with_schedule: bad ranks",
        ));
    }
    let k = *x.dims().last().expect("rank >= 1");
    let (n, wk) = (weight.dims()[0], weight.dims()[1]);
    if k != wk {
        return Err(nimble_tensor::TensorError::shape(
            "dense_with_schedule",
            x.dims(),
            weight.dims(),
        ));
    }
    let m: usize = x.dims()[..x.rank() - 1].iter().product();
    let mut out = vec![0.0f32; m * n];
    dense_templated(x.as_f32()?, weight.as_f32()?, m, n, k, &mut out, cfg);
    let mut shape = x.dims()[..x.rank() - 1].to_vec();
    shape.push(n);
    Tensor::from_vec_f32(out, &shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    fn reference(x: &[f32], wt: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = (0..k).map(|p| x[i * k + p] * wt[j * k + p]).sum();
            }
        }
        out
    }

    #[test]
    fn template_correct_for_all_configs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (m, n, k) = (5, 7, 11);
        let x: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let wt: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let want = reference(&x, &wt, m, n, k);
        for cfg in search_space() {
            let mut out = vec![0.0f32; m * n];
            dense_templated(&x, &wt, m, n, k, &mut out, cfg);
            for (a, b) in out.iter().zip(want.iter()) {
                assert!((a - b).abs() < 1e-4, "cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn tuner_runs_three_steps() {
        let cfg = TunerConfig {
            proxy_dim: 16,
            top_k: 3,
            eval_shapes: vec![1, 4, 16],
            repeats: 1,
            max_trials: 6,
            seed: 7,
        };
        let report = tune_dense_symbolic(8, 16, &cfg);
        assert_eq!(report.trials, 6);
        assert_eq!(report.cross_scores.len(), 3);
        assert!(report.cross_scores.iter().all(|&(_, t)| t > 0.0));
        // The chosen config is a member of the search space.
        assert!(search_space().contains(&report.best));
        assert!(search_space().contains(&report.proxy_best));
    }

    #[test]
    fn tuner_is_deterministic_given_seed() {
        let cfg = TunerConfig {
            proxy_dim: 8,
            top_k: 2,
            eval_shapes: vec![2, 8],
            repeats: 1,
            max_trials: 4,
            seed: 3,
        };
        let a = tune_dense_symbolic(4, 8, &cfg);
        let b = tune_dense_symbolic(4, 8, &cfg);
        // Timing noise may change the winner, but the candidate set is
        // identical — check the trial count and score shapes.
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.cross_scores.len(), b.cross_scores.len());
    }

    #[test]
    fn dense_with_schedule_matches_kernel() {
        let x = Tensor::ones_f32(&[3, 4]);
        let w = Tensor::ones_f32(&[2, 4]);
        let y = dense_with_schedule(&x, &w, ScheduleConfig::default()).unwrap();
        assert_eq!(y.dims(), &[3, 2]);
        assert!(y.as_f32().unwrap().iter().all(|&v| v == 4.0));
        let bad = Tensor::ones_f32(&[3, 5]);
        assert!(dense_with_schedule(&bad, &w, ScheduleConfig::default()).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn template_matches_reference(
            m in 1usize..9, n in 1usize..9, k in 1usize..17,
            tile_n in 1usize..5, tile_k in 1usize..5, unroll in 1usize..4,
        ) {
            let cfg = ScheduleConfig {
                tile_n: tile_n * 8,
                tile_k: tile_k * 8,
                unroll,
            };
            let x: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.01).collect();
            let wt: Vec<f32> = (0..n * k).map(|i| i as f32 * 0.02).collect();
            let want = reference(&x, &wt, m, n, k);
            let mut out = vec![0.0f32; m * n];
            dense_templated(&x, &wt, m, n, k, &mut out, cfg);
            for (a, b) in out.iter().zip(want.iter()) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }
    }
}
