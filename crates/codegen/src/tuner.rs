//! Template-based kernel tuning for symbolic shapes (Section 4.5).
//!
//! Naively tuning every possible dynamic shape would take "exponentially
//! longer"; the paper's algorithm instead:
//!
//! 1. replaces the symbolic dimension with a large-enough proxy value
//!    (64) and tunes the template on that static shape;
//! 2. takes the top-k configurations and evaluates them on a selection of
//!    other shapes (powers of two up to 256);
//! 3. picks the configuration with the best *average* across those shapes.
//!
//! The template is the real packed blocked GEMM of `nimble-tensor`,
//! parameterized by [`MatmulSchedule`] (`tile_m`/`tile_n`/`tile_k`) — the
//! same role a TVM schedule template plays for AutoTVM. Because the blocked
//! kernel's accumulation order is schedule-invariant, every point in the
//! search space produces bitwise-identical outputs; only the measured cost
//! differs (cache residency of the packed panels and the A strips).
//! Weights are packed *outside* the timed region: in deployment the pack is
//! amortized by the pre-pack cache, so timing it would bias the search
//! toward small `tile_k` for the wrong reason.

use nimble_tensor::kernels::gemm::{gemm_packed, Epilogue, PackedB};
use nimble_tensor::kernels::MatmulSchedule;
use nimble_tensor::pool::default_profile;
use nimble_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// Tuner parameters.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Static proxy value substituted for the symbolic dimension (step 1).
    pub proxy_dim: usize,
    /// Configurations carried to cross-shape evaluation (step 2). The paper
    /// uses k = 100 against a large AutoTVM space; the template space here
    /// is smaller, so the default keeps the same ~20% ratio.
    pub top_k: usize,
    /// Shapes evaluated in step 2 (powers of two up to 256 by default).
    pub eval_shapes: Vec<usize>,
    /// Timing repetitions per measurement.
    pub repeats: usize,
    /// Upper bound on configurations measured in step 1 (random subsample
    /// of the grid when the grid is larger).
    pub max_trials: usize,
    /// RNG seed for subsampling.
    pub seed: u64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            proxy_dim: 64,
            top_k: 8,
            eval_shapes: (0..=8).map(|e| 1usize << e).collect(),
            repeats: 3,
            max_trials: 48,
            seed: 0,
        }
    }
}

/// Tuning outcome.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Configuration chosen by step 3 (best cross-shape average).
    pub best: MatmulSchedule,
    /// Configuration that was fastest on the proxy shape alone.
    pub proxy_best: MatmulSchedule,
    /// The top-k configurations carried from step 1 to step 2, in proxy
    /// rank order.
    pub top_configs: Vec<MatmulSchedule>,
    /// Candidates measured in step 1.
    pub trials: usize,
    /// Mean latency (ns) of `best` per evaluation shape.
    pub cross_scores: Vec<(usize, f64)>,
}

/// The schedule grid explored by step 1 (48 points). Every point is
/// pre-sanitized, so measured configs are exactly the configs the GEMM
/// driver runs.
pub fn search_space() -> Vec<MatmulSchedule> {
    let mut space = Vec::new();
    for &tile_m in &[8usize, 16, 32, 64] {
        for &tile_n in &[16usize, 32, 64, 128] {
            for &tile_k in &[16usize, 64, 256] {
                space.push(
                    MatmulSchedule {
                        tile_m,
                        tile_n,
                        tile_k,
                    }
                    .sanitized(),
                );
            }
        }
    }
    space
}

/// Median wall time (ns) of the packed GEMM under `sched` on `m×n×k`,
/// deterministic synthetic operands, pack excluded from timing.
pub fn measure(m: usize, n: usize, k: usize, sched: MatmulSchedule, repeats: usize) -> f64 {
    let sched = sched.sanitized();
    let x: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 * 0.1).collect();
    let wt: Vec<f32> = (0..n * k).map(|i| (i % 7) as f32 * 0.1).collect();
    let pb = PackedB::pack_bt(&wt, n, k, sched.tile_k);
    let mut out = vec![0.0f32; m * n];
    let profile = default_profile();
    // Warm-up.
    gemm_packed(profile, &x, &pb, m, &mut out, sched, &Epilogue::NONE);
    let mut samples: Vec<f64> = (0..repeats.max(1))
        .map(|_| {
            let start = Instant::now();
            gemm_packed(profile, &x, &pb, m, &mut out, sched, &Epilogue::NONE);
            std::hint::black_box(&out);
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

/// Run the three-step tuning algorithm for a dense operator of weight
/// shape `[n, k]` with a symbolic row dimension.
pub fn tune_dense_symbolic(n: usize, k: usize, cfg: &TunerConfig) -> TuneReport {
    // Step 1: tune on the static proxy shape.
    let mut space = search_space();
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    space.shuffle(&mut rng);
    space.truncate(cfg.max_trials);
    let mut scored: Vec<(f64, MatmulSchedule)> = space
        .iter()
        .map(|&c| (measure(cfg.proxy_dim, n, k, c, cfg.repeats), c))
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let trials = scored.len();
    let proxy_best = scored[0].1;

    // Step 2: evaluate the top-k on the other shapes.
    let top: Vec<MatmulSchedule> = scored
        .into_iter()
        .take(cfg.top_k.max(1))
        .map(|(_, c)| c)
        .collect();
    let mut best = top[0];
    let mut best_avg = f64::INFINITY;
    let mut best_scores = Vec::new();
    for &c in &top {
        let scores: Vec<(usize, f64)> = cfg
            .eval_shapes
            .iter()
            .map(|&m| (m, measure(m, n, k, c, cfg.repeats)))
            .collect();
        // Normalize by shape volume so large shapes don't dominate the
        // average.
        let avg: f64 =
            scores.iter().map(|(m, t)| t / (*m as f64)).sum::<f64>() / scores.len() as f64;
        // Step 3: best average wins.
        if avg < best_avg {
            best_avg = avg;
            best = c;
            best_scores = scores;
        }
    }
    TuneReport {
        best,
        proxy_best,
        top_configs: top,
        trials,
        cross_scores: best_scores,
    }
}

/// Convenience: run the blocked GEMM as a tensor-level dense kernel under
/// an explicit schedule (the tuner's trial executor).
///
/// # Errors
/// Propagates shape/dtype mismatches.
pub fn dense_with_schedule(
    x: &Tensor,
    weight: &Tensor,
    sched: MatmulSchedule,
) -> nimble_tensor::Result<Tensor> {
    if weight.rank() != 2 || x.rank() < 1 {
        return Err(nimble_tensor::TensorError::invalid(
            "dense_with_schedule: bad ranks",
        ));
    }
    let k = *x.dims().last().expect("rank >= 1");
    let (n, wk) = (weight.dims()[0], weight.dims()[1]);
    if k != wk {
        return Err(nimble_tensor::TensorError::shape(
            "dense_with_schedule",
            x.dims(),
            weight.dims(),
        ));
    }
    let sched = sched.sanitized();
    let m: usize = x.dims()[..x.rank() - 1].iter().product();
    let pb = nimble_tensor::prepack::get_or_pack(weight, n, k, sched.tile_k)?;
    let mut out = vec![0.0f32; m * n];
    gemm_packed(
        default_profile(),
        x.as_f32()?,
        &pb,
        m,
        &mut out,
        sched,
        &Epilogue::NONE,
    );
    let mut shape = x.dims()[..x.rank() - 1].to_vec();
    shape.push(n);
    Tensor::from_vec_f32(out, &shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    fn reference(x: &[f32], wt: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = (0..k).map(|p| x[i * k + p] * wt[j * k + p]).sum();
            }
        }
        out
    }

    #[test]
    fn template_correct_for_all_configs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (m, n, k) = (5, 7, 11);
        let x: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let wt: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let want = reference(&x, &wt, m, n, k);
        for sched in search_space() {
            let pb = PackedB::pack_bt(&wt, n, k, sched.tile_k);
            let mut out = vec![0.0f32; m * n];
            gemm_packed(
                default_profile(),
                &x,
                &pb,
                m,
                &mut out,
                sched,
                &Epilogue::NONE,
            );
            for (a, b) in out.iter().zip(want.iter()) {
                assert!((a - b).abs() < 1e-4, "sched {sched:?}");
            }
        }
    }

    #[test]
    fn tuner_runs_three_steps() {
        let cfg = TunerConfig {
            proxy_dim: 16,
            top_k: 3,
            eval_shapes: vec![1, 4, 16],
            repeats: 1,
            max_trials: 6,
            seed: 7,
        };
        let report = tune_dense_symbolic(8, 16, &cfg);
        assert_eq!(report.trials, 6);
        assert_eq!(report.cross_scores.len(), 3);
        assert_eq!(report.top_configs.len(), 3);
        assert!(report.cross_scores.iter().all(|&(_, t)| t > 0.0));
        // The chosen config is a member of the search space.
        assert!(search_space().contains(&report.best));
        assert!(search_space().contains(&report.proxy_best));
        assert!(report.top_configs.contains(&report.best));
    }

    #[test]
    fn tuner_is_deterministic_given_seed() {
        let cfg = TunerConfig {
            proxy_dim: 8,
            top_k: 2,
            eval_shapes: vec![2, 8],
            repeats: 1,
            max_trials: 4,
            seed: 3,
        };
        let a = tune_dense_symbolic(4, 8, &cfg);
        let b = tune_dense_symbolic(4, 8, &cfg);
        // Timing noise may change the winner, but the candidate set is
        // identical — check the trial count and score shapes.
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.cross_scores.len(), b.cross_scores.len());
    }

    #[test]
    fn dense_with_schedule_matches_kernel() {
        let x = Tensor::ones_f32(&[3, 4]);
        let w = Tensor::ones_f32(&[2, 4]);
        let y = dense_with_schedule(&x, &w, MatmulSchedule::default()).unwrap();
        assert_eq!(y.dims(), &[3, 2]);
        assert!(y.as_f32().unwrap().iter().all(|&v| v == 4.0));
        let bad = Tensor::ones_f32(&[3, 5]);
        assert!(dense_with_schedule(&bad, &w, MatmulSchedule::default()).is_err());
    }

    #[test]
    fn all_schedules_bitwise_identical_outputs() {
        // The property the paper's tuner relies on (and our regression
        // tests assert end-to-end): schedules trade *time*, never *bits*.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let (m, n, k) = (19, 23, 37);
        let x = Tensor::rand_f32(&mut rng, &[m, k], 1.0);
        let w = Tensor::rand_f32(&mut rng, &[n, k], 1.0);
        let base = dense_with_schedule(&x, &w, MatmulSchedule::default()).unwrap();
        for sched in search_space() {
            let out = dense_with_schedule(&x, &w, sched).unwrap();
            let same = base
                .as_f32()
                .unwrap()
                .iter()
                .zip(out.as_f32().unwrap())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "schedule {sched:?} changed output bits");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn template_matches_reference(
            m in 1usize..9, n in 1usize..9, k in 1usize..17,
            tile_m in 1usize..5, tile_n in 1usize..5, tile_k in 1usize..33,
        ) {
            let sched = MatmulSchedule {
                tile_m: tile_m * 8,
                tile_n: tile_n * 8,
                tile_k,
            };
            let x: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.01).collect();
            let wt: Vec<f32> = (0..n * k).map(|i| i as f32 * 0.02).collect();
            let want = reference(&x, &wt, m, n, k);
            let pb = PackedB::pack_bt(&wt, n, k, sched.tile_k);
            let mut out = vec![0.0f32; m * n];
            gemm_packed(default_profile(), &x, &pb, m, &mut out, sched, &Epilogue::NONE);
            for (a, b) in out.iter().zip(want.iter()) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }
    }
}
