//! Compiled kernels: the executable payload behind `InvokePacked`.
//!
//! A [`Kernel`] is a named closure from input tensors to output tensors.
//! Three kinds are produced:
//!
//! * **plain operator kernels** — a thin closure over the registry's
//!   reference implementation;
//! * **symbolic operator kernels** — for dense ops with a dynamic row
//!   dimension, the residue-dispatch kernel set of [`crate::symbolic`]
//!   (Section 4.5);
//! * **fused primitive kernels** — compiled from the fused function bodies
//!   produced by the fusion pass; a fast path applies trailing unary
//!   elementwise ops in place, in a single pass, so fusion eliminates both
//!   intermediate allocations *and* memory traffic.

use crate::symbolic::{DispatchLevel, SymbolicDense};
use nimble_ir::attrs::Attrs;
use nimble_ir::expr::{Expr, ExprKind, Function};
use nimble_ir::op;
use nimble_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Kernel execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelError(pub String);

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel error: {}", self.0)
    }
}

impl std::error::Error for KernelError {}

impl From<nimble_tensor::TensorError> for KernelError {
    fn from(e: nimble_tensor::TensorError) -> Self {
        KernelError(e.to_string())
    }
}

impl From<nimble_ir::IrError> for KernelError {
    fn from(e: nimble_ir::IrError) -> Self {
        KernelError(e.to_string())
    }
}

type KernelFn = dyn Fn(&[Tensor]) -> Result<Vec<Tensor>, KernelError> + Send + Sync;

/// Where a dense-anchored kernel finds one of its GEMM operands at invoke
/// time: a positional kernel input, or a constant folded into the kernel
/// at compile time (fused primitive functions bake constants in).
#[derive(Clone)]
pub enum ArgSrc {
    /// Positional index into the kernel's input slice.
    Input(usize),
    /// Compile-time constant captured by the fused closure.
    Const(Tensor),
}

impl ArgSrc {
    /// Resolve against a concrete input slice. `Input` past the end
    /// resolves to `None` (the optional-bias case for plain `dense`).
    pub fn resolve<'a>(&'a self, inputs: &'a [Tensor]) -> Option<&'a Tensor> {
        match self {
            ArgSrc::Input(i) => inputs.get(*i),
            ArgSrc::Const(t) => Some(t),
        }
    }
}

impl fmt::Debug for ArgSrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgSrc::Input(i) => write!(f, "Input({i})"),
            ArgSrc::Const(t) => write!(f, "Const{:?}", t.dims()),
        }
    }
}

/// Shape-specialization metadata: attached to kernels whose hot loop is a
/// single dense GEMM (the symbolic `dense` kernel and the fused
/// dense+unary-epilogue fast path), describing where the GEMM operands
/// live and which scalar epilogue follows. The runtime specializer uses
/// this to build a shape-concretized replacement kernel that computes the
/// same `gemm_packed` + [`nimble_tensor::kernels::gemm::Epilogue`]
/// pipeline with a tuned schedule — bitwise-identical by the schedule
/// invariance of the packed GEMM.
#[derive(Clone, Debug)]
pub struct DenseSpec {
    /// Activation operand `[m.., k]`.
    pub x: ArgSrc,
    /// Weight operand `[n, k]` (transposed-weight dense layout).
    pub w: ArgSrc,
    /// Optional bias `[n]`. `Some(Input(i))` with fewer than `i + 1`
    /// runtime inputs means "no bias on this call".
    pub bias: Option<ArgSrc>,
    /// Epilogue chain applied after the bias add, in order; vectorizable
    /// ops run through the active SIMD backend's vecmath kernels.
    pub unary: Vec<nimble_tensor::UnaryOp>,
}

/// A compiled, invocable kernel.
#[derive(Clone)]
pub struct Kernel {
    name: Arc<str>,
    f: Arc<KernelFn>,
    /// Set when the kernel is a specializable dense anchor.
    spec: Option<Arc<DenseSpec>>,
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Kernel({})", self.name)
    }
}

impl Kernel {
    /// Wrap a closure as a kernel.
    pub fn new(
        name: &str,
        f: impl Fn(&[Tensor]) -> Result<Vec<Tensor>, KernelError> + Send + Sync + 'static,
    ) -> Kernel {
        Kernel {
            name: name.into(),
            f: Arc::new(f),
            spec: None,
        }
    }

    /// Attach shape-specialization metadata (builder style).
    fn with_spec(mut self, spec: DenseSpec) -> Kernel {
        self.spec = Some(Arc::new(spec));
        self
    }

    /// Shape-specialization metadata, when this kernel is a dense anchor
    /// the runtime specializer knows how to concretize.
    pub fn dense_spec(&self) -> Option<&Arc<DenseSpec>> {
        self.spec.as_ref()
    }

    /// The kernel's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Execute the kernel.
    ///
    /// # Errors
    /// Propagates shape/dtype failures from the underlying computation —
    /// these are the run-time residue of the gradual type checks deferred
    /// by Section 4.1.
    pub fn invoke(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>, KernelError> {
        (self.f)(inputs)
    }

    /// Compile a plain operator call into a kernel.
    ///
    /// When `symbolic` is set and the operator is `dense`, the
    /// residue-dispatch symbolic kernel set is used instead of the static
    /// reference kernel.
    ///
    /// # Errors
    /// Fails for unknown operators.
    pub fn from_op(name: &str, attrs: &Attrs, symbolic: bool) -> Result<Kernel, KernelError> {
        if symbolic && name == "dense" {
            return Ok(Kernel::dense_symbolic(DispatchLevel::Dispatch8));
        }
        let def = op::lookup(name)?;
        let attrs = attrs.clone();
        let exec = def.execute;
        Ok(Kernel::new(name, move |inputs| {
            exec(inputs, &attrs).map_err(KernelError::from)
        }))
    }

    /// The symbolic dense kernel set with its runtime dispatch function.
    pub fn dense_symbolic(level: DispatchLevel) -> Kernel {
        Kernel::new(
            &format!("dense.symbolic[{}]", level.label()),
            move |inputs| {
                let x = inputs
                    .first()
                    .ok_or_else(|| KernelError("dense: missing input".into()))?;
                let w = inputs
                    .get(1)
                    .ok_or_else(|| KernelError("dense: missing weight".into()))?;
                let d = SymbolicDense::new(w.clone(), inputs.get(2).cloned(), level)?;
                Ok(vec![d.run(x)?])
            },
        )
        .with_spec(DenseSpec {
            x: ArgSrc::Input(0),
            w: ArgSrc::Input(1),
            bias: Some(ArgSrc::Input(2)),
            unary: Vec::new(),
        })
    }

    /// Compile a fused primitive function into a single kernel.
    ///
    /// The body is compiled once into a positional step list — per-call
    /// execution is a flat loop over function pointers with a `Vec` value
    /// environment, no name lookups.
    ///
    /// # Errors
    /// Fails when the body is not a let-chain of operator calls over
    /// parameters, constants, and prior members.
    pub fn from_primitive(func: &Function) -> Result<Kernel, KernelError> {
        // Try the fast path: anchor op followed by pure unary elementwise
        // f32 ops on the running value.
        if let Some(k) = compile_unary_chain(func)? {
            return Ok(k);
        }
        // General path: precompile to positional steps.
        #[derive(Clone)]
        enum Src {
            Param(usize),
            Member(usize),
            Const(Tensor),
        }
        /// Scalar operation codes for the single-pass fused-elementwise
        /// evaluator.
        #[derive(Clone, Copy)]
        enum EwOp {
            Add,
            Sub,
            Mul,
            Div,
            Maximum,
            Minimum,
            Tanh,
            Sigmoid,
            Relu,
            Gelu,
            Neg,
            Sqrt,
        }
        impl EwOp {
            fn of(name: &str) -> Option<(EwOp, usize)> {
                Some(match name {
                    "add" => (EwOp::Add, 2),
                    "sub" => (EwOp::Sub, 2),
                    "mul" => (EwOp::Mul, 2),
                    "div" => (EwOp::Div, 2),
                    "maximum" => (EwOp::Maximum, 2),
                    "minimum" => (EwOp::Minimum, 2),
                    "tanh" => (EwOp::Tanh, 1),
                    "sigmoid" => (EwOp::Sigmoid, 1),
                    "relu" => (EwOp::Relu, 1),
                    "gelu" => (EwOp::Gelu, 1),
                    "neg" => (EwOp::Neg, 1),
                    "sqrt" => (EwOp::Sqrt, 1),
                    _ => return None,
                })
            }
            /// Per-element evaluation. Unary transcendentals go through
            /// [`nimble_simd::vecmath::unary_scalar_lane`] so a value that
            /// flows through this fused evaluator gets bit-identical
            /// treatment to one flowing through the standalone elementwise
            /// kernels under the same active SIMD backend — fusion
            /// grouping never changes output bits.
            #[inline]
            fn apply(self, isa: nimble_simd::Isa, a: f32, b: f32) -> f32 {
                use nimble_simd::vecmath::{unary_scalar_lane, UnaryOp};
                match self {
                    EwOp::Add => a + b,
                    EwOp::Sub => a - b,
                    EwOp::Mul => a * b,
                    EwOp::Div => a / b,
                    EwOp::Maximum => a.max(b),
                    EwOp::Minimum => a.min(b),
                    EwOp::Tanh => unary_scalar_lane(isa, UnaryOp::Tanh, a),
                    EwOp::Sigmoid => unary_scalar_lane(isa, UnaryOp::Sigmoid, a),
                    EwOp::Relu => unary_scalar_lane(isa, UnaryOp::Relu, a),
                    EwOp::Gelu => unary_scalar_lane(isa, UnaryOp::Gelu, a),
                    EwOp::Neg => -a,
                    EwOp::Sqrt => a.sqrt(),
                }
            }
        }
        struct Step {
            exec: nimble_ir::op::ExecFn,
            attrs: Attrs,
            args: Vec<Src>,
            name: &'static str,
            /// Set when the member is a pure elementwise op (enables the
            /// single-pass evaluator when the whole group qualifies).
            ew: Option<(EwOp, usize)>,
        }
        let mut pos_of_param: HashMap<u32, usize> = HashMap::new();
        for (i, p) in func.params.iter().enumerate() {
            pos_of_param.insert(p.id, i);
        }
        let mut pos_of_member: HashMap<u32, usize> = HashMap::new();
        let mut steps: Vec<Step> = Vec::new();
        let mut cur = func.body.clone();
        loop {
            match cur.kind() {
                ExprKind::Let { var, value, body } => {
                    let (name, args, attrs) = value.as_op_call().ok_or_else(|| {
                        KernelError("primitive body must contain only op calls".into())
                    })?;
                    let def = op::lookup(name)?;
                    let srcs = args
                        .iter()
                        .map(|a| match a.kind() {
                            ExprKind::Var(v) => pos_of_param
                                .get(&v.id)
                                .map(|&i| Src::Param(i))
                                .or_else(|| pos_of_member.get(&v.id).map(|&i| Src::Member(i)))
                                .ok_or_else(|| KernelError(format!("unbound {v} in primitive"))),
                            ExprKind::Constant(t) => Ok(Src::Const(t.clone())),
                            other => Err(KernelError(format!(
                                "unsupported primitive argument {other:?}"
                            ))),
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    pos_of_member.insert(var.id, steps.len());
                    steps.push(Step {
                        exec: def.execute,
                        attrs: attrs.clone(),
                        args: srcs,
                        name: def.name,
                        ew: EwOp::of(name),
                    });
                    cur = body.clone();
                }
                ExprKind::Var(v) => {
                    let result_pos = *pos_of_member
                        .get(&v.id)
                        .ok_or_else(|| KernelError(format!("unbound result {v} in primitive")))?;
                    if result_pos != steps.len() - 1 {
                        return Err(KernelError(
                            "primitive result must be the last member".into(),
                        ));
                    }
                    break;
                }
                other => {
                    return Err(KernelError(format!(
                        "unsupported primitive result {other:?}"
                    )))
                }
            }
        }
        let name = format!(
            "fused({})",
            steps.iter().map(|s| s.name).collect::<Vec<_>>().join("+")
        );
        let num_params = func.params.len();
        // The whole group is elementwise when every member is, and no
        // member has more than two operands.
        let all_elementwise =
            steps.iter().all(|s| s.ew.is_some() && s.args.len() <= 2) && steps.len() <= 32;
        Ok(Kernel::new(&name, move |inputs| {
            if inputs.len() != num_params {
                return Err(KernelError(format!(
                    "primitive arity mismatch: {} vs {num_params}",
                    inputs.len()
                )));
            }
            // Single-pass fused evaluation: legal when every non-scalar
            // operand shares one shape (scalars broadcast). This is the
            // loop fusion a compiled kernel performs — one sweep, zero
            // intermediate buffers.
            if all_elementwise {
                let mut common: Option<&[usize]> = None;
                let mut uniform = true;
                'check: for step in &steps {
                    for src in &step.args {
                        let dims = match src {
                            Src::Param(i) => match inputs[*i].as_f32() {
                                Ok(_) => inputs[*i].dims(),
                                Err(_) => {
                                    uniform = false;
                                    break 'check;
                                }
                            },
                            Src::Const(t) => t.dims(),
                            Src::Member(_) => continue,
                        };
                        let volume: usize = dims.iter().product();
                        if volume == 1 {
                            continue;
                        }
                        match common {
                            None => common = Some(dims),
                            Some(c) if c == dims => {}
                            Some(_) => {
                                uniform = false;
                                break 'check;
                            }
                        }
                    }
                }
                if uniform {
                    let out_dims: Vec<usize> = common.map(|c| c.to_vec()).unwrap_or_default();
                    let len: usize = out_dims.iter().product();
                    let mut out = vec![0.0f32; len];
                    // Resolve operand buffers once.
                    enum Buf<'a> {
                        Slice(&'a [f32]),
                        Scalar(f32),
                        Member(usize),
                    }
                    let mut bufs: Vec<[Option<Buf>; 2]> = Vec::with_capacity(steps.len());
                    for step in &steps {
                        let mut pair: [Option<Buf>; 2] = [None, None];
                        for (slot, src) in step.args.iter().enumerate() {
                            pair[slot] = Some(match src {
                                Src::Param(i) => {
                                    let v = inputs[*i].as_f32()?;
                                    if v.len() == 1 {
                                        Buf::Scalar(v[0])
                                    } else {
                                        Buf::Slice(v)
                                    }
                                }
                                Src::Const(t) => {
                                    let v = t.as_f32()?;
                                    if v.len() == 1 {
                                        Buf::Scalar(v[0])
                                    } else {
                                        Buf::Slice(v)
                                    }
                                }
                                Src::Member(m) => Buf::Member(*m),
                            });
                        }
                        bufs.push(pair);
                    }
                    let isa = nimble_simd::active();
                    let mut vals = [0.0f32; 32];
                    for (i, o) in out.iter_mut().enumerate() {
                        for (si, step) in steps.iter().enumerate() {
                            let (op, arity) = step.ew.expect("checked elementwise");
                            let fetch = |b: &Option<Buf>| -> f32 {
                                match b {
                                    Some(Buf::Slice(s)) => s[i],
                                    Some(Buf::Scalar(c)) => *c,
                                    Some(Buf::Member(m)) => vals[*m],
                                    None => 0.0,
                                }
                            };
                            let a = fetch(&bufs[si][0]);
                            let b = if arity == 2 { fetch(&bufs[si][1]) } else { 0.0 };
                            vals[si] = op.apply(isa, a, b);
                        }
                        *o = vals[steps.len() - 1];
                    }
                    return Ok(vec![Tensor::from_vec_f32(out, &out_dims)?]);
                }
            }
            // Fallback: member-at-a-time interpretation.
            let mut members: Vec<Tensor> = Vec::with_capacity(steps.len());
            let mut scratch: Vec<Tensor> = Vec::new();
            for step in &steps {
                scratch.clear();
                for src in &step.args {
                    scratch.push(match src {
                        Src::Param(i) => inputs[*i].clone(),
                        Src::Member(i) => members[*i].clone(),
                        Src::Const(t) => t.clone(),
                    });
                }
                let outs = (step.exec)(&scratch, &step.attrs)?;
                let out = outs
                    .into_iter()
                    .next()
                    .ok_or_else(|| KernelError(format!("{} produced no output", step.name)))?;
                members.push(out);
            }
            Ok(vec![members.pop().expect("at least one member")])
        }))
    }
}

/// Interpret a flat ANF body (op calls only) over a tensor environment.
pub fn eval_flat_body(
    body: &Expr,
    env: &mut HashMap<u32, Tensor>,
) -> Result<Vec<Tensor>, KernelError> {
    let mut cur = body.clone();
    loop {
        match cur.kind() {
            ExprKind::Let { var, value, body } => {
                let (name, args, attrs) = value.as_op_call().ok_or_else(|| {
                    KernelError("primitive body must contain only op calls".into())
                })?;
                let def = op::lookup(name)?;
                let inputs: Vec<Tensor> = args
                    .iter()
                    .map(|a| match a.kind() {
                        ExprKind::Var(v) => env
                            .get(&v.id)
                            .cloned()
                            .ok_or_else(|| KernelError(format!("unbound {v} in primitive"))),
                        ExprKind::Constant(t) => Ok(t.clone()),
                        other => Err(KernelError(format!(
                            "unsupported primitive argument {other:?}"
                        ))),
                    })
                    .collect::<Result<_, _>>()?;
                let outs = (def.execute)(&inputs, attrs)?;
                // Multi-output members not supported inside primitives (the
                // fusion pass never creates them).
                let out = outs
                    .into_iter()
                    .next()
                    .ok_or_else(|| KernelError(format!("{name} produced no output")))?;
                env.insert(var.id, out);
                cur = body.clone();
            }
            ExprKind::Var(v) => {
                return Ok(vec![env
                    .get(&v.id)
                    .cloned()
                    .ok_or_else(|| KernelError(format!("unbound result {v}")))?]);
            }
            other => {
                return Err(KernelError(format!(
                    "unsupported primitive result {other:?}"
                )))
            }
        }
    }
}

/// Unary elementwise f32 ops that can be applied in place.
fn unary_inplace(name: &str) -> Option<nimble_tensor::UnaryOp> {
    // `exp` is deliberately excluded: the IR has no bare-exp elementwise op.
    nimble_tensor::UnaryOp::from_name(name)
}

/// Fast path: `anchor(args…)` followed only by unary elementwise members
/// on the running value → run the anchor once, then one in-place sweep
/// applying the composed scalar function.
fn compile_unary_chain(func: &Function) -> Result<Option<Kernel>, KernelError> {
    let mut cur = func.body.clone();
    let mut members: Vec<(String, Vec<Expr>, Attrs)> = Vec::new();
    let mut member_vars: Vec<u32> = Vec::new();
    while let ExprKind::Let { var, value, body } = cur.kind() {
        let Some((name, args, attrs)) = value.as_op_call() else {
            return Ok(None);
        };
        members.push((name.to_string(), args.to_vec(), attrs.clone()));
        member_vars.push(var.id);
        cur = body.clone();
    }
    // Result must be the last member.
    let ExprKind::Var(res) = cur.kind() else {
        return Ok(None);
    };
    if member_vars.last() != Some(&res.id) || members.len() < 2 {
        return Ok(None);
    }
    // Members after the first must be unary-inplace on the previous value.
    let mut fns: Vec<nimble_tensor::UnaryOp> = Vec::new();
    for (i, (name, args, _)) in members.iter().enumerate().skip(1) {
        let Some(f) = unary_inplace(name) else {
            return Ok(None);
        };
        let ok = args.len() == 1
            && matches!(args[0].kind(), ExprKind::Var(v) if v.id == member_vars[i - 1]);
        if !ok {
            return Ok(None);
        }
        fns.push(f);
    }
    // Anchor executes through the registry; its args may reference params
    // and constants only.
    let (anchor_name, anchor_args, anchor_attrs) = members[0].clone();
    let def = op::lookup(&anchor_name)?;
    let param_ids: Vec<u32> = func.params.iter().map(|p| p.id).collect();
    let mut arg_sources: Vec<Result<usize, Tensor>> = Vec::new(); // Ok(param idx) | Err(constant)
    for a in &anchor_args {
        match a.kind() {
            ExprKind::Var(v) => match param_ids.iter().position(|&id| id == v.id) {
                Some(idx) => arg_sources.push(Ok(idx)),
                None => return Ok(None),
            },
            ExprKind::Constant(t) => arg_sources.push(Err(t.clone())),
            _ => return Ok(None),
        }
    }
    let chain_label = members[1..]
        .iter()
        .map(|(n, _, _)| n.as_str())
        .collect::<Vec<_>>()
        .join("+");
    if anchor_name == "dense" && (arg_sources.len() == 2 || arg_sources.len() == 3) {
        // Deeper fusion for the hottest anchor: the bias add and the whole
        // unary chain run inside the GEMM's write-out pass, so the output
        // is touched exactly once (no post-anchor sweep at all).
        let name = format!("fused(dense+{chain_label} epilogue)");
        let to_src = |s: &Result<usize, Tensor>| match s {
            Ok(i) => ArgSrc::Input(*i),
            Err(c) => ArgSrc::Const(c.clone()),
        };
        let spec = DenseSpec {
            x: to_src(&arg_sources[0]),
            w: to_src(&arg_sources[1]),
            bias: arg_sources.get(2).map(to_src),
            unary: fns.clone(),
        };
        return Ok(Some(
            Kernel::new(&name, move |inputs| {
                let gathered: Vec<Tensor> = arg_sources
                    .iter()
                    .map(|src| match src {
                        Ok(i) => inputs
                            .get(*i)
                            .cloned()
                            .ok_or_else(|| KernelError("missing primitive input".into())),
                        Err(c) => Ok(c.clone()),
                    })
                    .collect::<Result<_, _>>()?;
                let out = nimble_tensor::kernels::dense_with_epilogue(
                    &gathered[0],
                    &gathered[1],
                    gathered.get(2),
                    &fns,
                )?;
                Ok(vec![out])
            })
            .with_spec(spec),
        ));
    }
    let exec = def.execute;
    let name = format!("fused({anchor_name}+{chain_label} inplace)");
    Ok(Some(Kernel::new(&name, move |inputs| {
        let gathered: Vec<Tensor> = arg_sources
            .iter()
            .map(|src| match src {
                Ok(i) => inputs
                    .get(*i)
                    .cloned()
                    .ok_or_else(|| KernelError("missing primitive input".into())),
                Err(c) => Ok(c.clone()),
            })
            .collect::<Result<_, _>>()?;
        let outs = exec(&gathered, &anchor_attrs)?;
        let mut out = outs
            .into_iter()
            .next()
            .ok_or_else(|| KernelError("anchor produced no output".into()))?;
        // One in-place sweep applying the whole unary chain, vectorized on
        // the active backend through the shared epilogue-row primitive.
        let buf = out.as_f32_mut()?;
        nimble_simd::vecmath::epilogue_row(nimble_simd::active(), buf, None, &fns);
        Ok(vec![out])
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_ir::attrs::AttrValue;
    use nimble_ir::types::Type;
    use nimble_ir::Var;

    #[test]
    fn op_kernel_roundtrip() {
        let k = Kernel::from_op("add", &Attrs::new(), false).unwrap();
        let a = Tensor::from_vec_f32(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec_f32(vec![3.0, 4.0], &[2]).unwrap();
        let out = k.invoke(&[a, b]).unwrap();
        assert_eq!(out[0].as_f32().unwrap(), &[4.0, 6.0]);
        assert!(Kernel::from_op("not_an_op", &Attrs::new(), false).is_err());
    }

    #[test]
    fn op_kernel_attrs_captured() {
        let attrs = Attrs::new().with("axis", AttrValue::Int(1));
        let k = Kernel::from_op("sum", &attrs, false).unwrap();
        let a = Tensor::from_vec_f32(vec![1., 2., 3., 4.], &[2, 2]).unwrap();
        let out = k.invoke(&[a]).unwrap();
        assert_eq!(out[0].as_f32().unwrap(), &[3.0, 7.0]);
    }

    #[test]
    fn symbolic_dense_selected_for_dynamic() {
        let k = Kernel::from_op("dense", &Attrs::new(), true).unwrap();
        assert!(k.name().starts_with("dense.symbolic"));
        let x = Tensor::ones_f32(&[3, 4]);
        let w = Tensor::ones_f32(&[2, 4]);
        let out = k.invoke(&[x, w]).unwrap();
        assert_eq!(out[0].dims(), &[3, 2]);
        assert!(out[0].as_f32().unwrap().iter().all(|&v| v == 4.0));
    }

    fn chain_func() -> Function {
        // fn(x, w) { let d = dense(x, w); let t = tanh(d); let s =
        // sigmoid(t); s }
        let x = Var::fresh("x", Type::Unknown);
        let w = Var::fresh("w", Type::Unknown);
        let d = Var::fresh("d", Type::Unknown);
        let t = Var::fresh("t", Type::Unknown);
        let s = Var::fresh("s", Type::Unknown);
        let body = Expr::let_(
            d.clone(),
            Expr::call_op("dense", vec![x.to_expr(), w.to_expr()], Attrs::new()),
            Expr::let_(
                t.clone(),
                Expr::call_op("tanh", vec![d.to_expr()], Attrs::new()),
                Expr::let_(
                    s.clone(),
                    Expr::call_op("sigmoid", vec![t.to_expr()], Attrs::new()),
                    s.to_expr(),
                ),
            ),
        );
        Function::new(vec![x, w], body, Type::Unknown)
    }

    #[test]
    fn fused_chain_uses_fast_path_and_matches_reference() {
        let f = chain_func();
        let k = Kernel::from_primitive(&f).unwrap();
        // A dense anchor fuses the chain into the GEMM epilogue.
        assert!(k.name().contains("epilogue"), "name: {}", k.name());
        let x = Tensor::from_vec_f32(vec![0.5, -0.5, 1.0, 2.0], &[2, 2]).unwrap();
        let w = Tensor::from_vec_f32(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let out = k.invoke(&[x.clone(), w.clone()]).unwrap();
        // Reference: sigmoid(tanh(dense(x, w)))
        let d = nimble_tensor::kernels::dense(&x, &w, None).unwrap();
        let t = nimble_tensor::kernels::tanh(&d).unwrap();
        let s = nimble_tensor::kernels::sigmoid(&t).unwrap();
        for (a, b) in out[0].as_f32().unwrap().iter().zip(s.as_f32().unwrap()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn general_primitive_interpretation() {
        // A fused group the fast path rejects (binary second member):
        // fn(a, b) { let s = add(a, b); let m = mul(s, b); m }
        let a = Var::fresh("a", Type::Unknown);
        let b = Var::fresh("b", Type::Unknown);
        let s = Var::fresh("s", Type::Unknown);
        let m = Var::fresh("m", Type::Unknown);
        let body = Expr::let_(
            s.clone(),
            Expr::call_op("add", vec![a.to_expr(), b.to_expr()], Attrs::new()),
            Expr::let_(
                m.clone(),
                Expr::call_op("mul", vec![s.to_expr(), b.to_expr()], Attrs::new()),
                m.to_expr(),
            ),
        );
        let f = Function::new(vec![a, b], body, Type::Unknown);
        let k = Kernel::from_primitive(&f).unwrap();
        assert!(k.name().starts_with("fused("));
        let av = Tensor::from_vec_f32(vec![1.0, 2.0], &[2]).unwrap();
        let bv = Tensor::from_vec_f32(vec![3.0, 4.0], &[2]).unwrap();
        let out = k.invoke(&[av, bv]).unwrap();
        assert_eq!(out[0].as_f32().unwrap(), &[12.0, 24.0]);
    }

    #[test]
    fn primitive_arity_checked() {
        let f = chain_func();
        let k = Kernel::from_primitive(&f).unwrap();
        // Fast-path kernels check indices at gather time.
        assert!(k.invoke(&[Tensor::ones_f32(&[2, 2])]).is_err());
    }
}
