//! # nimble-codegen
//!
//! Kernel code generation for the Nimble reproduction (paper Section 4.5):
//!
//! * [`kernel`] — compile IR operator calls and fused primitive functions
//!   into executable [`kernel::Kernel`] closures (the payload of the VM's
//!   `InvokePacked` instruction), with an in-place fast path for fused
//!   elementwise tails;
//! * [`shape_func`] — compile shape functions in the three modes of
//!   Section 4.2 into CPU kernels over `i64` shape tensors;
//! * [`symbolic`] — **symbolic codegen with residue dispatch**: duplicate a
//!   dense kernel per residue of the tiling factor and dispatch on
//!   `m mod 8` at run time, eliminating boundary checks from the hot loop
//!   (the mechanism evaluated in Figure 3);
//! * [`tuner`] — the template-based tuning algorithm for symbolic shapes:
//!   tune on a proxy static shape, keep the top-k configurations,
//!   cross-evaluate on other shapes, pick the best average;
//! * [`select`] — the dispatch-function extension that profiles generated
//!   kernels against "third-party library" kernels per shape and invokes
//!   whichever is faster.

pub mod kernel;
pub mod select;
pub mod shape_func;
pub mod symbolic;
pub mod tuner;

pub use kernel::{ArgSrc, DenseSpec, Kernel, KernelError};
pub use select::{select_schedule, DenseImpl, ScheduleChoice, SelectingDense};
pub use shape_func::ShapeFuncKernel;
pub use symbolic::{dense_symbolic, dense_symbolic_packed, DispatchLevel, SymbolicDense};
pub use tuner::{tune_dense_symbolic, TuneReport, TunerConfig};
