//! Symbolic codegen with residue-modulo kernel dispatch (Section 4.5).
//!
//! The problem: a dense kernel over a *symbolic* row count `m` (the dynamic
//! sequence length) cannot prove that its row-tiling loop bounds divide
//! evenly, so boundary checks survive in the hot loop and block unrolling.
//!
//! The paper's solution, reproduced here: pick a tiling factor (8), then
//! *duplicate* the kernel for each residue `r = m mod 8`, substituting
//! `m = 8·q + r` so the tail length is a compile-time constant in each
//! copy, and emit a **dispatch function** that selects the right copy from
//! the runtime shape. Rust's const generics play the role of TVM's
//! specialized codegen: `panel_const::<R>` has a compile-time trip count
//! (fully unrolled, no per-row branch) while the unspecialized
//! `panel_masked` keeps an `if row < m` predicate in the innermost loop.
//!
//! Generating fewer than 8 copies (`dispatch/4`, `dispatch/2`) leaves some
//! tail length dynamic and re-introduces branches; generating one copy
//! (`no dispatch`) predicates *every* row block. Figure 3 measures exactly
//! this spectrum.
//!
//! The weight side reads the same packed-panel layout as the blocked GEMM
//! in `nimble-tensor` ([`PackedB`]: `NR`-column, k-major panels), and
//! [`SymbolicDense`] obtains those panels from the process-wide pre-pack
//! cache — so every residue variant of a layer shares one packed copy of
//! its weights and symbolic dispatch pays no per-call layout cost. The
//! accumulation order per output element is strictly increasing `k`,
//! matching the blocked GEMM, so all dispatch levels (and the library
//! kernel on the Server profile) agree bitwise.

use nimble_tensor::kernels::gemm::{PackedB, NR};
use nimble_tensor::kernels::MatmulSchedule;
use nimble_tensor::pool::default_profile;
use nimble_tensor::{prepack, Result as TResult, Tensor, TensorError};
use std::sync::Arc;

/// How many residue-specialized kernel copies the dispatcher may select
/// from (the `dispatch/k` axis of Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchLevel {
    /// Shape fully known at compile time (baseline).
    Static,
    /// 8 copies — one per residue; tails are compile-time constants.
    Dispatch8,
    /// 4 copies — residue known up to a pair; one dynamic branch remains.
    Dispatch4,
    /// 2 copies — residue known up to a quad; two dynamic branches remain.
    Dispatch2,
    /// 1 copy — nothing known; every row block is predicated.
    NoDispatch,
}

impl DispatchLevel {
    /// Number of kernel copies this level generates.
    pub fn copies(self) -> usize {
        match self {
            DispatchLevel::Static => 1,
            DispatchLevel::Dispatch8 => 8,
            DispatchLevel::Dispatch4 => 4,
            DispatchLevel::Dispatch2 => 2,
            DispatchLevel::NoDispatch => 1,
        }
    }

    /// Label used in Figure 3.
    pub fn label(self) -> &'static str {
        match self {
            DispatchLevel::Static => "static",
            DispatchLevel::Dispatch8 => "dispatch/8",
            DispatchLevel::Dispatch4 => "dispatch/4",
            DispatchLevel::Dispatch2 => "dispatch/2",
            DispatchLevel::NoDispatch => "no dispatch",
        }
    }
}

/// Row-tiling factor chosen by the tuner for the BERT dense layers ("the
/// auto-tuning algorithm chooses to tile the symbolic dimension … by a
/// factor of 8 in all three kernels"). Equals the GEMM microkernel's `MR`.
pub const TILE: usize = 8;

/// Compute `ROWS` output rows against every packed weight panel with
/// compile-time `ROWS`: the row loop fully unrolls and each packed weight
/// lane feeds `ROWS` accumulators, with no per-row branch.
#[inline]
fn panel_const<const ROWS: usize>(
    x: &[f32],
    pb: &PackedB,
    k: usize,
    out: &mut [f32],
    row0: usize,
    bias: Option<&[f32]>,
) {
    if ROWS == 0 {
        return;
    }
    let n = pb.n();
    for jp_idx in 0..pb.n_panels() {
        let j0 = jp_idx * NR;
        let cols = NR.min(n - j0);
        let mut acc = [[0.0f32; NR]; ROWS];
        for block in 0..pb.k_blocks() {
            let k0 = pb.block_k0(block);
            let kc = pb.block_kc(block);
            let bp = pb.panel(block, jp_idx);
            for kk in 0..kc {
                let b = &bp[kk * NR..kk * NR + NR];
                for r in 0..ROWS {
                    let a = x[(row0 + r) * k + k0 + kk];
                    for c in 0..NR {
                        acc[r][c] += a * b[c];
                    }
                }
            }
        }
        for r in 0..ROWS {
            for c in 0..cols {
                let mut v = acc[r][c];
                if let Some(bs) = bias {
                    v += bs[j0 + c];
                }
                out[(row0 + r) * n + j0 + c] = v;
            }
        }
    }
}

/// The unspecialized panel: identical structure, but the row count is a
/// runtime value so a boundary predicate survives in the innermost loop —
/// the "boundary condition checks … leading to poor performance" of
/// Section 4.5.
#[inline]
fn panel_masked(
    x: &[f32],
    pb: &PackedB,
    m: usize,
    k: usize,
    out: &mut [f32],
    row0: usize,
    bias: Option<&[f32]>,
) {
    let n = pb.n();
    for jp_idx in 0..pb.n_panels() {
        let j0 = jp_idx * NR;
        let cols = NR.min(n - j0);
        let mut acc = [[0.0f32; NR]; TILE];
        for block in 0..pb.k_blocks() {
            let k0 = pb.block_k0(block);
            let kc = pb.block_kc(block);
            let bp = pb.panel(block, jp_idx);
            for kk in 0..kc {
                let b = &bp[kk * NR..kk * NR + NR];
                for r in 0..TILE {
                    // The check the specialized copies eliminate:
                    if row0 + r < m {
                        let a = x[(row0 + r) * k + k0 + kk];
                        for c in 0..NR {
                            acc[r][c] += a * b[c];
                        }
                    }
                }
            }
        }
        for r in 0..TILE {
            if row0 + r < m {
                for c in 0..cols {
                    let mut v = acc[r][c];
                    if let Some(bs) = bias {
                        v += bs[j0 + c];
                    }
                    out[(row0 + r) * n + j0 + c] = v;
                }
            }
        }
    }
}

/// Run the compile-time tail for a constant residue.
fn tail_const(
    x: &[f32],
    pb: &PackedB,
    k: usize,
    out: &mut [f32],
    row0: usize,
    r: usize,
    bias: Option<&[f32]>,
) {
    match r {
        0 => {}
        1 => panel_const::<1>(x, pb, k, out, row0, bias),
        2 => panel_const::<2>(x, pb, k, out, row0, bias),
        3 => panel_const::<3>(x, pb, k, out, row0, bias),
        4 => panel_const::<4>(x, pb, k, out, row0, bias),
        5 => panel_const::<5>(x, pb, k, out, row0, bias),
        6 => panel_const::<6>(x, pb, k, out, row0, bias),
        7 => panel_const::<7>(x, pb, k, out, row0, bias),
        _ => unreachable!("residue < 8"),
    }
}

/// Dense `out[m,n] = x[m,k] · Bᵀ (+ bias)` over pre-packed weight panels
/// with the given dispatch level. The dispatch itself (the `match` on
/// `m % 8`) is what the paper's generated dispatch function performs before
/// jumping to the selected kernel copy.
pub fn dense_symbolic_packed(
    x: &[f32],
    pb: &PackedB,
    m: usize,
    out: &mut [f32],
    level: DispatchLevel,
    bias: Option<&[f32]>,
) {
    let (n, k) = (pb.n(), pb.k());
    debug_assert_eq!(x.len(), m * k);
    debug_assert_eq!(out.len(), m * n);
    let q = m / TILE;
    let r = m % TILE;
    match level {
        DispatchLevel::Static | DispatchLevel::Dispatch8 => {
            // Kernel copy for exact residue r: unrolled main blocks plus a
            // fully-unrolled constant tail. No boundary checks anywhere.
            for b in 0..q {
                panel_const::<TILE>(x, pb, k, out, b * TILE, bias);
            }
            tail_const(x, pb, k, out, q * TILE, r, bias);
        }
        DispatchLevel::Dispatch4 => {
            // Copy selected by r / 2: the even part of the tail is a
            // compile-time constant, parity costs one dynamic branch.
            for b in 0..q {
                panel_const::<TILE>(x, pb, k, out, b * TILE, bias);
            }
            let even = r & !1;
            tail_const(x, pb, k, out, q * TILE, even, bias);
            if r & 1 == 1 {
                panel_const::<1>(x, pb, k, out, q * TILE + even, bias);
            }
        }
        DispatchLevel::Dispatch2 => {
            // Copy selected by r / 4: two dynamic branches remain.
            for b in 0..q {
                panel_const::<TILE>(x, pb, k, out, b * TILE, bias);
            }
            let quad = r & !3;
            tail_const(x, pb, k, out, q * TILE, quad, bias);
            let mut row = q * TILE + quad;
            if r & 2 == 2 {
                panel_const::<2>(x, pb, k, out, row, bias);
                row += 2;
            }
            if r & 1 == 1 {
                panel_const::<1>(x, pb, k, out, row, bias);
            }
        }
        DispatchLevel::NoDispatch => {
            // The single symbolic kernel: the compiler cannot prove any
            // block is full, so every block runs predicated.
            let blocks = m.div_ceil(TILE);
            for b in 0..blocks {
                panel_masked(x, pb, m, k, out, b * TILE, bias);
            }
        }
    }
}

/// Slice-level entry point: packs `wt` (`[n, k]`) transiently and runs
/// [`dense_symbolic_packed`]. Benchmarks and the kernel selector use this
/// when they only hold raw buffers; kernels with a weight *tensor* go
/// through [`SymbolicDense`], which shares the pre-pack cache.
pub fn dense_symbolic(
    x: &[f32],
    wt: &[f32],
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
    level: DispatchLevel,
) {
    debug_assert_eq!(wt.len(), n * k);
    let tile_k = MatmulSchedule::for_profile(default_profile())
        .sanitized()
        .tile_k;
    let pb = PackedB::pack_bt(wt, n, k, tile_k);
    dense_symbolic_packed(x, &pb, m, out, level, None);
}

/// A symbolic dense operator: weights captured (and pre-packed) at compile
/// time, rows dynamic, dispatch level fixed by codegen configuration.
#[derive(Debug, Clone)]
pub struct SymbolicDense {
    /// Weight matrix stored `[n, k]` (pre-transposed); retained so the
    /// packed panels stay pinned in the process-wide cache.
    weight: Tensor,
    /// Panels shared through `nimble_tensor::prepack` with every other
    /// residue variant / session using the same weight buffer.
    packed: Arc<PackedB>,
    /// Optional bias `[n]`.
    bias: Option<Tensor>,
    level: DispatchLevel,
}

impl SymbolicDense {
    /// Build from weights (shape `[n, k]`) and optional bias.
    ///
    /// # Errors
    /// Fails when the weight is not a rank-2 f32 tensor or the bias does
    /// not match.
    pub fn new(weight: Tensor, bias: Option<Tensor>, level: DispatchLevel) -> TResult<Self> {
        if weight.rank() != 2 {
            return Err(TensorError::invalid("SymbolicDense: weight must be [n, k]"));
        }
        let (n, k) = (weight.dims()[0], weight.dims()[1]);
        if let Some(b) = &bias {
            if b.dims() != [n] {
                return Err(TensorError::shape("SymbolicDense bias", &[n], b.dims()));
            }
            b.as_f32()?;
        }
        let tile_k = MatmulSchedule::for_profile(default_profile())
            .sanitized()
            .tile_k;
        let packed = prepack::get_or_pack(&weight, n, k, tile_k)?;
        Ok(SymbolicDense {
            weight,
            packed,
            bias,
            level,
        })
    }

    /// The dispatch level this kernel set was generated with.
    pub fn level(&self) -> DispatchLevel {
        self.level
    }

    /// Execute on an input `[m, k]` (or `[…, k]`) with dynamic `m`.
    ///
    /// # Errors
    /// Fails on rank-0 input or contraction mismatch.
    pub fn run(&self, x: &Tensor) -> TResult<Tensor> {
        if x.rank() == 0 {
            return Err(TensorError::invalid("SymbolicDense: rank >= 1 required"));
        }
        let k = *x.dims().last().expect("rank >= 1");
        let (n, wk) = (self.weight.dims()[0], self.weight.dims()[1]);
        if k != wk {
            return Err(TensorError::shape(
                "SymbolicDense",
                x.dims(),
                self.weight.dims(),
            ));
        }
        let m: usize = x.dims()[..x.rank() - 1].iter().product();
        let mut out = vec![0.0f32; m * n];
        let bias = match &self.bias {
            Some(b) => Some(b.as_f32()?),
            None => None,
        };
        dense_symbolic_packed(x.as_f32()?, &self.packed, m, &mut out, self.level, bias);
        let mut shape = x.dims()[..x.rank() - 1].to_vec();
        shape.push(n);
        Tensor::from_vec_f32(out, &shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn reference(x: &[f32], wt: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += x[i * k + p] * wt[j * k + p];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    const ALL_LEVELS: [DispatchLevel; 5] = [
        DispatchLevel::Static,
        DispatchLevel::Dispatch8,
        DispatchLevel::Dispatch4,
        DispatchLevel::Dispatch2,
        DispatchLevel::NoDispatch,
    ];

    #[test]
    fn all_levels_agree_on_every_residue() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let (n, k) = (6, 10);
        let wt: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for m in 1..=17 {
            let x: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let want = reference(&x, &wt, m, n, k);
            for level in ALL_LEVELS {
                let mut out = vec![0.0f32; m * n];
                dense_symbolic(&x, &wt, m, n, k, &mut out, level);
                for (got, expect) in out.iter().zip(want.iter()) {
                    assert!(
                        (got - expect).abs() < 1e-4,
                        "level {level:?} m={m} mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn copies_counts() {
        assert_eq!(DispatchLevel::Dispatch8.copies(), 8);
        assert_eq!(DispatchLevel::Dispatch4.copies(), 4);
        assert_eq!(DispatchLevel::Dispatch2.copies(), 2);
        assert_eq!(DispatchLevel::NoDispatch.copies(), 1);
        assert_eq!(DispatchLevel::Dispatch8.label(), "dispatch/8");
    }

    #[test]
    fn symbolic_dense_with_bias() {
        let w = Tensor::from_vec_f32(vec![1., 0., 0., 1.], &[2, 2]).unwrap();
        let b = Tensor::from_vec_f32(vec![10., 20.], &[2]).unwrap();
        let d = SymbolicDense::new(w, Some(b), DispatchLevel::Dispatch8).unwrap();
        let x = Tensor::from_vec_f32(vec![1., 2., 3., 4., 5., 6.], &[3, 2]).unwrap();
        let y = d.run(&x).unwrap();
        assert_eq!(y.dims(), &[3, 2]);
        assert_eq!(y.as_f32().unwrap(), &[11., 22., 13., 24., 15., 26.]);
    }

    #[test]
    fn symbolic_dense_validates() {
        let w = Tensor::ones_f32(&[2, 2]);
        let bad_bias = Tensor::ones_f32(&[3]);
        assert!(SymbolicDense::new(w.clone(), Some(bad_bias), DispatchLevel::Dispatch8).is_err());
        let d = SymbolicDense::new(w, None, DispatchLevel::Dispatch8).unwrap();
        let bad_x = Tensor::ones_f32(&[3, 5]);
        assert!(d.run(&bad_x).is_err());
    }

    #[test]
    fn handles_leading_batch_dims() {
        let w = Tensor::ones_f32(&[4, 3]);
        let d = SymbolicDense::new(w, None, DispatchLevel::Dispatch4).unwrap();
        let x = Tensor::ones_f32(&[2, 5, 3]);
        let y = d.run(&x).unwrap();
        assert_eq!(y.dims(), &[2, 5, 4]);
        assert!(y.as_f32().unwrap().iter().all(|&v| (v - 3.0).abs() < 1e-6));
    }

    #[test]
    fn residue_variants_share_one_packed_weight() {
        // All dispatch levels of the same weight must resolve to the same
        // cached pack: symbolic dispatch pays no per-variant layout cost.
        let w = Tensor::from_vec_f32((0..24).map(|i| i as f32 * 0.1).collect(), &[4, 6]).unwrap();
        let variants: Vec<SymbolicDense> = ALL_LEVELS
            .iter()
            .map(|&lvl| SymbolicDense::new(w.clone(), None, lvl).unwrap())
            .collect();
        for v in &variants[1..] {
            assert!(
                Arc::ptr_eq(&variants[0].packed, &v.packed),
                "residue variants must share packed panels"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn dispatch_levels_equivalent(
            m in 1usize..33, n in 1usize..8, k in 1usize..12, seed in 0u64..64,
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let x: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let wt: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut base = vec![0.0f32; m * n];
            dense_symbolic(&x, &wt, m, n, k, &mut base, DispatchLevel::Static);
            for level in [DispatchLevel::Dispatch4, DispatchLevel::Dispatch2, DispatchLevel::NoDispatch] {
                let mut out = vec![0.0f32; m * n];
                dense_symbolic(&x, &wt, m, n, k, &mut out, level);
                // Same packed layout + same k-order accumulation: bitwise.
                for (a, b) in base.iter().zip(out.iter()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }
}
