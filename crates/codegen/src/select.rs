//! Profiling-based kernel selection (Section 4.5, dispatch extension).
//!
//! "The dispatch function can be extended to invoke either compiler
//! generated kernels or third party library whichever is faster from the
//! profiling results." This module implements that extension: candidate
//! dense implementations — the residue-dispatch *generated* kernel and the
//! unrolled-reduction *library* kernel (standing in for MKL/cuDNN) — are
//! profiled on first use per weight shape, and the faster one is cached
//! and dispatched thereafter.

use crate::symbolic::{dense_symbolic, DispatchLevel};
use crate::tuner;
use nimble_tensor::kernels::{dense, MatmulSchedule};
use nimble_tensor::{Result as TResult, Tensor};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::time::Instant;

/// Which implementation won the profile race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenseImpl {
    /// Compiler-generated residue-dispatch kernel.
    Generated,
    /// "Third-party library" kernel (the tensor crate's tuned dense).
    Library,
}

/// A dispatching dense operator that profiles its candidates per weight
/// shape and remembers the winner.
#[derive(Debug, Default)]
pub struct SelectingDense {
    choices: RwLock<HashMap<(usize, usize), DenseImpl>>,
}

impl SelectingDense {
    /// Fresh selector with no profile history.
    pub fn new() -> SelectingDense {
        SelectingDense::default()
    }

    /// The cached choice for a weight shape, if profiled already.
    pub fn choice(&self, n: usize, k: usize) -> Option<DenseImpl> {
        self.choices.read().get(&(n, k)).copied()
    }

    /// Number of profiled shapes.
    pub fn profiled_shapes(&self) -> usize {
        self.choices.read().len()
    }

    fn run_generated(x: &Tensor, w: &Tensor) -> TResult<Tensor> {
        let k = *x.dims().last().expect("rank >= 1");
        let n = w.dims()[0];
        let m: usize = x.dims()[..x.rank() - 1].iter().product();
        let mut out = vec![0.0f32; m * n];
        dense_symbolic(
            x.as_f32()?,
            w.as_f32()?,
            m,
            n,
            k,
            &mut out,
            DispatchLevel::Dispatch8,
        );
        let mut shape = x.dims()[..x.rank() - 1].to_vec();
        shape.push(n);
        Tensor::from_vec_f32(out, &shape)
    }

    /// Execute `x · wᵀ`, profiling both implementations on first encounter
    /// of this weight shape.
    ///
    /// # Errors
    /// Propagates shape/dtype failures from the kernels.
    pub fn run(&self, x: &Tensor, w: &Tensor) -> TResult<Tensor> {
        let key = (w.dims()[0], w.dims()[1]);
        let chosen = self.choice(key.0, key.1);
        match chosen {
            Some(DenseImpl::Generated) => Self::run_generated(x, w),
            Some(DenseImpl::Library) => dense(x, w, None),
            None => {
                // Profile: time each candidate once on the live input (the
                // warm-up inference doubles as the profile run).
                let t0 = Instant::now();
                let gen_out = Self::run_generated(x, w)?;
                let gen_time = t0.elapsed();
                let t1 = Instant::now();
                let lib_out = dense(x, w, None)?;
                let lib_time = t1.elapsed();
                let winner = if gen_time <= lib_time {
                    DenseImpl::Generated
                } else {
                    DenseImpl::Library
                };
                self.choices.write().insert(key, winner);
                // Either output is valid; return the library one (computed
                // last, still warm in cache).
                let _ = gen_out;
                Ok(lib_out)
            }
        }
    }
}

/// Outcome of [`select_schedule`]: the measured winner plus the default
/// schedule's cost on the same shapes, for regression checks.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleChoice {
    /// The winning schedule (lowest mean cost across the tuning shapes).
    pub schedule: MatmulSchedule,
    /// Mean measured cost (ns, volume-normalized) of the winner.
    pub cost: f64,
    /// Mean measured cost of [`MatmulSchedule::default`] on the same
    /// shapes and the same measurement pass.
    pub default_cost: f64,
}

/// Pick the best schedule for a `[n, k]` weight from `candidates`
/// (typically a tuner report's `top_configs`), measured across `shapes`
/// row counts.
///
/// The default schedule is always entered as a candidate and scored in the
/// same pass, so the returned choice is — by measurement, not assumption —
/// never worse than the default on the tuning shapes
/// (`choice.cost <= choice.default_cost`).
pub fn select_schedule(
    n: usize,
    k: usize,
    candidates: &[MatmulSchedule],
    shapes: &[usize],
    repeats: usize,
) -> ScheduleChoice {
    let default = MatmulSchedule::default().sanitized();
    let mut pool: Vec<MatmulSchedule> = vec![default];
    for c in candidates {
        let c = c.sanitized();
        if !pool.contains(&c) {
            pool.push(c);
        }
    }
    let score = |sched: MatmulSchedule| -> f64 {
        let scores: Vec<f64> = shapes
            .iter()
            .map(|&m| tuner::measure(m.max(1), n, k, sched, repeats) / m.max(1) as f64)
            .collect();
        scores.iter().sum::<f64>() / scores.len().max(1) as f64
    };
    let mut best = default;
    let mut best_cost = f64::INFINITY;
    let mut default_cost = f64::INFINITY;
    for &sched in &pool {
        let cost = score(sched);
        if sched == default {
            default_cost = cost;
        }
        if cost < best_cost {
            best_cost = cost;
            best = sched;
        }
    }
    ScheduleChoice {
        schedule: best,
        cost: best_cost,
        default_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn profiles_once_then_caches() {
        let sel = SelectingDense::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = Tensor::rand_f32(&mut rng, &[5, 16], 1.0);
        let w = Tensor::rand_f32(&mut rng, &[8, 16], 1.0);
        assert_eq!(sel.choice(8, 16), None);
        let out1 = sel.run(&x, &w).unwrap();
        assert!(sel.choice(8, 16).is_some());
        assert_eq!(sel.profiled_shapes(), 1);
        // Subsequent runs dispatch to the cached winner and agree
        // numerically.
        let out2 = sel.run(&x, &w).unwrap();
        for (a, b) in out1.as_f32().unwrap().iter().zip(out2.as_f32().unwrap()) {
            assert!((a - b).abs() < 1e-4);
        }
        // A new shape profiles separately.
        let w2 = Tensor::rand_f32(&mut rng, &[4, 16], 1.0);
        sel.run(&x, &w2).unwrap();
        assert_eq!(sel.profiled_shapes(), 2);
    }

    #[test]
    fn select_schedule_never_worse_than_default() {
        let cands = [
            MatmulSchedule {
                tile_m: 8,
                tile_n: 16,
                tile_k: 8,
            },
            MatmulSchedule {
                tile_m: 64,
                tile_n: 128,
                tile_k: 256,
            },
        ];
        let choice = select_schedule(24, 32, &cands, &[8, 24], 3);
        assert!(
            choice.cost <= choice.default_cost,
            "winner {:?} cost {} must not exceed default cost {}",
            choice.schedule,
            choice.cost,
            choice.default_cost
        );
    }

    #[test]
    fn both_impls_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let x = Tensor::rand_f32(&mut rng, &[7, 12], 1.0);
        let w = Tensor::rand_f32(&mut rng, &[5, 12], 1.0);
        let a = SelectingDense::run_generated(&x, &w).unwrap();
        let b = dense(&x, &w, None).unwrap();
        assert_eq!(a.dims(), b.dims());
        for (p, q) in a.as_f32().unwrap().iter().zip(b.as_f32().unwrap()) {
            assert!((p - q).abs() < 1e-4);
        }
    }
}
