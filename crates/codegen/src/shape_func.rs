//! Compiled shape functions (Section 4.2).
//!
//! Shape functions are realized "as fragments of the tensor expression
//! language" in the paper — ordinary tiny kernels over `i64` shape tensors,
//! executed on the CPU. Here a [`ShapeFuncKernel`] is a closure in one of
//! the three modes:
//!
//! * **shapes** (data independent): inputs are the rank-1 `i64` shape
//!   tensors produced by `shape_of`;
//! * **data** (data dependent): inputs are the operand *values* themselves
//!   (which device placement pins to the CPU);
//! * **bound** (upper bound): like `shapes`, but the result is an upper
//!   bound and the kernel reports the precise shape with its output.
//!
//! Fused primitives get a *composite* shape function: the member
//! data-independent shape functions composed in order — legal precisely
//! because the fusion policy forbids fusing past data-dependent or
//! upper-bound operators.

use crate::kernel::KernelError;
use nimble_ir::attrs::Attrs;
use nimble_ir::expr::{ExprKind, Function};
use nimble_ir::op::{self, ShapeFnKind};
use nimble_tensor::{DType, Tensor};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

type ShapeFn = dyn Fn(&[Tensor]) -> Result<Vec<Tensor>, KernelError> + Send + Sync;

/// The execution mode of a compiled shape function, mirroring the
/// `mode` attribute placed on `invoke_shape_func` by memory planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeFuncMode {
    /// Inputs are shape tensors.
    Shapes,
    /// Inputs are data tensors.
    Data,
    /// Inputs are shape tensors; outputs are upper bounds.
    Bound,
}

impl ShapeFuncMode {
    /// Parse the IR attribute value.
    pub fn parse(s: &str) -> ShapeFuncMode {
        match s {
            "data" => ShapeFuncMode::Data,
            "bound" => ShapeFuncMode::Bound,
            _ => ShapeFuncMode::Shapes,
        }
    }
}

/// A compiled shape function.
#[derive(Clone)]
pub struct ShapeFuncKernel {
    name: Arc<str>,
    /// Execution mode.
    pub mode: ShapeFuncMode,
    f: Arc<ShapeFn>,
}

impl fmt::Debug for ShapeFuncKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShapeFuncKernel({}, {:?})", self.name, self.mode)
    }
}

fn shapes_to_tensors(shapes: Vec<Vec<usize>>) -> Vec<Tensor> {
    shapes
        .into_iter()
        .map(|s| {
            let dims: Vec<i64> = s.iter().map(|&d| d as i64).collect();
            let n = dims.len();
            Tensor::from_vec_i64(dims, &[n]).expect("shape tensor construction")
        })
        .collect()
}

fn tensors_to_shapes(tensors: &[Tensor]) -> Result<Vec<Vec<usize>>, KernelError> {
    tensors
        .iter()
        .map(|t| {
            Ok(t.as_i64()
                .map_err(KernelError::from)?
                .iter()
                .map(|&d| d as usize)
                .collect())
        })
        .collect()
}

impl ShapeFuncKernel {
    /// The shape function's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Execute: shape tensors (or data tensors in `Data` mode) in, shape
    /// tensors out.
    ///
    /// # Errors
    /// Propagates relation failures — the run-time type checks of the
    /// gradual typing scheme.
    pub fn invoke(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>, KernelError> {
        (self.f)(inputs)
    }

    /// Compile the shape function for a single operator call.
    ///
    /// # Errors
    /// Fails for unknown operators.
    pub fn from_op(
        name: &str,
        attrs: &Attrs,
        in_dtypes: Vec<DType>,
    ) -> Result<ShapeFuncKernel, KernelError> {
        let def = op::lookup(name)?;
        let attrs = attrs.clone();
        match def.shape_fn {
            ShapeFnKind::DataIndependent => {
                let op_name: Arc<str> = name.into();
                let op_name2 = Arc::clone(&op_name);
                Ok(ShapeFuncKernel {
                    name: op_name,
                    mode: ShapeFuncMode::Shapes,
                    f: Arc::new(move |inputs| {
                        let shapes = tensors_to_shapes(inputs)?;
                        let def = op::lookup(&op_name2)?;
                        let out = def
                            .infer_shapes(&shapes, &in_dtypes, &attrs)
                            .map_err(KernelError::from)?;
                        Ok(shapes_to_tensors(out))
                    }),
                })
            }
            ShapeFnKind::DataDependent(f) => Ok(ShapeFuncKernel {
                name: name.into(),
                mode: ShapeFuncMode::Data,
                f: Arc::new(move |inputs| {
                    let out = f(inputs, &attrs).map_err(KernelError::from)?;
                    Ok(shapes_to_tensors(out))
                }),
            }),
            ShapeFnKind::UpperBound(f) => Ok(ShapeFuncKernel {
                name: name.into(),
                mode: ShapeFuncMode::Bound,
                f: Arc::new(move |inputs| {
                    let shapes = tensors_to_shapes(inputs)?;
                    let out = f(&shapes, &attrs).map_err(KernelError::from)?;
                    Ok(shapes_to_tensors(out))
                }),
            }),
        }
    }

    /// Compile the composite shape function of a fused primitive: member
    /// shape functions composed in binding order ("the compiler can easily
    /// connect the shape functions of basic operators to form the shape
    /// function for a composite operator when all shape functions are data
    /// independent").
    ///
    /// `param_dtypes` gives the dtype of each primitive parameter.
    ///
    /// # Errors
    /// Fails when a member operator is not data independent (the fusion
    /// policy should have prevented this).
    pub fn from_primitive(
        func: &Function,
        param_dtypes: Vec<DType>,
    ) -> Result<ShapeFuncKernel, KernelError> {
        // Pre-validate the members.
        let mut cur = func.body.clone();
        while let ExprKind::Let { value, body, .. } = cur.kind() {
            if let Some((name, _, _)) = value.as_op_call() {
                let def = op::lookup(name)?;
                if def.is_fusion_barrier() {
                    return Err(KernelError(format!(
                        "composite shape function: member {name} is not data independent"
                    )));
                }
            }
            cur = body.clone();
        }
        let func = func.clone();
        Ok(ShapeFuncKernel {
            name: "composite".into(),
            mode: ShapeFuncMode::Shapes,
            f: Arc::new(move |inputs| {
                // Environment: var id -> (shape, dtype).
                let mut env: HashMap<u32, (Vec<usize>, DType)> = HashMap::new();
                if inputs.len() != func.params.len() {
                    return Err(KernelError(format!(
                        "composite shape function arity {} vs {}",
                        inputs.len(),
                        func.params.len()
                    )));
                }
                for ((p, t), dt) in func
                    .params
                    .iter()
                    .zip(inputs.iter())
                    .zip(param_dtypes.iter())
                {
                    let shape = t
                        .as_i64()
                        .map_err(KernelError::from)?
                        .iter()
                        .map(|&d| d as usize)
                        .collect();
                    env.insert(p.id, (shape, *dt));
                }
                let mut cur = func.body.clone();
                loop {
                    match cur.kind() {
                        ExprKind::Let { var, value, body } => {
                            let (name, args, attrs) = value.as_op_call().ok_or_else(|| {
                                KernelError("composite member must be an op call".into())
                            })?;
                            let def = op::lookup(name)?;
                            let mut shapes = Vec::with_capacity(args.len());
                            let mut dtypes = Vec::with_capacity(args.len());
                            for a in args {
                                match a.kind() {
                                    ExprKind::Var(v) => {
                                        let (s, dt) = env.get(&v.id).ok_or_else(|| {
                                            KernelError(format!("unbound {v} in composite"))
                                        })?;
                                        shapes.push(s.clone());
                                        dtypes.push(*dt);
                                    }
                                    ExprKind::Constant(t) => {
                                        shapes.push(t.dims().to_vec());
                                        dtypes.push(t.dtype());
                                    }
                                    other => {
                                        return Err(KernelError(format!(
                                            "unsupported composite arg {other:?}"
                                        )))
                                    }
                                }
                            }
                            let out = def
                                .infer_shapes(&shapes, &dtypes, attrs)
                                .map_err(KernelError::from)?;
                            // Members are single-output by the fusion pass.
                            let out_shape = out
                                .into_iter()
                                .next()
                                .ok_or_else(|| KernelError("member with no output".into()))?;
                            // Output dtype: use the type relation on static
                            // inputs to recover it cheaply — reuse the
                            // relation result dtype by running it again is
                            // wasteful; derive from attrs for `cast`, else
                            // first input's dtype.
                            let out_dt = attrs
                                .dtype("to")
                                .or_else(|| dtypes.first().copied())
                                .unwrap_or(DType::F32);
                            env.insert(var.id, (out_shape, out_dt));
                            cur = body.clone();
                        }
                        ExprKind::Var(v) => {
                            let (s, _) = env
                                .get(&v.id)
                                .ok_or_else(|| KernelError(format!("unbound result {v}")))?;
                            return Ok(shapes_to_tensors(vec![s.clone()]));
                        }
                        other => {
                            return Err(KernelError(format!(
                                "unsupported composite result {other:?}"
                            )))
                        }
                    }
                }
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_ir::attrs::AttrValue;
    use nimble_ir::expr::Expr;
    use nimble_ir::types::Type;
    use nimble_ir::Var;

    fn shape_tensor(dims: &[i64]) -> Tensor {
        Tensor::from_vec_i64(dims.to_vec(), &[dims.len()]).unwrap()
    }

    #[test]
    fn data_independent_concat() {
        let attrs = Attrs::new().with("axis", AttrValue::Int(0));
        let sf = ShapeFuncKernel::from_op("concat", &attrs, vec![DType::F32, DType::F32]).unwrap();
        assert_eq!(sf.mode, ShapeFuncMode::Shapes);
        let out = sf
            .invoke(&[shape_tensor(&[3, 2]), shape_tensor(&[1, 2])])
            .unwrap();
        assert_eq!(out[0].as_i64().unwrap(), &[4, 2]);
    }

    #[test]
    fn runtime_check_fires_on_bad_shapes() {
        // The deferred gradual-typing check: concat with mismatched widths
        // passes static typing for Any, but fails here at run time.
        let attrs = Attrs::new().with("axis", AttrValue::Int(0));
        let sf = ShapeFuncKernel::from_op("concat", &attrs, vec![DType::F32, DType::F32]).unwrap();
        assert!(sf
            .invoke(&[shape_tensor(&[3, 2]), shape_tensor(&[1, 5])])
            .is_err());
    }

    #[test]
    fn data_dependent_arange() {
        let sf = ShapeFuncKernel::from_op("arange", &Attrs::new(), vec![DType::F32; 3]).unwrap();
        assert_eq!(sf.mode, ShapeFuncMode::Data);
        let out = sf
            .invoke(&[
                Tensor::scalar_f32(0.0),
                Tensor::scalar_f32(6.0),
                Tensor::scalar_f32(2.0),
            ])
            .unwrap();
        assert_eq!(out[0].as_i64().unwrap(), &[3]);
    }

    #[test]
    fn upper_bound_nms() {
        let sf = ShapeFuncKernel::from_op("nms", &Attrs::new(), vec![DType::F32]).unwrap();
        assert_eq!(sf.mode, ShapeFuncMode::Bound);
        let out = sf.invoke(&[shape_tensor(&[12, 5])]).unwrap();
        assert_eq!(out[0].as_i64().unwrap(), &[12, 5]);
    }

    #[test]
    fn composite_shape_function() {
        // fused dense+tanh: shape flows through dense's relation then
        // tanh's identity.
        let x = Var::fresh("x", Type::Unknown);
        let w = Var::fresh("w", Type::Unknown);
        let d = Var::fresh("d", Type::Unknown);
        let t = Var::fresh("t", Type::Unknown);
        let body = Expr::let_(
            d.clone(),
            Expr::call_op("dense", vec![x.to_expr(), w.to_expr()], Attrs::new()),
            Expr::let_(
                t.clone(),
                Expr::call_op("tanh", vec![d.to_expr()], Attrs::new()),
                t.to_expr(),
            ),
        );
        let f = Function::new(vec![x, w], body, Type::Unknown);
        let sf = ShapeFuncKernel::from_primitive(&f, vec![DType::F32, DType::F32]).unwrap();
        let out = sf
            .invoke(&[shape_tensor(&[7, 300]), shape_tensor(&[512, 300])])
            .unwrap();
        assert_eq!(out[0].as_i64().unwrap(), &[7, 512]);
    }

    #[test]
    fn composite_rejects_barrier_members() {
        let a = Var::fresh("a", Type::Unknown);
        let u = Var::fresh("u", Type::Unknown);
        let body = Expr::let_(
            u.clone(),
            Expr::call_op("unique", vec![a.to_expr()], Attrs::new()),
            u.to_expr(),
        );
        let f = Function::new(vec![a], body, Type::Unknown);
        assert!(ShapeFuncKernel::from_primitive(&f, vec![DType::I64]).is_err());
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(ShapeFuncMode::parse("shapes"), ShapeFuncMode::Shapes);
        assert_eq!(ShapeFuncMode::parse("data"), ShapeFuncMode::Data);
        assert_eq!(ShapeFuncMode::parse("bound"), ShapeFuncMode::Bound);
        assert_eq!(ShapeFuncMode::parse("junk"), ShapeFuncMode::Shapes);
    }
}
