//! Golden-style test: the memory-planned IR for the paper's Section 4.3
//! examples matches the structure of the listings in the paper.

use nimble_ir::attrs::{AttrValue, Attrs};
use nimble_ir::builder::FunctionBuilder;
use nimble_ir::printer::print_function;
use nimble_ir::types::TensorType;
use nimble_ir::{DType, Module};
use nimble_passes::anf::to_anf;
use nimble_passes::memory_plan::plan_function;
use nimble_passes::type_infer::infer_function;

/// The static example of Section 4.3:
///
/// ```text
/// fn main() -> Tensor<10> {
///   let storage = alloc_storage(40, 64, cpu(0));
///   let out1 = alloc_tensor(storage, 0, (10), f32);
///   invoke_mut(add, (t1, t2), (out1));
///   out1
/// }
/// ```
#[test]
fn static_add_matches_paper_listing() {
    let mut fb = FunctionBuilder::new("main");
    let t1 = fb.param("t1", TensorType::new(&[10], DType::F32));
    let t2 = fb.param("t2", TensorType::new(&[10], DType::F32));
    let s = fb.call("add", vec![t1, t2], Attrs::new());
    let f = to_anf(&fb.finish(s));
    let (types, _) = infer_function(&Module::new(), &f).unwrap();
    let (planned, _) = plan_function(&f, &types, true).unwrap();
    let text = print_function("main", &planned);

    // The listing's three statements, in order.
    let storage_at = text.find("memory.alloc_storage").expect("alloc_storage");
    let tensor_at = text.find("memory.alloc_tensor").expect("alloc_tensor");
    let invoke_at = text.find("memory.invoke_mut").expect("invoke_mut");
    assert!(storage_at < tensor_at && tensor_at < invoke_at, "{text}");
    // alloc_storage(40, 64, …): 10 f32 = 40 bytes, 64 alignment.
    assert!(text.contains("alignment=64"), "{text}");
    assert!(text.contains("size=40"), "{text}");
    // The tensor is carved at offset 0 with shape (10) f32.
    assert!(text.contains("offset=0"), "{text}");
    assert!(text.contains("shape=[10]"), "{text}");
    assert!(text.contains("dtype=float32"), "{text}");
}

/// The dynamic example of Section 4.3: concat with a manifested shape
/// function (`shape_of` → `invoke_shape_func` → dynamically sized alloc →
/// `invoke_mut`).
#[test]
fn dynamic_concat_matches_paper_listing() {
    let mut fb = FunctionBuilder::new("main");
    let x = fb.param("x", TensorType::with_any(&[None, Some(2)], DType::F32));
    let y = fb.param("y", TensorType::new(&[1, 2], DType::F32));
    let c = fb.call(
        "concat",
        vec![x, y],
        Attrs::new().with("axis", AttrValue::Int(0)),
    );
    let f = to_anf(&fb.finish(c));
    let (types, _) = infer_function(&Module::new(), &f).unwrap();
    let (planned, _) = plan_function(&f, &types, true).unwrap();
    let text = print_function("main", &planned);

    // The paper's listing order: shape_of both inputs, invoke the shape
    // function, allocate the output from the computed shape, invoke the
    // kernel with the output as an in-out argument.
    let sh0 = text.find("shape_of").expect("first shape_of");
    let sh1 = text.rfind("shape_of").expect("second shape_of");
    let sf = text
        .find("memory.invoke_shape_func")
        .expect("invoke_shape_func");
    let alloc = text
        .find("memory.alloc_tensor_reg")
        .expect("alloc_tensor_reg");
    let invoke = text.find("memory.invoke_mut").expect("invoke_mut");
    assert!(
        sh0 < sh1 && sh1 < sf && sf < alloc && alloc < invoke,
        "{text}"
    );
    // The shape function runs in "shapes" (data-independent) mode.
    assert!(text.contains("mode=\"shapes\""), "{text}");
}
