//! # nimble-passes
//!
//! Compiler analyses and transformations for dynamic models — the middle of
//! the paper's pipeline (Figure 1):
//!
//! * [`type_infer`] — type inference with `Any` propagation and sub-shaping
//!   (Section 4.1);
//! * [`anf`] — A-normal-form conversion, the prerequisite for explicit
//!   allocation;
//! * [`fusion`] — operator fusion with the dynamic-aware fusion policy
//!   (Section 4.2): ops whose shape functions are data dependent or
//!   upper-bound are fusion barriers;
//! * [`memory_plan`] — rewrite to the explicit-allocation dialect
//!   (`alloc_storage` / `alloc_tensor` / `invoke_mut` / `kill`) with shape
//!   functions manifested and storage coalesced (Section 4.3);
//! * [`device_place`] — unification-based heterogeneous device placement
//!   inserting `device_copy` nodes (Section 4.4);
//! * [`opt`] — supporting passes: constant folding, dead-code elimination.

pub mod anf;
pub mod device_place;
pub mod fusion;
pub mod memory_plan;
pub mod opt;
pub mod type_infer;

pub use nimble_ir::{IrError, Result};

/// Names of the explicit-allocation dialect operators introduced by
/// [`memory_plan`] (Section 4.3) and consumed by the VM compiler.
pub mod dialect {
    /// `alloc_storage(size, alignment, device)` — allocate a raw region.
    pub const ALLOC_STORAGE: &str = "memory.alloc_storage";
    /// `alloc_tensor(storage, offset; shape, dtype)` — carve a tensor.
    pub const ALLOC_TENSOR: &str = "memory.alloc_tensor";
    /// `alloc_tensor_reg(storage, shape_tensor; dtype)` — carve a tensor
    /// whose shape is a runtime value.
    pub const ALLOC_TENSOR_REG: &str = "memory.alloc_tensor_reg";
    /// `invoke_mut(op-name; …)(inputs…, outputs…)` — kernel call with
    /// explicit in-out arguments.
    pub const INVOKE_MUT: &str = "memory.invoke_mut";
    /// `invoke_shape_func(op-name; …)(inputs…, outputs…)` — shape-function
    /// call (always CPU-resident).
    pub const INVOKE_SHAPE_FUNC: &str = "memory.invoke_shape_func";
    /// `kill(tensor)` — end-of-lifetime marker.
    pub const KILL: &str = "memory.kill";
}
