//! Heterogeneous device placement (Section 4.4).
//!
//! Shape functions "must execute on the CPU due to the host-interaction
//! model of GPU-like devices", while compute kernels belong on the
//! accelerator. This pass assigns a [`DeviceKind`] to every value in a
//! memory-planned function and inserts explicit `device_copy` nodes where a
//! value crosses domains, following the paper's rules:
//!
//! * `shape_of` outputs default to the CPU domain (the shape is accessible
//!   regardless of where the tensor lives);
//! * shape-function inputs and outputs live on the CPU;
//! * `device_copy` is the only boundary between domains;
//! * storage allocated by `alloc_storage` carries its device, propagated to
//!   tensors carved from it via `alloc_tensor`;
//! * all arguments of one `invoke_mut` share a domain.
//!
//! Equivalence classes (storage ↔ tensor, aliases) are maintained with a
//! union-find over value ids — `union(s, t)` / `find(s)` exactly as the
//! paper describes — then each class takes its producer-preferred device
//! and consumer mismatches become copies.

use crate::dialect;
use nimble_ir::attrs::{AttrValue, Attrs};
use nimble_ir::expr::{Clause, Expr, ExprKind, Function};
use nimble_ir::types::Type;
use nimble_ir::{Result, Var};
use std::collections::HashMap;

/// The device domains distinguished by placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Host CPU.
    Cpu,
    /// Accelerator (the simulated GPU in this reproduction).
    Gpu,
}

impl DeviceKind {
    /// Stable integer id used in `device` attributes and VM instructions.
    pub fn index(self) -> i64 {
        match self {
            DeviceKind::Cpu => 0,
            DeviceKind::Gpu => 1,
        }
    }

    /// Inverse of [`DeviceKind::index`].
    pub fn from_index(i: i64) -> DeviceKind {
        if i == 1 {
            DeviceKind::Gpu
        } else {
            DeviceKind::Cpu
        }
    }
}

/// Placement statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementReport {
    /// `device_copy` nodes inserted.
    pub copies_inserted: usize,
    /// Values placed on the CPU domain.
    pub cpu_values: usize,
    /// Values placed on the accelerator domain.
    pub device_values: usize,
}

/// Union-find over value ids with an optional device label per class.
struct DeviceDomains {
    parent: HashMap<u32, u32>,
    label: HashMap<u32, DeviceKind>,
}

impl DeviceDomains {
    fn new() -> Self {
        DeviceDomains {
            parent: HashMap::new(),
            label: HashMap::new(),
        }
    }

    /// `find(s)`: representative of the domain `s` belongs to.
    fn find(&mut self, v: u32) -> u32 {
        let p = *self.parent.entry(v).or_insert(v);
        if p == v {
            return v;
        }
        let root = self.find(p);
        self.parent.insert(v, root);
        root
    }

    /// `union(s, t)`: merge the equivalence domains of `s` and `t`,
    /// unioning labels (first label wins on conflict — the conflicting use
    /// site receives a copy instead).
    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let la = self.label.get(&ra).copied();
        let lb = self.label.get(&rb).copied();
        self.parent.insert(rb, ra);
        if let (None, Some(d)) = (la, lb) {
            self.label.insert(ra, d);
        }
    }

    /// Attach a device label to `v`'s domain if it has none.
    fn prefer(&mut self, v: u32, d: DeviceKind) {
        let r = self.find(v);
        self.label.entry(r).or_insert(d);
    }

    fn device_of(&mut self, v: u32, default: DeviceKind) -> DeviceKind {
        let r = self.find(v);
        self.label.get(&r).copied().unwrap_or(default)
    }
}

/// Place a memory-planned function onto `target` (compute device), pinning
/// shape computation to the CPU and inserting `device_copy` where domains
/// meet.
///
/// # Errors
/// Currently infallible in practice; the `Result` covers future rule
/// violations.
pub fn place_function(func: &Function, target: DeviceKind) -> Result<(Function, PlacementReport)> {
    let mut report = PlacementReport::default();
    // Params arrive on the host.
    let mut domains = DeviceDomains::new();
    for p in &func.params {
        domains.prefer(p.id, DeviceKind::Cpu);
    }
    let body = place_block(&func.body, target, &mut domains, &mut report)?;
    Ok((
        Function::new(func.params.clone(), body, func.ret_type.clone()),
        report,
    ))
}

fn tensor_args_of_invoke(args: &[Expr]) -> impl Iterator<Item = &Expr> {
    args.iter().skip(1).filter(|a| {
        !matches!(
            a.kind(),
            ExprKind::Op(_) | ExprKind::Global(_) | ExprKind::Constructor(_) | ExprKind::Func(_)
        )
    })
}

fn place_block(
    block: &Expr,
    target: DeviceKind,
    domains: &mut DeviceDomains,
    report: &mut PlacementReport,
) -> Result<Expr> {
    // Chain collection.
    let mut chain: Vec<(Var, Expr)> = Vec::new();
    let mut cur = block.clone();
    while let ExprKind::Let { var, value, body } = cur.kind() {
        chain.push((var.clone(), value.clone()));
        cur = body.clone();
    }
    let result = cur;

    // Phase 1: build domains (unions + producer labels).
    for (var, value) in &chain {
        match value.kind() {
            ExprKind::Var(src) => domains.union(var.id, src.id),
            ExprKind::Call { args, .. } => {
                if let Some((op, _, _)) = value.as_op_call() {
                    match op {
                        "shape_of" => domains.prefer(var.id, DeviceKind::Cpu),
                        d if d == dialect::INVOKE_SHAPE_FUNC => {
                            domains.prefer(var.id, DeviceKind::Cpu);
                            for a in tensor_args_of_invoke(args) {
                                if let Some(v) = a.as_var() {
                                    domains.prefer(v.id, DeviceKind::Cpu);
                                }
                            }
                        }
                        d if d == dialect::ALLOC_TENSOR => {
                            if let Some(storage) = args.first().and_then(|a| a.as_var()) {
                                domains.union(var.id, storage.id);
                            }
                            domains.prefer(var.id, target);
                        }
                        d if d == dialect::ALLOC_TENSOR_REG => {
                            domains.prefer(var.id, target);
                            // The shape input stays on CPU.
                            if let Some(sh) = args.first().and_then(|a| a.as_var()) {
                                domains.prefer(sh.id, DeviceKind::Cpu);
                            }
                        }
                        d if d == dialect::ALLOC_STORAGE || d == dialect::KILL => {}
                        d if d == dialect::INVOKE_MUT => {
                            // All invoke_mut values share the kernel's
                            // domain; the result aliases the output buffer.
                            domains.prefer(var.id, target);
                            for a in tensor_args_of_invoke(args) {
                                if let Some(v) = a.as_var() {
                                    domains.prefer(v.id, target);
                                }
                            }
                        }
                        _ => {
                            // Plain op call (pre-memory-planning IR is also
                            // accepted): kernel-domain producer.
                            domains.prefer(var.id, target);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    // Phase 2: rewrite, inserting copies at mismatched uses.
    let mut out: Vec<(Var, Expr)> = Vec::new();
    // Cache: (var id, destination) -> copy var.
    let mut copies: HashMap<(u32, DeviceKind), Var> = HashMap::new();

    let ensure_on = |atom: &Expr,
                     want: DeviceKind,
                     domains: &mut DeviceDomains,
                     out: &mut Vec<(Var, Expr)>,
                     copies: &mut HashMap<(u32, DeviceKind), Var>,
                     report: &mut PlacementReport|
     -> Expr {
        match atom.kind() {
            ExprKind::Var(v) => {
                let have = domains.device_of(v.id, want);
                if have == want {
                    return atom.clone();
                }
                if let Some(cv) = copies.get(&(v.id, want)) {
                    return cv.to_expr();
                }
                let cv = Var::fresh(&format!("{}_on{}", v.name, want.index()), Type::Unknown);
                out.push((
                    cv.clone(),
                    Expr::call_op(
                        "device_copy",
                        vec![atom.clone()],
                        Attrs::new()
                            .with("src_device", AttrValue::Int(have.index()))
                            .with("dst_device", AttrValue::Int(want.index())),
                    ),
                ));
                domains.prefer(cv.id, want);
                copies.insert((v.id, want), cv.clone());
                report.copies_inserted += 1;
                cv.to_expr()
            }
            // Constants are pre-placed on the device that consumes them at
            // executable-load time, so no runtime copy is needed.
            _ => atom.clone(),
        }
    };

    for (var, value) in &chain {
        let new_value = match value.kind() {
            ExprKind::If { cond, then, els } => Expr::if_(
                cond.clone(),
                place_block(then, target, domains, report)?,
                place_block(els, target, domains, report)?,
            ),
            ExprKind::Match { value: v, clauses } => Expr::match_(
                v.clone(),
                clauses
                    .iter()
                    .map(|c| {
                        Ok(Clause {
                            pattern: c.pattern.clone(),
                            body: place_block(&c.body, target, domains, report)?,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?,
            ),
            ExprKind::Func(f) => Expr::func(Function::new(
                f.params.clone(),
                place_block(&f.body, target, domains, report)?,
                f.ret_type.clone(),
            )),
            ExprKind::Call {
                callee,
                args,
                attrs,
            } => {
                if let Some((op, _, _)) = value.as_op_call() {
                    match op {
                        d if d == dialect::INVOKE_MUT => {
                            let mut new_args = vec![args[0].clone()];
                            for a in &args[1..] {
                                new_args.push(ensure_on(
                                    a,
                                    target,
                                    domains,
                                    &mut out,
                                    &mut copies,
                                    report,
                                ));
                            }
                            Expr::new(ExprKind::Call {
                                callee: callee.clone(),
                                args: new_args,
                                attrs: attrs.clone().with("device", AttrValue::Int(target.index())),
                            })
                        }
                        d if d == dialect::INVOKE_SHAPE_FUNC => {
                            let mode = attrs.str("mode").unwrap_or("shapes").to_string();
                            let mut new_args = vec![args[0].clone()];
                            for a in &args[1..] {
                                // Only "data" mode consumes tensor values;
                                // shape tensors are CPU-born already.
                                if mode == "data" {
                                    new_args.push(ensure_on(
                                        a,
                                        DeviceKind::Cpu,
                                        domains,
                                        &mut out,
                                        &mut copies,
                                        report,
                                    ));
                                } else {
                                    new_args.push(a.clone());
                                }
                            }
                            Expr::new(ExprKind::Call {
                                callee: callee.clone(),
                                args: new_args,
                                attrs: attrs
                                    .clone()
                                    .with("device", AttrValue::Int(DeviceKind::Cpu.index())),
                            })
                        }
                        d if d == dialect::ALLOC_STORAGE => {
                            // Storage device = its class's device.
                            let dev = domains.device_of(var.id, target);
                            Expr::new(ExprKind::Call {
                                callee: callee.clone(),
                                args: args.clone(),
                                attrs: attrs.clone().with("device", AttrValue::Int(dev.index())),
                            })
                        }
                        d if d == dialect::ALLOC_TENSOR || d == dialect::ALLOC_TENSOR_REG => {
                            let dev = domains.device_of(var.id, target);
                            Expr::new(ExprKind::Call {
                                callee: callee.clone(),
                                args: args.clone(),
                                attrs: attrs.clone().with("device", AttrValue::Int(dev.index())),
                            })
                        }
                        _ => value.clone(),
                    }
                } else {
                    value.clone()
                }
            }
            _ => value.clone(),
        };
        out.push((var.clone(), new_value));
    }

    // Tally placement.
    for (var, _) in &out {
        match domains.device_of(var.id, target) {
            DeviceKind::Cpu => report.cpu_values += 1,
            DeviceKind::Gpu => report.device_values += 1,
        }
    }

    let mut body = result;
    for (var, value) in out.into_iter().rev() {
        body = Expr::let_(var, value, body);
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anf::to_anf;
    use crate::memory_plan::plan_function;
    use crate::type_infer::infer_function;
    use nimble_ir::builder::FunctionBuilder;
    use nimble_ir::types::TensorType;
    use nimble_ir::Module;
    use nimble_tensor::DType;

    fn planned_dynamic_dense() -> Function {
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::with_any(&[None, Some(4)], DType::F32));
        let y = fb.param("y", TensorType::new(&[1, 4], DType::F32));
        let c = fb.call(
            "concat",
            vec![x, y],
            Attrs::new().with("axis", AttrValue::Int(0)),
        );
        let t = fb.call("tanh", vec![c], Attrs::new());
        let f = to_anf(&fb.finish(t));
        let (types, _) = infer_function(&Module::new(), &f).unwrap();
        plan_function(&f, &types, true).unwrap().0
    }

    fn count_ops(f: &Function, name: &str) -> usize {
        let mut n = 0;
        nimble_ir::visit::visit_post_order(&f.body, &mut |e| {
            if let Some((op, _, _)) = e.as_op_call() {
                if op == name {
                    n += 1;
                }
            }
        });
        n
    }

    #[test]
    fn cpu_target_inserts_no_copies() {
        let f = planned_dynamic_dense();
        let (placed, report) = place_function(&f, DeviceKind::Cpu).unwrap();
        assert_eq!(report.copies_inserted, 0);
        assert_eq!(count_ops(&placed, "device_copy"), 0);
    }

    #[test]
    fn gpu_target_copies_host_inputs_once() {
        let f = planned_dynamic_dense();
        let (placed, report) = place_function(&f, DeviceKind::Gpu).unwrap();
        // x and y arrive on host and are consumed by the GPU kernel: 2
        // copies, memoized (x feeds both shape_of — no copy needed — and
        // the kernel).
        assert_eq!(report.copies_inserted, 2);
        assert_eq!(count_ops(&placed, "device_copy"), 2);
        assert!(report.device_values > 0);
        assert!(report.cpu_values > 0);
    }

    #[test]
    fn shape_results_stay_on_cpu() {
        let f = planned_dynamic_dense();
        let (placed, _) = place_function(&f, DeviceKind::Gpu).unwrap();
        // Every invoke_shape_func is annotated device=0 (CPU), every
        // invoke_mut device=1 (GPU).
        nimble_ir::visit::visit_post_order(&placed.body, &mut |e| {
            if let Some((op, _, attrs)) = e.as_op_call() {
                if op == crate::dialect::INVOKE_SHAPE_FUNC {
                    assert_eq!(attrs.int("device"), Some(0));
                }
                if op == crate::dialect::INVOKE_MUT {
                    assert_eq!(attrs.int("device"), Some(1));
                }
            }
        });
    }

    #[test]
    fn alloc_devices_follow_consumers() {
        let f = planned_dynamic_dense();
        let (placed, _) = place_function(&f, DeviceKind::Gpu).unwrap();
        // alloc_tensor_reg buffers feed GPU kernels → device 1.
        let mut saw = 0;
        nimble_ir::visit::visit_post_order(&placed.body, &mut |e| {
            if let Some((op, _, attrs)) = e.as_op_call() {
                if op == crate::dialect::ALLOC_TENSOR_REG {
                    assert_eq!(attrs.int("device"), Some(1));
                    saw += 1;
                }
            }
        });
        assert!(saw >= 1);
    }

    #[test]
    fn union_find_basics() {
        let mut d = DeviceDomains::new();
        d.union(1, 2);
        d.union(2, 3);
        assert_eq!(d.find(1), d.find(3));
        d.prefer(3, DeviceKind::Cpu);
        assert_eq!(d.device_of(1, DeviceKind::Gpu), DeviceKind::Cpu);
        // First label wins; later conflicting unions keep it.
        d.prefer(10, DeviceKind::Gpu);
        d.union(1, 10);
        assert_eq!(d.device_of(10, DeviceKind::Gpu), DeviceKind::Cpu);
    }
}
