//! Operator fusion with the paper's dynamic-aware fusion policy.
//!
//! Fusion groups adjacent operators into *primitive functions* that the
//! code generator compiles to a single kernel, eliminating intermediate
//! allocations and VM dispatch. Grouping follows the standard
//! anchor/follower discipline (a compute-heavy op absorbs trailing
//! elementwise ops; injective ops chain together), with the paper's
//! additional rule from Section 4.2: **an operator whose shape function is
//! data dependent or upper bound is a fusion barrier**, because the
//! composite shape function would need access to intermediate results.
//!
//! A fused group appears in the IR as
//! `(fn(params…) { let …; out })(args…)` with the attribute
//! `primitive = 1`, mirroring Relay's representation.

use nimble_ir::attrs::{AttrValue, Attrs};
use nimble_ir::expr::{Clause, Expr, ExprKind, Function};
use nimble_ir::op::{self, FusePattern};
use nimble_ir::types::Type;
use nimble_ir::Var;
use std::collections::HashMap;

/// Attribute key marking a call to a fused primitive function.
pub const PRIMITIVE_ATTR: &str = "primitive";

/// Whether a call expression is a fused-primitive invocation.
pub fn is_primitive_call(e: &Expr) -> bool {
    if let ExprKind::Call { callee, attrs, .. } = e.kind() {
        matches!(callee.kind(), ExprKind::Func(_)) && attrs.int(PRIMITIVE_ATTR) == Some(1)
    } else {
        false
    }
}

/// Fuse operators in an ANF function.
pub fn fuse_function(func: &Function) -> Function {
    Function::new(
        func.params.clone(),
        fuse_block(&func.body),
        func.ret_type.clone(),
    )
}

struct Binding {
    var: Var,
    value: Expr,
}

fn fuse_block(block: &Expr) -> Expr {
    // Collect the let chain.
    let mut bindings: Vec<Binding> = Vec::new();
    let mut cur = block.clone();
    while let ExprKind::Let { var, value, body } = cur.kind() {
        bindings.push(Binding {
            var: var.clone(),
            value: recurse_value(value),
        });
        cur = body.clone();
    }
    let result = cur;

    // Count variable uses across binding values and the result.
    let mut uses: HashMap<u32, usize> = HashMap::new();
    let mut count_uses = |e: &Expr| {
        nimble_ir::visit::visit_post_order(e, &mut |n| {
            if let ExprKind::Var(v) = n.kind() {
                *uses.entry(v.id).or_insert(0) += 1;
            }
        });
    };
    for b in &bindings {
        count_uses(&b.value);
    }
    count_uses(&result);

    // Map var id -> binding index for chain-local producers.
    let producer: HashMap<u32, usize> = bindings
        .iter()
        .enumerate()
        .map(|(i, b)| (b.var.id, i))
        .collect();

    // Group assignment.
    #[derive(Debug)]
    struct Group {
        members: Vec<usize>,
        all_injective: bool,
        open: bool,
    }
    let mut groups: Vec<Group> = Vec::new();
    let mut group_of: Vec<usize> = vec![usize::MAX; bindings.len()];

    for (i, b) in bindings.iter().enumerate() {
        let mut target: Option<usize> = None;
        if let Some((name, args, _)) = b.value.as_op_call() {
            if let Ok(def) = op::lookup(name) {
                let p = def.pattern;
                let fusable_here = !def.is_fusion_barrier()
                    && !matches!(p, FusePattern::Opaque | FusePattern::Reduction);
                if fusable_here {
                    let is_follower = matches!(p, FusePattern::Elemwise | FusePattern::Broadcast);
                    let is_injective = matches!(p, FusePattern::Injective);
                    if is_follower || is_injective {
                        // Try to join the group producing one of our args.
                        for a in args {
                            let Some(v) = a.as_var() else { continue };
                            let Some(&pi) = producer.get(&v.id) else {
                                continue;
                            };
                            let g = group_of[pi];
                            if g == usize::MAX {
                                continue;
                            }
                            let grp = &groups[g];
                            // The producer must be the group's current
                            // output and used only here.
                            if !grp.open || *grp.members.last().expect("non-empty") != pi {
                                continue;
                            }
                            if uses.get(&v.id).copied().unwrap_or(0) != 1 {
                                continue;
                            }
                            // Injective followers only extend all-injective
                            // chains.
                            if is_injective && !grp.all_injective {
                                continue;
                            }
                            target = Some(g);
                            break;
                        }
                    }
                    match target {
                        Some(g) => {
                            groups[g].members.push(i);
                            groups[g].all_injective &= is_injective;
                            group_of[i] = g;
                        }
                        None => {
                            // Start a new (open) group anchored here.
                            groups.push(Group {
                                members: vec![i],
                                all_injective: is_injective,
                                open: true,
                            });
                            group_of[i] = groups.len() - 1;
                        }
                    }
                    continue;
                }
            }
        }
        // Non-fusable binding: closed singleton group.
        groups.push(Group {
            members: vec![i],
            all_injective: false,
            open: false,
        });
        group_of[i] = groups.len() - 1;
    }

    // Emit: singleton groups unchanged, multi-member groups as primitive
    // calls placed at their last member's position.
    let mut emitted: Vec<(usize, Var, Expr)> = Vec::new();
    for g in &groups {
        if g.members.len() == 1 {
            let b = &bindings[g.members[0]];
            emitted.push((g.members[0], b.var.clone(), b.value.clone()));
        } else {
            let last = *g.members.last().expect("non-empty group");
            let out_var = bindings[last].var.clone();
            let call = build_primitive(&bindings, &g.members);
            emitted.push((last, out_var, call));
        }
    }
    // Restore original ordering by position.
    emitted.sort_by_key(|(pos, _, _)| *pos);

    let mut out = result;
    for (_, var, value) in emitted.into_iter().rev() {
        out = Expr::let_(var, value, out);
    }
    out
}

/// Build the primitive-function call for a fused group.
fn build_primitive(bindings: &[Binding], members: &[usize]) -> Expr {
    use std::collections::HashSet;
    let member_vars: HashSet<u32> = members.iter().map(|&i| bindings[i].var.id).collect();

    // External inputs: vars referenced by member values but not produced
    // inside the group, in first-use order.
    let mut params: Vec<Var> = Vec::new();
    let mut seen: HashSet<u32> = HashSet::new();
    for &i in members {
        nimble_ir::visit::visit_post_order(&bindings[i].value, &mut |n| {
            if let ExprKind::Var(v) = n.kind() {
                if !member_vars.contains(&v.id) && seen.insert(v.id) {
                    params.push(v.clone());
                }
            }
        });
    }

    // Body: the member bindings in order, ending with the last member's var.
    let last = *members.last().expect("non-empty group");
    let mut body = bindings[last].var.to_expr();
    for &i in members.iter().rev() {
        body = Expr::let_(bindings[i].var.clone(), bindings[i].value.clone(), body);
    }
    let func = Function::new(params.clone(), body, Type::Unknown);
    let args: Vec<Expr> = params.iter().map(|p| p.to_expr()).collect();
    Expr::new(ExprKind::Call {
        callee: Expr::func(func),
        args,
        attrs: Attrs::new().with(PRIMITIVE_ATTR, AttrValue::Int(1)),
    })
}

/// Recurse into control-flow values so nested blocks are fused too.
fn recurse_value(value: &Expr) -> Expr {
    match value.kind() {
        ExprKind::If { cond, then, els } => {
            Expr::if_(cond.clone(), fuse_block(then), fuse_block(els))
        }
        ExprKind::Match { value: v, clauses } => Expr::match_(
            v.clone(),
            clauses
                .iter()
                .map(|c| Clause {
                    pattern: c.pattern.clone(),
                    body: fuse_block(&c.body),
                })
                .collect(),
        ),
        ExprKind::Func(f) => Expr::func(Function::new(
            f.params.clone(),
            fuse_block(&f.body),
            f.ret_type.clone(),
        )),
        _ => value.clone(),
    }
}

/// Count fused-group sizes in a function (diagnostic used by tests and the
/// ablation bench).
pub fn fusion_stats(func: &Function) -> Vec<usize> {
    let mut sizes = Vec::new();
    nimble_ir::visit::visit_post_order(&func.body, &mut |e| {
        if is_primitive_call(e) {
            if let ExprKind::Call { callee, .. } = e.kind() {
                if let ExprKind::Func(f) = callee.kind() {
                    let mut n = 0;
                    let mut cur = f.body.clone();
                    while let ExprKind::Let { body, .. } = cur.kind() {
                        n += 1;
                        let nb = body.clone();
                        cur = nb;
                    }
                    sizes.push(n);
                }
            }
        }
    });
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anf::{is_anf, to_anf};
    use nimble_ir::builder::FunctionBuilder;
    use nimble_ir::types::TensorType;
    use nimble_tensor::{DType, Tensor};

    fn any_vec() -> TensorType {
        TensorType::with_any(&[None, Some(8)], DType::F32)
    }

    #[test]
    fn dense_absorbs_elementwise_tail() {
        let mut fb = FunctionBuilder::new("f");
        let x = fb.param("x", any_vec());
        let w = fb.constant(Tensor::ones_f32(&[8, 8]));
        let h = fb.call("dense", vec![x, w], Attrs::new());
        let t = fb.call("tanh", vec![h], Attrs::new());
        let s = fb.call("sigmoid", vec![t], Attrs::new());
        let f = to_anf(&fb.finish(s));
        let fused = fuse_function(&f);
        let sizes = fusion_stats(&fused);
        assert_eq!(sizes, vec![3], "dense+tanh+sigmoid fuse into one group");
    }

    #[test]
    fn multi_use_intermediate_blocks_fusion() {
        let mut fb = FunctionBuilder::new("f");
        let x = fb.param("x", any_vec());
        let h = fb.call("relu", vec![x], Attrs::new());
        // h used twice: both by tanh and by the add — not fusable past.
        let t = fb.call("tanh", vec![h.clone()], Attrs::new());
        let s = fb.call("add", vec![t, h], Attrs::new());
        let f = to_anf(&fb.finish(s));
        let fused = fuse_function(&f);
        let sizes = fusion_stats(&fused);
        // tanh+add may fuse (tanh used once), but relu stays separate.
        assert!(sizes.iter().all(|&s| s <= 2), "sizes: {sizes:?}");
    }

    #[test]
    fn dynamic_shape_ops_are_barriers() {
        // arange -> add: arange has a data-dependent shape function, so the
        // fusion policy of Section 4.2 must keep it out of any group.
        let mut fb = FunctionBuilder::new("f");
        let start = fb.constant(Tensor::scalar_f32(0.0));
        let stop = fb.param("stop", TensorType::scalar(DType::F32));
        let step = fb.constant(Tensor::scalar_f32(1.0));
        let r = fb.call("arange", vec![start, stop, step], Attrs::new());
        let y = fb.call("add", vec![r.clone(), r], Attrs::new());
        let f = to_anf(&fb.finish(y));
        let fused = fuse_function(&f);
        // No group may contain arange; the only possible group is empty or
        // add-alone (which stays a singleton). So there are no primitive
        // calls of size >= 2 containing arange.
        let mut has_arange_in_primitive = false;
        nimble_ir::visit::visit_post_order(&fused.body, &mut |e| {
            if is_primitive_call(e) {
                nimble_ir::visit::visit_post_order(e, &mut |n| {
                    if let ExprKind::Op(name) = n.kind() {
                        if name == "arange" {
                            has_arange_in_primitive = true;
                        }
                    }
                });
            }
        });
        assert!(!has_arange_in_primitive);
    }

    #[test]
    fn injective_chain_fuses() {
        let mut fb = FunctionBuilder::new("f");
        let x = fb.param("x", TensorType::new(&[4, 8], DType::F32));
        let t = fb.call(
            "transpose",
            vec![x],
            Attrs::new().with("perm", AttrValue::IntVec(vec![1, 0])),
        );
        let r = fb.call(
            "reshape",
            vec![t],
            Attrs::new().with("newshape", AttrValue::IntVec(vec![32])),
        );
        let f = to_anf(&fb.finish(r));
        let fused = fuse_function(&f);
        assert_eq!(fusion_stats(&fused), vec![2]);
    }

    #[test]
    fn heavy_op_does_not_join_injective_chain() {
        let mut fb = FunctionBuilder::new("f");
        let x = fb.param("x", TensorType::new(&[4, 8], DType::F32));
        let t = fb.call(
            "transpose",
            vec![x],
            Attrs::new().with("perm", AttrValue::IntVec(vec![1, 0])),
        );
        let w = fb.constant(Tensor::ones_f32(&[16, 4]));
        let d = fb.call("dense", vec![t, w], Attrs::new());
        let f = to_anf(&fb.finish(d));
        let fused = fuse_function(&f);
        // transpose and dense stay separate groups (dense anchors its own).
        assert!(fusion_stats(&fused).is_empty());
    }

    #[test]
    fn fusion_preserves_anf_and_recurses_into_if() {
        let mut fb = FunctionBuilder::new("f");
        let x = fb.param("x", any_vec());
        let c = fb.param("c", TensorType::scalar(DType::Bool));
        let then_e = Expr::call_op(
            "relu",
            vec![Expr::call_op("tanh", vec![x.clone()], Attrs::new())],
            Attrs::new(),
        );
        let e = Expr::if_(c, then_e, x.clone());
        let bound = fb.bind("r", e);
        let f = to_anf(&fb.finish(bound));
        let fused = fuse_function(&f);
        assert!(is_anf(&fused.body));
        // The branch body got its own fused group.
        assert_eq!(fusion_stats(&fused), vec![2]);
    }
}
