//! A-normal form conversion.
//!
//! Memory planning and bytecode lowering require that every operator
//! argument is *atomic* (a variable or constant) and that every
//! intermediate value has a name. This pass converts arbitrary nested
//! expressions into a chain of `let` bindings whose right-hand sides are
//! "flat": calls with atomic arguments, tuples of atoms, projections of
//! atoms, or control-flow constructs whose sub-blocks are themselves in
//! ANF.

use nimble_ir::expr::{Clause, Expr, ExprKind, Function};
use nimble_ir::types::Type;
use nimble_ir::Var;

/// Convert a function to A-normal form.
pub fn to_anf(func: &Function) -> Function {
    Function::new(
        func.params.clone(),
        anf_block(&func.body),
        func.ret_type.clone(),
    )
}

/// Whether an expression is atomic (allowed as a call argument).
pub fn is_atom(e: &Expr) -> bool {
    matches!(
        e.kind(),
        ExprKind::Var(_)
            | ExprKind::Constant(_)
            | ExprKind::Global(_)
            | ExprKind::Op(_)
            | ExprKind::Constructor(_)
    )
}

/// Whether a function body is in A-normal form.
pub fn is_anf(e: &Expr) -> bool {
    let mut cur = e.clone();
    while let ExprKind::Let { value, body, .. } = cur.kind() {
        if !flat_value(value) {
            return false;
        }
        cur = body.clone();
    }
    is_atom(&cur)
}

fn flat_value(e: &Expr) -> bool {
    match e.kind() {
        ExprKind::Call { callee, args, .. } => {
            // Fused primitive calls have a function literal callee whose
            // body must itself be in ANF.
            let callee_ok =
                is_atom(callee) || matches!(callee.kind(), ExprKind::Func(f) if is_anf(&f.body));
            callee_ok && args.iter().all(is_atom)
        }
        ExprKind::Tuple(fields) => fields.iter().all(is_atom),
        ExprKind::TupleGet(t, _) => is_atom(t),
        ExprKind::If { cond, then, els } => is_atom(cond) && is_anf(then) && is_anf(els),
        ExprKind::Match { value, clauses } => {
            is_atom(value) && clauses.iter().all(|c| is_anf(&c.body))
        }
        ExprKind::Func(f) => is_anf(&f.body),
        _ => is_atom(e),
    }
}

/// Normalize an expression into an ANF block (let-chain ending in an atom).
pub fn anf_block(e: &Expr) -> Expr {
    let mut bindings: Vec<(Var, Expr)> = Vec::new();
    // Shared sub-DAGs (the same `Expr` node referenced from several
    // consumers) must be bound exactly once, or the program's work
    // duplicates — memoize by node identity within the block.
    let mut memo: std::collections::HashMap<usize, Expr> = std::collections::HashMap::new();
    let result = atomize(e, &mut bindings, &mut memo);
    let mut out = result;
    for (var, value) in bindings.into_iter().rev() {
        out = Expr::let_(var, value, out);
    }
    out
}

/// Produce an atom for `e`, appending any necessary bindings.
fn atomize(
    e: &Expr,
    bindings: &mut Vec<(Var, Expr)>,
    memo: &mut std::collections::HashMap<usize, Expr>,
) -> Expr {
    if let Some(hit) = memo.get(&e.ref_id()) {
        return hit.clone();
    }
    let atom = match e.kind() {
        ExprKind::Var(_)
        | ExprKind::Constant(_)
        | ExprKind::Global(_)
        | ExprKind::Op(_)
        | ExprKind::Constructor(_) => e.clone(),
        ExprKind::Let { .. } => {
            // Iterative over long chains (planned bodies reach thousands
            // of bindings).
            let mut cur = e.clone();
            while let ExprKind::Let { var, value, body } = cur.kind() {
                let flat = flatten_value(value, bindings, memo);
                bindings.push((var.clone(), flat));
                memo.insert(cur.ref_id(), var.to_expr());
                cur = body.clone();
            }
            atomize(&cur, bindings, memo)
        }
        _ => {
            let flat = flatten_value(e, bindings, memo);
            let v = Var::fresh("anf", Type::Unknown);
            bindings.push((v.clone(), flat));
            v.to_expr()
        }
    };
    memo.insert(e.ref_id(), atom.clone());
    atom
}

/// Produce a flat (ANF-legal) right-hand side for `e`.
fn flatten_value(
    e: &Expr,
    bindings: &mut Vec<(Var, Expr)>,
    memo: &mut std::collections::HashMap<usize, Expr>,
) -> Expr {
    match e.kind() {
        ExprKind::Call {
            callee,
            args,
            attrs,
        } => {
            let c = atomize(callee, bindings, memo);
            let a: Vec<Expr> = args.iter().map(|x| atomize(x, bindings, memo)).collect();
            Expr::new(ExprKind::Call {
                callee: c,
                args: a,
                attrs: attrs.clone(),
            })
        }
        ExprKind::Tuple(fields) => {
            Expr::tuple(fields.iter().map(|x| atomize(x, bindings, memo)).collect())
        }
        ExprKind::TupleGet(t, i) => Expr::tuple_get(atomize(t, bindings, memo), *i),
        ExprKind::If { cond, then, els } => {
            let c = atomize(cond, bindings, memo);
            Expr::if_(c, anf_block(then), anf_block(els))
        }
        ExprKind::Match { value, clauses } => {
            let v = atomize(value, bindings, memo);
            Expr::match_(
                v,
                clauses
                    .iter()
                    .map(|cl| Clause {
                        pattern: cl.pattern.clone(),
                        body: anf_block(&cl.body),
                    })
                    .collect(),
            )
        }
        ExprKind::Func(f) => Expr::func(Function::new(
            f.params.clone(),
            anf_block(&f.body),
            f.ret_type.clone(),
        )),
        ExprKind::Let { .. } => {
            // A nested let in value position: inline its chain.
            atomize(e, bindings, memo)
        }
        _ => e.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_ir::attrs::Attrs;
    use nimble_ir::types::TensorType;
    use nimble_tensor::DType;

    fn f32_any() -> Type {
        Type::Tensor(TensorType::with_any(&[None], DType::F32))
    }

    #[test]
    fn nested_calls_flattened() {
        // relu(tanh(x)) → let a = tanh(x); let b = relu(a); b
        let x = Var::fresh("x", f32_any());
        let nested = Expr::call_op(
            "relu",
            vec![Expr::call_op("tanh", vec![x.to_expr()], Attrs::new())],
            Attrs::new(),
        );
        let f = Function::new(vec![x], nested, Type::Unknown);
        assert!(!is_anf(&f.body));
        let anf = to_anf(&f);
        assert!(is_anf(&anf.body));
        // Two bindings: tanh then relu.
        let mut ops = Vec::new();
        let mut cur = anf.body.clone();
        while let ExprKind::Let { value, body, .. } = cur.kind() {
            ops.push(value.as_op_call().unwrap().0.to_string());
            let next = body.clone();
            cur = next;
        }
        assert_eq!(ops, vec!["tanh", "relu"]);
        assert!(is_atom(&cur));
    }

    #[test]
    fn if_branches_normalized() {
        let x = Var::fresh("x", f32_any());
        let cond = Expr::call_op(
            "greater",
            vec![x.to_expr(), Expr::const_f32(0.0)],
            Attrs::new(),
        );
        // Condition itself is compound — must be bound first; cond must be
        // scalar for real execution but ANF is type-agnostic.
        let e = Expr::if_(
            cond,
            Expr::call_op(
                "relu",
                vec![Expr::call_op("neg", vec![x.to_expr()], Attrs::new())],
                Attrs::new(),
            ),
            x.to_expr(),
        );
        let f = Function::new(vec![x], e, Type::Unknown);
        let anf = to_anf(&f);
        assert!(is_anf(&anf.body));
    }

    #[test]
    fn already_anf_stays_anf() {
        let x = Var::fresh("x", f32_any());
        let v = Var::fresh("v", Type::Unknown);
        let body = Expr::let_(
            v.clone(),
            Expr::call_op("relu", vec![x.to_expr()], Attrs::new()),
            v.to_expr(),
        );
        let f = Function::new(vec![x], body, Type::Unknown);
        assert!(is_anf(&f.body));
        let anf = to_anf(&f);
        assert!(is_anf(&anf.body));
    }

    #[test]
    fn tuples_and_projections() {
        let x = Var::fresh("x", f32_any());
        let e = Expr::tuple_get(
            Expr::tuple(vec![
                Expr::call_op("relu", vec![x.to_expr()], Attrs::new()),
                x.to_expr(),
            ]),
            0,
        );
        let f = Function::new(vec![x], e, Type::Unknown);
        let anf = to_anf(&f);
        assert!(is_anf(&anf.body));
    }

    #[test]
    fn closures_normalized() {
        let x = Var::fresh("x", f32_any());
        let inner = Function::new(
            vec![x.clone()],
            Expr::call_op(
                "relu",
                vec![Expr::call_op("neg", vec![x.to_expr()], Attrs::new())],
                Attrs::new(),
            ),
            Type::Unknown,
        );
        let f = Function::new(vec![], Expr::func(inner), Type::Unknown);
        let anf = to_anf(&f);
        assert!(is_anf(&anf.body));
    }
}
