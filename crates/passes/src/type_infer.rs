//! Type inference with `Any` propagation and sub-shaping (Section 4.1).
//!
//! The inferencer walks each function, applying operator type relations to
//! propagate (possibly dynamic) shapes. Results are stored in a side table
//! keyed by expression pointer identity, leaving the IR immutable.
//!
//! **Sub-shaping.** Before inferring a function, every `Any` dimension in
//! its parameter types is replaced by a fresh symbolic dimension
//! ([`nimble_ir::types::Dim::Sym`]). Relations preserve symbolic identity
//! where the output dimension provably equals an input dimension, so two
//! dynamic dimensions that originate from the same source keep the same id
//! — this is the analysis the paper uses "to detect if two Any dimensions
//! point to an identically sized dimension" for shape-specialized codegen.

use nimble_ir::expr::{Expr, ExprKind, Function, Pattern};
use nimble_ir::op;
use nimble_ir::types::{unify, Dim, SymId, TensorType, Type};
use nimble_ir::{IrError, Module, Result, Var};
use std::collections::HashMap;

/// Inferred types for every expression (by pointer identity) and variable
/// (by id).
#[derive(Debug, Default, Clone)]
pub struct TypeMap {
    exprs: HashMap<usize, Type>,
    vars: HashMap<u32, Type>,
}

impl TypeMap {
    /// Type of an expression, if inferred.
    pub fn of(&self, e: &Expr) -> Option<&Type> {
        self.exprs.get(&e.ref_id())
    }

    /// Type of an expression, or an error naming the node.
    ///
    /// # Errors
    /// Fails when the expression was not covered by inference.
    pub fn expect(&self, e: &Expr) -> Result<&Type> {
        self.of(e)
            .ok_or_else(|| IrError("expression not covered by type inference".into()))
    }

    /// Type of a variable, if inferred.
    pub fn var(&self, v: &Var) -> Option<&Type> {
        self.vars.get(&v.id)
    }

    /// Number of typed expressions (for tests/diagnostics).
    pub fn len(&self) -> usize {
        self.exprs.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.exprs.is_empty()
    }
}

/// Replace every `Any` in a type with a fresh symbolic dimension.
fn symbolize(ty: &Type) -> Type {
    match ty {
        Type::Tensor(t) => Type::Tensor(TensorType::from_dims(
            t.dims
                .iter()
                .map(|d| match d {
                    Dim::Any => Dim::Sym(SymId::fresh()),
                    other => *other,
                })
                .collect(),
            t.dtype,
        )),
        Type::Tuple(ts) => Type::Tuple(ts.iter().map(symbolize).collect()),
        other => other.clone(),
    }
}

struct Inferencer<'m> {
    module: &'m Module,
    map: TypeMap,
    /// Global function types (from annotations) for recursion.
    globals: HashMap<String, Type>,
}

/// Infer types for every function in a module.
///
/// # Errors
/// Fails when a type relation rejects its inputs, a variable is unbound, or
/// a recursive function lacks a return-type annotation.
pub fn infer_module(module: &Module) -> Result<TypeMap> {
    let mut globals = HashMap::new();
    for (name, func) in module.functions() {
        globals.insert(name.0.clone(), func.func_type());
    }
    let mut inf = Inferencer {
        module,
        map: TypeMap::default(),
        globals,
    };
    for (_, func) in module.functions() {
        inf.infer_function(func, true)?;
    }
    Ok(inf.map)
}

/// Infer types for a standalone function against a module's ADTs/globals.
///
/// # Errors
/// Same failure modes as [`infer_module`].
pub fn infer_function(module: &Module, func: &Function) -> Result<(TypeMap, Type)> {
    let mut globals = HashMap::new();
    for (name, f) in module.functions() {
        globals.insert(name.0.clone(), f.func_type());
    }
    let mut inf = Inferencer {
        module,
        map: TypeMap::default(),
        globals,
    };
    let ret = inf.infer_function(func, true)?;
    Ok((inf.map, ret))
}

impl<'m> Inferencer<'m> {
    fn infer_function(&mut self, func: &Function, symbolize_params: bool) -> Result<Type> {
        let mut env: HashMap<u32, Type> = HashMap::new();
        for p in &func.params {
            let ty = if symbolize_params {
                symbolize(&p.ty)
            } else {
                p.ty.clone()
            };
            self.map.vars.insert(p.id, ty.clone());
            env.insert(p.id, ty);
        }
        let body_ty = self.infer(&func.body, &mut env)?;
        // The declared return type (if any) must admit the inferred one.
        if !matches!(func.ret_type, Type::Unknown) && !body_ty.subtype_of(&func.ret_type) {
            return Err(IrError(format!(
                "function body type {body_ty} does not match declared {}",
                func.ret_type
            )));
        }
        Ok(body_ty)
    }

    fn infer(&mut self, e: &Expr, env: &mut HashMap<u32, Type>) -> Result<Type> {
        if let Some(t) = self.map.exprs.get(&e.ref_id()) {
            return Ok(t.clone());
        }
        let ty = match e.kind() {
            ExprKind::Var(v) => env
                .get(&v.id)
                .cloned()
                .ok_or_else(|| IrError(format!("unbound variable {v}")))?,
            ExprKind::Constant(t) => Type::Tensor(TensorType::new(
                &t.dims().iter().map(|&d| d as u64).collect::<Vec<_>>(),
                t.dtype(),
            )),
            ExprKind::Global(g) => self
                .globals
                .get(&g.0)
                .cloned()
                .ok_or_else(|| IrError(format!("unbound global {g}")))?,
            ExprKind::Op(name) => {
                // A bare op reference has no standalone type; verify it
                // exists so errors surface early.
                op::lookup(name)?;
                Type::Unknown
            }
            ExprKind::Constructor(name) => {
                let c = self.module.constructor(name)?;
                Type::Func(c.fields.clone(), Box::new(Type::Adt(c.adt.clone())))
            }
            ExprKind::Tuple(fields) => {
                let ts = fields
                    .iter()
                    .map(|f| self.infer(f, env))
                    .collect::<Result<Vec<_>>>()?;
                Type::Tuple(ts)
            }
            ExprKind::TupleGet(t, i) => {
                let tt = self.infer(t, env)?;
                let fields = tt.as_tuple()?;
                fields
                    .get(*i)
                    .cloned()
                    .ok_or_else(|| IrError(format!("tuple index {i} out of range")))?
            }
            ExprKind::Call {
                callee,
                args,
                attrs,
            } => {
                let arg_types = args
                    .iter()
                    .map(|a| self.infer(a, env))
                    .collect::<Result<Vec<_>>>()?;
                match callee.kind() {
                    ExprKind::Op(name) => {
                        let def = op::lookup(name)?;
                        (def.rel)(&arg_types, attrs)?
                    }
                    ExprKind::Constructor(name) => {
                        let c = self.module.constructor(name)?;
                        if c.fields.len() != arg_types.len() {
                            return Err(IrError(format!(
                                "constructor {name}: expected {} fields, got {}",
                                c.fields.len(),
                                arg_types.len()
                            )));
                        }
                        for (field, arg) in c.fields.iter().zip(arg_types.iter()) {
                            if !arg.subtype_of(field) {
                                return Err(IrError(format!(
                                    "constructor {name}: field type {field} got {arg}"
                                )));
                            }
                        }
                        Type::Adt(c.adt.clone())
                    }
                    // Direct application of a function literal (e.g. a fused
                    // primitive): bind parameters to the actual argument
                    // types and infer the body. This handles unannotated
                    // parameters, which fusion produces.
                    ExprKind::Func(f) => {
                        if f.params.len() != arg_types.len() {
                            return Err(IrError(format!(
                                "primitive call arity mismatch: {} vs {}",
                                f.params.len(),
                                arg_types.len()
                            )));
                        }
                        let mut inner: HashMap<u32, Type> = HashMap::new();
                        for (p, a) in f.params.iter().zip(arg_types.iter()) {
                            self.map.vars.insert(p.id, a.clone());
                            inner.insert(p.id, a.clone());
                        }
                        self.infer(&f.body, &mut inner)?
                    }
                    _ => {
                        let callee_ty = self.infer(callee, env)?;
                        match callee_ty {
                            Type::Func(params, ret) => {
                                if params.len() != arg_types.len() {
                                    return Err(IrError(format!(
                                        "call arity mismatch: {} vs {}",
                                        params.len(),
                                        arg_types.len()
                                    )));
                                }
                                for (p, a) in params.iter().zip(arg_types.iter()) {
                                    if !a.subtype_of(p) {
                                        return Err(IrError(format!(
                                            "call argument type {a} is not a subtype of {p}"
                                        )));
                                    }
                                }
                                if matches!(*ret, Type::Unknown) {
                                    // Recursive call without annotation: if
                                    // the callee is a function literal we
                                    // can infer it inline.
                                    if let ExprKind::Func(f) = callee.kind() {
                                        self.infer_function(f.as_ref(), false)?
                                    } else {
                                        return Err(IrError(
                                            "recursive/global call requires a return-type \
                                             annotation"
                                                .into(),
                                        ));
                                    }
                                } else {
                                    *ret
                                }
                            }
                            other => {
                                return Err(IrError(format!("calling non-function type {other}")))
                            }
                        }
                    }
                }
            }
            ExprKind::Let { .. } => {
                // Iterative over long chains: every let node in the chain
                // has the type of the final result.
                let mut chain_ids: Vec<usize> = Vec::new();
                let mut cur = e.clone();
                while let ExprKind::Let { var, value, body } = cur.kind() {
                    let vt = self.infer(value, env)?;
                    self.map.vars.insert(var.id, vt.clone());
                    env.insert(var.id, vt);
                    chain_ids.push(cur.ref_id());
                    cur = body.clone();
                }
                let result = self.infer(&cur, env)?;
                for id in chain_ids {
                    self.map.exprs.insert(id, result.clone());
                }
                result
            }
            ExprKind::If { cond, then, els } => {
                let ct = self.infer(cond, env)?;
                match &ct {
                    Type::Tensor(t) if t.dtype == nimble_tensor::DType::Bool && t.rank() == 0 => {}
                    other => {
                        return Err(IrError(format!(
                            "if condition must be a scalar bool, got {other}"
                        )))
                    }
                }
                let tt = self.infer(then, env)?;
                let et = self.infer(els, env)?;
                // Branches may produce differently specialized shapes; the
                // join generalizes (e.g. 3 vs 5 rows → Any rows).
                join_branches(&tt, &et)?
            }
            ExprKind::Func(f) => {
                let ret = self.infer_function(f.as_ref(), false)?;
                Type::Func(
                    f.params.iter().map(|p| p.ty.clone()).collect(),
                    Box::new(ret),
                )
            }
            ExprKind::Match { value, clauses } => {
                let vt = self.infer(value, env)?;
                let adt_name = match &vt {
                    Type::Adt(n) => n.clone(),
                    other => {
                        return Err(IrError(format!(
                            "match scrutinee must be an ADT, got {other}"
                        )))
                    }
                };
                let mut result: Option<Type> = None;
                for clause in clauses {
                    self.bind_pattern(&clause.pattern, &Type::Adt(adt_name.clone()), env)?;
                    let bt = self.infer(&clause.body, env)?;
                    result = Some(match result {
                        None => bt,
                        Some(prev) => join_branches(&prev, &bt)?,
                    });
                }
                result.ok_or_else(|| IrError("match with no clauses".into()))?
            }
        };
        self.map.exprs.insert(e.ref_id(), ty.clone());
        Ok(ty)
    }

    fn bind_pattern(
        &mut self,
        pattern: &Pattern,
        scrutinee_ty: &Type,
        env: &mut HashMap<u32, Type>,
    ) -> Result<()> {
        match pattern {
            Pattern::Wildcard => Ok(()),
            Pattern::Bind(v) => {
                self.map.vars.insert(v.id, scrutinee_ty.clone());
                env.insert(v.id, scrutinee_ty.clone());
                Ok(())
            }
            Pattern::Constructor { name, fields } => {
                let c = self.module.constructor(name)?;
                if let Type::Adt(adt) = scrutinee_ty {
                    if *adt != c.adt {
                        return Err(IrError(format!(
                            "pattern {name} belongs to {} but scrutinee is {adt}",
                            c.adt
                        )));
                    }
                }
                if c.fields.len() != fields.len() {
                    return Err(IrError(format!(
                        "pattern {name}: expected {} fields, got {}",
                        c.fields.len(),
                        fields.len()
                    )));
                }
                let field_types = c.fields.clone();
                for (sub, ft) in fields.iter().zip(field_types.iter()) {
                    self.bind_pattern(sub, ft, env)?;
                }
                Ok(())
            }
        }
    }
}

/// Join the types of two control-flow branches: where they agree keep the
/// agreement, where static dims differ produce `Any` (a branch may yield
/// either). This is the generalization (rather than unification) required
/// by "different execution paths can emit substantially different data"
/// (Section 2.2).
pub fn join_branches(a: &Type, b: &Type) -> Result<Type> {
    match (a, b) {
        (Type::Tensor(x), Type::Tensor(y)) => {
            if x.dtype != y.dtype || x.rank() != y.rank() {
                return Err(IrError(format!("branch types {a} and {b} incompatible")));
            }
            let dims = x
                .dims
                .iter()
                .zip(y.dims.iter())
                .map(|(&p, &q)| if p == q { p } else { Dim::Any })
                .collect();
            Ok(Type::Tensor(TensorType::from_dims(dims, x.dtype)))
        }
        (Type::Tuple(x), Type::Tuple(y)) if x.len() == y.len() => Ok(Type::Tuple(
            x.iter()
                .zip(y.iter())
                .map(|(p, q)| join_branches(p, q))
                .collect::<Result<Vec<_>>>()?,
        )),
        _ => unify(a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_ir::adt::TypeDef;
    use nimble_ir::attrs::{AttrValue, Attrs};
    use nimble_ir::builder::FunctionBuilder;
    use nimble_ir::expr::Clause;
    use nimble_tensor::{DType, Tensor};

    fn module() -> Module {
        Module::new()
    }

    #[test]
    fn infers_dense_chain_with_any() {
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::with_any(&[None, Some(300)], DType::F32));
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
        let w = fb.constant(Tensor::rand_f32(&mut rng, &[512, 300], 0.1));
        let h = fb.call("dense", vec![x, w], Attrs::new());
        let y = fb.call("tanh", vec![h.clone()], Attrs::new());
        let f = fb.finish(y.clone());
        let m = module();
        let (map, ret) = infer_function(&m, &f).unwrap();
        // Rows stay symbolic (sub-shaping upgraded Any → Sym), cols become
        // 512.
        match &ret {
            Type::Tensor(t) => {
                assert!(matches!(t.dims[0], Dim::Sym(_)));
                assert_eq!(t.dims[1], Dim::Static(512));
            }
            other => panic!("unexpected {other}"),
        }
        assert!(map.len() > 4);
    }

    #[test]
    fn sub_shaping_preserves_row_identity() {
        // relu(x) keeps the same symbolic row dim as x.
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::with_any(&[None, Some(4)], DType::F32));
        let y = fb.call("relu", vec![x.clone()], Attrs::new());
        let f = fb.finish(y.clone());
        let m = module();
        let (map, _) = infer_function(&m, &f).unwrap();
        let xt = map.of(&x).unwrap().as_tensor().unwrap().dims[0];
        // Find the let-bound relu result type.
        let param = &f.params[0];
        let pt = map.var(param).unwrap().as_tensor().unwrap().dims[0];
        assert_eq!(xt, pt);
        assert!(matches!(xt, Dim::Sym(_)));
    }

    #[test]
    fn if_branches_join_to_any() {
        // if c { zeros([3,4]) } else { zeros([5,4]) } : Tensor[(Any,4)]
        let cond = Expr::constant(Tensor::scalar_bool(true));
        let z3 = Expr::call_op(
            "zeros",
            vec![],
            Attrs::new().with("shape", AttrValue::IntVec(vec![3, 4])),
        );
        let z5 = Expr::call_op(
            "zeros",
            vec![],
            Attrs::new().with("shape", AttrValue::IntVec(vec![5, 4])),
        );
        let f = Function::new(vec![], Expr::if_(cond, z3, z5), Type::Unknown);
        let m = module();
        let (_, ret) = infer_function(&m, &f).unwrap();
        assert_eq!(
            ret,
            Type::Tensor(TensorType::from_dims(
                vec![Dim::Any, Dim::Static(4)],
                DType::F32
            ))
        );
    }

    #[test]
    fn if_requires_scalar_bool() {
        let cond = Expr::const_f32(1.0);
        let f = Function::new(
            vec![],
            Expr::if_(cond, Expr::const_f32(1.0), Expr::const_f32(2.0)),
            Type::Unknown,
        );
        assert!(infer_function(&module(), &f).is_err());
    }

    #[test]
    fn match_on_list_adt() {
        // fn len(l: List) -> f32 scalar via match — checks pattern binding.
        let mut m = module();
        let elem = Type::Tensor(TensorType::scalar(DType::F32));
        m.add_adt(TypeDef::list(elem.clone()));
        let l = Var::fresh("l", Type::Adt("List".into()));
        let h = Var::fresh("h", Type::Unknown);
        let t = Var::fresh("t", Type::Unknown);
        let body = Expr::match_(
            l.to_expr(),
            vec![
                Clause {
                    pattern: Pattern::Constructor {
                        name: "Nil".into(),
                        fields: vec![],
                    },
                    body: Expr::const_f32(0.0),
                },
                Clause {
                    pattern: Pattern::Constructor {
                        name: "Cons".into(),
                        fields: vec![Pattern::Bind(h.clone()), Pattern::Bind(t.clone())],
                    },
                    body: h.to_expr(),
                },
            ],
        );
        let f = Function::new(vec![l], body, Type::Unknown);
        let (map, ret) = infer_function(&m, &f).unwrap();
        assert_eq!(ret, elem);
        assert_eq!(map.var(&t), Some(&Type::Adt("List".into())));
    }

    #[test]
    fn constructor_call_typed() {
        let mut m = module();
        let elem = Type::Tensor(TensorType::scalar(DType::F32));
        m.add_adt(TypeDef::list(elem));
        let nil = Expr::call(Expr::constructor("Nil"), vec![]);
        let cons = Expr::call(Expr::constructor("Cons"), vec![Expr::const_f32(1.0), nil]);
        let f = Function::new(vec![], cons, Type::Unknown);
        let (_, ret) = infer_function(&m, &f).unwrap();
        assert_eq!(ret, Type::Adt("List".into()));
    }

    #[test]
    fn constructor_arity_checked() {
        let mut m = module();
        m.add_adt(TypeDef::list(Type::Tensor(TensorType::scalar(DType::F32))));
        let bad = Expr::call(Expr::constructor("Cons"), vec![Expr::const_f32(1.0)]);
        let f = Function::new(vec![], bad, Type::Unknown);
        assert!(infer_function(&m, &f).is_err());
    }

    #[test]
    fn recursive_global_requires_annotation() {
        // fn loop(x: scalar) -> scalar { loop(x) }  — annotated, so OK.
        let mut m = module();
        let sc = Type::Tensor(TensorType::scalar(DType::F32));
        let x = Var::fresh("x", sc.clone());
        let body = Expr::call(Expr::global("loop"), vec![x.to_expr()]);
        m.add_function("loop", Function::new(vec![x], body, sc.clone()));
        let map = infer_module(&m).unwrap();
        assert!(!map.is_empty());

        // Without annotation it must fail.
        let mut m2 = module();
        let y = Var::fresh("y", sc);
        let body2 = Expr::call(Expr::global("loop2"), vec![y.to_expr()]);
        m2.add_function("loop2", Function::new(vec![y], body2, Type::Unknown));
        assert!(infer_module(&m2).is_err());
    }

    #[test]
    fn tuple_get_typed() {
        let pair = Expr::tuple(vec![Expr::const_f32(1.0), Expr::const_f32(2.0)]);
        let get = Expr::tuple_get(pair, 1);
        let f = Function::new(vec![], get, Type::Unknown);
        let (_, ret) = infer_function(&module(), &f).unwrap();
        assert_eq!(ret, Type::Tensor(TensorType::scalar(DType::F32)));
        // Out-of-range projection fails.
        let pair2 = Expr::tuple(vec![Expr::const_f32(1.0)]);
        let bad = Expr::tuple_get(pair2, 3);
        let f2 = Function::new(vec![], bad, Type::Unknown);
        assert!(infer_function(&module(), &f2).is_err());
    }

    #[test]
    fn relation_errors_surface() {
        let mut fb = FunctionBuilder::new("main");
        let a = fb.param("a", TensorType::new(&[2], DType::F32));
        let b = fb.param("b", TensorType::new(&[3], DType::F32));
        let c = fb.call("add", vec![a, b], Attrs::new());
        let f = fb.finish(c);
        assert!(infer_function(&module(), &f).is_err());
    }
}
