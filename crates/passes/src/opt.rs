//! Supporting optimizations: constant folding and dead-code elimination.
//!
//! These run before fusion so that shape arithmetic written as IR (e.g.
//! constant `arange` bounds) collapses to constants, and unused bindings do
//! not inflate fusion groups or allocation counts.

use nimble_ir::expr::{Expr, ExprKind, Function};
use nimble_ir::op;
use nimble_ir::visit::Rewriter;
use std::collections::HashMap;

/// Fold operator calls whose arguments are all constants, using the
/// registry's reference kernels. Dialect ops, `device_copy`, and multi
/// output ops are left untouched.
pub fn fold_constants(func: &Function) -> Function {
    let mut rw = Rewriter::new(|e: &Expr| {
        let (name, args, attrs) = e.as_op_call()?;
        if name.starts_with("memory.") || name == "device_copy" {
            return None;
        }
        let def = op::lookup(name).ok()?;
        let mut consts = Vec::with_capacity(args.len());
        for a in args {
            match a.kind() {
                ExprKind::Constant(t) => consts.push(t.clone()),
                _ => return None,
            }
        }
        // `zeros` takes no args and is always foldable; other no-arg ops
        // too. Ops with outputs > 1 (split) are skipped.
        let outs = (def.execute)(&consts, attrs).ok()?;
        if outs.len() == 1 {
            Some(Expr::constant(outs.into_iter().next().expect("len 1")))
        } else {
            None
        }
    });
    let body = rw.rewrite(&func.body);
    Function::new(func.params.clone(), body, func.ret_type.clone())
}

/// Whether a binding value may be removed when its variable is unused.
fn is_pure(value: &Expr) -> bool {
    match value.kind() {
        ExprKind::Call { .. } => match value.as_op_call() {
            // Memory-dialect calls have effects (allocation bookkeeping).
            Some((name, _, _)) => !name.starts_with("memory."),
            // Closure/constructor/global calls: conservatively impure
            // (globals may recurse forever).
            None => matches!(
                value.kind(),
                ExprKind::Call { callee, .. } if matches!(callee.kind(), ExprKind::Constructor(_))
            ),
        },
        ExprKind::If { .. } | ExprKind::Match { .. } => false,
        _ => true,
    }
}

/// Remove let bindings whose variable is never used (iterating to a fixed
/// point) in every block of the function.
pub fn eliminate_dead_code(func: &Function) -> Function {
    Function::new(
        func.params.clone(),
        dce_block(&func.body),
        func.ret_type.clone(),
    )
}

fn dce_block(block: &Expr) -> Expr {
    let mut chain: Vec<(nimble_ir::Var, Expr)> = Vec::new();
    let mut cur = block.clone();
    while let ExprKind::Let { var, value, body } = cur.kind() {
        // Recurse into nested blocks.
        let v = match value.kind() {
            ExprKind::If { cond, then, els } => {
                Expr::if_(cond.clone(), dce_block(then), dce_block(els))
            }
            ExprKind::Match { value: s, clauses } => Expr::match_(
                s.clone(),
                clauses
                    .iter()
                    .map(|c| nimble_ir::expr::Clause {
                        pattern: c.pattern.clone(),
                        body: dce_block(&c.body),
                    })
                    .collect(),
            ),
            ExprKind::Func(f) => Expr::func(Function::new(
                f.params.clone(),
                dce_block(&f.body),
                f.ret_type.clone(),
            )),
            _ => value.clone(),
        };
        chain.push((var.clone(), v));
        cur = body.clone();
    }
    let result = cur;

    // Iterate: drop pure bindings with zero uses.
    loop {
        let mut uses: HashMap<u32, usize> = HashMap::new();
        let count = |e: &Expr, uses: &mut HashMap<u32, usize>| {
            nimble_ir::visit::visit_post_order(e, &mut |n| {
                if let ExprKind::Var(v) = n.kind() {
                    *uses.entry(v.id).or_insert(0) += 1;
                }
            });
        };
        for (_, v) in &chain {
            count(v, &mut uses);
        }
        count(&result, &mut uses);
        let before = chain.len();
        chain.retain(|(var, value)| uses.get(&var.id).copied().unwrap_or(0) > 0 || !is_pure(value));
        if chain.len() == before {
            break;
        }
    }

    let mut out = result;
    for (var, value) in chain.into_iter().rev() {
        out = Expr::let_(var, value, out);
    }
    out
}

/// Common-subexpression elimination over op calls with identical callees,
/// arguments (by variable identity), and attributes within a block.
pub fn eliminate_common_subexpr(func: &Function) -> Function {
    Function::new(
        func.params.clone(),
        cse_block(&func.body),
        func.ret_type.clone(),
    )
}

fn value_key(e: &Expr) -> Option<String> {
    let (name, args, attrs) = e.as_op_call()?;
    if name.starts_with("memory.") || name == "device_copy" {
        return None;
    }
    let mut key = format!("{name}[{attrs}](");
    for a in args {
        match a.kind() {
            ExprKind::Var(v) => key.push_str(&format!("%{},", v.id)),
            ExprKind::Constant(t) => {
                // Scalar constants dedupe by value; larger tensors (weights)
                // dedupe by node identity, which shared-constant expressions
                // preserve.
                if t.volume() == 1 {
                    key.push_str(&format!("c{:?},", t.data()));
                } else {
                    key.push_str(&format!("k{:x},", a.ref_id()));
                }
            }
            _ => return None,
        }
    }
    key.push(')');
    Some(key)
}

fn cse_block(block: &Expr) -> Expr {
    let mut chain: Vec<(nimble_ir::Var, Expr)> = Vec::new();
    let mut cur = block.clone();
    while let ExprKind::Let { var, value, body } = cur.kind() {
        chain.push((var.clone(), value.clone()));
        cur = body.clone();
    }
    let result = cur;

    let mut seen: HashMap<String, nimble_ir::Var> = HashMap::new();
    let mut subst: HashMap<u32, nimble_ir::Var> = HashMap::new();
    let mut out: Vec<(nimble_ir::Var, Expr)> = Vec::new();

    let apply_subst = |e: &Expr, subst: &HashMap<u32, nimble_ir::Var>| -> Expr {
        let mut rw = Rewriter::new(|n: &Expr| {
            if let ExprKind::Var(v) = n.kind() {
                subst.get(&v.id).map(|r| r.to_expr())
            } else {
                None
            }
        });
        rw.rewrite(e)
    };

    for (var, value) in &chain {
        let value = apply_subst(value, &subst);
        if let Some(key) = value_key(&value) {
            if let Some(prev) = seen.get(&key) {
                subst.insert(var.id, prev.clone());
                continue;
            }
            seen.insert(key, var.clone());
        }
        out.push((var.clone(), value));
    }
    let result = apply_subst(&result, &subst);

    let mut body = result;
    for (var, value) in out.into_iter().rev() {
        body = Expr::let_(var, value, body);
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anf::to_anf;
    use nimble_ir::attrs::Attrs;
    use nimble_ir::builder::FunctionBuilder;
    use nimble_ir::types::{TensorType, Type};
    use nimble_ir::Var;
    use nimble_tensor::{DType, Tensor};

    fn chain_len(f: &Function) -> usize {
        let mut n = 0;
        let mut cur = f.body.clone();
        while let ExprKind::Let { body, .. } = cur.kind() {
            n += 1;
            let nb = body.clone();
            cur = nb;
        }
        n
    }

    #[test]
    fn folds_constant_arithmetic() {
        let mut fb = FunctionBuilder::new("f");
        let a = fb.constant(Tensor::scalar_f32(2.0));
        let b = fb.constant(Tensor::scalar_f32(3.0));
        let s = fb.call("add", vec![a, b], Attrs::new());
        let f = fb.finish(s);
        let folded = fold_constants(&f);
        // After folding + DCE the body is a bare constant binding.
        let cleaned = eliminate_dead_code(&folded);
        let mut saw_const = false;
        nimble_ir::visit::visit_post_order(&cleaned.body, &mut |e| {
            if let ExprKind::Constant(t) = e.kind() {
                if t.scalar_value_f32() == Ok(5.0) {
                    saw_const = true;
                }
            }
        });
        assert!(saw_const);
        // No add call remains.
        let mut saw_add = false;
        nimble_ir::visit::visit_post_order(&cleaned.body, &mut |e| {
            if let Some(("add", _, _)) = e.as_op_call() {
                saw_add = true;
            }
        });
        assert!(!saw_add);
    }

    #[test]
    fn folding_skips_non_constant() {
        let mut fb = FunctionBuilder::new("f");
        let x = fb.param("x", TensorType::scalar(DType::F32));
        let c = fb.constant(Tensor::scalar_f32(1.0));
        let s = fb.call("add", vec![x, c], Attrs::new());
        let f = fb.finish(s);
        let folded = fold_constants(&f);
        let mut saw_add = false;
        nimble_ir::visit::visit_post_order(&folded.body, &mut |e| {
            if let Some(("add", _, _)) = e.as_op_call() {
                saw_add = true;
            }
        });
        assert!(saw_add);
    }

    #[test]
    fn dce_drops_unused_pure_bindings() {
        let x = Var::fresh("x", Type::Tensor(TensorType::scalar(DType::F32)));
        let dead = Var::fresh("dead", Type::Unknown);
        let body = Expr::let_(
            dead,
            Expr::call_op("relu", vec![x.to_expr()], Attrs::new()),
            x.to_expr(),
        );
        let f = Function::new(vec![x], body, Type::Unknown);
        let cleaned = eliminate_dead_code(&f);
        assert_eq!(chain_len(&cleaned), 0);
    }

    #[test]
    fn dce_keeps_memory_dialect() {
        let x = Var::fresh("x", Type::Unknown);
        let k = Var::fresh("k", Type::Unknown);
        let body = Expr::let_(
            k,
            Expr::call_op(crate::dialect::KILL, vec![x.to_expr()], Attrs::new()),
            x.to_expr(),
        );
        let f = Function::new(vec![x], body, Type::Unknown);
        let cleaned = eliminate_dead_code(&f);
        assert_eq!(chain_len(&cleaned), 1);
    }

    #[test]
    fn dce_cascades() {
        // b uses a, but b itself is dead → both removed.
        let x = Var::fresh("x", Type::Tensor(TensorType::scalar(DType::F32)));
        let a = Var::fresh("a", Type::Unknown);
        let b = Var::fresh("b", Type::Unknown);
        let body = Expr::let_(
            a.clone(),
            Expr::call_op("relu", vec![x.to_expr()], Attrs::new()),
            Expr::let_(
                b,
                Expr::call_op("tanh", vec![a.to_expr()], Attrs::new()),
                x.to_expr(),
            ),
        );
        let f = Function::new(vec![x], body, Type::Unknown);
        let cleaned = eliminate_dead_code(&f);
        assert_eq!(chain_len(&cleaned), 0);
    }

    #[test]
    fn cse_merges_identical_calls() {
        let mut fb = FunctionBuilder::new("f");
        let x = fb.param("x", TensorType::scalar(DType::F32));
        let a = fb.call("relu", vec![x.clone()], Attrs::new());
        let b = fb.call("relu", vec![x], Attrs::new());
        let s = fb.call("add", vec![a, b], Attrs::new());
        let f = to_anf(&fb.finish(s));
        assert_eq!(chain_len(&f), 3);
        let cse = eliminate_common_subexpr(&f);
        let cleaned = eliminate_dead_code(&cse);
        assert_eq!(chain_len(&cleaned), 2, "duplicate relu removed");
    }
}
