//! Memory planning: rewrite implicit-allocation IR into the
//! explicit-allocation dialect of Section 4.3.
//!
//! Every kernel invocation `let v = op(args…)` becomes a sequence of
//!
//! 1. allocation of the output — statically sized when the inferred type is
//!    fully static (`alloc_storage` + `alloc_tensor`), or dynamically sized
//!    via manifested **shape functions** (`shape_of` inputs →
//!    `invoke_shape_func` → `alloc_tensor_reg`) when it is not;
//! 2. an `invoke_mut` call that takes its output as an explicit in-out
//!    argument ("the key insight is to internalize a notion of memory
//!    allocation into the IR").
//!
//! With allocations explicit, **storage coalescing** groups statically
//! sized allocations with disjoint lifetimes onto shared storage, reducing
//! the allocation count (the −47% buffer-allocation statistic of
//! Section 6.3 is regenerated from this pass's [`MemPlanReport`]).

use crate::dialect;
use crate::type_infer::TypeMap;
use nimble_ir::attrs::{AttrValue, Attrs};
use nimble_ir::expr::{Clause, Expr, ExprKind, Function};
use nimble_ir::op::{self, ShapeFnKind};
use nimble_ir::types::{TensorType, Type};
use nimble_ir::{IrError, Result, Var};
use std::collections::HashMap;

/// Statistics reported by the planner (inputs to the memory-planning
/// microbenchmark).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemPlanReport {
    /// Number of tensors allocated (static + dynamic).
    pub tensors: usize,
    /// Number of `alloc_storage` nodes emitted after coalescing.
    pub storages: usize,
    /// Number of `alloc_storage` nodes that would exist without coalescing
    /// (= number of statically sized tensors).
    pub storages_uncoalesced: usize,
    /// Total bytes of coalesced static storage.
    pub planned_bytes: u64,
    /// Total bytes the same tensors would need without sharing.
    pub unplanned_bytes: u64,
    /// Allocations whose size is only known at run time.
    pub dynamic_allocs: usize,
    /// Number of shape-function invocations manifested.
    pub shape_funcs: usize,
}

/// Plan a typed ANF function. `coalesce` enables storage sharing (the
/// ablation toggle for the memory-planning study).
///
/// # Errors
/// Fails when a kernel binding lacks an inferred tensor type.
pub fn plan_function(
    func: &Function,
    types: &TypeMap,
    coalesce: bool,
) -> Result<(Function, MemPlanReport)> {
    let mut report = MemPlanReport::default();
    let body = plan_block(&func.body, types, coalesce, &mut report)?;
    Ok((
        Function::new(func.params.clone(), body, func.ret_type.clone()),
        report,
    ))
}

/// Is this binding value a kernel invocation (plain op call or fused
/// primitive)?
fn kernel_callee(value: &Expr) -> Option<Expr> {
    if let ExprKind::Call { callee, .. } = value.kind() {
        match callee.kind() {
            ExprKind::Op(name) => {
                // Dialect and runtime-support ops are not kernels.
                if name.starts_with("memory.") || name == "shape_of" || name == "device_copy" {
                    None
                } else {
                    Some(callee.clone())
                }
            }
            ExprKind::Func(_) if crate::fusion::is_primitive_call(value) => Some(callee.clone()),
            _ => None,
        }
    } else {
        None
    }
}

/// The shape-function mode of a kernel callee. Fused primitives are always
/// data independent by the fusion policy.
fn callee_shape_mode(callee: &Expr) -> ShapeFnKind {
    if let ExprKind::Op(name) = callee.kind() {
        if let Ok(def) = op::lookup(name) {
            return def.shape_fn;
        }
    }
    ShapeFnKind::DataIndependent
}

struct Planned {
    bindings: Vec<(Var, Expr)>,
}

impl Planned {
    fn push(&mut self, name: &str, value: Expr) -> Expr {
        let v = Var::fresh(name, Type::Unknown);
        self.bindings.push((v.clone(), value));
        v.to_expr()
    }

    fn push_var(&mut self, var: Var, value: Expr) {
        self.bindings.push((var, value));
    }
}

fn plan_block(
    block: &Expr,
    types: &TypeMap,
    coalesce: bool,
    report: &mut MemPlanReport,
) -> Result<Expr> {
    // Collect the chain.
    let mut chain: Vec<(Var, Expr)> = Vec::new();
    let mut cur = block.clone();
    while let ExprKind::Let { var, value, body } = cur.kind() {
        chain.push((var.clone(), value.clone()));
        cur = body.clone();
    }
    let result = cur;

    let mut out = Planned {
        bindings: Vec::new(),
    };
    // Static allocations awaiting coalescing: (index in out.bindings of the
    // placeholder, size, tensor var id).
    struct StaticAlloc {
        storage_slot: usize,
        size: u64,
        tensor_var: u32,
    }
    let mut static_allocs: Vec<StaticAlloc> = Vec::new();

    for (var, value) in &chain {
        // Recurse into nested blocks first.
        let value = match value.kind() {
            ExprKind::If { cond, then, els } => Expr::if_(
                cond.clone(),
                plan_block(then, types, coalesce, report)?,
                plan_block(els, types, coalesce, report)?,
            ),
            ExprKind::Match { value: v, clauses } => Expr::match_(
                v.clone(),
                clauses
                    .iter()
                    .map(|c| {
                        Ok(Clause {
                            pattern: c.pattern.clone(),
                            body: plan_block(&c.body, types, coalesce, report)?,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?,
            ),
            ExprKind::Func(f) => Expr::func(Function::new(
                f.params.clone(),
                plan_block(&f.body, types, coalesce, report)?,
                f.ret_type.clone(),
            )),
            _ => value.clone(),
        };

        let Some(callee) = kernel_callee(&value) else {
            out.push_var(var.clone(), value);
            continue;
        };
        let (args, attrs) = match value.kind() {
            ExprKind::Call { args, attrs, .. } => (args.clone(), attrs.clone()),
            _ => unreachable!("kernel_callee only matches calls"),
        };

        // Output type of the kernel.
        let out_ty = types
            .var(var)
            .ok_or_else(|| IrError(format!("memory planning: no type for {var}")))?;
        let tts: Vec<&TensorType> = match out_ty {
            Type::Tensor(t) => vec![t],
            Type::Tuple(ts) => ts
                .iter()
                .map(|t| t.as_tensor())
                .collect::<Result<Vec<_>>>()?,
            other => {
                return Err(IrError(format!(
                    "memory planning: kernel output must be tensor(s), got {other}"
                )))
            }
        };

        let mode = callee_shape_mode(&callee);
        let all_static = tts.iter().all(|t| t.is_static());
        report.tensors += tts.len();

        let mut out_exprs: Vec<Expr> = Vec::with_capacity(tts.len());
        if all_static {
            for t in &tts {
                let shape = t.static_shape().expect("checked static");
                let size = t.max_nbytes(1);
                report.storages_uncoalesced += 1;
                report.unplanned_bytes += size;
                // Placeholder storage binding; coalescing may rewrite it.
                let slot = out.bindings.len();
                let storage = out.push(
                    "sto",
                    Expr::call_op(
                        dialect::ALLOC_STORAGE,
                        vec![],
                        Attrs::new()
                            .with("size", AttrValue::Int(size as i64))
                            .with("alignment", AttrValue::Int(64)),
                    ),
                );
                let tensor = out.push(
                    "buf",
                    Expr::call_op(
                        dialect::ALLOC_TENSOR,
                        vec![storage],
                        Attrs::new()
                            .with("offset", AttrValue::Int(0))
                            .with(
                                "shape",
                                AttrValue::IntVec(shape.iter().map(|&d| d as i64).collect()),
                            )
                            .with("dtype", AttrValue::DType(t.dtype)),
                    ),
                );
                if let Some(v) = tensor.as_var() {
                    static_allocs.push(StaticAlloc {
                        storage_slot: slot,
                        size,
                        tensor_var: v.id,
                    });
                }
                out_exprs.push(tensor);
            }
        } else {
            // Dynamic output: manifest the shape function (the fix-point of
            // Section 4.3 — shape-function inputs are themselves allocated
            // here as `shape_of` results, which are always statically sized
            // rank-1 i64 tensors handled by the VM directly).
            report.dynamic_allocs += tts.len();
            report.shape_funcs += 1;
            let tensor_args: Vec<Expr> = args
                .iter()
                .filter(|a| {
                    !matches!(
                        a.kind(),
                        ExprKind::Op(_) | ExprKind::Global(_) | ExprKind::Constructor(_)
                    )
                })
                .cloned()
                .collect();
            let (sf_mode, sf_inputs): (&str, Vec<Expr>) = match mode {
                ShapeFnKind::DataIndependent => {
                    let shapes = tensor_args
                        .iter()
                        .map(|a| {
                            out.push(
                                "sh",
                                Expr::call_op("shape_of", vec![a.clone()], Attrs::new()),
                            )
                        })
                        .collect();
                    ("shapes", shapes)
                }
                ShapeFnKind::UpperBound(_) => {
                    let shapes = tensor_args
                        .iter()
                        .map(|a| {
                            out.push(
                                "sh",
                                Expr::call_op("shape_of", vec![a.clone()], Attrs::new()),
                            )
                        })
                        .collect();
                    ("bound", shapes)
                }
                ShapeFnKind::DataDependent(_) => ("data", tensor_args.clone()),
            };
            // Record the dtype of each tensor input so the compiled shape
            // function can run the dtype-sensitive type relations.
            let in_dtype_codes: Vec<i64> = tensor_args
                .iter()
                .map(|a| {
                    let dt = match a.kind() {
                        ExprKind::Constant(t) => Some(t.dtype()),
                        ExprKind::Var(v) => types
                            .var(v)
                            .and_then(|t| t.as_tensor().ok())
                            .map(|t| t.dtype),
                        _ => None,
                    };
                    dt.unwrap_or(nimble_tensor::DType::F32).code() as i64
                })
                .collect();
            let mut sf_args = vec![callee.clone()];
            sf_args.extend(sf_inputs);
            let shape_out = out.push(
                "osh",
                Expr::new(ExprKind::Call {
                    callee: Expr::op(dialect::INVOKE_SHAPE_FUNC),
                    args: sf_args,
                    attrs: attrs
                        .clone()
                        .with("mode", AttrValue::Str(sf_mode.into()))
                        .with("num_outputs", AttrValue::Int(tts.len() as i64))
                        .with("in_dtype_codes", AttrValue::IntVec(in_dtype_codes)),
                }),
            );
            for (i, t) in tts.iter().enumerate() {
                let sh_i = if tts.len() == 1 {
                    shape_out.clone()
                } else {
                    out.push("osh_i", Expr::tuple_get(shape_out.clone(), i))
                };
                let tensor = out.push(
                    "buf",
                    Expr::call_op(
                        dialect::ALLOC_TENSOR_REG,
                        vec![sh_i],
                        Attrs::new().with("dtype", AttrValue::DType(t.dtype)),
                    ),
                );
                out_exprs.push(tensor);
            }
        }

        // The invoke_mut: callee, inputs…, outputs…; binds the (first)
        // output as the let variable for downstream uses.
        let mut im_args = vec![callee.clone()];
        im_args.extend(args.iter().cloned());
        im_args.extend(out_exprs.iter().cloned());
        let im_attrs = attrs
            .with("num_outputs", AttrValue::Int(tts.len() as i64))
            .with(
                "upper_bound",
                AttrValue::Bool(matches!(mode, ShapeFnKind::UpperBound(_))),
            )
            // Dynamic outputs mark the kernel for symbolic codegen
            // (residue-dispatch dense kernels, Section 4.5).
            .with("symbolic", AttrValue::Bool(!all_static));
        out.push_var(
            var.clone(),
            Expr::new(ExprKind::Call {
                callee: Expr::op(dialect::INVOKE_MUT),
                args: im_args,
                attrs: im_attrs,
            }),
        );
    }

    // ---- storage coalescing over the emitted chain ----
    if coalesce {
        // Last use position of each var in the emitted chain + result.
        let mut last_use: HashMap<u32, usize> = HashMap::new();
        for (pos, (_, value)) in out.bindings.iter().enumerate() {
            nimble_ir::visit::visit_post_order(value, &mut |n| {
                if let ExprKind::Var(v) = n.kind() {
                    last_use.insert(v.id, pos);
                }
            });
        }
        nimble_ir::visit::visit_post_order(&result, &mut |n| {
            if let ExprKind::Var(v) = n.kind() {
                last_use.insert(v.id, usize::MAX);
            }
        });
        // Transitively: a tensor multiplexed onto a storage keeps the
        // storage alive until the tensor's last use; the invoke_mut binding
        // var aliases the output tensor, extending its life.
        // Conservative fix: treat the kernel output var (bound immediately
        // after the tensor alloc) as an alias of the tensor.
        let mut alias_extend: HashMap<u32, usize> = HashMap::new();
        for sa in &static_allocs {
            // Find the invoke_mut that consumes this tensor: the tensor's
            // own last_use is that invoke position; the invoke's bound var
            // aliases the buffer.
            if let Some(&invoke_pos) = last_use.get(&sa.tensor_var) {
                if invoke_pos != usize::MAX {
                    if let Some((alias_var, _)) = out.bindings.get(invoke_pos) {
                        let alias_last = last_use.get(&alias_var.id).copied().unwrap_or(invoke_pos);
                        alias_extend.insert(sa.tensor_var, alias_last);
                    }
                }
            }
        }

        // Greedy linear-scan storage reuse.
        struct Pool {
            var: Var,
            size: u64,
            free_after: usize,
        }
        let mut pools: Vec<Pool> = Vec::new();
        let mut replace: HashMap<usize, Expr> = HashMap::new(); // slot -> storage var expr
        for sa in &static_allocs {
            let alloc_pos = sa.storage_slot;
            let end = alias_extend
                .get(&sa.tensor_var)
                .copied()
                .or_else(|| last_use.get(&sa.tensor_var).copied())
                .unwrap_or(alloc_pos);
            if end == usize::MAX {
                // Escapes the block: keep its own storage.
                report.storages += 1;
                report.planned_bytes += sa.size;
                continue;
            }
            // Find a free pool large enough.
            if let Some(p) = pools
                .iter_mut()
                .find(|p| p.free_after < alloc_pos && p.size >= sa.size)
            {
                p.free_after = end;
                replace.insert(sa.storage_slot, p.var.to_expr());
            } else {
                let (var, _) = &out.bindings[sa.storage_slot];
                pools.push(Pool {
                    var: var.clone(),
                    size: sa.size,
                    free_after: end,
                });
                report.storages += 1;
                report.planned_bytes += sa.size;
            }
        }
        // Drop coalesced-away storage bindings and rewrite tensor allocs to
        // reference the shared storage.
        if !replace.is_empty() {
            let old = std::mem::take(&mut out.bindings);
            let mut new_bindings: Vec<(Var, Expr)> = Vec::with_capacity(old.len());
            for (slot, (var, value)) in old.into_iter().enumerate() {
                if let Some(shared) = replace.get(&slot) {
                    // Rewrite uses of this storage var to the shared one by
                    // emitting an alias binding (kept simple and explicit).
                    new_bindings.push((var, shared.clone()));
                } else {
                    new_bindings.push((var, value));
                }
            }
            out.bindings = new_bindings;
        }
    } else {
        for sa in &static_allocs {
            report.storages += 1;
            report.planned_bytes += sa.size;
        }
    }

    // ---- kill insertion after last use ----
    let mut last_use: HashMap<u32, usize> = HashMap::new();
    for (pos, (_, value)) in out.bindings.iter().enumerate() {
        nimble_ir::visit::visit_post_order(value, &mut |n| {
            if let ExprKind::Var(v) = n.kind() {
                last_use.insert(v.id, pos);
            }
        });
    }
    let mut escapes: std::collections::HashSet<u32> = Default::default();
    nimble_ir::visit::visit_post_order(&result, &mut |n| {
        if let ExprKind::Var(v) = n.kind() {
            escapes.insert(v.id);
        }
    });
    // Only kill invoke_mut result vars (actual tensors), at their last use.
    let mut kills_at: HashMap<usize, Vec<Var>> = HashMap::new();
    for (pos, (var, value)) in out.bindings.iter().enumerate() {
        let is_tensor_result = matches!(
            value.as_op_call(),
            Some((name, _, _)) if name == dialect::INVOKE_MUT
        );
        if !is_tensor_result || escapes.contains(&var.id) {
            continue;
        }
        let end = last_use.get(&var.id).copied().unwrap_or(pos);
        kills_at.entry(end.max(pos)).or_default().push(var.clone());
    }

    let mut final_bindings: Vec<(Var, Expr)> = Vec::new();
    for (pos, (var, value)) in out.bindings.iter().enumerate() {
        final_bindings.push((var.clone(), value.clone()));
        if let Some(kills) = kills_at.get(&pos) {
            for k in kills {
                final_bindings.push((
                    Var::fresh("kill", Type::Unknown),
                    Expr::call_op(dialect::KILL, vec![k.to_expr()], Attrs::new()),
                ));
            }
        }
    }

    let mut body = result;
    for (var, value) in final_bindings.into_iter().rev() {
        body = Expr::let_(var, value, body);
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anf::to_anf;
    use crate::type_infer::infer_function;
    use nimble_ir::builder::FunctionBuilder;
    use nimble_ir::Module;
    use nimble_tensor::{DType, Tensor};

    fn count_ops(f: &Function, name: &str) -> usize {
        let mut n = 0;
        nimble_ir::visit::visit_post_order(&f.body, &mut |e| {
            if let Some((op, _, _)) = e.as_op_call() {
                if op == name {
                    n += 1;
                }
            }
        });
        n
    }

    /// The paper's first memory-planning example: a statically shaped add
    /// becomes alloc_storage + alloc_tensor + invoke_mut.
    #[test]
    fn static_add_explicit_allocation() {
        let mut fb = FunctionBuilder::new("main");
        let t1 = fb.param("t1", TensorType::new(&[10], DType::F32));
        let t2 = fb.param("t2", TensorType::new(&[10], DType::F32));
        let s = fb.call("add", vec![t1, t2], Attrs::new());
        let f = to_anf(&fb.finish(s));
        let (types, _) = infer_function(&Module::new(), &f).unwrap();
        let (planned, report) = plan_function(&f, &types, true).unwrap();
        assert_eq!(count_ops(&planned, dialect::ALLOC_STORAGE), 1);
        assert_eq!(count_ops(&planned, dialect::ALLOC_TENSOR), 1);
        assert_eq!(count_ops(&planned, dialect::INVOKE_MUT), 1);
        assert_eq!(report.tensors, 1);
        assert_eq!(report.storages, 1);
        // 10 f32 = 40 bytes, matching `alloc_storage(40, 64, cpu(0))` in
        // the paper listing.
        assert_eq!(report.planned_bytes, 40);
    }

    /// The paper's second example: dynamic concat manifests shape_of +
    /// invoke_shape_func + alloc_tensor_reg.
    #[test]
    fn dynamic_concat_manifests_shape_function() {
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::with_any(&[None, Some(2)], DType::F32));
        let y = fb.param("y", TensorType::new(&[1, 2], DType::F32));
        let c = fb.call(
            "concat",
            vec![x, y],
            Attrs::new().with("axis", AttrValue::Int(0)),
        );
        let f = to_anf(&fb.finish(c));
        let (types, _) = infer_function(&Module::new(), &f).unwrap();
        let (planned, report) = plan_function(&f, &types, true).unwrap();
        assert_eq!(
            count_ops(&planned, "shape_of"),
            2,
            "{}",
            nimble_ir::printer::print_function("main", &planned)
        );
        assert_eq!(count_ops(&planned, dialect::INVOKE_SHAPE_FUNC), 1);
        assert_eq!(count_ops(&planned, dialect::ALLOC_TENSOR_REG), 1);
        assert_eq!(count_ops(&planned, dialect::INVOKE_MUT), 1);
        assert_eq!(report.dynamic_allocs, 1);
        assert_eq!(report.shape_funcs, 1);
    }

    /// Data-dependent ops pass values (not shapes) to the shape function.
    #[test]
    fn data_dependent_shape_func_takes_values() {
        let mut fb = FunctionBuilder::new("main");
        let start = fb.param("start", TensorType::scalar(DType::F32));
        let stop = fb.param("stop", TensorType::scalar(DType::F32));
        let step = fb.param("step", TensorType::scalar(DType::F32));
        let r = fb.call("arange", vec![start, stop, step], Attrs::new());
        let f = to_anf(&fb.finish(r));
        let (types, _) = infer_function(&Module::new(), &f).unwrap();
        let (planned, _) = plan_function(&f, &types, true).unwrap();
        // No shape_of for data-dependent mode.
        assert_eq!(count_ops(&planned, "shape_of"), 0);
        assert_eq!(count_ops(&planned, dialect::INVOKE_SHAPE_FUNC), 1);
        // The mode attribute records "data".
        let mut saw_data_mode = false;
        nimble_ir::visit::visit_post_order(&planned.body, &mut |e| {
            if let Some((op, _, attrs)) = e.as_op_call() {
                if op == dialect::INVOKE_SHAPE_FUNC {
                    saw_data_mode = attrs.str("mode") == Some("data");
                }
            }
        });
        assert!(saw_data_mode);
    }

    /// Storage coalescing shares storage between disjoint lifetimes.
    #[test]
    fn coalescing_reduces_storage_count() {
        // A chain of 4 same-sized elementwise ops: intermediates have
        // disjoint lifetimes, so ping-pong between 2 storages (the result
        // escapes and keeps one alive).
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::new(&[64], DType::F32));
        let mut h = x;
        for _ in 0..4 {
            h = fb.call("tanh", vec![h], Attrs::new());
        }
        let f = to_anf(&fb.finish(h));
        let (types, _) = infer_function(&Module::new(), &f).unwrap();
        let (_, with) = plan_function(&f, &types, true).unwrap();
        let (_, without) = plan_function(&f, &types, false).unwrap();
        assert_eq!(without.storages, 4);
        assert!(
            with.storages < without.storages,
            "coalesced {} vs raw {}",
            with.storages,
            without.storages
        );
        assert!(with.planned_bytes < without.unplanned_bytes);
    }

    /// Kill markers appear after the last use of dead intermediates.
    #[test]
    fn kills_inserted_for_dead_intermediates() {
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::new(&[8], DType::F32));
        let a = fb.call("tanh", vec![x], Attrs::new());
        let b = fb.call("relu", vec![a], Attrs::new());
        let f = to_anf(&fb.finish(b));
        let (types, _) = infer_function(&Module::new(), &f).unwrap();
        let (planned, _) = plan_function(&f, &types, true).unwrap();
        // `a` dies after relu consumes it; `b` escapes.
        assert_eq!(count_ops(&planned, dialect::KILL), 1);
    }

    /// Constants as kernel inputs don't break planning.
    #[test]
    fn constant_weights_flow_through() {
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::new(&[1, 4], DType::F32));
        let w = fb.constant(Tensor::ones_f32(&[2, 4]));
        let d = fb.call("dense", vec![x, w], Attrs::new());
        let f = to_anf(&fb.finish(d));
        let (types, _) = infer_function(&Module::new(), &f).unwrap();
        let (planned, report) = plan_function(&f, &types, true).unwrap();
        assert_eq!(count_ops(&planned, dialect::INVOKE_MUT), 1);
        assert_eq!(report.tensors, 1);
    }
}
