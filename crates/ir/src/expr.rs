//! IR expressions: a Relay-style functional language with tensors, tuples,
//! let-binding, control flow, closures, and algebraic data types.
//!
//! Expressions are persistent (immutable, `Arc`-shared) trees. Analysis
//! results such as inferred types live in side tables keyed by
//! [`Expr::ref_id`] pointer identity, so passes never mutate shared IR.

use crate::attrs::Attrs;
use crate::types::Type;
use nimble_tensor::Tensor;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A local variable. Identity (equality, hashing) is the numeric `id`; the
/// name is for printing only.
#[derive(Debug, Clone)]
pub struct Var {
    /// Process-unique identity.
    pub id: u32,
    /// Human-readable name hint.
    pub name: Arc<str>,
    /// Declared (or inferred) type annotation.
    pub ty: Type,
}

static NEXT_VAR: AtomicU32 = AtomicU32::new(0);

impl Var {
    /// Create a fresh variable with a unique id.
    pub fn fresh(name: &str, ty: Type) -> Var {
        Var {
            id: NEXT_VAR.fetch_add(1, Ordering::Relaxed),
            name: name.into(),
            ty,
        }
    }

    /// The variable as an expression.
    pub fn to_expr(&self) -> Expr {
        Expr::new(ExprKind::Var(self.clone()))
    }
}

impl PartialEq for Var {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for Var {}
impl std::hash::Hash for Var {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}_{}", self.name, self.id)
    }
}

/// Reference to a module-level function by name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalVar(pub String);

impl GlobalVar {
    /// Create from a name.
    pub fn new(name: &str) -> GlobalVar {
        GlobalVar(name.to_string())
    }
}

impl fmt::Display for GlobalVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A function definition (module-level or closure).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Formal parameters.
    pub params: Vec<Var>,
    /// Function body.
    pub body: Expr,
    /// Declared return type ([`Type::Unknown`] until inferred).
    pub ret_type: Type,
}

impl Function {
    /// Construct a function.
    pub fn new(params: Vec<Var>, body: Expr, ret_type: Type) -> Function {
        Function {
            params,
            body,
            ret_type,
        }
    }

    /// The function's type, from parameter annotations and return type.
    pub fn func_type(&self) -> Type {
        Type::Func(
            self.params.iter().map(|p| p.ty.clone()).collect(),
            Box::new(self.ret_type.clone()),
        )
    }
}

/// A pattern in a `match` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// Matches anything, binds nothing.
    Wildcard,
    /// Matches anything, binds it to a variable.
    Bind(Var),
    /// Matches a specific ADT constructor and destructures its fields.
    Constructor {
        /// Constructor name (e.g. `"Cons"`, `"Node"`).
        name: String,
        /// Sub-patterns for the constructor fields.
        fields: Vec<Pattern>,
    },
}

impl Pattern {
    /// All variables bound by this pattern, in field order.
    pub fn bound_vars(&self) -> Vec<Var> {
        match self {
            Pattern::Wildcard => Vec::new(),
            Pattern::Bind(v) => vec![v.clone()],
            Pattern::Constructor { fields, .. } => {
                fields.iter().flat_map(|p| p.bound_vars()).collect()
            }
        }
    }
}

/// One arm of a `match` expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// Pattern to match against the scrutinee.
    pub pattern: Pattern,
    /// Body evaluated when the pattern matches.
    pub body: Expr,
}

/// The expression node variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Local variable reference.
    Var(Var),
    /// Embedded constant tensor (weights, scalars).
    Constant(Tensor),
    /// Module-level function reference.
    Global(GlobalVar),
    /// Primitive-operator reference (callee position of a `Call`).
    Op(String),
    /// ADT constructor reference (callee position of a `Call`).
    Constructor(String),
    /// Tuple construction.
    Tuple(Vec<Expr>),
    /// Tuple projection.
    TupleGet(Expr, usize),
    /// Application of an operator, global, closure, or constructor.
    Call {
        /// Callee expression ([`ExprKind::Op`], [`ExprKind::Global`],
        /// [`ExprKind::Constructor`], a variable, or a function literal).
        callee: Expr,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Static attributes (axes, strides, …).
        attrs: Attrs,
    },
    /// Sequential binding: `let var = value; body`.
    Let {
        /// Bound variable.
        var: Var,
        /// Bound value.
        value: Expr,
        /// Continuation.
        body: Expr,
    },
    /// Conditional on a scalar-bool tensor.
    If {
        /// Condition (scalar bool).
        cond: Expr,
        /// Then-branch.
        then: Expr,
        /// Else-branch.
        els: Expr,
    },
    /// Function literal (closure when it captures free variables).
    Func(Arc<Function>),
    /// ADT pattern match.
    Match {
        /// Scrutinee.
        value: Expr,
        /// Ordered clauses; first match wins.
        clauses: Vec<Clause>,
    },
}

/// A reference-counted IR expression.
#[derive(Debug, Clone)]
pub struct Expr(Arc<ExprKind>);

impl Expr {
    /// Wrap a kind.
    pub fn new(kind: ExprKind) -> Expr {
        Expr(Arc::new(kind))
    }

    /// The node variant.
    pub fn kind(&self) -> &ExprKind {
        &self.0
    }

    /// Stable pointer identity for side-table keys. Two clones of the same
    /// node share an id; structurally equal but separately constructed nodes
    /// do not.
    pub fn ref_id(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }

    // ---- constructors ----

    /// Constant tensor expression.
    pub fn constant(t: Tensor) -> Expr {
        Expr::new(ExprKind::Constant(t))
    }

    /// Scalar f32 constant.
    pub fn const_f32(v: f32) -> Expr {
        Expr::constant(Tensor::scalar_f32(v))
    }

    /// Operator reference.
    pub fn op(name: &str) -> Expr {
        Expr::new(ExprKind::Op(name.to_string()))
    }

    /// Global function reference.
    pub fn global(name: &str) -> Expr {
        Expr::new(ExprKind::Global(GlobalVar::new(name)))
    }

    /// Constructor reference.
    pub fn constructor(name: &str) -> Expr {
        Expr::new(ExprKind::Constructor(name.to_string()))
    }

    /// Call a primitive operator by name.
    pub fn call_op(name: &str, args: Vec<Expr>, attrs: Attrs) -> Expr {
        Expr::new(ExprKind::Call {
            callee: Expr::op(name),
            args,
            attrs,
        })
    }

    /// Call an arbitrary callee.
    pub fn call(callee: Expr, args: Vec<Expr>) -> Expr {
        Expr::new(ExprKind::Call {
            callee,
            args,
            attrs: Attrs::new(),
        })
    }

    /// Let-binding.
    pub fn let_(var: Var, value: Expr, body: Expr) -> Expr {
        Expr::new(ExprKind::Let { var, value, body })
    }

    /// Conditional.
    pub fn if_(cond: Expr, then: Expr, els: Expr) -> Expr {
        Expr::new(ExprKind::If { cond, then, els })
    }

    /// Tuple literal.
    pub fn tuple(fields: Vec<Expr>) -> Expr {
        Expr::new(ExprKind::Tuple(fields))
    }

    /// Tuple projection.
    pub fn tuple_get(tuple: Expr, index: usize) -> Expr {
        Expr::new(ExprKind::TupleGet(tuple, index))
    }

    /// Function literal.
    pub fn func(f: Function) -> Expr {
        Expr::new(ExprKind::Func(Arc::new(f)))
    }

    /// Match expression.
    pub fn match_(value: Expr, clauses: Vec<Clause>) -> Expr {
        Expr::new(ExprKind::Match { value, clauses })
    }

    /// If this expression is a call to a primitive op, its name.
    pub fn as_op_call(&self) -> Option<(&str, &[Expr], &Attrs)> {
        if let ExprKind::Call {
            callee,
            args,
            attrs,
        } = self.kind()
        {
            if let ExprKind::Op(name) = callee.kind() {
                return Some((name, args, attrs));
            }
        }
        None
    }

    /// If this expression is a variable, the variable.
    pub fn as_var(&self) -> Option<&Var> {
        match self.kind() {
            ExprKind::Var(v) => Some(v),
            _ => None,
        }
    }
}

impl PartialEq for Expr {
    /// Structural equality (deep). For identity use [`Expr::ref_id`].
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}

impl From<Var> for Expr {
    fn from(v: Var) -> Expr {
        v.to_expr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TensorType;
    use nimble_tensor::DType;

    fn f32_ty() -> Type {
        Type::Tensor(TensorType::scalar(DType::F32))
    }

    #[test]
    fn var_identity_not_name() {
        let a = Var::fresh("x", f32_ty());
        let b = Var::fresh("x", f32_ty());
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
    }

    #[test]
    fn ref_id_stable_across_clones() {
        let e = Expr::const_f32(1.0);
        let e2 = e.clone();
        assert_eq!(e.ref_id(), e2.ref_id());
        let e3 = Expr::const_f32(1.0);
        assert_ne!(e.ref_id(), e3.ref_id());
        // But structural equality still holds.
        assert_eq!(e, e3);
    }

    #[test]
    fn op_call_accessor() {
        let c = Expr::call_op(
            "add",
            vec![Expr::const_f32(1.0), Expr::const_f32(2.0)],
            Attrs::new(),
        );
        let (name, args, _) = c.as_op_call().unwrap();
        assert_eq!(name, "add");
        assert_eq!(args.len(), 2);
        // A call through a variable is not an op call.
        let v = Var::fresh("f", Type::Unknown);
        let c2 = Expr::call(v.to_expr(), vec![]);
        assert!(c2.as_op_call().is_none());
    }

    #[test]
    fn pattern_bound_vars_in_order() {
        let a = Var::fresh("a", f32_ty());
        let b = Var::fresh("b", f32_ty());
        let p = Pattern::Constructor {
            name: "Node".into(),
            fields: vec![
                Pattern::Bind(a.clone()),
                Pattern::Wildcard,
                Pattern::Bind(b.clone()),
            ],
        };
        assert_eq!(p.bound_vars(), vec![a, b]);
    }

    #[test]
    fn function_type_from_params() {
        let x = Var::fresh("x", f32_ty());
        let f = Function::new(vec![x.clone()], x.to_expr(), f32_ty());
        match f.func_type() {
            Type::Func(ps, r) => {
                assert_eq!(ps.len(), 1);
                assert_eq!(*r, f32_ty());
            }
            other => panic!("expected func type, got {other}"),
        }
    }

    #[test]
    fn display_var() {
        let v = Var::fresh("hidden", f32_ty());
        assert!(v.to_string().starts_with("%hidden_"));
    }
}
