//! The dynamic type system: tensor types with `Any` and symbolic dimensions.
//!
//! Section 4.1 of the paper introduces a special dimension `Any` to
//! "represent statically unknown dimensions", and a *sub-shaping* extension
//! that lets values with more specific shape information flow into contexts
//! requiring less specific shapes. Both are implemented here: [`Dim::Any`]
//! is the fully unknown dimension, [`Dim::Sym`] is an unknown dimension
//! carrying an identity so equal dynamic dimensions can be recognized, and
//! [`TensorType::subshape_of`] implements the sub-shape relation.

use crate::IrError;
use nimble_tensor::DType;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// Identity of a symbolic dimension produced by the sub-shaping analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub u32);

static NEXT_SYM: AtomicU32 = AtomicU32::new(0);

impl SymId {
    /// Allocate a fresh, process-unique symbolic dimension id.
    pub fn fresh() -> SymId {
        SymId(NEXT_SYM.fetch_add(1, Ordering::Relaxed))
    }
}

/// One dimension of a tensor type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// Statically known extent.
    Static(u64),
    /// Statically unknown extent (the paper's `Any`).
    Any,
    /// Statically unknown extent with an identity: two `Sym` dims with the
    /// same id are guaranteed equal at run time. Produced by sub-shaping
    /// analysis; consumed by shape-specialized codegen.
    Sym(SymId),
}

impl Dim {
    /// Whether the extent is known at compile time.
    pub fn is_static(self) -> bool {
        matches!(self, Dim::Static(_))
    }

    /// The static extent, if known.
    pub fn as_static(self) -> Option<u64> {
        match self {
            Dim::Static(d) => Some(d),
            _ => None,
        }
    }

    /// Whether this dimension is dynamic (either `Any` or symbolic).
    pub fn is_dynamic(self) -> bool {
        !self.is_static()
    }

    /// `self` is at least as specific as `other`: every static dim refines
    /// `Any`, a `Sym` refines `Any`, and everything refines itself.
    pub fn refines(self, other: Dim) -> bool {
        match (self, other) {
            (a, b) if a == b => true,
            (_, Dim::Any) => true,
            (Dim::Static(_), Dim::Sym(_)) => true,
            _ => false,
        }
    }

    /// Can the two dimensions denote the same runtime extent?
    pub fn compatible(self, other: Dim) -> bool {
        match (self, other) {
            (Dim::Static(a), Dim::Static(b)) => a == b,
            // A dynamic dim may take any runtime value.
            _ => true,
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Static(d) => write!(f, "{d}"),
            Dim::Any => write!(f, "?"),
            Dim::Sym(SymId(id)) => write!(f, "?s{id}"),
        }
    }
}

impl From<u64> for Dim {
    fn from(d: u64) -> Dim {
        Dim::Static(d)
    }
}

impl From<usize> for Dim {
    fn from(d: usize) -> Dim {
        Dim::Static(d as u64)
    }
}

/// The type of a tensor value: a shape (possibly containing dynamic
/// dimensions) plus an element type, e.g. `Tensor[(1, 10, ?), float32]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TensorType {
    /// Per-dimension extents.
    pub dims: Vec<Dim>,
    /// Element type.
    pub dtype: DType,
}

impl TensorType {
    /// Fully static tensor type.
    pub fn new(dims: &[u64], dtype: DType) -> TensorType {
        TensorType {
            dims: dims.iter().map(|&d| Dim::Static(d)).collect(),
            dtype,
        }
    }

    /// Tensor type mixing static (`Some(d)`) and `Any` (`None`) dims.
    ///
    /// ```
    /// use nimble_ir::{types::TensorType, DType};
    /// let t = TensorType::with_any(&[Some(1), None], DType::F32);
    /// assert_eq!(t.to_string(), "Tensor[(1, ?), float32]");
    /// ```
    pub fn with_any(dims: &[Option<u64>], dtype: DType) -> TensorType {
        TensorType {
            dims: dims
                .iter()
                .map(|d| d.map(Dim::Static).unwrap_or(Dim::Any))
                .collect(),
            dtype,
        }
    }

    /// Tensor type from explicit [`Dim`]s.
    pub fn from_dims(dims: Vec<Dim>, dtype: DType) -> TensorType {
        TensorType { dims, dtype }
    }

    /// Scalar tensor type.
    pub fn scalar(dtype: DType) -> TensorType {
        TensorType {
            dims: Vec::new(),
            dtype,
        }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Whether every dimension is statically known.
    pub fn is_static(&self) -> bool {
        self.dims.iter().all(|d| d.is_static())
    }

    /// The concrete shape when fully static.
    pub fn static_shape(&self) -> Option<Vec<usize>> {
        self.dims
            .iter()
            .map(|d| d.as_static().map(|v| v as usize))
            .collect()
    }

    /// Number of dynamic dimensions.
    pub fn num_dynamic(&self) -> usize {
        self.dims.iter().filter(|d| d.is_dynamic()).count()
    }

    /// Static upper bound on the byte size, treating each dynamic dim as
    /// `bound`. Used by upper-bound allocation sizing.
    pub fn max_nbytes(&self, bound: u64) -> u64 {
        let volume: u64 = self
            .dims
            .iter()
            .map(|d| d.as_static().unwrap_or(bound))
            .product();
        volume * self.dtype.size_of() as u64
    }

    /// Sub-shaping: `self` is usable where `other` is expected (Section 4.1
    /// "our extension enables values with more specific shape information to
    /// be passed in contexts which require less specific shapes").
    pub fn subshape_of(&self, other: &TensorType) -> bool {
        self.dtype == other.dtype
            && self.dims.len() == other.dims.len()
            && self
                .dims
                .iter()
                .zip(other.dims.iter())
                .all(|(a, b)| a.refines(*b))
    }

    /// Whether a concrete runtime shape is an instance of this type — the
    /// deferred (gradual-typing) check from Section 4.1.
    pub fn admits(&self, shape: &[usize], dtype: DType) -> bool {
        self.dtype == dtype
            && self.dims.len() == shape.len()
            && self.dims.iter().zip(shape.iter()).all(|(d, &s)| match d {
                Dim::Static(v) => *v == s as u64,
                _ => true,
            })
    }
}

impl fmt::Display for TensorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "), {}]", self.dtype)
    }
}

/// A type in the IR.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// Tensor with (possibly dynamic) shape.
    Tensor(TensorType),
    /// Fixed-arity product of types.
    Tuple(Vec<Type>),
    /// Function type `(params…) -> ret`.
    Func(Vec<Type>, Box<Type>),
    /// Reference to a named algebraic data type (e.g. `Tree`, `List`).
    Adt(String),
    /// Placeholder for a type yet to be inferred.
    Unknown,
}

impl Type {
    /// Shorthand for a tensor type.
    pub fn tensor(tt: TensorType) -> Type {
        Type::Tensor(tt)
    }

    /// View as a tensor type.
    ///
    /// # Errors
    /// Fails when the type is not a tensor.
    pub fn as_tensor(&self) -> crate::Result<&TensorType> {
        match self {
            Type::Tensor(t) => Ok(t),
            other => Err(IrError(format!("expected tensor type, got {other}"))),
        }
    }

    /// View as a tuple of types.
    ///
    /// # Errors
    /// Fails when the type is not a tuple.
    pub fn as_tuple(&self) -> crate::Result<&[Type]> {
        match self {
            Type::Tuple(ts) => Ok(ts),
            other => Err(IrError(format!("expected tuple type, got {other}"))),
        }
    }

    /// Sub-typing across compound types, extending
    /// [`TensorType::subshape_of`] structurally.
    pub fn subtype_of(&self, other: &Type) -> bool {
        match (self, other) {
            (Type::Tensor(a), Type::Tensor(b)) => a.subshape_of(b),
            (Type::Tuple(a), Type::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.subtype_of(y))
            }
            (Type::Func(pa, ra), Type::Func(pb, rb)) => {
                // Contravariant params, covariant return.
                pa.len() == pb.len()
                    && pb.iter().zip(pa.iter()).all(|(x, y)| x.subtype_of(y))
                    && ra.subtype_of(rb)
            }
            (Type::Adt(a), Type::Adt(b)) => a == b,
            (_, Type::Unknown) => true,
            _ => false,
        }
    }
}

impl From<TensorType> for Type {
    fn from(t: TensorType) -> Type {
        Type::Tensor(t)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Tensor(t) => write!(f, "{t}"),
            Type::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Type::Func(ps, r) => {
                write!(f, "fn(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ") -> {r}")
            }
            Type::Adt(name) => write!(f, "{name}"),
            Type::Unknown => write!(f, "?ty"),
        }
    }
}

/// Unify two dims, preferring the more specific one.
///
/// # Errors
/// Fails when both are static and disagree.
pub fn unify_dims(a: Dim, b: Dim) -> crate::Result<Dim> {
    match (a, b) {
        (Dim::Static(x), Dim::Static(y)) if x == y => Ok(a),
        (Dim::Static(x), Dim::Static(y)) => Err(IrError(format!("cannot unify dims {x} and {y}"))),
        (Dim::Static(_), _) => Ok(a),
        (_, Dim::Static(_)) => Ok(b),
        (Dim::Sym(_), _) => Ok(a),
        (_, Dim::Sym(_)) => Ok(b),
        (Dim::Any, Dim::Any) => Ok(Dim::Any),
    }
}

/// Unify two types structurally.
///
/// # Errors
/// Fails on shape/dtype/arity conflicts.
pub fn unify(a: &Type, b: &Type) -> crate::Result<Type> {
    match (a, b) {
        (Type::Unknown, t) | (t, Type::Unknown) => Ok(t.clone()),
        (Type::Tensor(x), Type::Tensor(y)) => {
            if x.dtype != y.dtype {
                return Err(IrError(format!(
                    "cannot unify dtypes {} and {}",
                    x.dtype, y.dtype
                )));
            }
            if x.rank() != y.rank() {
                return Err(IrError(format!(
                    "cannot unify ranks {} and {}",
                    x.rank(),
                    y.rank()
                )));
            }
            let dims = x
                .dims
                .iter()
                .zip(y.dims.iter())
                .map(|(&p, &q)| unify_dims(p, q))
                .collect::<crate::Result<Vec<_>>>()?;
            Ok(Type::Tensor(TensorType::from_dims(dims, x.dtype)))
        }
        (Type::Tuple(x), Type::Tuple(y)) if x.len() == y.len() => {
            let ts = x
                .iter()
                .zip(y.iter())
                .map(|(p, q)| unify(p, q))
                .collect::<crate::Result<Vec<_>>>()?;
            Ok(Type::Tuple(ts))
        }
        (Type::Func(pa, ra), Type::Func(pb, rb)) if pa.len() == pb.len() => {
            let ps = pa
                .iter()
                .zip(pb.iter())
                .map(|(p, q)| unify(p, q))
                .collect::<crate::Result<Vec<_>>>()?;
            Ok(Type::Func(ps, Box::new(unify(ra, rb)?)))
        }
        (Type::Adt(x), Type::Adt(y)) if x == y => Ok(a.clone()),
        _ => Err(IrError(format!("cannot unify {a} and {b}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn display() {
        let t = TensorType::with_any(&[Some(1), Some(10), None], DType::F32);
        assert_eq!(t.to_string(), "Tensor[(1, 10, ?), float32]");
        assert_eq!(Type::Tuple(vec![]).to_string(), "()");
        assert_eq!(Type::Adt("Tree".into()).to_string(), "Tree");
    }

    #[test]
    fn static_queries() {
        let s = TensorType::new(&[2, 3], DType::F32);
        assert!(s.is_static());
        assert_eq!(s.static_shape(), Some(vec![2, 3]));
        let d = TensorType::with_any(&[None, Some(3)], DType::F32);
        assert!(!d.is_static());
        assert_eq!(d.static_shape(), None);
        assert_eq!(d.num_dynamic(), 1);
        assert_eq!(d.max_nbytes(64), 64 * 3 * 4);
    }

    #[test]
    fn refinement() {
        assert!(Dim::Static(5).refines(Dim::Any));
        assert!(Dim::Sym(SymId(0)).refines(Dim::Any));
        assert!(Dim::Static(5).refines(Dim::Sym(SymId(0))));
        assert!(!Dim::Any.refines(Dim::Static(5)));
        assert!(!Dim::Any.refines(Dim::Sym(SymId(0))));
        assert!(Dim::Static(5).refines(Dim::Static(5)));
        assert!(!Dim::Static(5).refines(Dim::Static(6)));
    }

    #[test]
    fn subshaping() {
        let specific = TensorType::new(&[5, 3], DType::F32);
        let general = TensorType::with_any(&[None, Some(3)], DType::F32);
        assert!(specific.subshape_of(&general));
        assert!(!general.subshape_of(&specific));
        // Rank and dtype must match.
        assert!(!specific.subshape_of(&TensorType::with_any(&[None], DType::F32)));
        assert!(!specific.subshape_of(&TensorType::with_any(&[None, Some(3)], DType::I64)));
    }

    #[test]
    fn admits_runtime_shapes() {
        let t = TensorType::with_any(&[None, Some(3)], DType::F32);
        assert!(t.admits(&[99, 3], DType::F32));
        assert!(!t.admits(&[99, 4], DType::F32));
        assert!(!t.admits(&[99, 3], DType::I64));
        assert!(!t.admits(&[99], DType::F32));
    }

    #[test]
    fn unify_prefers_specific() {
        let a = Type::Tensor(TensorType::with_any(&[None, Some(3)], DType::F32));
        let b = Type::Tensor(TensorType::new(&[5, 3], DType::F32));
        let u = unify(&a, &b).unwrap();
        assert_eq!(u, b);
        // Sym is preferred over Any.
        let s = Dim::Sym(SymId::fresh());
        assert_eq!(unify_dims(Dim::Any, s).unwrap(), s);
        assert_eq!(unify_dims(s, Dim::Any).unwrap(), s);
        assert!(unify_dims(Dim::Static(2), Dim::Static(3)).is_err());
    }

    #[test]
    fn unify_errors() {
        let a = Type::Tensor(TensorType::new(&[2], DType::F32));
        let b = Type::Tensor(TensorType::new(&[3], DType::F32));
        assert!(unify(&a, &b).is_err());
        let c = Type::Tensor(TensorType::new(&[2], DType::I64));
        assert!(unify(&a, &c).is_err());
        assert!(unify(&a, &Type::Tuple(vec![])).is_err());
        assert_eq!(unify(&a, &Type::Unknown).unwrap(), a);
    }

    #[test]
    fn func_subtyping_variance() {
        let any_in = Type::Tensor(TensorType::with_any(&[None], DType::F32));
        let static_in = Type::Tensor(TensorType::new(&[4], DType::F32));
        // fn(Any)->static <: fn(static)->Any  (contravariant params,
        // covariant return)
        let f1 = Type::Func(vec![any_in.clone()], Box::new(static_in.clone()));
        let f2 = Type::Func(vec![static_in.clone()], Box::new(any_in.clone()));
        assert!(f1.subtype_of(&f2));
        assert!(!f2.subtype_of(&f1));
    }

    #[test]
    fn sym_ids_are_unique() {
        let a = SymId::fresh();
        let b = SymId::fresh();
        assert_ne!(a, b);
    }

    fn arb_dim() -> impl Strategy<Value = Dim> {
        prop_oneof![
            (1u64..10).prop_map(Dim::Static),
            Just(Dim::Any),
            (0u32..4).prop_map(|i| Dim::Sym(SymId(i))),
        ]
    }

    proptest! {
        #[test]
        fn refines_is_reflexive(d in arb_dim()) {
            prop_assert!(d.refines(d));
        }

        #[test]
        fn unify_dims_commutative_result_compatible(a in arb_dim(), b in arb_dim()) {
            let ab = unify_dims(a, b);
            let ba = unify_dims(b, a);
            prop_assert_eq!(ab.is_ok(), ba.is_ok());
            if let (Ok(x), Ok(y)) = (ab, ba) {
                // Both results must be refinements of Any and compatible
                // with each other.
                prop_assert!(x.compatible(y));
            }
        }

        #[test]
        fn unified_dim_refines_any(a in arb_dim(), b in arb_dim()) {
            if let Ok(u) = unify_dims(a, b) {
                prop_assert!(u.refines(Dim::Any));
                // Unifying with a static input must preserve it.
                if let Dim::Static(x) = a {
                    prop_assert_eq!(u, Dim::Static(x));
                }
            }
        }
    }
}
