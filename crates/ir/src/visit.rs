//! Expression traversal utilities: post-order visiting, structural
//! rewriting, and free-variable analysis.

use crate::expr::{Clause, Expr, ExprKind, Function, Var};
use std::collections::{HashMap, HashSet};

/// Visit every sub-expression exactly once (DAG-aware, post-order).
pub fn visit_post_order(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    let mut seen: HashSet<usize> = HashSet::new();
    visit_inner(expr, f, &mut seen);
}

fn visit_inner(expr: &Expr, f: &mut impl FnMut(&Expr), seen: &mut HashSet<usize>) {
    if !seen.insert(expr.ref_id()) {
        return;
    }
    // Let chains can be thousands of bindings long (planned model bodies);
    // walk them iteratively so recursion depth stays bounded by expression
    // nesting, not program length.
    if let ExprKind::Let { .. } = expr.kind() {
        let mut lets: Vec<Expr> = Vec::new();
        let mut cur = expr.clone();
        loop {
            match cur.kind() {
                ExprKind::Let { value, body, .. } => {
                    visit_inner(value, f, seen);
                    lets.push(cur.clone());
                    let next = body.clone();
                    if seen.insert(next.ref_id()) {
                        cur = next;
                    } else {
                        // Shared suffix already visited.
                        for l in lets.iter().rev() {
                            f(l);
                        }
                        return;
                    }
                }
                _ => {
                    // `cur` was marked seen above; visit its children and
                    // itself without re-checking.
                    visit_children(&cur, f, seen);
                    f(&cur);
                    break;
                }
            }
        }
        for l in lets.iter().rev() {
            f(l);
        }
        return;
    }
    visit_children(expr, f, seen);
    f(expr);
}

fn visit_children(expr: &Expr, f: &mut impl FnMut(&Expr), seen: &mut HashSet<usize>) {
    match expr.kind() {
        ExprKind::Var(_)
        | ExprKind::Constant(_)
        | ExprKind::Global(_)
        | ExprKind::Op(_)
        | ExprKind::Constructor(_) => {}
        ExprKind::Tuple(fields) => {
            for e in fields {
                visit_inner(e, f, seen);
            }
        }
        ExprKind::TupleGet(t, _) => visit_inner(t, f, seen),
        ExprKind::Call { callee, args, .. } => {
            visit_inner(callee, f, seen);
            for a in args {
                visit_inner(a, f, seen);
            }
        }
        ExprKind::Let { value, body, .. } => {
            visit_inner(value, f, seen);
            visit_inner(body, f, seen);
        }
        ExprKind::If { cond, then, els } => {
            visit_inner(cond, f, seen);
            visit_inner(then, f, seen);
            visit_inner(els, f, seen);
        }
        ExprKind::Func(func) => visit_inner(&func.body, f, seen),
        ExprKind::Match { value, clauses } => {
            visit_inner(value, f, seen);
            for c in clauses {
                visit_inner(&c.body, f, seen);
            }
        }
    }
}

/// Node-replacement callback used by [`Rewriter`].
type RewriteFn<'a> = Box<dyn FnMut(&Expr) -> Option<Expr> + 'a>;

/// Rewrite an expression bottom-up. `f` receives each node *after* its
/// children have been rewritten and may return a replacement. Shared
/// sub-DAGs are rewritten once and the result reused.
pub struct Rewriter<'a> {
    memo: HashMap<usize, Expr>,
    f: RewriteFn<'a>,
}

impl<'a> Rewriter<'a> {
    /// Create a rewriter from a node-replacement callback.
    pub fn new(f: impl FnMut(&Expr) -> Option<Expr> + 'a) -> Self {
        Rewriter {
            memo: HashMap::new(),
            f: Box::new(f),
        }
    }

    /// Rewrite `expr` bottom-up.
    pub fn rewrite(&mut self, expr: &Expr) -> Expr {
        if let Some(hit) = self.memo.get(&expr.ref_id()) {
            return hit.clone();
        }
        // Iterative handling of long let chains (see visit_post_order).
        if matches!(expr.kind(), ExprKind::Let { .. }) {
            // (original let node, rewritten value)
            let mut chain: Vec<(Expr, Expr)> = Vec::new();
            let mut cur = expr.clone();
            while let ExprKind::Let { value, body, .. } = cur.kind() {
                let new_value = self.rewrite(value);
                chain.push((cur.clone(), new_value));
                let next = body.clone();
                if self.memo.contains_key(&next.ref_id()) {
                    cur = self.memo[&next.ref_id()].clone();
                    break;
                }
                if !matches!(next.kind(), ExprKind::Let { .. }) {
                    cur = self.rewrite(&next);
                    break;
                }
                cur = next;
            }
            let mut out = cur;
            for (orig, new_value) in chain.into_iter().rev() {
                let ExprKind::Let { var, value, body } = orig.kind() else {
                    unreachable!("chain holds only let nodes");
                };
                let unchanged =
                    new_value.ref_id() == value.ref_id() && out.ref_id() == body.ref_id();
                let rebuilt = if unchanged {
                    orig.clone()
                } else {
                    Expr::let_(var.clone(), new_value, out)
                };
                let result = (self.f)(&rebuilt).unwrap_or(rebuilt);
                self.memo.insert(orig.ref_id(), result.clone());
                out = result;
            }
            return out;
        }
        let rebuilt = self.rebuild_children(expr);
        let result = (self.f)(&rebuilt).unwrap_or(rebuilt);
        self.memo.insert(expr.ref_id(), result.clone());
        result
    }

    fn rebuild_children(&mut self, expr: &Expr) -> Expr {
        match expr.kind() {
            ExprKind::Var(_)
            | ExprKind::Constant(_)
            | ExprKind::Global(_)
            | ExprKind::Op(_)
            | ExprKind::Constructor(_) => expr.clone(),
            ExprKind::Tuple(fields) => {
                let new: Vec<Expr> = fields.iter().map(|e| self.rewrite(e)).collect();
                if new
                    .iter()
                    .zip(fields)
                    .all(|(a, b)| a.ref_id() == b.ref_id())
                {
                    expr.clone()
                } else {
                    Expr::tuple(new)
                }
            }
            ExprKind::TupleGet(t, i) => {
                let nt = self.rewrite(t);
                if nt.ref_id() == t.ref_id() {
                    expr.clone()
                } else {
                    Expr::tuple_get(nt, *i)
                }
            }
            ExprKind::Call {
                callee,
                args,
                attrs,
            } => {
                let nc = self.rewrite(callee);
                let na: Vec<Expr> = args.iter().map(|a| self.rewrite(a)).collect();
                if nc.ref_id() == callee.ref_id()
                    && na.iter().zip(args).all(|(a, b)| a.ref_id() == b.ref_id())
                {
                    expr.clone()
                } else {
                    Expr::new(ExprKind::Call {
                        callee: nc,
                        args: na,
                        attrs: attrs.clone(),
                    })
                }
            }
            ExprKind::Let { var, value, body } => {
                let nv = self.rewrite(value);
                let nb = self.rewrite(body);
                if nv.ref_id() == value.ref_id() && nb.ref_id() == body.ref_id() {
                    expr.clone()
                } else {
                    Expr::let_(var.clone(), nv, nb)
                }
            }
            ExprKind::If { cond, then, els } => {
                let nc = self.rewrite(cond);
                let nt = self.rewrite(then);
                let ne = self.rewrite(els);
                if nc.ref_id() == cond.ref_id()
                    && nt.ref_id() == then.ref_id()
                    && ne.ref_id() == els.ref_id()
                {
                    expr.clone()
                } else {
                    Expr::if_(nc, nt, ne)
                }
            }
            ExprKind::Func(func) => {
                let nb = self.rewrite(&func.body);
                if nb.ref_id() == func.body.ref_id() {
                    expr.clone()
                } else {
                    Expr::func(Function::new(
                        func.params.clone(),
                        nb,
                        func.ret_type.clone(),
                    ))
                }
            }
            ExprKind::Match { value, clauses } => {
                let nv = self.rewrite(value);
                let ncs: Vec<Clause> = clauses
                    .iter()
                    .map(|c| Clause {
                        pattern: c.pattern.clone(),
                        body: self.rewrite(&c.body),
                    })
                    .collect();
                if nv.ref_id() == value.ref_id()
                    && ncs
                        .iter()
                        .zip(clauses)
                        .all(|(a, b)| a.body.ref_id() == b.body.ref_id())
                {
                    expr.clone()
                } else {
                    Expr::match_(nv, ncs)
                }
            }
        }
    }
}

/// Free variables of an expression (variables used but not bound within).
pub fn free_vars(expr: &Expr) -> Vec<Var> {
    let mut bound: HashSet<Var> = HashSet::new();
    let mut free: Vec<Var> = Vec::new();
    let mut free_set: HashSet<Var> = HashSet::new();
    collect_free(expr, &mut bound, &mut free, &mut free_set);
    free
}

fn collect_free(
    expr: &Expr,
    bound: &mut HashSet<Var>,
    free: &mut Vec<Var>,
    free_set: &mut HashSet<Var>,
) {
    match expr.kind() {
        ExprKind::Var(v) => {
            if !bound.contains(v) && free_set.insert(v.clone()) {
                free.push(v.clone());
            }
        }
        ExprKind::Constant(_)
        | ExprKind::Global(_)
        | ExprKind::Op(_)
        | ExprKind::Constructor(_) => {}
        ExprKind::Tuple(fields) => {
            for e in fields {
                collect_free(e, bound, free, free_set);
            }
        }
        ExprKind::TupleGet(t, _) => collect_free(t, bound, free, free_set),
        ExprKind::Call { callee, args, .. } => {
            collect_free(callee, bound, free, free_set);
            for a in args {
                collect_free(a, bound, free, free_set);
            }
        }
        ExprKind::Let { .. } => {
            // Iterative over long chains.
            let mut newly_bound: Vec<Var> = Vec::new();
            let mut cur = expr.clone();
            while let ExprKind::Let { var, value, body } = cur.kind() {
                collect_free(value, bound, free, free_set);
                if bound.insert(var.clone()) {
                    newly_bound.push(var.clone());
                }
                cur = body.clone();
            }
            collect_free(&cur, bound, free, free_set);
            for v in newly_bound {
                bound.remove(&v);
            }
        }
        ExprKind::If { cond, then, els } => {
            collect_free(cond, bound, free, free_set);
            collect_free(then, bound, free, free_set);
            collect_free(els, bound, free, free_set);
        }
        ExprKind::Func(func) => {
            let newly: Vec<Var> = func
                .params
                .iter()
                .filter(|p| bound.insert((*p).clone()))
                .cloned()
                .collect();
            collect_free(&func.body, bound, free, free_set);
            for p in newly {
                bound.remove(&p);
            }
        }
        ExprKind::Match { value, clauses } => {
            collect_free(value, bound, free, free_set);
            for c in clauses {
                let newly: Vec<Var> = c
                    .pattern
                    .bound_vars()
                    .into_iter()
                    .filter(|v| bound.insert(v.clone()))
                    .collect();
                collect_free(&c.body, bound, free, free_set);
                for v in newly {
                    bound.remove(&v);
                }
            }
        }
    }
}

/// Count the number of distinct expression nodes (DAG nodes, not tree
/// nodes).
pub fn count_nodes(expr: &Expr) -> usize {
    let mut n = 0;
    visit_post_order(expr, &mut |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Attrs;
    use crate::types::{TensorType, Type};
    use nimble_tensor::DType;

    fn fty() -> Type {
        Type::Tensor(TensorType::scalar(DType::F32))
    }

    #[test]
    fn post_order_visits_once_per_dag_node() {
        let shared = Expr::const_f32(1.0);
        let sum = Expr::call_op("add", vec![shared.clone(), shared.clone()], Attrs::new());
        let mut order = Vec::new();
        visit_post_order(&sum, &mut |e| order.push(e.ref_id()));
        // shared constant visited once, plus op callee, plus the call: 3.
        assert_eq!(order.len(), 3);
        assert_eq!(*order.last().unwrap(), sum.ref_id());
    }

    #[test]
    fn free_vars_respects_binders() {
        let x = Var::fresh("x", fty());
        let y = Var::fresh("y", fty());
        // let x = y; x + y  → free = {y}
        let body = Expr::call_op("add", vec![x.to_expr(), y.to_expr()], Attrs::new());
        let e = Expr::let_(x.clone(), y.to_expr(), body);
        assert_eq!(free_vars(&e), vec![y.clone()]);
        // A lambda binds its params.
        let lam = Expr::func(Function::new(
            vec![x.clone()],
            Expr::call_op("add", vec![x.to_expr(), y.to_expr()], Attrs::new()),
            fty(),
        ));
        assert_eq!(free_vars(&lam), vec![y]);
    }

    #[test]
    fn free_vars_match_patterns_bind() {
        use crate::expr::{Clause, Pattern};
        let scrutinee = Var::fresh("t", Type::Adt("Tree".into()));
        let l = Var::fresh("l", fty());
        let outer = Var::fresh("o", fty());
        let m = Expr::match_(
            scrutinee.to_expr(),
            vec![Clause {
                pattern: Pattern::Constructor {
                    name: "Leaf".into(),
                    fields: vec![Pattern::Bind(l.clone())],
                },
                body: Expr::call_op("add", vec![l.to_expr(), outer.to_expr()], Attrs::new()),
            }],
        );
        let fv = free_vars(&m);
        assert!(fv.contains(&scrutinee));
        assert!(fv.contains(&outer));
        assert!(!fv.contains(&l));
    }

    #[test]
    fn rewriter_replaces_and_memoizes() {
        let shared = Expr::const_f32(2.0);
        let e = Expr::call_op("add", vec![shared.clone(), shared.clone()], Attrs::new());
        let mut replaced = 0;
        let mut rw = Rewriter::new(|node| {
            if matches!(node.kind(), ExprKind::Constant(_)) {
                replaced += 1;
                Some(Expr::const_f32(9.0))
            } else {
                None
            }
        });
        let out = rw.rewrite(&e);
        drop(rw);
        // The shared node was rewritten once.
        assert_eq!(replaced, 1);
        let (_, args, _) = out.as_op_call().unwrap();
        // Both arguments point at the same replacement.
        assert_eq!(args[0].ref_id(), args[1].ref_id());
        match args[0].kind() {
            ExprKind::Constant(t) => assert_eq!(t.scalar_value_f32().unwrap(), 9.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rewriter_identity_preserves_nodes() {
        let x = Var::fresh("x", fty());
        let e = Expr::let_(
            x.clone(),
            Expr::const_f32(1.0),
            Expr::call_op("relu", vec![x.to_expr()], Attrs::new()),
        );
        let mut rw = Rewriter::new(|_| None);
        let out = rw.rewrite(&e);
        assert_eq!(out.ref_id(), e.ref_id());
    }

    #[test]
    fn node_count() {
        let x = Var::fresh("x", fty());
        let e = Expr::call_op("relu", vec![x.to_expr()], Attrs::new());
        // var + op + call
        assert_eq!(count_nodes(&e), 3);
    }
}
