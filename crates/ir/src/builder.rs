//! Ergonomic builders for constructing IR functions.
//!
//! Model definitions in `nimble-models` are hundreds of operator calls; the
//! [`FunctionBuilder`] keeps them readable by handling let-insertion and
//! variable management.

use crate::attrs::Attrs;
use crate::expr::{Expr, Function, Var};
use crate::types::{TensorType, Type};
use nimble_tensor::Tensor;

/// Builder for a single IR function in A-normal-ish style: every
/// intermediate call is let-bound to a fresh variable.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    params: Vec<Var>,
    bindings: Vec<(Var, Expr)>,
    counter: u32,
}

impl FunctionBuilder {
    /// Start building a function with the given (informational) name.
    pub fn new(name: &str) -> FunctionBuilder {
        FunctionBuilder {
            name: name.to_string(),
            params: Vec::new(),
            bindings: Vec::new(),
            counter: 0,
        }
    }

    /// The function name this builder was created with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a tensor-typed parameter and return it as an expression.
    pub fn param(&mut self, name: &str, ty: TensorType) -> Expr {
        self.param_typed(name, Type::Tensor(ty))
    }

    /// Add a parameter of any type.
    pub fn param_typed(&mut self, name: &str, ty: Type) -> Expr {
        let v = Var::fresh(name, ty);
        self.params.push(v.clone());
        v.to_expr()
    }

    /// Bind an arbitrary expression to a fresh variable and return the
    /// variable reference.
    pub fn bind(&mut self, name: &str, value: Expr) -> Expr {
        let v = Var::fresh(name, Type::Unknown);
        self.bindings.push((v.clone(), value));
        self.counter += 1;
        v.to_expr()
    }

    /// Call a primitive operator, let-bind the result.
    pub fn call(&mut self, op: &str, args: Vec<Expr>, attrs: Attrs) -> Expr {
        let value = Expr::call_op(op, args, attrs);
        self.bind(&format!("t{}", self.counter), value)
    }

    /// Embed a constant tensor.
    pub fn constant(&mut self, t: Tensor) -> Expr {
        Expr::constant(t)
    }

    /// Finish the function with `result` as its body, nesting all recorded
    /// let-bindings around it.
    pub fn finish(self, result: Expr) -> Function {
        self.finish_with_ret(result, Type::Unknown)
    }

    /// Finish with an explicit return type annotation.
    pub fn finish_with_ret(self, result: Expr, ret_type: Type) -> Function {
        let mut body = result;
        for (var, value) in self.bindings.into_iter().rev() {
            body = Expr::let_(var, value, body);
        }
        Function::new(self.params, body, ret_type)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ExprKind;
    use crate::visit::count_nodes;
    use nimble_tensor::DType;

    #[test]
    fn builds_nested_lets_in_order() {
        let mut fb = FunctionBuilder::new("f");
        let x = fb.param("x", TensorType::with_any(&[None], DType::F32));
        let a = fb.call("relu", vec![x.clone()], Attrs::new());
        let b = fb.call("tanh", vec![a.clone()], Attrs::new());
        let f = fb.finish(b.clone());
        assert_eq!(f.params.len(), 1);
        // Body is let a = relu(x) in let b = tanh(a) in b
        match f.body.kind() {
            ExprKind::Let { value, body, .. } => {
                assert_eq!(value.as_op_call().unwrap().0, "relu");
                match body.kind() {
                    ExprKind::Let { value, body, .. } => {
                        assert_eq!(value.as_op_call().unwrap().0, "tanh");
                        assert!(matches!(body.kind(), ExprKind::Var(_)));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(count_nodes(&f.body) >= 5);
    }

    #[test]
    fn constants_and_name() {
        let mut fb = FunctionBuilder::new("g");
        assert_eq!(fb.name(), "g");
        let c = fb.constant(Tensor::scalar_f32(3.0));
        let f = fb.finish(c);
        assert!(matches!(f.body.kind(), ExprKind::Constant(_)));
        assert!(f.params.is_empty());
    }
}
