//! # nimble-ir
//!
//! The typed functional intermediate representation at the heart of the
//! Nimble reproduction — a Relay-style IR extended with the paper's dynamic
//! features:
//!
//! * **`Any` dimensions** (Section 4.1): tensor types may leave dimensions
//!   statically unknown, e.g. `Tensor[(1, 10, Any), float32]`.
//! * **Symbolic dimensions**: the sub-shaping analysis assigns shared
//!   symbolic ids to `Any` dimensions proven equal, enabling
//!   shape-specialized code generation downstream.
//! * **Type relations** (Section 4.1): per-operator bidirectional typing
//!   rules that propagate `Any` (e.g. `broadcast_rel(Any, d) → d`).
//! * **Shape functions** (Section 4.2) in three modes — data independent,
//!   data dependent, and upper bound — compiled alongside the model and
//!   executed at run time to size allocations.
//! * **Explicit-allocation dialect** (Section 4.3): `alloc_storage`,
//!   `alloc_tensor`, `invoke_mut`, `kill`, `shape_of`, and `device_copy`
//!   appear as ordinary calls so that memory planning and device placement
//!   are plain IR-to-IR passes.
//! * **Algebraic data types** and `match` for dynamic data structures
//!   (Tree-LSTM's trees, recursive lists).
//!
//! ```
//! use nimble_ir::{builder::FunctionBuilder, types::TensorType, DType};
//!
//! // fn (x: Tensor[(Any, 4), f32]) { relu(x) }
//! let mut fb = FunctionBuilder::new("main");
//! let x = fb.param("x", TensorType::with_any(&[None, Some(4)], DType::F32));
//! let y = fb.call("relu", vec![x], Default::default());
//! let func = fb.finish(y);
//! assert_eq!(func.params.len(), 1);
//! ```

pub mod adt;
pub mod attrs;
pub mod builder;
pub mod expr;
pub mod module;
pub mod op;
pub mod printer;
pub mod types;
pub mod visit;

pub use attrs::{AttrValue, Attrs};
pub use expr::{Expr, ExprKind, Function, GlobalVar, Pattern, Var};
pub use module::Module;
pub use nimble_tensor::{DType, Tensor};
pub use types::{Dim, TensorType, Type};

/// Errors produced while constructing or analyzing IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrError(pub String);

impl IrError {
    /// Construct from anything printable.
    pub fn msg(m: impl Into<String>) -> Self {
        IrError(m.into())
    }
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ir error: {}", self.0)
    }
}

impl std::error::Error for IrError {}

impl From<nimble_tensor::TensorError> for IrError {
    fn from(e: nimble_tensor::TensorError) -> Self {
        IrError(e.to_string())
    }
}

/// Result alias for IR operations.
pub type Result<T> = std::result::Result<T, IrError>;
