//! Type relations: bidirectional typing rules for every operator,
//! generalized to handle `Any` dimensions (paper Section 4.1).
//!
//! Each relation maps input types (plus static attributes) to the output
//! type. When dynamic dimensions make a constraint unverifiable the
//! relation *relaxes* it instead of rejecting — the gradual-typing approach
//! of the paper — and the corresponding check is re-run at run time by the
//! shape function ([`super::OpDef::infer_shapes`] with concrete shapes).

use crate::attrs::Attrs;
use crate::types::{Dim, TensorType, Type};
use crate::{IrError, Result};
use nimble_tensor::DType;

fn tensor_at<'a>(types: &'a [Type], i: usize, op: &str) -> Result<&'a TensorType> {
    types
        .get(i)
        .ok_or_else(|| IrError(format!("{op}: missing argument {i}")))?
        .as_tensor()
}

fn expect_args(types: &[Type], n: usize, op: &str) -> Result<()> {
    if types.len() != n {
        return Err(IrError(format!(
            "{op}: expected {n} arguments, got {}",
            types.len()
        )));
    }
    Ok(())
}

/// The paper's broadcast rules for one dimension pair:
///
/// ```text
/// broadcast_rel(Any, 1)   → Any
/// broadcast_rel(Any, d)   → d        (d > 1)
/// broadcast_rel(Any, Any) → Any
/// ```
///
/// plus the standard NumPy rules for static pairs, and symbolic-dim
/// preservation when both sides carry the same [`Dim::Sym`].
pub fn broadcast_dim(a: Dim, b: Dim) -> Result<Dim> {
    match (a, b) {
        (Dim::Static(x), Dim::Static(y)) => {
            if x == y {
                Ok(Dim::Static(x))
            } else if x == 1 {
                Ok(Dim::Static(y))
            } else if y == 1 {
                Ok(Dim::Static(x))
            } else {
                Err(IrError(format!("cannot broadcast dims {x} and {y}")))
            }
        }
        // Any vs static d: if d > 1 the result must be d (or a runtime
        // error); if d == 1 the result is whatever Any turns out to be.
        (Dim::Static(d), _) | (_, Dim::Static(d)) => {
            if d > 1 {
                Ok(Dim::Static(d))
            } else {
                Ok(Dim::Any)
            }
        }
        (Dim::Sym(x), Dim::Sym(y)) if x == y => Ok(Dim::Sym(x)),
        _ => Ok(Dim::Any),
    }
}

fn broadcast_dims(a: &[Dim], b: &[Dim], op: &str) -> Result<Vec<Dim>> {
    let rank = a.len().max(b.len());
    let mut out = vec![Dim::Any; rank];
    for i in 0..rank {
        let da = if i < a.len() {
            a[a.len() - 1 - i]
        } else {
            Dim::Static(1)
        };
        let db = if i < b.len() {
            b[b.len() - 1 - i]
        } else {
            Dim::Static(1)
        };
        out[rank - 1 - i] = broadcast_dim(da, db).map_err(|e| IrError(format!("{op}: {}", e.0)))?;
    }
    Ok(out)
}

/// Broadcasting binary op preserving the input dtype.
pub fn broadcast(types: &[Type], _attrs: &Attrs) -> Result<Type> {
    expect_args(types, 2, "broadcast op")?;
    let a = tensor_at(types, 0, "broadcast op")?;
    let b = tensor_at(types, 1, "broadcast op")?;
    if a.dtype != b.dtype {
        return Err(IrError(format!(
            "broadcast op: dtype mismatch {} vs {}",
            a.dtype, b.dtype
        )));
    }
    Ok(Type::Tensor(TensorType::from_dims(
        broadcast_dims(&a.dims, &b.dims, "broadcast op")?,
        a.dtype,
    )))
}

/// Broadcasting comparison producing bool.
pub fn broadcast_bool(types: &[Type], attrs: &Attrs) -> Result<Type> {
    match broadcast(types, attrs)? {
        Type::Tensor(t) => Ok(Type::Tensor(TensorType::from_dims(t.dims, DType::Bool))),
        other => Ok(other),
    }
}

/// Unary op whose output type equals its (first) input type.
pub fn identity(types: &[Type], _attrs: &Attrs) -> Result<Type> {
    let a = tensor_at(types, 0, "unary op")?;
    Ok(Type::Tensor(a.clone()))
}

/// `where(cond, a, b)`: cond is bool, a/b broadcast.
pub fn where_rel(types: &[Type], _attrs: &Attrs) -> Result<Type> {
    expect_args(types, 3, "where")?;
    let c = tensor_at(types, 0, "where")?;
    if c.dtype != DType::Bool {
        return Err(IrError(format!(
            "where: condition must be bool, got {}",
            c.dtype
        )));
    }
    let a = tensor_at(types, 1, "where")?;
    let b = tensor_at(types, 2, "where")?;
    let ab = broadcast_dims(&a.dims, &b.dims, "where")?;
    let dims = broadcast_dims(&c.dims, &ab, "where")?;
    Ok(Type::Tensor(TensorType::from_dims(dims, a.dtype)))
}

/// `dense(x: […, k], w: [n, k](, bias: [n])) → […, n]`.
pub fn dense(types: &[Type], _attrs: &Attrs) -> Result<Type> {
    if types.len() != 2 && types.len() != 3 {
        return Err(IrError("dense: expected 2 or 3 arguments".into()));
    }
    let x = tensor_at(types, 0, "dense")?;
    let w = tensor_at(types, 1, "dense")?;
    if x.rank() == 0 || w.rank() != 2 {
        return Err(IrError("dense: x rank >= 1, w rank == 2 required".into()));
    }
    let k = x.dims[x.rank() - 1];
    if !k.compatible(w.dims[1]) {
        return Err(IrError(format!(
            "dense: contraction dims {} vs {} incompatible",
            k, w.dims[1]
        )));
    }
    if types.len() == 3 {
        let b = tensor_at(types, 2, "dense")?;
        if b.rank() != 1 || !b.dims[0].compatible(w.dims[0]) {
            return Err(IrError("dense: bias must be [units]".into()));
        }
    }
    let mut dims = x.dims[..x.rank() - 1].to_vec();
    dims.push(w.dims[0]);
    Ok(Type::Tensor(TensorType::from_dims(dims, x.dtype)))
}

/// `matmul([m,k], [k,n]) → [m,n]`.
pub fn matmul(types: &[Type], _attrs: &Attrs) -> Result<Type> {
    expect_args(types, 2, "matmul")?;
    let a = tensor_at(types, 0, "matmul")?;
    let b = tensor_at(types, 1, "matmul")?;
    if a.rank() != 2 || b.rank() != 2 {
        return Err(IrError("matmul: rank-2 inputs required".into()));
    }
    if !a.dims[1].compatible(b.dims[0]) {
        return Err(IrError("matmul: contraction dims incompatible".into()));
    }
    Ok(Type::Tensor(TensorType::from_dims(
        vec![a.dims[0], b.dims[1]],
        a.dtype,
    )))
}

/// `batch_matmul([b,m,k], [b,k,n]) → [b,m,n]`.
pub fn batch_matmul(types: &[Type], _attrs: &Attrs) -> Result<Type> {
    expect_args(types, 2, "batch_matmul")?;
    let a = tensor_at(types, 0, "batch_matmul")?;
    let b = tensor_at(types, 1, "batch_matmul")?;
    if a.rank() != 3 || b.rank() != 3 {
        return Err(IrError("batch_matmul: rank-3 inputs required".into()));
    }
    if !a.dims[0].compatible(b.dims[0]) || !a.dims[2].compatible(b.dims[1]) {
        return Err(IrError("batch_matmul: incompatible dims".into()));
    }
    let batch = crate::types::unify_dims(a.dims[0], b.dims[0]).unwrap_or(Dim::Any);
    Ok(Type::Tensor(TensorType::from_dims(
        vec![batch, a.dims[1], b.dims[2]],
        a.dtype,
    )))
}

/// Variadic `concat(axis=…)`: non-axis dims unify, axis dim sums (or `Any`
/// if any input is dynamic along the axis).
pub fn concat(types: &[Type], attrs: &Attrs) -> Result<Type> {
    if types.is_empty() {
        return Err(IrError("concat: at least one input required".into()));
    }
    let axis = attrs.int_or("axis", 0) as usize;
    let first = tensor_at(types, 0, "concat")?;
    if axis >= first.rank() {
        return Err(IrError(format!("concat: axis {axis} out of range")));
    }
    let mut dims = first.dims.clone();
    let mut axis_sum: Option<u64> = first.dims[axis].as_static();
    for (i, t) in types.iter().enumerate().skip(1) {
        let t = t.as_tensor()?;
        if t.rank() != first.rank() || t.dtype != first.dtype {
            return Err(IrError("concat: rank/dtype mismatch".into()));
        }
        for (d, dim) in dims.iter_mut().enumerate() {
            if d == axis {
                axis_sum = match (axis_sum, t.dims[d].as_static()) {
                    (Some(a), Some(b)) => Some(a + b),
                    _ => None,
                };
            } else {
                *dim = crate::types::unify_dims(*dim, t.dims[d])
                    .map_err(|e| IrError(format!("concat: input {i} dim {d}: {}", e.0)))?;
            }
        }
    }
    dims[axis] = axis_sum.map(Dim::Static).unwrap_or(Dim::Any);
    Ok(Type::Tensor(TensorType::from_dims(dims, first.dtype)))
}

/// `split(parts=…, axis=…)` → tuple of equal slices.
pub fn split(types: &[Type], attrs: &Attrs) -> Result<Type> {
    expect_args(types, 1, "split")?;
    let a = tensor_at(types, 0, "split")?;
    let parts = attrs
        .int("parts")
        .ok_or_else(|| IrError("split: parts attr required".into()))? as u64;
    let axis = attrs.int_or("axis", 0) as usize;
    if parts == 0 || axis >= a.rank() {
        return Err(IrError("split: bad parts/axis".into()));
    }
    let piece = match a.dims[axis] {
        Dim::Static(d) => {
            if d % parts != 0 {
                return Err(IrError(format!("split: {d} not divisible by {parts}")));
            }
            Dim::Static(d / parts)
        }
        _ => Dim::Any,
    };
    let mut dims = a.dims.clone();
    dims[axis] = piece;
    let piece_ty = Type::Tensor(TensorType::from_dims(dims, a.dtype));
    Ok(Type::Tuple(vec![piece_ty; parts as usize]))
}

/// `slice(begin=…, end=…)` with static attribute bounds.
pub fn slice(types: &[Type], attrs: &Attrs) -> Result<Type> {
    expect_args(types, 1, "slice")?;
    let a = tensor_at(types, 0, "slice")?;
    let begin = attrs
        .int_vec("begin")
        .ok_or_else(|| IrError("slice: begin attr required".into()))?;
    let end = attrs
        .int_vec("end")
        .ok_or_else(|| IrError("slice: end attr required".into()))?;
    if begin.len() != a.rank() || end.len() != a.rank() {
        return Err(IrError("slice: begin/end rank mismatch".into()));
    }
    let mut dims = Vec::with_capacity(a.rank());
    for (d, (&b, &e)) in begin.iter().zip(end.iter()).enumerate() {
        if b < 0 || e < b {
            return Err(IrError("slice: invalid range".into()));
        }
        if let Dim::Static(extent) = a.dims[d] {
            if e as u64 > extent {
                return Err(IrError(format!("slice: end {e} > extent {extent}")));
            }
        }
        dims.push(Dim::Static((e - b) as u64));
    }
    Ok(Type::Tensor(TensorType::from_dims(dims, a.dtype)))
}

/// `transpose(perm=…)`.
pub fn transpose(types: &[Type], attrs: &Attrs) -> Result<Type> {
    expect_args(types, 1, "transpose")?;
    let a = tensor_at(types, 0, "transpose")?;
    let perm = attrs
        .int_vec("perm")
        .ok_or_else(|| IrError("transpose: perm attr required".into()))?;
    if perm.len() != a.rank() {
        return Err(IrError("transpose: perm rank mismatch".into()));
    }
    let mut seen = vec![false; a.rank()];
    let mut dims = Vec::with_capacity(a.rank());
    for &p in perm {
        let p = p as usize;
        if p >= a.rank() || seen[p] {
            return Err(IrError("transpose: invalid permutation".into()));
        }
        seen[p] = true;
        dims.push(a.dims[p]);
    }
    Ok(Type::Tensor(TensorType::from_dims(dims, a.dtype)))
}

/// `reshape(newshape=…)` where `-1` infers one dimension and `-2` copies
/// the corresponding input dimension (usable under dynamism).
pub fn reshape(types: &[Type], attrs: &Attrs) -> Result<Type> {
    expect_args(types, 1, "reshape")?;
    let a = tensor_at(types, 0, "reshape")?;
    let newshape = attrs
        .int_vec("newshape")
        .ok_or_else(|| IrError("reshape: newshape attr required".into()))?;
    let mut dims: Vec<Dim> = Vec::with_capacity(newshape.len());
    let mut infer_at: Option<usize> = None;
    for (i, &d) in newshape.iter().enumerate() {
        match d {
            -1 => {
                if infer_at.is_some() {
                    return Err(IrError("reshape: multiple -1 dims".into()));
                }
                infer_at = Some(i);
                dims.push(Dim::Any); // provisional
            }
            -2 => {
                let src = a
                    .dims
                    .get(i)
                    .ok_or_else(|| IrError("reshape: -2 has no matching input dim".into()))?;
                dims.push(*src);
            }
            d if d >= 0 => dims.push(Dim::Static(d as u64)),
            _ => return Err(IrError(format!("reshape: invalid dim {d}"))),
        }
    }
    if let Some(i) = infer_at {
        // Infer the -1 extent only when everything else is static.
        let known: Option<u64> = dims
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, d)| d.as_static())
            .product::<Option<u64>>();
        let total: Option<u64> = a
            .dims
            .iter()
            .map(|d| d.as_static())
            .product::<Option<u64>>();
        if let (Some(k), Some(t)) = (known, total) {
            if k == 0 || t % k != 0 {
                return Err(IrError("reshape: volume mismatch".into()));
            }
            dims[i] = Dim::Static(t / k);
        }
    } else {
        // Fully static sanity check when both sides are static.
        let out_total: Option<u64> = dims.iter().map(|d| d.as_static()).product::<Option<u64>>();
        let in_total: Option<u64> = a
            .dims
            .iter()
            .map(|d| d.as_static())
            .product::<Option<u64>>();
        if let (Some(o), Some(i)) = (out_total, in_total) {
            if o != i {
                return Err(IrError(format!("reshape: volume {i} -> {o} mismatch")));
            }
        }
    }
    Ok(Type::Tensor(TensorType::from_dims(dims, a.dtype)))
}

/// `take(table, indices)` → `indices.shape ++ table.shape[1..]`.
pub fn take(types: &[Type], _attrs: &Attrs) -> Result<Type> {
    expect_args(types, 2, "take")?;
    let table = tensor_at(types, 0, "take")?;
    let idx = tensor_at(types, 1, "take")?;
    if table.rank() == 0 {
        return Err(IrError("take: table rank >= 1 required".into()));
    }
    if !idx.dtype.is_int() {
        return Err(IrError(format!(
            "take: integer indices required, got {}",
            idx.dtype
        )));
    }
    let mut dims = idx.dims.clone();
    dims.extend_from_slice(&table.dims[1..]);
    Ok(Type::Tensor(TensorType::from_dims(dims, table.dtype)))
}

/// `expand_dims(axis=…)`.
pub fn expand_dims(types: &[Type], attrs: &Attrs) -> Result<Type> {
    expect_args(types, 1, "expand_dims")?;
    let a = tensor_at(types, 0, "expand_dims")?;
    let axis = attrs.int_or("axis", 0) as usize;
    if axis > a.rank() {
        return Err(IrError("expand_dims: axis out of range".into()));
    }
    let mut dims = a.dims.clone();
    dims.insert(axis, Dim::Static(1));
    Ok(Type::Tensor(TensorType::from_dims(dims, a.dtype)))
}

/// `squeeze(axis=…)` — the squeezed dim must be 1 (or dynamic, checked at
/// run time).
pub fn squeeze(types: &[Type], attrs: &Attrs) -> Result<Type> {
    expect_args(types, 1, "squeeze")?;
    let a = tensor_at(types, 0, "squeeze")?;
    let axis = attrs.int_or("axis", 0) as usize;
    if axis >= a.rank() {
        return Err(IrError("squeeze: axis out of range".into()));
    }
    if let Dim::Static(d) = a.dims[axis] {
        if d != 1 {
            return Err(IrError(format!("squeeze: dim {d} != 1")));
        }
    }
    let mut dims = a.dims.clone();
    dims.remove(axis);
    Ok(Type::Tensor(TensorType::from_dims(dims, a.dtype)))
}

/// `cast(to=…)`.
pub fn cast(types: &[Type], attrs: &Attrs) -> Result<Type> {
    expect_args(types, 1, "cast")?;
    let a = tensor_at(types, 0, "cast")?;
    let to = attrs
        .dtype("to")
        .ok_or_else(|| IrError("cast: to attr required".into()))?;
    Ok(Type::Tensor(TensorType::from_dims(a.dims.clone(), to)))
}

/// `one_hot(depth=…)`.
pub fn one_hot(types: &[Type], attrs: &Attrs) -> Result<Type> {
    expect_args(types, 1, "one_hot")?;
    let ids = tensor_at(types, 0, "one_hot")?;
    let depth = attrs
        .int("depth")
        .ok_or_else(|| IrError("one_hot: depth attr required".into()))? as u64;
    let mut dims = ids.dims.clone();
    dims.push(Dim::Static(depth));
    Ok(Type::Tensor(TensorType::from_dims(dims, DType::F32)))
}

/// `zeros(shape=…, dtype via attr)` — a source op.
pub fn zeros(_types: &[Type], attrs: &Attrs) -> Result<Type> {
    let shape = attrs
        .int_vec("shape")
        .ok_or_else(|| IrError("zeros: shape attr required".into()))?;
    let dt = attrs.dtype("dtype").unwrap_or(DType::F32);
    let dims = shape.iter().map(|&d| Dim::Static(d as u64)).collect();
    Ok(Type::Tensor(TensorType::from_dims(dims, dt)))
}

/// `layer_norm(x, gamma, beta)` — same type as input.
pub fn layer_norm(types: &[Type], _attrs: &Attrs) -> Result<Type> {
    expect_args(types, 3, "layer_norm")?;
    let a = tensor_at(types, 0, "layer_norm")?;
    Ok(Type::Tensor(a.clone()))
}

/// Reductions `sum`/`max`/`mean` with `axis` and `keepdims` attrs.
pub fn reduce(types: &[Type], attrs: &Attrs) -> Result<Type> {
    expect_args(types, 1, "reduce")?;
    let a = tensor_at(types, 0, "reduce")?;
    let axis = attrs.int_or("axis", 0) as usize;
    let keep = attrs.boolean("keepdims").unwrap_or(false);
    if axis >= a.rank() {
        return Err(IrError("reduce: axis out of range".into()));
    }
    let mut dims = a.dims.clone();
    if keep {
        dims[axis] = Dim::Static(1);
    } else {
        dims.remove(axis);
    }
    Ok(Type::Tensor(TensorType::from_dims(dims, a.dtype)))
}

/// `argmax(axis=…)` → i64 with the axis removed.
pub fn argmax(types: &[Type], attrs: &Attrs) -> Result<Type> {
    match reduce(types, attrs)? {
        Type::Tensor(t) => Ok(Type::Tensor(TensorType::from_dims(t.dims, DType::I64))),
        other => Ok(other),
    }
}

/// `arange(start, stop, step)` — the output length is *data dependent*, so
/// the static type is `Tensor[(Any,), f32]` (Section 4.1).
pub fn arange(types: &[Type], _attrs: &Attrs) -> Result<Type> {
    expect_args(types, 3, "arange")?;
    for i in 0..3 {
        let t = tensor_at(types, i, "arange")?;
        if t.rank() != 0 {
            return Err(IrError("arange: scalar inputs required".into()));
        }
    }
    Ok(Type::Tensor(TensorType::from_dims(
        vec![Dim::Any],
        DType::F32,
    )))
}

/// `unique(x)` → `Tensor[(Any,), i64]`.
pub fn unique(types: &[Type], _attrs: &Attrs) -> Result<Type> {
    expect_args(types, 1, "unique")?;
    let a = tensor_at(types, 0, "unique")?;
    if a.rank() != 1 {
        return Err(IrError("unique: rank-1 input required".into()));
    }
    Ok(Type::Tensor(TensorType::from_dims(vec![Dim::Any], a.dtype)))
}

/// `boolean_mask(x, mask)` → leading dim becomes `Any`.
pub fn boolean_mask(types: &[Type], _attrs: &Attrs) -> Result<Type> {
    expect_args(types, 2, "boolean_mask")?;
    let a = tensor_at(types, 0, "boolean_mask")?;
    let m = tensor_at(types, 1, "boolean_mask")?;
    if a.rank() == 0 || m.rank() != 1 || m.dtype != DType::Bool {
        return Err(IrError("boolean_mask: bad inputs".into()));
    }
    let mut dims = vec![Dim::Any];
    dims.extend_from_slice(&a.dims[1..]);
    Ok(Type::Tensor(TensorType::from_dims(dims, a.dtype)))
}

/// `nms(boxes)` → `Tensor[(Any, 5), f32]` with an upper-bound shape
/// function.
pub fn nms(types: &[Type], _attrs: &Attrs) -> Result<Type> {
    expect_args(types, 1, "nms")?;
    let a = tensor_at(types, 0, "nms")?;
    if a.rank() != 2 || a.dims[1] != Dim::Static(5) {
        return Err(IrError("nms: input must be [n, 5]".into()));
    }
    Ok(Type::Tensor(TensorType::from_dims(
        vec![Dim::Any, Dim::Static(5)],
        a.dtype,
    )))
}

fn conv_out(in_dim: Dim, k: u64, stride: u64, pad: u64) -> Dim {
    match in_dim {
        Dim::Static(d) => Dim::Static((d + 2 * pad - k) / stride + 1),
        _ => Dim::Any,
    }
}

/// `conv2d(x: [n,c,h,w], w: [oc,c,kh,kw], stride=…, padding=…)`.
pub fn conv2d(types: &[Type], attrs: &Attrs) -> Result<Type> {
    expect_args(types, 2, "conv2d")?;
    let x = tensor_at(types, 0, "conv2d")?;
    let w = tensor_at(types, 1, "conv2d")?;
    if x.rank() != 4 || w.rank() != 4 {
        return Err(IrError("conv2d: rank-4 inputs required".into()));
    }
    if !x.dims[1].compatible(w.dims[1]) {
        return Err(IrError("conv2d: channel mismatch".into()));
    }
    let stride = attrs.int_or("stride", 1) as u64;
    let pad = attrs.int_or("padding", 0) as u64;
    let (kh, kw) = match (w.dims[2].as_static(), w.dims[3].as_static()) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err(IrError("conv2d: static kernel size required".into())),
    };
    Ok(Type::Tensor(TensorType::from_dims(
        vec![
            x.dims[0],
            w.dims[0],
            conv_out(x.dims[2], kh, stride, pad),
            conv_out(x.dims[3], kw, stride, pad),
        ],
        x.dtype,
    )))
}

/// `max_pool2d` / `avg_pool2d` with `kernel` and `stride` attrs.
pub fn pool2d(types: &[Type], attrs: &Attrs) -> Result<Type> {
    expect_args(types, 1, "pool2d")?;
    let x = tensor_at(types, 0, "pool2d")?;
    if x.rank() != 4 {
        return Err(IrError("pool2d: rank-4 input required".into()));
    }
    let k = attrs.int_or("kernel", 2) as u64;
    let s = attrs.int_or("stride", 2) as u64;
    Ok(Type::Tensor(TensorType::from_dims(
        vec![
            x.dims[0],
            x.dims[1],
            conv_out(x.dims[2], k, s, 0),
            conv_out(x.dims[3], k, s, 0),
        ],
        x.dtype,
    )))
}

/// `global_avg_pool([n,c,h,w]) → [n,c]`.
pub fn global_avg_pool(types: &[Type], _attrs: &Attrs) -> Result<Type> {
    expect_args(types, 1, "global_avg_pool")?;
    let x = tensor_at(types, 0, "global_avg_pool")?;
    if x.rank() != 4 {
        return Err(IrError("global_avg_pool: rank-4 input required".into()));
    }
    Ok(Type::Tensor(TensorType::from_dims(
        vec![x.dims[0], x.dims[1]],
        x.dtype,
    )))
}

/// `batch_norm(x, gamma, beta, mean, var)` — same type as input.
pub fn batch_norm(types: &[Type], _attrs: &Attrs) -> Result<Type> {
    expect_args(types, 5, "batch_norm")?;
    let x = tensor_at(types, 0, "batch_norm")?;
    Ok(Type::Tensor(x.clone()))
}

/// `shape_of(x)` → rank-1 i64 tensor of known length (Section 4.4).
pub fn shape_of(types: &[Type], _attrs: &Attrs) -> Result<Type> {
    expect_args(types, 1, "shape_of")?;
    let a = tensor_at(types, 0, "shape_of")?;
    Ok(Type::Tensor(TensorType::new(
        &[a.rank() as u64],
        DType::I64,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrValue;
    use crate::types::SymId;

    fn t(dims: Vec<Dim>) -> Type {
        Type::Tensor(TensorType::from_dims(dims, DType::F32))
    }

    #[test]
    fn paper_broadcast_rules() {
        // broadcast_rel(Any, 1) → Any
        assert_eq!(broadcast_dim(Dim::Any, Dim::Static(1)).unwrap(), Dim::Any);
        // broadcast_rel(Any, d) → d, d > 1
        assert_eq!(
            broadcast_dim(Dim::Any, Dim::Static(7)).unwrap(),
            Dim::Static(7)
        );
        // broadcast_rel(Any, Any) → Any
        assert_eq!(broadcast_dim(Dim::Any, Dim::Any).unwrap(), Dim::Any);
        // Same symbolic dim is preserved.
        let s = SymId::fresh();
        assert_eq!(
            broadcast_dim(Dim::Sym(s), Dim::Sym(s)).unwrap(),
            Dim::Sym(s)
        );
        // Different symbolic dims fall back to Any.
        assert_eq!(
            broadcast_dim(Dim::Sym(s), Dim::Sym(SymId::fresh())).unwrap(),
            Dim::Any
        );
        // Static conflict is rejected.
        assert!(broadcast_dim(Dim::Static(2), Dim::Static(3)).is_err());
    }

    #[test]
    fn paper_any_contamination_example() {
        // arange result Tensor[(Any,)] broadcast_add Tensor[(5, 1)] gives
        // Tensor[(5, Any)] — Section 4.1's contamination example.
        let out = broadcast(
            &[t(vec![Dim::Any]), t(vec![Dim::Static(5), Dim::Static(1)])],
            &Attrs::new(),
        )
        .unwrap();
        assert_eq!(out, t(vec![Dim::Static(5), Dim::Any]),);
    }

    #[test]
    fn dense_propagates_any_rows() {
        let out = dense(
            &[
                t(vec![Dim::Any, Dim::Static(300)]),
                t(vec![Dim::Static(512), Dim::Static(300)]),
            ],
            &Attrs::new(),
        )
        .unwrap();
        assert_eq!(out, t(vec![Dim::Any, Dim::Static(512)]));
        // Contraction mismatch rejected statically when both static.
        assert!(dense(
            &[
                t(vec![Dim::Any, Dim::Static(300)]),
                t(vec![Dim::Static(512), Dim::Static(301)]),
            ],
            &Attrs::new(),
        )
        .is_err());
    }

    #[test]
    fn concat_sums_static_axis_or_any() {
        let attrs = Attrs::new().with("axis", AttrValue::Int(0));
        let out = concat(
            &[
                t(vec![Dim::Static(2), Dim::Static(4)]),
                t(vec![Dim::Static(3), Dim::Static(4)]),
            ],
            &attrs,
        )
        .unwrap();
        assert_eq!(out, t(vec![Dim::Static(5), Dim::Static(4)]));
        // Dynamic input makes the axis dynamic — the paper's growing-tensor
        // loop case.
        let out = concat(
            &[
                t(vec![Dim::Any, Dim::Static(4)]),
                t(vec![Dim::Static(1), Dim::Static(4)]),
            ],
            &attrs,
        )
        .unwrap();
        assert_eq!(out, t(vec![Dim::Any, Dim::Static(4)]));
    }

    #[test]
    fn reshape_infers_and_propagates() {
        let attrs = Attrs::new().with("newshape", AttrValue::IntVec(vec![2, -1]));
        let out = reshape(&[t(vec![Dim::Static(2), Dim::Static(6)])], &attrs).unwrap();
        assert_eq!(out, t(vec![Dim::Static(2), Dim::Static(6)]));
        // Dynamic input leaves -1 as Any.
        let out = reshape(&[t(vec![Dim::Any, Dim::Static(6)])], &attrs).unwrap();
        assert_eq!(out, t(vec![Dim::Static(2), Dim::Any]));
        // -2 copies the input dim, preserving symbolic identity.
        let s = Dim::Sym(SymId::fresh());
        let attrs = Attrs::new().with("newshape", AttrValue::IntVec(vec![-2, 12]));
        let out = reshape(&[t(vec![s, Dim::Static(12)])], &attrs).unwrap();
        assert_eq!(out, t(vec![s, Dim::Static(12)]));
    }

    #[test]
    fn dynamic_ops_produce_any() {
        let scalar = t(vec![]);
        let out = arange(&[scalar.clone(), scalar.clone(), scalar], &Attrs::new()).unwrap();
        assert_eq!(out, t(vec![Dim::Any]));

        let out = nms(&[t(vec![Dim::Static(10), Dim::Static(5)])], &Attrs::new()).unwrap();
        assert_eq!(out, t(vec![Dim::Any, Dim::Static(5)]));
    }

    #[test]
    fn split_produces_tuple() {
        let attrs = Attrs::new()
            .with("parts", AttrValue::Int(4))
            .with("axis", AttrValue::Int(1));
        let out = split(&[t(vec![Dim::Any, Dim::Static(8)])], &attrs).unwrap();
        match out {
            Type::Tuple(ts) => {
                assert_eq!(ts.len(), 4);
                assert_eq!(ts[0], t(vec![Dim::Any, Dim::Static(2)]));
            }
            other => panic!("expected tuple, got {other}"),
        }
    }

    #[test]
    fn conv_and_pool_shapes() {
        let x = t(vec![
            Dim::Static(1),
            Dim::Static(3),
            Dim::Static(32),
            Dim::Static(32),
        ]);
        let w = t(vec![
            Dim::Static(8),
            Dim::Static(3),
            Dim::Static(3),
            Dim::Static(3),
        ]);
        let attrs = Attrs::new()
            .with("stride", AttrValue::Int(1))
            .with("padding", AttrValue::Int(1));
        let out = conv2d(&[x.clone(), w], &attrs).unwrap();
        assert_eq!(
            out,
            t(vec![
                Dim::Static(1),
                Dim::Static(8),
                Dim::Static(32),
                Dim::Static(32)
            ])
        );
        let pool_attrs = Attrs::new()
            .with("kernel", AttrValue::Int(2))
            .with("stride", AttrValue::Int(2));
        let out = pool2d(&[x], &pool_attrs).unwrap();
        assert_eq!(
            out,
            t(vec![
                Dim::Static(1),
                Dim::Static(3),
                Dim::Static(16),
                Dim::Static(16)
            ])
        );
    }

    #[test]
    fn shape_of_rank_known_statically() {
        let out = shape_of(
            &[t(vec![Dim::Any, Dim::Any, Dim::Static(4)])],
            &Attrs::new(),
        )
        .unwrap();
        match out {
            Type::Tensor(tt) => {
                assert_eq!(tt.dims, vec![Dim::Static(3)]);
                assert_eq!(tt.dtype, DType::I64);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn take_requires_int_indices() {
        let table = t(vec![Dim::Static(100), Dim::Static(16)]);
        let bad_idx = t(vec![Dim::Any]); // f32 indices
        assert!(take(&[table.clone(), bad_idx], &Attrs::new()).is_err());
        let idx = Type::Tensor(TensorType::from_dims(vec![Dim::Any], DType::I64));
        let out = take(&[table, idx], &Attrs::new()).unwrap();
        assert_eq!(out, t(vec![Dim::Any, Dim::Static(16)]));
    }
}
