//! Reference kernel bindings: each registry entry's `execute` maps to the
//! `nimble-tensor` kernel library.

use crate::attrs::Attrs;
use crate::{IrError, Result};
use nimble_tensor::{kernels, DType, Tensor};

fn arg<'a>(inputs: &'a [Tensor], i: usize, op: &str) -> Result<&'a Tensor> {
    inputs
        .get(i)
        .ok_or_else(|| IrError(format!("{op}: missing input {i}")))
}

macro_rules! binary {
    ($name:ident) => {
        pub(super) fn $name(inputs: &[Tensor], _attrs: &Attrs) -> Result<Vec<Tensor>> {
            let a = arg(inputs, 0, stringify!($name))?;
            let b = arg(inputs, 1, stringify!($name))?;
            Ok(vec![kernels::$name(a, b)?])
        }
    };
}

macro_rules! unary {
    ($name:ident) => {
        pub(super) fn $name(inputs: &[Tensor], _attrs: &Attrs) -> Result<Vec<Tensor>> {
            let a = arg(inputs, 0, stringify!($name))?;
            Ok(vec![kernels::$name(a)?])
        }
    };
}

binary!(add);
binary!(sub);
binary!(mul);
binary!(div);
binary!(maximum);
binary!(minimum);
binary!(power);
binary!(equal);
binary!(less);
binary!(greater);
binary!(logical_and);
unary!(logical_not);
unary!(neg);
unary!(sqrt);
unary!(tanh);
unary!(sigmoid);
unary!(relu);
unary!(gelu);
unary!(softmax);

pub(super) fn where_select(inputs: &[Tensor], _attrs: &Attrs) -> Result<Vec<Tensor>> {
    Ok(vec![kernels::where_select(
        arg(inputs, 0, "where")?,
        arg(inputs, 1, "where")?,
        arg(inputs, 2, "where")?,
    )?])
}

pub(super) fn dense(inputs: &[Tensor], _attrs: &Attrs) -> Result<Vec<Tensor>> {
    let bias = inputs.get(2);
    Ok(vec![kernels::dense(
        arg(inputs, 0, "dense")?,
        arg(inputs, 1, "dense")?,
        bias,
    )?])
}

pub(super) fn matmul(inputs: &[Tensor], _attrs: &Attrs) -> Result<Vec<Tensor>> {
    Ok(vec![kernels::matmul(
        arg(inputs, 0, "matmul")?,
        arg(inputs, 1, "matmul")?,
    )?])
}

pub(super) fn batch_matmul(inputs: &[Tensor], _attrs: &Attrs) -> Result<Vec<Tensor>> {
    Ok(vec![kernels::batch_matmul(
        arg(inputs, 0, "batch_matmul")?,
        arg(inputs, 1, "batch_matmul")?,
    )?])
}

pub(super) fn concat(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let refs: Vec<&Tensor> = inputs.iter().collect();
    Ok(vec![kernels::concat(
        &refs,
        attrs.int_or("axis", 0) as usize,
    )?])
}

pub(super) fn split(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let parts = attrs
        .int("parts")
        .ok_or_else(|| IrError("split: parts attr required".into()))? as usize;
    Ok(kernels::split(
        arg(inputs, 0, "split")?,
        parts,
        attrs.int_or("axis", 0) as usize,
    )?)
}

pub(super) fn slice(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let begin: Vec<usize> = attrs
        .int_vec("begin")
        .ok_or_else(|| IrError("slice: begin attr required".into()))?
        .iter()
        .map(|&v| v as usize)
        .collect();
    let end: Vec<usize> = attrs
        .int_vec("end")
        .ok_or_else(|| IrError("slice: end attr required".into()))?
        .iter()
        .map(|&v| v as usize)
        .collect();
    Ok(vec![kernels::slice(
        arg(inputs, 0, "slice")?,
        &begin,
        &end,
    )?])
}

pub(super) fn transpose(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let perm: Vec<usize> = attrs
        .int_vec("perm")
        .ok_or_else(|| IrError("transpose: perm attr required".into()))?
        .iter()
        .map(|&v| v as usize)
        .collect();
    Ok(vec![kernels::transpose(
        arg(inputs, 0, "transpose")?,
        &perm,
    )?])
}

pub(super) fn reshape(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let a = arg(inputs, 0, "reshape")?;
    let spec = attrs
        .int_vec("newshape")
        .ok_or_else(|| IrError("reshape: newshape attr required".into()))?;
    // Resolve -1 / -2 against the concrete input shape.
    let mut dims: Vec<usize> = Vec::with_capacity(spec.len());
    let mut infer_at = None;
    for (i, &d) in spec.iter().enumerate() {
        match d {
            -1 => {
                infer_at = Some(i);
                dims.push(1);
            }
            -2 => dims.push(
                *a.dims()
                    .get(i)
                    .ok_or_else(|| IrError("reshape: -2 without input dim".into()))?,
            ),
            d if d >= 0 => dims.push(d as usize),
            _ => return Err(IrError(format!("reshape: invalid dim {d}"))),
        }
    }
    if let Some(i) = infer_at {
        let known: usize = dims
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &d)| d)
            .product();
        if known == 0 || a.volume() % known != 0 {
            return Err(IrError("reshape: volume mismatch".into()));
        }
        dims[i] = a.volume() / known;
    }
    Ok(vec![a.reshaped(&dims)?])
}

pub(super) fn take(inputs: &[Tensor], _attrs: &Attrs) -> Result<Vec<Tensor>> {
    Ok(vec![kernels::take(
        arg(inputs, 0, "take")?,
        arg(inputs, 1, "take")?,
    )?])
}

pub(super) fn expand_dims(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    Ok(vec![kernels::expand_dims(
        arg(inputs, 0, "expand_dims")?,
        attrs.int_or("axis", 0) as usize,
    )?])
}

pub(super) fn squeeze(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    Ok(vec![kernels::squeeze(
        arg(inputs, 0, "squeeze")?,
        attrs.int_or("axis", 0) as usize,
    )?])
}

pub(super) fn cast(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let to = attrs
        .dtype("to")
        .ok_or_else(|| IrError("cast: to attr required".into()))?;
    Ok(vec![kernels::cast(arg(inputs, 0, "cast")?, to)?])
}

pub(super) fn one_hot(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let depth = attrs
        .int("depth")
        .ok_or_else(|| IrError("one_hot: depth attr required".into()))? as usize;
    Ok(vec![kernels::one_hot(arg(inputs, 0, "one_hot")?, depth)?])
}

pub(super) fn zeros(_inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let shape: Vec<usize> = attrs
        .int_vec("shape")
        .ok_or_else(|| IrError("zeros: shape attr required".into()))?
        .iter()
        .map(|&v| v as usize)
        .collect();
    let dt = attrs.dtype("dtype").unwrap_or(DType::F32);
    Ok(vec![Tensor::zeros(dt, &shape)])
}

pub(super) fn layer_norm(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let eps = attrs.float("eps").unwrap_or(1e-5) as f32;
    Ok(vec![kernels::layer_norm(
        arg(inputs, 0, "layer_norm")?,
        arg(inputs, 1, "layer_norm")?,
        arg(inputs, 2, "layer_norm")?,
        eps,
    )?])
}

fn reduce_args(attrs: &Attrs) -> (usize, bool) {
    (
        attrs.int_or("axis", 0) as usize,
        attrs.boolean("keepdims").unwrap_or(false),
    )
}

pub(super) fn sum(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let (axis, keep) = reduce_args(attrs);
    Ok(vec![kernels::sum_axis(arg(inputs, 0, "sum")?, axis, keep)?])
}

pub(super) fn max(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let (axis, keep) = reduce_args(attrs);
    Ok(vec![kernels::max_axis(arg(inputs, 0, "max")?, axis, keep)?])
}

pub(super) fn mean(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let (axis, keep) = reduce_args(attrs);
    Ok(vec![kernels::mean_axis(
        arg(inputs, 0, "mean")?,
        axis,
        keep,
    )?])
}

pub(super) fn argmax(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let (axis, _) = reduce_args(attrs);
    Ok(vec![kernels::argmax(arg(inputs, 0, "argmax")?, axis)?])
}

// ---- dynamic-shape operators and their shape functions ----

pub(super) fn arange(inputs: &[Tensor], _attrs: &Attrs) -> Result<Vec<Tensor>> {
    Ok(vec![kernels::arange(
        arg(inputs, 0, "arange")?,
        arg(inputs, 1, "arange")?,
        arg(inputs, 2, "arange")?,
    )?])
}

/// Data-dependent shape function for `arange` — needs the input *values*.
pub(super) fn arange_shape(inputs: &[Tensor], _attrs: &Attrs) -> Result<Vec<Vec<usize>>> {
    let s = arg(inputs, 0, "arange")?.scalar_value_f32()?;
    let e = arg(inputs, 1, "arange")?.scalar_value_f32()?;
    let st = arg(inputs, 2, "arange")?.scalar_value_f32()?;
    if st == 0.0 {
        return Err(IrError("arange: zero step".into()));
    }
    Ok(vec![vec![(((e - s) / st).ceil()).max(0.0) as usize]])
}

pub(super) fn unique(inputs: &[Tensor], _attrs: &Attrs) -> Result<Vec<Tensor>> {
    Ok(vec![kernels::unique(arg(inputs, 0, "unique")?)?])
}

/// Data-dependent shape function for `unique`.
pub(super) fn unique_shape(inputs: &[Tensor], _attrs: &Attrs) -> Result<Vec<Vec<usize>>> {
    // Computing the shape requires running the dedup itself — this is why
    // data-dependent shape functions cannot be fused past (Section 4.2).
    let out = kernels::unique(arg(inputs, 0, "unique")?)?;
    Ok(vec![out.dims().to_vec()])
}

pub(super) fn boolean_mask(inputs: &[Tensor], _attrs: &Attrs) -> Result<Vec<Tensor>> {
    Ok(vec![kernels::boolean_mask(
        arg(inputs, 0, "boolean_mask")?,
        arg(inputs, 1, "boolean_mask")?,
    )?])
}

/// Data-dependent shape function for `boolean_mask` — counts the mask.
pub(super) fn boolean_mask_shape(inputs: &[Tensor], _attrs: &Attrs) -> Result<Vec<Vec<usize>>> {
    let a = arg(inputs, 0, "boolean_mask")?;
    let m = arg(inputs, 1, "boolean_mask")?;
    let rows = m.as_bool()?.iter().filter(|&&b| b).count();
    let mut s = vec![rows];
    s.extend_from_slice(&a.dims()[1..]);
    Ok(vec![s])
}

pub(super) fn nms(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let thresh = attrs.float("iou_threshold").unwrap_or(0.5) as f32;
    let out = kernels::nms(arg(inputs, 0, "nms")?, thresh)?;
    // Slice the upper-bound buffer down to the precise output shape, as
    // Section 4.2 prescribes for upper-bound operators.
    Ok(vec![kernels::slice(&out.boxes, &[0, 0], &[out.count, 5])?])
}

/// Upper-bound shape function for `nms`: at most all boxes survive.
pub(super) fn nms_bound(in_shapes: &[Vec<usize>], _attrs: &Attrs) -> Result<Vec<Vec<usize>>> {
    let s = in_shapes
        .first()
        .ok_or_else(|| IrError("nms: missing input shape".into()))?;
    Ok(vec![s.clone()])
}

// ---- vision ----

pub(super) fn conv2d(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    Ok(vec![kernels::conv2d(
        arg(inputs, 0, "conv2d")?,
        arg(inputs, 1, "conv2d")?,
        attrs.int_or("stride", 1) as usize,
        attrs.int_or("padding", 0) as usize,
    )?])
}

pub(super) fn max_pool2d(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    Ok(vec![kernels::max_pool2d(
        arg(inputs, 0, "max_pool2d")?,
        attrs.int_or("kernel", 2) as usize,
        attrs.int_or("stride", 2) as usize,
    )?])
}

pub(super) fn avg_pool2d(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    Ok(vec![kernels::avg_pool2d(
        arg(inputs, 0, "avg_pool2d")?,
        attrs.int_or("kernel", 2) as usize,
        attrs.int_or("stride", 2) as usize,
    )?])
}

pub(super) fn global_avg_pool(inputs: &[Tensor], _attrs: &Attrs) -> Result<Vec<Tensor>> {
    Ok(vec![kernels::global_avg_pool(arg(
        inputs,
        0,
        "global_avg_pool",
    )?)?])
}

pub(super) fn batch_norm(inputs: &[Tensor], attrs: &Attrs) -> Result<Vec<Tensor>> {
    let eps = attrs.float("eps").unwrap_or(1e-5) as f32;
    Ok(vec![kernels::batch_norm(
        arg(inputs, 0, "batch_norm")?,
        arg(inputs, 1, "batch_norm")?,
        arg(inputs, 2, "batch_norm")?,
        arg(inputs, 3, "batch_norm")?,
        arg(inputs, 4, "batch_norm")?,
        eps,
    )?])
}

// ---- runtime-support ops ----

pub(super) fn shape_of(inputs: &[Tensor], _attrs: &Attrs) -> Result<Vec<Tensor>> {
    Ok(vec![arg(inputs, 0, "shape_of")?.shape_tensor()])
}

/// `device_copy` at the registry level is the identity; the VM performs the
/// actual cross-device transfer when interpreting the `DeviceCopy`
/// instruction.
pub(super) fn device_copy(inputs: &[Tensor], _attrs: &Attrs) -> Result<Vec<Tensor>> {
    Ok(vec![arg(inputs, 0, "device_copy")?.clone()])
}

#[cfg(test)]
mod tests {
    use super::super::lookup;
    use crate::attrs::{AttrValue, Attrs};
    use nimble_tensor::Tensor;

    fn run(op: &str, inputs: &[Tensor], attrs: &Attrs) -> Vec<Tensor> {
        (lookup(op).unwrap().execute)(inputs, attrs).unwrap()
    }

    #[test]
    fn add_through_registry() {
        let a = Tensor::from_vec_f32(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec_f32(vec![3.0, 4.0], &[2]).unwrap();
        let out = run("add", &[a, b], &Attrs::new());
        assert_eq!(out[0].as_f32().unwrap(), &[4.0, 6.0]);
    }

    #[test]
    fn reshape_with_inference() {
        let a = Tensor::from_vec_f32((0..6).map(|v| v as f32).collect(), &[6]).unwrap();
        let attrs = Attrs::new().with("newshape", AttrValue::IntVec(vec![2, -1]));
        let out = run("reshape", &[a], &attrs);
        assert_eq!(out[0].dims(), &[2, 3]);
    }

    #[test]
    fn split_multiple_outputs() {
        let a = Tensor::from_vec_f32((0..8).map(|v| v as f32).collect(), &[4, 2]).unwrap();
        let attrs = Attrs::new()
            .with("parts", AttrValue::Int(2))
            .with("axis", AttrValue::Int(0));
        let out = run("split", &[a], &attrs);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].dims(), &[2, 2]);
    }

    #[test]
    fn nms_execute_returns_precise_shape() {
        let boxes = Tensor::from_vec_f32(
            vec![
                0.9, 0.0, 0.0, 10.0, 10.0, 0.8, 1.0, 1.0, 11.0, 11.0, 0.7, 100.0, 100.0, 110.0,
                110.0,
            ],
            &[3, 5],
        )
        .unwrap();
        let attrs = Attrs::new().with("iou_threshold", AttrValue::Float(0.5));
        let out = run("nms", std::slice::from_ref(&boxes), &attrs);
        // Precise shape (2 kept), not the upper bound (3).
        assert_eq!(out[0].dims(), &[2, 5]);
        // But the upper-bound shape function reports the worst case.
        let op = lookup("nms").unwrap();
        match op.shape_fn {
            crate::op::ShapeFnKind::UpperBound(f) => {
                let bound = f(&[vec![3, 5]], &attrs).unwrap();
                assert_eq!(bound, vec![vec![3, 5]]);
            }
            _ => panic!("nms must be upper-bound"),
        }
    }

    #[test]
    fn data_dependent_shape_fns() {
        let op = lookup("unique").unwrap();
        match op.shape_fn {
            crate::op::ShapeFnKind::DataDependent(f) => {
                let x = Tensor::from_vec_i64(vec![5, 5, 2], &[3]).unwrap();
                assert_eq!(f(&[x], &Attrs::new()).unwrap(), vec![vec![2]]);
            }
            _ => panic!("unique must be data-dependent"),
        }
        let op = lookup("arange").unwrap();
        match op.shape_fn {
            crate::op::ShapeFnKind::DataDependent(f) => {
                let shapes = f(
                    &[
                        Tensor::scalar_f32(0.0),
                        Tensor::scalar_f32(10.0),
                        Tensor::scalar_f32(2.0),
                    ],
                    &Attrs::new(),
                )
                .unwrap();
                assert_eq!(shapes, vec![vec![5]]);
            }
            _ => panic!("arange must be data-dependent"),
        }
    }

    #[test]
    fn shape_of_execute() {
        let a = Tensor::zeros(nimble_tensor::DType::F32, &[4, 7]);
        let out = run("shape_of", &[a], &Attrs::new());
        assert_eq!(out[0].as_i64().unwrap(), &[4, 7]);
    }
}
