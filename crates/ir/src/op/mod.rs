//! The operator registry: type relations, shape functions, fusion patterns
//! and reference kernel implementations for every primitive operator.
//!
//! Each operator carries the four pieces of metadata the paper's compiler
//! needs:
//!
//! 1. a **type relation** (Section 4.1) used by type inference to propagate
//!    shapes — including `Any` — bidirectionally;
//! 2. a **shape function** (Section 4.2) in one of three modes, executed at
//!    run time to size allocations;
//! 3. a **fusion pattern** used by the fusion pass (and its dynamic-aware
//!    fusion policy);
//! 4. a reference **kernel** that computes the operator on CPU tensors.

pub mod relations;

mod execute;

use crate::attrs::Attrs;
use crate::types::Type;
use crate::{IrError, Result};
use nimble_tensor::{DType, Tensor};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Fusion pattern of an operator, following the TVM taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusePattern {
    /// Pure elementwise map (same-shape in/out).
    Elemwise,
    /// Elementwise with broadcasting.
    Broadcast,
    /// Bijective data movement (transpose, reshape, concat…).
    Injective,
    /// Axis-collapsing computation (softmax, sums, pooling).
    Reduction,
    /// Compute-heavy anchor that can absorb following elementwise ops
    /// (dense, conv2d).
    OutEwiseFusable,
    /// Never fused.
    Opaque,
}

/// Type signature of a type-relation function.
pub type RelFn = fn(&[Type], &Attrs) -> Result<Type>;
/// Kernel implementation: input tensors → output tensors.
pub type ExecFn = fn(&[Tensor], &Attrs) -> Result<Vec<Tensor>>;
/// Data-dependent shape function: input *values* → output shapes.
pub type DataShapeFn = fn(&[Tensor], &Attrs) -> Result<Vec<Vec<usize>>>;
/// Upper-bound shape function: input shapes → upper-bound output shapes.
pub type BoundShapeFn = fn(&[Vec<usize>], &Attrs) -> Result<Vec<Vec<usize>>>;

/// The shape-function mode of an operator (paper Section 4.2).
#[derive(Clone, Copy)]
pub enum ShapeFnKind {
    /// Output shapes depend only on input shapes; derived automatically
    /// from the type relation applied to fully static inputs.
    DataIndependent,
    /// Output shapes require the input *values* (`arange`, `unique`).
    DataDependent(DataShapeFn),
    /// Computing the exact output shape is as costly as the op itself
    /// (`nms`); a cheap upper bound is used for allocation and the kernel
    /// reports the precise shape.
    UpperBound(BoundShapeFn),
}

impl std::fmt::Debug for ShapeFnKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeFnKind::DataIndependent => write!(f, "DataIndependent"),
            ShapeFnKind::DataDependent(_) => write!(f, "DataDependent"),
            ShapeFnKind::UpperBound(_) => write!(f, "UpperBound"),
        }
    }
}

/// Registry entry for one primitive operator.
pub struct OpDef {
    /// Operator name as it appears in `Call` expressions.
    pub name: &'static str,
    /// Type relation.
    pub rel: RelFn,
    /// Shape-function mode.
    pub shape_fn: ShapeFnKind,
    /// Fusion pattern.
    pub pattern: FusePattern,
    /// Reference kernel.
    pub execute: ExecFn,
}

impl std::fmt::Debug for OpDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpDef")
            .field("name", &self.name)
            .field("shape_fn", &self.shape_fn)
            .field("pattern", &self.pattern)
            .finish()
    }
}

impl OpDef {
    /// True when fusing *through* this op's output is forbidden because its
    /// shape function needs intermediate values — the explicit fusion
    /// policy of Section 4.2.
    pub fn is_fusion_barrier(&self) -> bool {
        !matches!(self.shape_fn, ShapeFnKind::DataIndependent)
    }

    /// Run the data-independent shape function: apply the type relation to
    /// fully static input types and read the static output shapes back.
    ///
    /// # Errors
    /// Fails for non-data-independent ops, or when the relation rejects the
    /// shapes (this is where the paper's deferred/gradual type checks
    /// surface at run time).
    pub fn infer_shapes(
        &self,
        in_shapes: &[Vec<usize>],
        in_dtypes: &[DType],
        attrs: &Attrs,
    ) -> Result<Vec<Vec<usize>>> {
        if !matches!(self.shape_fn, ShapeFnKind::DataIndependent) {
            return Err(IrError(format!(
                "{} does not have a data-independent shape function",
                self.name
            )));
        }
        let types: Vec<Type> = in_shapes
            .iter()
            .zip(in_dtypes.iter())
            .map(|(s, &dt)| {
                Type::Tensor(crate::types::TensorType::new(
                    &s.iter().map(|&d| d as u64).collect::<Vec<_>>(),
                    dt,
                ))
            })
            .collect();
        let out = (self.rel)(&types, attrs)?;
        flatten_static_shapes(&out)
    }
}

/// Extract concrete output shapes from a (tuple of) static tensor type(s).
fn flatten_static_shapes(ty: &Type) -> Result<Vec<Vec<usize>>> {
    match ty {
        Type::Tensor(t) => {
            let s = t
                .static_shape()
                .ok_or_else(|| IrError(format!("shape function produced dynamic type {t}")))?;
            Ok(vec![s])
        }
        Type::Tuple(ts) => {
            let mut out = Vec::with_capacity(ts.len());
            for t in ts {
                out.extend(flatten_static_shapes(t)?);
            }
            Ok(out)
        }
        other => Err(IrError(format!("shape function produced {other}"))),
    }
}

macro_rules! ops {
    ($($name:literal => ($rel:expr, $shape:expr, $pattern:expr, $exec:expr)),+ $(,)?) => {{
        let mut m: HashMap<&'static str, OpDef> = HashMap::new();
        $(
            m.insert($name, OpDef {
                name: $name,
                rel: $rel,
                shape_fn: $shape,
                pattern: $pattern,
                execute: $exec,
            });
        )+
        m
    }};
}

fn build_registry() -> HashMap<&'static str, OpDef> {
    use execute as ex;
    use relations as rel;
    use FusePattern::*;
    use ShapeFnKind::*;
    ops! {
        // ---- elementwise / broadcast arithmetic ----
        "add"         => (rel::broadcast, DataIndependent, Broadcast, ex::add),
        "sub"         => (rel::broadcast, DataIndependent, Broadcast, ex::sub),
        "mul"         => (rel::broadcast, DataIndependent, Broadcast, ex::mul),
        "div"         => (rel::broadcast, DataIndependent, Broadcast, ex::div),
        "maximum"     => (rel::broadcast, DataIndependent, Broadcast, ex::maximum),
        "minimum"     => (rel::broadcast, DataIndependent, Broadcast, ex::minimum),
        "power"       => (rel::broadcast, DataIndependent, Broadcast, ex::power),
        "equal"       => (rel::broadcast_bool, DataIndependent, Broadcast, ex::equal),
        "less"        => (rel::broadcast_bool, DataIndependent, Broadcast, ex::less),
        "greater"     => (rel::broadcast_bool, DataIndependent, Broadcast, ex::greater),
        "logical_and" => (rel::broadcast, DataIndependent, Broadcast, ex::logical_and),
        "logical_not" => (rel::identity, DataIndependent, Elemwise, ex::logical_not),
        "where"       => (rel::where_rel, DataIndependent, Broadcast, ex::where_select),
        // ---- elementwise unary ----
        "neg"     => (rel::identity, DataIndependent, Elemwise, ex::neg),
        "sqrt"    => (rel::identity, DataIndependent, Elemwise, ex::sqrt),
        "tanh"    => (rel::identity, DataIndependent, Elemwise, ex::tanh),
        "sigmoid" => (rel::identity, DataIndependent, Elemwise, ex::sigmoid),
        "relu"    => (rel::identity, DataIndependent, Elemwise, ex::relu),
        "gelu"    => (rel::identity, DataIndependent, Elemwise, ex::gelu),
        // ---- linear algebra ----
        "dense"        => (rel::dense, DataIndependent, OutEwiseFusable, ex::dense),
        "matmul"       => (rel::matmul, DataIndependent, OutEwiseFusable, ex::matmul),
        "batch_matmul" => (rel::batch_matmul, DataIndependent, OutEwiseFusable, ex::batch_matmul),
        // ---- data movement ----
        "concat"      => (rel::concat, DataIndependent, Injective, ex::concat),
        "split"       => (rel::split, DataIndependent, Injective, ex::split),
        "slice"       => (rel::slice, DataIndependent, Injective, ex::slice),
        "transpose"   => (rel::transpose, DataIndependent, Injective, ex::transpose),
        "reshape"     => (rel::reshape, DataIndependent, Injective, ex::reshape),
        "take"        => (rel::take, DataIndependent, Injective, ex::take),
        "expand_dims" => (rel::expand_dims, DataIndependent, Injective, ex::expand_dims),
        "squeeze"     => (rel::squeeze, DataIndependent, Injective, ex::squeeze),
        "cast"        => (rel::cast, DataIndependent, Elemwise, ex::cast),
        "one_hot"     => (rel::one_hot, DataIndependent, Injective, ex::one_hot),
        "zeros"       => (rel::zeros, DataIndependent, Opaque, ex::zeros),
        // ---- reductions / normalization ----
        "softmax"    => (rel::identity, DataIndependent, Reduction, ex::softmax),
        "layer_norm" => (rel::layer_norm, DataIndependent, Reduction, ex::layer_norm),
        "sum"        => (rel::reduce, DataIndependent, Reduction, ex::sum),
        "max"        => (rel::reduce, DataIndependent, Reduction, ex::max),
        "mean"       => (rel::reduce, DataIndependent, Reduction, ex::mean),
        "argmax"     => (rel::argmax, DataIndependent, Reduction, ex::argmax),
        // ---- dynamic-output-shape operators ----
        "arange"       => (rel::arange, DataDependent(ex::arange_shape), Opaque, ex::arange),
        "unique"       => (rel::unique, DataDependent(ex::unique_shape), Opaque, ex::unique),
        "boolean_mask" => (rel::boolean_mask, DataDependent(ex::boolean_mask_shape), Opaque, ex::boolean_mask),
        "nms"          => (rel::nms, UpperBound(ex::nms_bound), Opaque, ex::nms),
        // ---- vision ----
        "conv2d"          => (rel::conv2d, DataIndependent, OutEwiseFusable, ex::conv2d),
        "max_pool2d"      => (rel::pool2d, DataIndependent, Reduction, ex::max_pool2d),
        "avg_pool2d"      => (rel::pool2d, DataIndependent, Reduction, ex::avg_pool2d),
        "global_avg_pool" => (rel::global_avg_pool, DataIndependent, Reduction, ex::global_avg_pool),
        "batch_norm"      => (rel::batch_norm, DataIndependent, Broadcast, ex::batch_norm),
        // ---- runtime-support ops inserted by passes (Section 4.4) ----
        "shape_of"    => (rel::shape_of, DataIndependent, Opaque, ex::shape_of),
        "device_copy" => (rel::identity, DataIndependent, Opaque, ex::device_copy),
    }
}

static REGISTRY: OnceLock<HashMap<&'static str, OpDef>> = OnceLock::new();

/// The global operator registry.
pub fn registry() -> &'static HashMap<&'static str, OpDef> {
    REGISTRY.get_or_init(build_registry)
}

/// Look up an operator by name.
///
/// # Errors
/// Fails when the operator is not registered.
pub fn lookup(name: &str) -> Result<&'static OpDef> {
    registry()
        .get(name)
        .ok_or_else(|| IrError(format!("unknown operator {name}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrValue;

    #[test]
    fn registry_has_core_ops() {
        for op in [
            "add", "dense", "concat", "arange", "unique", "nms", "conv2d", "shape_of", "softmax",
            "take", "where",
        ] {
            assert!(lookup(op).is_ok(), "missing op {op}");
        }
        assert!(lookup("nonexistent_op").is_err());
        assert!(
            registry().len() >= 40,
            "registry has {} ops",
            registry().len()
        );
    }

    #[test]
    fn fusion_barriers_match_shape_fn_modes() {
        assert!(!lookup("add").unwrap().is_fusion_barrier());
        assert!(!lookup("dense").unwrap().is_fusion_barrier());
        assert!(lookup("arange").unwrap().is_fusion_barrier());
        assert!(lookup("unique").unwrap().is_fusion_barrier());
        assert!(lookup("nms").unwrap().is_fusion_barrier());
    }

    #[test]
    fn data_independent_shape_fn_from_relation() {
        let op = lookup("add").unwrap();
        let out = op
            .infer_shapes(
                &[vec![2, 3], vec![3]],
                &[DType::F32, DType::F32],
                &Attrs::new(),
            )
            .unwrap();
        assert_eq!(out, vec![vec![2, 3]]);
        // Runtime-deferred check: incompatible concrete shapes now fail.
        assert!(op
            .infer_shapes(
                &[vec![2], vec![3]],
                &[DType::F32, DType::F32],
                &Attrs::new()
            )
            .is_err());
    }

    #[test]
    fn split_shape_fn_multiple_outputs() {
        let op = lookup("split").unwrap();
        let out = op
            .infer_shapes(
                &[vec![4, 6]],
                &[DType::F32],
                &Attrs::new()
                    .with("parts", AttrValue::Int(2))
                    .with("axis", AttrValue::Int(1)),
            )
            .unwrap();
        assert_eq!(out, vec![vec![4, 3], vec![4, 3]]);
    }

    #[test]
    fn data_dependent_rejects_shape_only_query() {
        let op = lookup("arange").unwrap();
        assert!(op
            .infer_shapes(&[vec![], vec![], vec![]], &[DType::F32; 3], &Attrs::new())
            .is_err());
    }
}
