//! IR modules: collections of global functions and ADT definitions.

use crate::adt::{ConstructorDef, TypeDef};
use crate::expr::{Function, GlobalVar};
use crate::{IrError, Result};
use std::collections::BTreeMap;

/// A compilation unit: named functions plus ADT definitions.
///
/// The entry point is conventionally named `main`.
#[derive(Debug, Clone, Default)]
pub struct Module {
    functions: BTreeMap<GlobalVar, Function>,
    adts: BTreeMap<String, TypeDef>,
}

impl Module {
    /// Empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Insert or replace a function.
    pub fn add_function(&mut self, name: &str, func: Function) {
        self.functions.insert(GlobalVar::new(name), func);
    }

    /// Insert an ADT definition.
    pub fn add_adt(&mut self, def: TypeDef) {
        self.adts.insert(def.name.clone(), def);
    }

    /// Look up a function.
    ///
    /// # Errors
    /// Fails when the function is not defined.
    pub fn function(&self, name: &str) -> Result<&Function> {
        self.functions
            .get(&GlobalVar::new(name))
            .ok_or_else(|| IrError(format!("undefined function @{name}")))
    }

    /// Whether a function exists.
    pub fn has_function(&self, name: &str) -> bool {
        self.functions.contains_key(&GlobalVar::new(name))
    }

    /// Iterate functions in deterministic (name) order.
    pub fn functions(&self) -> impl Iterator<Item = (&GlobalVar, &Function)> {
        self.functions.iter()
    }

    /// Number of functions.
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Look up an ADT definition.
    ///
    /// # Errors
    /// Fails when the ADT is not defined.
    pub fn adt(&self, name: &str) -> Result<&TypeDef> {
        self.adts
            .get(name)
            .ok_or_else(|| IrError(format!("undefined ADT {name}")))
    }

    /// Find the constructor with the given name across all ADTs.
    ///
    /// # Errors
    /// Fails when no ADT declares the constructor.
    pub fn constructor(&self, name: &str) -> Result<&ConstructorDef> {
        self.adts
            .values()
            .find_map(|def| def.constructor(name))
            .ok_or_else(|| IrError(format!("undefined constructor {name}")))
    }

    /// Iterate ADTs in deterministic order.
    pub fn adts(&self) -> impl Iterator<Item = &TypeDef> {
        self.adts.values()
    }

    /// Replace `main` (or any function) returning the previous definition.
    pub fn update_function(&mut self, name: &str, func: Function) -> Option<Function> {
        self.functions.insert(GlobalVar::new(name), func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, Var};
    use crate::types::{TensorType, Type};
    use nimble_tensor::DType;

    fn id_func() -> Function {
        let x = Var::fresh("x", Type::Tensor(TensorType::scalar(DType::F32)));
        Function::new(vec![x.clone()], x.to_expr(), x.ty.clone())
    }

    #[test]
    fn add_and_lookup() {
        let mut m = Module::new();
        m.add_function("main", id_func());
        assert!(m.has_function("main"));
        assert!(m.function("main").is_ok());
        assert!(m.function("missing").is_err());
        assert_eq!(m.num_functions(), 1);
    }

    #[test]
    fn constructor_lookup_across_adts() {
        let mut m = Module::new();
        let elem = Type::Tensor(TensorType::scalar(DType::F32));
        m.add_adt(TypeDef::list(elem.clone()));
        m.add_adt(TypeDef::tree(elem));
        assert_eq!(m.constructor("Cons").unwrap().adt, "List");
        assert_eq!(m.constructor("Leaf").unwrap().adt, "Tree");
        assert!(m.constructor("Quux").is_err());
        assert_eq!(m.adts().count(), 2);
    }

    #[test]
    fn update_returns_previous() {
        let mut m = Module::new();
        m.add_function("f", id_func());
        let prev = m.update_function("f", id_func());
        assert!(prev.is_some());
        // update of a missing function inserts it
        let none = m.update_function("g", id_func());
        assert!(none.is_none());
        let _ = Expr::const_f32(0.0); // silence unused import in some cfgs
    }
}
