//! Operator attribute maps (static call-site parameters such as axes,
//! strides, or target dtypes).

use nimble_tensor::DType;
use std::collections::BTreeMap;
use std::fmt;

/// A single attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Integer attribute (axis, units, stride, …).
    Int(i64),
    /// Integer list attribute (permutation, new shape, …).
    IntVec(Vec<i64>),
    /// Floating-point attribute (epsilon, threshold, …).
    Float(f64),
    /// Boolean flag.
    Bool(bool),
    /// String attribute.
    Str(String),
    /// Data-type attribute (cast target).
    DType(DType),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::IntVec(v) => write!(f, "{v:?}"),
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v:?}"),
            AttrValue::DType(v) => write!(f, "{v}"),
        }
    }
}

/// An ordered attribute map attached to operator calls. Ordering makes
/// printing and hashing deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Attrs(pub BTreeMap<String, AttrValue>);

impl Attrs {
    /// Empty attribute map.
    pub fn new() -> Attrs {
        Attrs::default()
    }

    /// Builder-style insertion.
    ///
    /// ```
    /// use nimble_ir::{Attrs, AttrValue};
    /// let a = Attrs::new().with("axis", AttrValue::Int(1));
    /// assert_eq!(a.int("axis"), Some(1));
    /// ```
    pub fn with(mut self, key: &str, value: AttrValue) -> Attrs {
        self.0.insert(key.to_string(), value);
        self
    }

    /// Look up an integer attribute.
    pub fn int(&self, key: &str) -> Option<i64> {
        match self.0.get(key) {
            Some(AttrValue::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// Look up an integer attribute with a default.
    pub fn int_or(&self, key: &str, default: i64) -> i64 {
        self.int(key).unwrap_or(default)
    }

    /// Look up an integer-vector attribute.
    pub fn int_vec(&self, key: &str) -> Option<&[i64]> {
        match self.0.get(key) {
            Some(AttrValue::IntVec(v)) => Some(v),
            _ => None,
        }
    }

    /// Look up a float attribute.
    pub fn float(&self, key: &str) -> Option<f64> {
        match self.0.get(key) {
            Some(AttrValue::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// Look up a bool attribute.
    pub fn boolean(&self, key: &str) -> Option<bool> {
        match self.0.get(key) {
            Some(AttrValue::Bool(v)) => Some(*v),
            _ => None,
        }
    }

    /// Look up a string attribute.
    pub fn str(&self, key: &str) -> Option<&str> {
        match self.0.get(key) {
            Some(AttrValue::Str(v)) => Some(v),
            _ => None,
        }
    }

    /// Look up a dtype attribute.
    pub fn dtype(&self, key: &str) -> Option<DType> {
        match self.0.get(key) {
            Some(AttrValue::DType(v)) => Some(*v),
            _ => None,
        }
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Attrs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in &self.0 {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_lookups() {
        let a = Attrs::new()
            .with("axis", AttrValue::Int(2))
            .with("perm", AttrValue::IntVec(vec![1, 0]))
            .with("eps", AttrValue::Float(1e-5))
            .with("keep", AttrValue::Bool(true))
            .with("mode", AttrValue::Str("fast".into()))
            .with("to", AttrValue::DType(DType::I64));
        assert_eq!(a.int("axis"), Some(2));
        assert_eq!(a.int_vec("perm"), Some(&[1i64, 0][..]));
        assert_eq!(a.float("eps"), Some(1e-5));
        assert_eq!(a.boolean("keep"), Some(true));
        assert_eq!(a.str("mode"), Some("fast"));
        assert_eq!(a.dtype("to"), Some(DType::I64));
        // Wrong-typed lookups return None rather than panicking.
        assert_eq!(a.int("perm"), None);
        assert_eq!(a.float("axis"), None);
        assert_eq!(a.int("missing"), None);
        assert_eq!(a.int_or("missing", 7), 7);
    }

    #[test]
    fn display_deterministic() {
        let a = Attrs::new()
            .with("b", AttrValue::Int(2))
            .with("a", AttrValue::Int(1));
        assert_eq!(a.to_string(), "a=1, b=2");
    }
}
