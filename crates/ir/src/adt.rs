//! Algebraic data types for dynamic data structures.
//!
//! The paper's Tree-LSTM workload requires "dynamic data structures"
//! (Section 2); following Relay, these are expressed as ADTs with
//! constructors and consumed with `match`. Two built-in families cover the
//! evaluation models: recursive lists (LSTM unrolling without static
//! lengths) and binary trees (Tree-LSTM).

use crate::types::Type;

/// A constructor of an ADT, e.g. `Cons(Tensor, List)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstructorDef {
    /// Constructor name, unique within the module.
    pub name: String,
    /// Field types. [`Type::Adt`] fields make the type recursive.
    pub fields: Vec<Type>,
    /// The ADT this constructor belongs to.
    pub adt: String,
    /// Runtime tag stored in allocated ADT objects (checked by the VM's
    /// `GetTag` instruction).
    pub tag: u32,
}

/// An algebraic data type definition.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDef {
    /// Type name, e.g. `"Tree"`.
    pub name: String,
    /// Constructors in tag order.
    pub constructors: Vec<ConstructorDef>,
}

impl TypeDef {
    /// Define an ADT; constructor tags are assigned in declaration order.
    pub fn new(name: &str, constructors: Vec<(&str, Vec<Type>)>) -> TypeDef {
        TypeDef {
            name: name.to_string(),
            constructors: constructors
                .into_iter()
                .enumerate()
                .map(|(tag, (cname, fields))| ConstructorDef {
                    name: cname.to_string(),
                    fields,
                    adt: name.to_string(),
                    tag: tag as u32,
                })
                .collect(),
        }
    }

    /// Look up a constructor by name.
    pub fn constructor(&self, name: &str) -> Option<&ConstructorDef> {
        self.constructors.iter().find(|c| c.name == name)
    }

    /// A `List` of tensors of type `elem`: `Nil | Cons(elem, List)`.
    pub fn list(elem: Type) -> TypeDef {
        TypeDef::new(
            "List",
            vec![
                ("Nil", vec![]),
                ("Cons", vec![elem, Type::Adt("List".into())]),
            ],
        )
    }

    /// A binary `Tree` with tensor payloads at the leaves:
    /// `Leaf(elem) | Node(Tree, Tree)`.
    pub fn tree(elem: Type) -> TypeDef {
        TypeDef::new(
            "Tree",
            vec![
                ("Leaf", vec![elem]),
                (
                    "Node",
                    vec![Type::Adt("Tree".into()), Type::Adt("Tree".into())],
                ),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TensorType;
    use nimble_tensor::DType;

    #[test]
    fn tags_in_declaration_order() {
        let elem = Type::Tensor(TensorType::with_any(&[None, Some(4)], DType::F32));
        let list = TypeDef::list(elem.clone());
        assert_eq!(list.constructor("Nil").unwrap().tag, 0);
        assert_eq!(list.constructor("Cons").unwrap().tag, 1);
        assert_eq!(list.constructor("Cons").unwrap().fields.len(), 2);
        assert!(list.constructor("Missing").is_none());
    }

    #[test]
    fn tree_is_recursive() {
        let elem = Type::Tensor(TensorType::scalar(DType::F32));
        let tree = TypeDef::tree(elem);
        let node = tree.constructor("Node").unwrap();
        assert_eq!(node.fields, vec![Type::Adt("Tree".into()); 2]);
        assert_eq!(node.adt, "Tree");
    }
}
