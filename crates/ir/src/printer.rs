//! Text-format pretty printer for IR expressions and modules.
//!
//! The format is Relay-like and intended for debugging and golden tests,
//! not round-tripping:
//!
//! ```text
//! fn @main(%x_0: Tensor[(?, 4), float32]) {
//!   let %t0_1 = relu(%x_0)
//!   %t0_1
//! }
//! ```

use crate::expr::{Expr, ExprKind, Function, Pattern};
use crate::module::Module;
use std::fmt::Write;

/// Render a module as text.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    for def in module.adts() {
        let _ = write!(out, "type {} = ", def.name);
        for (i, c) in def.constructors.iter().enumerate() {
            if i > 0 {
                let _ = write!(out, " | ");
            }
            let _ = write!(out, "{}", c.name);
            if !c.fields.is_empty() {
                let fields: Vec<String> = c.fields.iter().map(|f| f.to_string()).collect();
                let _ = write!(out, "({})", fields.join(", "));
            }
        }
        let _ = writeln!(out);
    }
    for (name, func) in module.functions() {
        let _ = writeln!(out, "{}", print_function(&name.0, func));
    }
    out
}

/// Render a single function.
pub fn print_function(name: &str, func: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = func
        .params
        .iter()
        .map(|p| format!("{}: {}", p, p.ty))
        .collect();
    let _ = writeln!(out, "fn @{name}({}) {{", params.join(", "));
    let mut body = String::new();
    print_expr(&func.body, 1, &mut body);
    out.push_str(&body);
    out.push_str("\n}");
    out
}

/// Render an expression (single line for atoms, indented for blocks).
pub fn print_expr_string(expr: &Expr) -> String {
    let mut s = String::new();
    print_expr(expr, 0, &mut s);
    s
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn atom(expr: &Expr) -> String {
    match expr.kind() {
        ExprKind::Var(v) => v.to_string(),
        ExprKind::Global(g) => g.to_string(),
        ExprKind::Op(o) => o.clone(),
        ExprKind::Constructor(c) => c.clone(),
        ExprKind::Constant(t) => {
            if t.volume() == 1 {
                match t.dtype() {
                    nimble_tensor::DType::F32 => {
                        format!("{}f", t.as_f32().map(|v| v[0]).unwrap_or(f32::NAN))
                    }
                    nimble_tensor::DType::Bool => {
                        format!("{}", t.as_bool().map(|v| v[0]).unwrap_or(false))
                    }
                    _ => format!("const<{}>", t.shape()),
                }
            } else {
                format!("const<{}, {}>", t.shape(), t.dtype())
            }
        }
        ExprKind::Tuple(fields) => {
            let fs: Vec<String> = fields.iter().map(atom).collect();
            format!("({})", fs.join(", "))
        }
        ExprKind::TupleGet(t, i) => format!("{}.{}", atom(t), i),
        ExprKind::Call {
            callee,
            args,
            attrs,
        } => {
            let argstrs: Vec<String> = args.iter().map(atom).collect();
            if attrs.is_empty() {
                format!("{}({})", atom(callee), argstrs.join(", "))
            } else {
                format!("{}({}; {})", atom(callee), argstrs.join(", "), attrs)
            }
        }
        ExprKind::Func(_) => "<fn>".to_string(),
        ExprKind::Let { .. } => "<let>".to_string(),
        ExprKind::If { .. } => "<if>".to_string(),
        ExprKind::Match { .. } => "<match>".to_string(),
    }
}

fn print_pattern(p: &Pattern) -> String {
    match p {
        Pattern::Wildcard => "_".to_string(),
        Pattern::Bind(v) => v.to_string(),
        Pattern::Constructor { name, fields } => {
            if fields.is_empty() {
                name.clone()
            } else {
                let fs: Vec<String> = fields.iter().map(print_pattern).collect();
                format!("{}({})", name, fs.join(", "))
            }
        }
    }
}

fn print_expr(expr: &Expr, level: usize, out: &mut String) {
    match expr.kind() {
        ExprKind::Let { var, value, body } => {
            indent(level, out);
            let _ = write!(out, "let {} = ", var);
            match value.kind() {
                ExprKind::If { .. } | ExprKind::Match { .. } | ExprKind::Func(_) => {
                    let _ = writeln!(out);
                    print_expr(value, level + 1, out);
                    let _ = writeln!(out);
                }
                _ => {
                    let _ = writeln!(out, "{}", atom(value));
                }
            }
            print_expr(body, level, out);
        }
        ExprKind::If { cond, then, els } => {
            indent(level, out);
            let _ = writeln!(out, "if ({}) {{", atom(cond));
            print_expr(then, level + 1, out);
            let _ = writeln!(out);
            indent(level, out);
            let _ = writeln!(out, "}} else {{");
            print_expr(els, level + 1, out);
            let _ = writeln!(out);
            indent(level, out);
            let _ = write!(out, "}}");
        }
        ExprKind::Match { value, clauses } => {
            indent(level, out);
            let _ = writeln!(out, "match ({}) {{", atom(value));
            for c in clauses {
                indent(level + 1, out);
                let _ = writeln!(out, "{} => {{", print_pattern(&c.pattern));
                print_expr(&c.body, level + 2, out);
                let _ = writeln!(out);
                indent(level + 1, out);
                let _ = writeln!(out, "}}");
            }
            indent(level, out);
            let _ = write!(out, "}}");
        }
        ExprKind::Func(f) => {
            indent(level, out);
            let params: Vec<String> = f.params.iter().map(|p| p.to_string()).collect();
            let _ = writeln!(out, "fn({}) {{", params.join(", "));
            print_expr(&f.body, level + 1, out);
            let _ = writeln!(out);
            indent(level, out);
            let _ = write!(out, "}}");
        }
        _ => {
            indent(level, out);
            let _ = write!(out, "{}", atom(expr));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AttrValue, Attrs};
    use crate::builder::FunctionBuilder;
    use crate::types::TensorType;
    use nimble_tensor::DType;

    #[test]
    fn prints_function_with_lets() {
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::with_any(&[None, Some(4)], DType::F32));
        let y = fb.call("relu", vec![x], Attrs::new());
        let f = fb.finish(y);
        let text = print_function("main", &f);
        assert!(text.contains("fn @main(%x_"));
        assert!(text.contains("Tensor[(?, 4), float32]"));
        assert!(text.contains("let %t0_"));
        assert!(text.contains("relu("));
    }

    #[test]
    fn prints_attrs_and_if() {
        let cond = Expr::constant(nimble_tensor::Tensor::scalar_bool(true));
        let e = Expr::if_(
            cond,
            Expr::call_op(
                "sum",
                vec![Expr::const_f32(1.0)],
                Attrs::new().with("axis", AttrValue::Int(0)),
            ),
            Expr::const_f32(0.0),
        );
        let text = print_expr_string(&e);
        assert!(text.contains("if (true)"));
        assert!(text.contains("axis=0"));
        assert!(text.contains("else"));
    }

    #[test]
    fn prints_module_with_adt() {
        use crate::adt::TypeDef;
        use crate::expr::{Function, Var};
        use crate::types::Type;
        let mut m = Module::new();
        m.add_adt(TypeDef::list(Type::Tensor(TensorType::scalar(DType::F32))));
        let x = Var::fresh("x", Type::Adt("List".into()));
        m.add_function(
            "len",
            Function::new(vec![x.clone()], x.to_expr(), Type::Unknown),
        );
        let text = print_module(&m);
        assert!(text.contains("type List = Nil | Cons("));
        assert!(text.contains("fn @len"));
    }
}
