//! Registry-wide consistency: for every data-independent operator, the
//! shape function (derived from the type relation) must predict exactly
//! the shape the kernel produces — the invariant that makes pre-allocation
//! sound (paper Section 4.2: the shape function "compute[s] the output
//! shape for storage allocation").

use nimble_ir::attrs::{AttrValue, Attrs};
use nimble_ir::op::{self, ShapeFnKind};
use nimble_tensor::{DType, Tensor};
use rand::SeedableRng;

struct Case {
    op: &'static str,
    inputs: Vec<Tensor>,
    attrs: Attrs,
}

fn cases() -> Vec<Case> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let f = |shape: &[usize], rng: &mut rand::rngs::StdRng| Tensor::rand_f32(rng, shape, 1.0);
    let mut cases = Vec::new();
    let mut push = |op: &'static str, inputs: Vec<Tensor>, attrs: Attrs| {
        cases.push(Case { op, inputs, attrs })
    };

    for bin in ["add", "sub", "mul", "div", "maximum", "minimum", "power"] {
        push(
            bin,
            vec![f(&[2, 3], &mut rng), f(&[3], &mut rng)],
            Attrs::new(),
        );
    }
    for cmp in ["equal", "less", "greater"] {
        push(
            cmp,
            vec![f(&[4], &mut rng), f(&[4], &mut rng)],
            Attrs::new(),
        );
    }
    push(
        "logical_and",
        vec![
            Tensor::from_vec_bool(vec![true, false], &[2]).unwrap(),
            Tensor::from_vec_bool(vec![true, true], &[2]).unwrap(),
        ],
        Attrs::new(),
    );
    push(
        "logical_not",
        vec![Tensor::from_vec_bool(vec![true, false], &[2]).unwrap()],
        Attrs::new(),
    );
    for un in ["neg", "sqrt", "tanh", "sigmoid", "relu", "gelu", "softmax"] {
        push(un, vec![f(&[2, 5], &mut rng)], Attrs::new());
    }
    push(
        "where",
        vec![
            Tensor::from_vec_bool(vec![true, false, true], &[3]).unwrap(),
            f(&[3], &mut rng),
            f(&[3], &mut rng),
        ],
        Attrs::new(),
    );
    push(
        "dense",
        vec![f(&[3, 4], &mut rng), f(&[6, 4], &mut rng)],
        Attrs::new(),
    );
    push(
        "dense",
        vec![
            f(&[3, 4], &mut rng),
            f(&[6, 4], &mut rng),
            f(&[6], &mut rng),
        ],
        Attrs::new(),
    );
    push(
        "matmul",
        vec![f(&[3, 4], &mut rng), f(&[4, 5], &mut rng)],
        Attrs::new(),
    );
    push(
        "batch_matmul",
        vec![f(&[2, 3, 4], &mut rng), f(&[2, 4, 5], &mut rng)],
        Attrs::new(),
    );
    push(
        "concat",
        vec![f(&[2, 3], &mut rng), f(&[4, 3], &mut rng)],
        Attrs::new().with("axis", AttrValue::Int(0)),
    );
    push(
        "split",
        vec![f(&[4, 6], &mut rng)],
        Attrs::new()
            .with("parts", AttrValue::Int(3))
            .with("axis", AttrValue::Int(1)),
    );
    push(
        "slice",
        vec![f(&[4, 6], &mut rng)],
        Attrs::new()
            .with("begin", AttrValue::IntVec(vec![1, 2]))
            .with("end", AttrValue::IntVec(vec![3, 6])),
    );
    push(
        "transpose",
        vec![f(&[2, 3, 4], &mut rng)],
        Attrs::new().with("perm", AttrValue::IntVec(vec![2, 0, 1])),
    );
    push(
        "reshape",
        vec![f(&[4, 6], &mut rng)],
        Attrs::new().with("newshape", AttrValue::IntVec(vec![2, -1])),
    );
    push(
        "take",
        vec![
            f(&[10, 4], &mut rng),
            Tensor::from_vec_i64(vec![1, 3, 5], &[3]).unwrap(),
        ],
        Attrs::new(),
    );
    push(
        "expand_dims",
        vec![f(&[3, 4], &mut rng)],
        Attrs::new().with("axis", AttrValue::Int(1)),
    );
    push(
        "squeeze",
        vec![f(&[3, 1, 4], &mut rng)],
        Attrs::new().with("axis", AttrValue::Int(1)),
    );
    push(
        "cast",
        vec![f(&[2, 2], &mut rng)],
        Attrs::new().with("to", AttrValue::DType(DType::I64)),
    );
    push(
        "one_hot",
        vec![Tensor::from_vec_i64(vec![0, 2, 1], &[3]).unwrap()],
        Attrs::new().with("depth", AttrValue::Int(4)),
    );
    push(
        "zeros",
        vec![],
        Attrs::new().with("shape", AttrValue::IntVec(vec![2, 7])),
    );
    push(
        "layer_norm",
        vec![f(&[3, 8], &mut rng), f(&[8], &mut rng), f(&[8], &mut rng)],
        Attrs::new(),
    );
    for red in ["sum", "max", "mean"] {
        push(
            red,
            vec![f(&[3, 5], &mut rng)],
            Attrs::new().with("axis", AttrValue::Int(1)),
        );
        push(
            red,
            vec![f(&[3, 5], &mut rng)],
            Attrs::new()
                .with("axis", AttrValue::Int(0))
                .with("keepdims", AttrValue::Bool(true)),
        );
    }
    push(
        "argmax",
        vec![f(&[3, 5], &mut rng)],
        Attrs::new().with("axis", AttrValue::Int(1)),
    );
    push(
        "conv2d",
        vec![f(&[1, 3, 8, 8], &mut rng), f(&[4, 3, 3, 3], &mut rng)],
        Attrs::new()
            .with("stride", AttrValue::Int(2))
            .with("padding", AttrValue::Int(1)),
    );
    push(
        "max_pool2d",
        vec![f(&[1, 2, 8, 8], &mut rng)],
        Attrs::new()
            .with("kernel", AttrValue::Int(2))
            .with("stride", AttrValue::Int(2)),
    );
    push(
        "avg_pool2d",
        vec![f(&[1, 2, 8, 8], &mut rng)],
        Attrs::new()
            .with("kernel", AttrValue::Int(3))
            .with("stride", AttrValue::Int(1)),
    );
    push(
        "global_avg_pool",
        vec![f(&[2, 3, 4, 4], &mut rng)],
        Attrs::new(),
    );
    push(
        "batch_norm",
        vec![
            f(&[1, 3, 4, 4], &mut rng),
            f(&[3], &mut rng),
            f(&[3], &mut rng),
            f(&[3], &mut rng),
            Tensor::ones_f32(&[3]),
        ],
        Attrs::new(),
    );
    push("shape_of", vec![f(&[3, 7], &mut rng)], Attrs::new());
    push("device_copy", vec![f(&[5], &mut rng)], Attrs::new());
    cases
}

#[test]
fn shape_functions_predict_kernel_output_shapes() {
    let mut covered = std::collections::HashSet::new();
    for case in cases() {
        covered.insert(case.op);
        let def = op::lookup(case.op).unwrap();
        assert!(
            matches!(def.shape_fn, ShapeFnKind::DataIndependent),
            "{}: test only covers data-independent ops",
            case.op
        );
        let in_shapes: Vec<Vec<usize>> = case.inputs.iter().map(|t| t.dims().to_vec()).collect();
        let in_dtypes: Vec<DType> = case.inputs.iter().map(|t| t.dtype()).collect();
        let predicted = def
            .infer_shapes(&in_shapes, &in_dtypes, &case.attrs)
            .unwrap_or_else(|e| panic!("{}: shape fn failed: {e}", case.op));
        let outputs = (def.execute)(&case.inputs, &case.attrs)
            .unwrap_or_else(|e| panic!("{}: kernel failed: {e}", case.op));
        assert_eq!(
            predicted.len(),
            outputs.len(),
            "{}: output-count mismatch",
            case.op
        );
        for (p, o) in predicted.iter().zip(outputs.iter()) {
            assert_eq!(p, &o.dims().to_vec(), "{}: shape mismatch", case.op);
        }
    }
    // Every data-independent operator in the registry must appear above, so
    // adding an op without a test fails here.
    for (name, def) in op::registry() {
        if matches!(def.shape_fn, ShapeFnKind::DataIndependent) {
            assert!(covered.contains(name), "no consistency case for op {name}");
        }
    }
}

#[test]
fn dynamic_ops_report_their_modes() {
    for (name, mode) in [
        ("arange", "data"),
        ("unique", "data"),
        ("boolean_mask", "data"),
        ("nms", "bound"),
    ] {
        let def = op::lookup(name).unwrap();
        match (mode, def.shape_fn) {
            ("data", ShapeFnKind::DataDependent(_)) => {}
            ("bound", ShapeFnKind::UpperBound(_)) => {}
            other => panic!("{name}: unexpected mode {other:?}"),
        }
        assert!(def.is_fusion_barrier(), "{name} must be a fusion barrier");
    }
}
