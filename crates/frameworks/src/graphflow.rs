//! The define-then-run dataflow baseline (TensorFlow / MXNet-like).
//!
//! A model is a [`Graph`] built once and executed many times by a
//! ready-queue dataflow scheduler: per run, the executor allocates
//! node-state vectors, counts down input dependencies, and fires nodes as
//! they become ready — the scheduling machinery whose overhead the paper
//! attributes to frameworks on control-flow-heavy models.
//!
//! Dynamic control flow is available in both styles the paper describes:
//!
//! * TF1-style **`Switch`/`Merge`** primitives (dead branches simply never
//!   fire);
//! * functional **`WhileLoop`** (TF2/MXNet `while_loop`): condition and
//!   body subgraphs re-scheduled on every iteration;
//! * **`Foreach`** (MXNet): the body subgraph mapped over axis-0 slices.

use nimble_device::{GpuStream, TensorFuture};
use nimble_models::{BertModel, LstmModel};
use nimble_tensor::{kernels, Tensor};
use std::collections::VecDeque;
use std::sync::Arc;

/// Node id within a graph.
pub type NodeId = usize;

/// An edge source: producing node plus output port (Switch has two ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Port {
    /// Producing node.
    pub node: NodeId,
    /// Output port index.
    pub port: usize,
}

impl Port {
    /// Port 0 of a node.
    pub fn of(node: NodeId) -> Port {
        Port { node, port: 0 }
    }
}

type KernelFn = Arc<dyn Fn(&[Tensor]) -> Tensor + Send + Sync>;

/// Node operation.
#[derive(Clone)]
pub enum GraphOp {
    /// Model input by position.
    Placeholder(usize),
    /// Embedded constant (weights).
    Const(Tensor),
    /// Kernel invocation.
    Kernel {
        /// Diagnostic name.
        name: &'static str,
        /// The kernel closure.
        f: KernelFn,
    },
    /// TF1-style Switch: inputs `(data, pred)`; emits `data` on port 1
    /// when the predicate is true, port 0 otherwise.
    Switch,
    /// TF1-style Merge: fires with whichever input arrives (exactly one
    /// must).
    Merge,
    /// Functional while loop: `state' = body(state…, extras…)` while
    /// `cond(state…, extras…)`.
    WhileLoop {
        /// Condition subgraph (outputs one bool scalar).
        cond: Arc<Graph>,
        /// Body subgraph (outputs `state_arity` tensors).
        body: Arc<Graph>,
        /// Number of loop-carried state values.
        state_arity: usize,
    },
    /// MXNet-style foreach: maps `body(slice, state…)` over axis-0 slices
    /// of the first input.
    Foreach {
        /// Body subgraph: inputs `(slice, state…)`, outputs new state.
        body: Arc<Graph>,
        /// Number of loop-carried state values.
        state_arity: usize,
    },
}

impl std::fmt::Debug for GraphOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphOp::Placeholder(i) => write!(f, "Placeholder({i})"),
            GraphOp::Const(t) => write!(f, "Const{:?}", t.dims()),
            GraphOp::Kernel { name, .. } => write!(f, "Kernel({name})"),
            GraphOp::Switch => write!(f, "Switch"),
            GraphOp::Merge => write!(f, "Merge"),
            GraphOp::WhileLoop { .. } => write!(f, "WhileLoop"),
            GraphOp::Foreach { .. } => write!(f, "Foreach"),
        }
    }
}

/// A dataflow node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Operation.
    pub op: GraphOp,
    /// Input edges.
    pub inputs: Vec<Port>,
}

/// A dataflow graph (also used as loop subgraphs).
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    outputs: Vec<Port>,
    num_inputs: usize,
}

impl Graph {
    /// Empty graph expecting `num_inputs` feed values.
    pub fn new(num_inputs: usize) -> Graph {
        Graph {
            nodes: Vec::new(),
            outputs: Vec::new(),
            num_inputs,
        }
    }

    /// Add a node, returning its id.
    pub fn add(&mut self, op: GraphOp, inputs: Vec<Port>) -> NodeId {
        self.nodes.push(Node { op, inputs });
        self.nodes.len() - 1
    }

    /// Add a kernel node from a closure.
    pub fn kernel(
        &mut self,
        name: &'static str,
        inputs: Vec<Port>,
        f: impl Fn(&[Tensor]) -> Tensor + Send + Sync + 'static,
    ) -> NodeId {
        self.add(
            GraphOp::Kernel {
                name,
                f: Arc::new(f),
            },
            inputs,
        )
    }

    /// Mark graph outputs.
    pub fn set_outputs(&mut self, outputs: Vec<Port>) {
        self.outputs = outputs;
    }

    /// Number of nodes (diagnostics).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Execute with the ready-queue scheduler on the host CPU.
    ///
    /// # Panics
    /// Panics on malformed graphs (cycles outside loop bodies, missing
    /// outputs) — graphs are constructed by the model builders below.
    pub fn run(&self, feeds: &[Tensor]) -> Vec<Tensor> {
        self.run_with(feeds, None)
    }

    /// Execute, optionally launching each kernel node on a device stream
    /// and synchronizing per node — the per-op launch/sync cost structure
    /// of frameworks driving an accelerator with dynamic models.
    ///
    /// # Panics
    /// Same conditions as [`Graph::run`].
    pub fn run_with(&self, feeds: &[Tensor], stream: Option<&GpuStream>) -> Vec<Tensor> {
        assert_eq!(feeds.len(), self.num_inputs, "feed count mismatch");
        let n = self.nodes.len();
        // Per-run executor state: the allocation the paper counts against
        // graph runtimes.
        let mut values: Vec<Vec<Option<Tensor>>> =
            self.nodes
                .iter()
                .map(|node| match &node.op {
                    GraphOp::Switch => vec![None, None],
                    GraphOp::WhileLoop { state_arity, .. }
                    | GraphOp::Foreach { state_arity, .. } => vec![None; *state_arity],
                    _ => vec![None],
                })
                .collect();
        let mut pending: Vec<usize> = self
            .nodes
            .iter()
            .map(|node| match node.op {
                GraphOp::Merge => 1,
                _ => node.inputs.len(),
            })
            .collect();
        // Consumer lists for countdown.
        let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (id, node) in self.nodes.iter().enumerate() {
            for p in &node.inputs {
                consumers[p.node].push(id);
            }
        }
        let mut queue: VecDeque<NodeId> = (0..n).filter(|&i| pending[i] == 0).collect();
        let mut fired = vec![false; n];
        while let Some(id) = queue.pop_front() {
            if fired[id] {
                continue;
            }
            fired[id] = true;
            let node = &self.nodes[id];
            let gather = |values: &[Vec<Option<Tensor>>]| -> Vec<Tensor> {
                node.inputs
                    .iter()
                    .map(|p| {
                        values[p.node][p.port]
                            .clone()
                            .expect("dataflow input not ready")
                    })
                    .collect()
            };
            match &node.op {
                GraphOp::Placeholder(i) => {
                    values[id][0] = Some(feeds[*i].clone());
                }
                GraphOp::Const(t) => {
                    values[id][0] = Some(t.clone());
                }
                GraphOp::Kernel { f, .. } => {
                    let ins = gather(&values);
                    values[id][0] = Some(exec_kernel(stream, f, ins));
                }
                GraphOp::Switch => {
                    let ins = gather(&values);
                    let pred = ins[1].scalar_value_bool().expect("switch predicate");
                    let port = pred as usize;
                    values[id] = vec![None, None];
                    values[id][port] = Some(ins[0].clone());
                }
                GraphOp::Merge => {
                    // First available input wins.
                    let v = node
                        .inputs
                        .iter()
                        .find_map(|p| values[p.node][p.port].clone())
                        .expect("merge with no ready input");
                    values[id][0] = Some(v);
                }
                GraphOp::WhileLoop {
                    cond,
                    body,
                    state_arity,
                } => {
                    let ins = gather(&values);
                    let (state, extras) = ins.split_at(*state_arity);
                    let mut state = state.to_vec();
                    loop {
                        let mut feed = state.clone();
                        feed.extend(extras.iter().cloned());
                        let c = cond.run_with(&feed, stream);
                        if !c[0].scalar_value_bool().expect("loop condition") {
                            break;
                        }
                        let mut feed = state.clone();
                        feed.extend(extras.iter().cloned());
                        state = body.run_with(&feed, stream);
                    }
                    // Final loop state: one output port per state value.
                    values[id] = state.into_iter().map(Some).collect();
                }
                GraphOp::Foreach { body, state_arity } => {
                    let ins = gather(&values);
                    let stacked = &ins[0];
                    let mut state = ins[1..1 + state_arity].to_vec();
                    let steps = stacked.dims()[0];
                    for i in 0..steps {
                        let slice =
                            kernels::slice_axis(stacked, 0, i, i + 1).expect("foreach slice");
                        let mut feed = vec![slice];
                        feed.extend(state.iter().cloned());
                        state = body.run_with(&feed, stream);
                    }
                    values[id] = state.into_iter().map(Some).collect();
                }
            }
            // Count down consumers (Merge becomes ready on its first
            // arrival; Switch consumers only when their port filled).
            for &c in &consumers[id] {
                if fired[c] {
                    continue;
                }
                let ready = match self.nodes[c].op {
                    GraphOp::Merge => self.nodes[c]
                        .inputs
                        .iter()
                        .any(|p| values[p.node][p.port].is_some()),
                    _ => {
                        pending[c] = pending[c].saturating_sub(1);
                        pending[c] == 0
                            && self.nodes[c]
                                .inputs
                                .iter()
                                .all(|p| values[p.node][p.port].is_some())
                    }
                };
                if ready {
                    queue.push_back(c);
                }
            }
        }
        self.outputs
            .iter()
            .map(|p| {
                values[p.node][p.port]
                    .clone()
                    .expect("graph output not produced")
            })
            .collect()
    }
}

/// Run one kernel either inline (CPU) or as a launch + wait on the device
/// stream.
pub(crate) fn exec_kernel(stream: Option<&GpuStream>, f: &KernelFn, inputs: Vec<Tensor>) -> Tensor {
    match stream {
        None => f(&inputs),
        Some(s) => {
            let fut = TensorFuture::pending();
            let fut2 = fut.clone();
            let f2 = Arc::clone(f);
            s.launch(move || fut2.fulfill(vec![f2(&inputs)]));
            fut.wait().expect("kernel on stream").remove(0)
        }
    }
}

/// Which control-flow encoding a model builder uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// TensorFlow-style: `while_loop` + index + gather.
    TensorFlow,
    /// MXNet-style: `foreach` over stacked slices.
    MxNet,
}

/// A compiled LSTM session: graph built once, run per input.
#[derive(Debug)]
pub struct LstmSession {
    graph: Graph,
    hidden: usize,
    layers: usize,
}

impl LstmSession {
    /// Build the dataflow graph for an LSTM model.
    pub fn build(model: &LstmModel, flavor: Flavor) -> LstmSession {
        let n_layers = model.config.layers;
        let state_arity = 2 * n_layers;
        // ---- cell body subgraph ----
        // TF inputs: (i, h0, c0, …, stacked [T, I], len) — state (i, h, c…).
        // MX inputs: (slice [1, I], h0, c0, …).
        let body = {
            let extra = match flavor {
                Flavor::TensorFlow => 2,
                Flavor::MxNet => 0,
            };
            let state_in = match flavor {
                Flavor::TensorFlow => state_arity + 1, // + loop index
                Flavor::MxNet => state_arity,
            };
            let num_inputs = state_in
                + extra
                + match flavor {
                    Flavor::MxNet => 1, // the slice
                    Flavor::TensorFlow => 0,
                };
            let mut g = Graph::new(num_inputs);
            let ph: Vec<NodeId> = (0..num_inputs)
                .map(|i| g.add(GraphOp::Placeholder(i), vec![]))
                .collect();
            // Resolve x (the current token) per flavor.
            let (x_port, state_base, mut out_ports): (Port, usize, Vec<Port>) = match flavor {
                Flavor::TensorFlow => {
                    // inputs: 0 = i, 1..=2L = states, then stacked, len.
                    let i_ph = Port::of(ph[0]);
                    let stacked = Port::of(ph[state_arity + 1]);
                    let x = g.kernel("gather_row", vec![stacked, i_ph], |ins| {
                        let idx = ins[1].as_i64().expect("index")[0] as usize;
                        kernels::slice_axis(&ins[0], 0, idx, idx + 1).expect("gather")
                    });
                    // i + 1 carried as first state output.
                    let inext = g.kernel("incr", vec![i_ph], |ins| {
                        Tensor::from_vec_i64(vec![ins[0].as_i64().expect("i")[0] + 1], &[1])
                            .expect("i+1")
                    });
                    (Port::of(x), 1, vec![Port::of(inext)])
                }
                Flavor::MxNet => (Port::of(ph[0]), 1, vec![]),
            };
            let mut x = x_port;
            for l in 0..n_layers {
                let p = &model.layers[l];
                let h = Port::of(ph[state_base + 2 * l]);
                let c = Port::of(ph[state_base + 2 * l + 1]);
                let w_ih = p.w_ih.clone();
                let w_hh = p.w_hh.clone();
                let bias = p.bias.clone();
                let gates = g.kernel("lstm_gates", vec![x, h], move |ins| {
                    kernels::add(
                        &kernels::add(
                            &kernels::dense(&ins[0], &w_ih, None).expect("wih"),
                            &kernels::dense(&ins[1], &w_hh, None).expect("whh"),
                        )
                        .expect("sum"),
                        &bias,
                    )
                    .expect("bias")
                });
                let c_new = g.kernel("cell_c", vec![Port::of(gates), c], |ins| {
                    let parts = kernels::split(&ins[0], 4, 1).expect("split");
                    let i = kernels::sigmoid(&parts[0]).expect("i");
                    let f = kernels::sigmoid(&parts[1]).expect("f");
                    let gg = kernels::tanh(&parts[2]).expect("g");
                    kernels::add(
                        &kernels::mul(&f, &ins[1]).expect("fc"),
                        &kernels::mul(&i, &gg).expect("ig"),
                    )
                    .expect("c")
                });
                let h_new = g.kernel("cell_h", vec![Port::of(gates), Port::of(c_new)], |ins| {
                    let parts = kernels::split(&ins[0], 4, 1).expect("split");
                    let o = kernels::sigmoid(&parts[3]).expect("o");
                    kernels::mul(&o, &kernels::tanh(&ins[1]).expect("tanh")).expect("h")
                });
                out_ports.push(Port::of(h_new));
                out_ports.push(Port::of(c_new));
                x = Port::of(h_new);
            }
            let mut g2 = g;
            g2.set_outputs(out_ports);
            Arc::new(g2)
        };

        // ---- top-level graph ----
        let mut g = Graph::new(1); // feed: stacked tokens [T, I]
        let stacked = g.add(GraphOp::Placeholder(0), vec![]);
        let zero = Tensor::zeros(nimble_tensor::DType::F32, &[1, model.config.hidden]);
        match flavor {
            Flavor::TensorFlow => {
                // cond: i < len
                let cond = {
                    let mut c = Graph::new(state_arity + 3);
                    let i = c.add(GraphOp::Placeholder(0), vec![]);
                    let len = c.add(GraphOp::Placeholder(state_arity + 2), vec![]);
                    let lt = c.kernel("less", vec![Port::of(i), Port::of(len)], |ins| {
                        kernels::less(&ins[0], &ins[1]).expect("less")
                    });
                    // Condition must be a scalar bool.
                    let sq = c.kernel("squeeze", vec![Port::of(lt)], |ins| {
                        ins[0].reshaped(&[]).expect("scalar")
                    });
                    c.set_outputs(vec![Port::of(sq)]);
                    Arc::new(c)
                };
                let i0 = g.add(
                    GraphOp::Const(Tensor::from_vec_i64(vec![0], &[1]).expect("i0")),
                    vec![],
                );
                let len = g.kernel("length", vec![Port::of(stacked)], |ins| {
                    Tensor::from_vec_i64(vec![ins[0].dims()[0] as i64], &[1]).expect("len")
                });
                let mut loop_inputs = vec![Port::of(i0)];
                let zeros: Vec<NodeId> = (0..state_arity)
                    .map(|_| g.add(GraphOp::Const(zero.clone()), vec![]))
                    .collect();
                loop_inputs.extend(zeros.iter().map(|&z| Port::of(z)));
                loop_inputs.push(Port::of(stacked));
                loop_inputs.push(Port::of(len));
                let wl = g.add(
                    GraphOp::WhileLoop {
                        cond,
                        body: Arc::clone(&body),
                        state_arity: state_arity + 1,
                    },
                    loop_inputs,
                );
                // Output: final hidden state of the top layer (state
                // layout is [i, h0, c0, h1, c1, …]).
                g.set_outputs(vec![Port {
                    node: wl,
                    port: 2 * n_layers - 1,
                }]);
            }
            Flavor::MxNet => {
                let mut inputs = vec![Port::of(stacked)];
                let zeros: Vec<NodeId> = (0..state_arity)
                    .map(|_| g.add(GraphOp::Const(zero.clone()), vec![]))
                    .collect();
                inputs.extend(zeros.iter().map(|&z| Port::of(z)));
                let fe = g.add(
                    GraphOp::Foreach {
                        body: Arc::clone(&body),
                        state_arity,
                    },
                    inputs,
                );
                // Output: final hidden state of the top layer (state
                // layout is [h0, c0, h1, c1, …]).
                g.set_outputs(vec![Port {
                    node: fe,
                    port: 2 * (n_layers - 1),
                }]);
            }
        }
        LstmSession {
            graph: g,
            hidden: model.config.hidden,
            layers: n_layers,
        }
    }

    /// Run on a token sequence (tokens stacked to `[T, input]`).
    pub fn run(&self, tokens: &[Tensor]) -> Tensor {
        self.run_with(tokens, None)
    }

    /// Run with an optional device stream (see [`Graph::run_with`]).
    pub fn run_with(&self, tokens: &[Tensor], stream: Option<&GpuStream>) -> Tensor {
        let stacked = if tokens.is_empty() {
            Tensor::zeros(nimble_tensor::DType::F32, &[0, 1])
        } else {
            let rows: Vec<&Tensor> = tokens.iter().collect();
            kernels::concat(&rows, 0).expect("stack tokens")
        };
        let out = self.graph.run_with(&[stacked], stream);
        let _ = (self.hidden, self.layers);
        out[0].clone()
    }
}

/// A compiled BERT session (straight-line graph, shape-polymorphic
/// kernels).
#[derive(Debug)]
pub struct BertSession {
    graph: Graph,
}

impl BertSession {
    /// Build the dataflow graph for a BERT model.
    pub fn build(model: &BertModel) -> BertSession {
        let cfg = model.config;
        let (heads, dh, h) = (cfg.heads, cfg.head_dim(), cfg.hidden);
        let mut g = Graph::new(2);
        let tok = g.add(GraphOp::Placeholder(0), vec![]);
        let pos = g.add(GraphOp::Placeholder(1), vec![]);
        let embed = model.embed.clone();
        let te = g.kernel("tok_embed", vec![Port::of(tok)], move |ins| {
            kernels::take(&embed, &ins[0]).expect("take")
        });
        let pembed = model.pos_embed.clone();
        let pe = g.kernel("pos_embed", vec![Port::of(pos)], move |ins| {
            kernels::take(&pembed, &ins[0]).expect("take")
        });
        let mut x = g.kernel("embed_sum", vec![Port::of(te), Port::of(pe)], |ins| {
            kernels::add(&ins[0], &ins[1]).expect("add")
        });
        for p in &model.layers {
            let (wq, bq) = (p.wq.clone(), p.bq.clone());
            let (wk, bk) = (p.wk.clone(), p.bk.clone());
            let (wv, bv) = (p.wv.clone(), p.bv.clone());
            let q = g.kernel("q", vec![Port::of(x)], move |ins| {
                kernels::dense(&ins[0], &wq, Some(&bq)).expect("q")
            });
            let k = g.kernel("k", vec![Port::of(x)], move |ins| {
                kernels::dense(&ins[0], &wk, Some(&bk)).expect("k")
            });
            let v = g.kernel("v", vec![Port::of(x)], move |ins| {
                kernels::dense(&ins[0], &wv, Some(&bv)).expect("v")
            });
            let attn = g.kernel(
                "attention",
                vec![Port::of(q), Port::of(k), Port::of(v)],
                move |ins| {
                    let s = ins[0].dims()[0];
                    let split = |t: &Tensor, perm: &[usize]| {
                        kernels::transpose(&t.reshaped(&[s, heads, dh]).expect("r"), perm)
                            .expect("t")
                    };
                    let qh = split(&ins[0], &[1, 0, 2]);
                    let kh = split(&ins[1], &[1, 2, 0]);
                    let vh = split(&ins[2], &[1, 0, 2]);
                    let scores = kernels::mul(
                        &kernels::batch_matmul(&qh, &kh).expect("qk"),
                        &Tensor::scalar_f32(1.0 / (dh as f32).sqrt()),
                    )
                    .expect("scale");
                    let probs = kernels::softmax(&scores).expect("softmax");
                    let ctx = kernels::batch_matmul(&probs, &vh).expect("pv");
                    kernels::transpose(&ctx, &[1, 0, 2])
                        .expect("merge")
                        .reshaped(&[s, h])
                        .expect("merge reshape")
                },
            );
            let (wo, bo) = (p.wo.clone(), p.bo.clone());
            let proj = g.kernel("o_proj", vec![Port::of(attn)], move |ins| {
                kernels::dense(&ins[0], &wo, Some(&bo)).expect("wo")
            });
            let ln1 = p.ln1.clone();
            let x1 = g.kernel("ln1", vec![Port::of(x), Port::of(proj)], move |ins| {
                kernels::layer_norm(
                    &kernels::add(&ins[0], &ins[1]).expect("res"),
                    &ln1.0,
                    &ln1.1,
                    1e-5,
                )
                .expect("ln")
            });
            let (w1, b1) = (p.w1.clone(), p.b1.clone());
            let f1 = g.kernel("ffn1", vec![Port::of(x1)], move |ins| {
                kernels::gelu(&kernels::dense(&ins[0], &w1, Some(&b1)).expect("w1")).expect("gelu")
            });
            let (w2, b2) = (p.w2.clone(), p.b2.clone());
            let f2 = g.kernel("ffn2", vec![Port::of(f1)], move |ins| {
                kernels::dense(&ins[0], &w2, Some(&b2)).expect("w2")
            });
            let ln2 = p.ln2.clone();
            x = g.kernel("ln2", vec![Port::of(x1), Port::of(f2)], move |ins| {
                kernels::layer_norm(
                    &kernels::add(&ins[0], &ins[1]).expect("res"),
                    &ln2.0,
                    &ln2.1,
                    1e-5,
                )
                .expect("ln")
            });
        }
        g.set_outputs(vec![Port::of(x)]);
        BertSession { graph: g }
    }

    /// Run on token ids.
    pub fn run(&self, tokens: &Tensor, positions: &Tensor) -> Tensor {
        self.run_with(tokens, positions, None)
    }

    /// Run with an optional device stream (see [`Graph::run_with`]).
    pub fn run_with(
        &self,
        tokens: &Tensor,
        positions: &Tensor,
        stream: Option<&GpuStream>,
    ) -> Tensor {
        self.graph
            .run_with(&[tokens.clone(), positions.clone()], stream)
            .remove(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_models::{BertConfig, LstmConfig};
    use rand::SeedableRng;

    #[test]
    fn switch_merge_conditional() {
        // if pred { x * 2 } else { x + 10 }
        let mut g = Graph::new(2);
        let x = g.add(GraphOp::Placeholder(0), vec![]);
        let pred = g.add(GraphOp::Placeholder(1), vec![]);
        let sw = g.add(GraphOp::Switch, vec![Port::of(x), Port::of(pred)]);
        let double = g.kernel("double", vec![Port { node: sw, port: 1 }], |ins| {
            kernels::mul(&ins[0], &Tensor::scalar_f32(2.0)).expect("mul")
        });
        let plus = g.kernel("plus10", vec![Port { node: sw, port: 0 }], |ins| {
            kernels::add(&ins[0], &Tensor::scalar_f32(10.0)).expect("add")
        });
        let merge = g.add(GraphOp::Merge, vec![Port::of(double), Port::of(plus)]);
        g.set_outputs(vec![Port::of(merge)]);
        let t = Tensor::scalar_f32(5.0);
        let out_true = g.run(&[t.clone(), Tensor::scalar_bool(true)]);
        assert_eq!(out_true[0].scalar_value_f32().unwrap(), 10.0);
        let out_false = g.run(&[t, Tensor::scalar_bool(false)]);
        assert_eq!(out_false[0].scalar_value_f32().unwrap(), 15.0);
    }

    #[test]
    fn foreach_lstm_matches_reference() {
        let model = LstmModel::new(LstmConfig {
            input: 4,
            hidden: 5,
            layers: 1,
            seed: 1,
        });
        let session = LstmSession::build(&model, Flavor::MxNet);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let tokens = model.random_tokens(&mut rng, 6);
        let got = session.run(&tokens);
        let want = model.reference(&tokens);
        for (a, b) in got.as_f32().unwrap().iter().zip(want.as_f32().unwrap()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn foreach_two_layer_lstm() {
        let model = LstmModel::new(LstmConfig {
            input: 3,
            hidden: 4,
            layers: 2,
            seed: 3,
        });
        let session = LstmSession::build(&model, Flavor::MxNet);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let tokens = model.random_tokens(&mut rng, 5);
        let got = session.run(&tokens);
        let want = model.reference(&tokens);
        for (a, b) in got.as_f32().unwrap().iter().zip(want.as_f32().unwrap()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn bert_session_matches_reference() {
        let model = BertModel::new(BertConfig {
            layers: 2,
            hidden: 8,
            heads: 2,
            ffn: 16,
            vocab: 30,
            max_pos: 64,
            seed: 5,
        });
        let session = BertSession::build(&model);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let ids = model.random_tokens(&mut rng, 7);
        let (tok, pos) = model.inputs(&ids);
        let got = session.run(&tok, &pos);
        let want = model.reference(&ids);
        for (a, b) in got.as_f32().unwrap().iter().zip(want.as_f32().unwrap()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn graph_reuse_across_lengths() {
        // Define-then-run: one graph, many shapes.
        let model = BertModel::new(BertConfig {
            layers: 1,
            hidden: 8,
            heads: 2,
            ffn: 16,
            vocab: 30,
            max_pos: 64,
            seed: 5,
        });
        let session = BertSession::build(&model);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for len in [1usize, 4, 9] {
            let ids = model.random_tokens(&mut rng, len);
            let (tok, pos) = model.inputs(&ids);
            let out = session.run(&tok, &pos);
            assert_eq!(out.dims(), &[len, 8]);
        }
    }
}
