//! The define-by-run baseline (PyTorch-like).
//!
//! Host-language control flow drives one kernel at a time. Per the paper's
//! analysis (Section 2.1), the costs are structural, and all of them are
//! real work here:
//!
//! * **per-op dispatch** — every call resolves the operator through a
//!   string-keyed registry (the dynamic-dispatch layers of an eager
//!   framework);
//! * **trace construction** — every op appends a boxed node to an
//!   autograd-style tape, rebuilt from scratch on every run ("each
//!   execution path requires the creation of a path specialized static
//!   data flow graph");
//! * **no fusion, no memory planning** — each op allocates a fresh output.

use nimble_device::{GpuStream, TensorFuture};
use nimble_models::data::TreeNode;
use nimble_models::{BertModel, LstmModel, TreeLstmModel};
use nimble_tensor::{kernels, Tensor};
use std::collections::HashMap;
use std::sync::Arc;

/// Kernel function type in the eager registry.
type EagerOp = fn(&[&Tensor]) -> Tensor;

fn registry() -> &'static HashMap<&'static str, EagerOp> {
    static REG: std::sync::OnceLock<HashMap<&'static str, EagerOp>> = std::sync::OnceLock::new();
    REG.get_or_init(|| {
        let mut m: HashMap<&'static str, EagerOp> = HashMap::new();
        m.insert("add", |a| kernels::add(a[0], a[1]).expect("add"));
        m.insert("mul", |a| kernels::mul(a[0], a[1]).expect("mul"));
        m.insert("sigmoid", |a| kernels::sigmoid(a[0]).expect("sigmoid"));
        m.insert("tanh", |a| kernels::tanh(a[0]).expect("tanh"));
        m.insert("gelu", |a| kernels::gelu(a[0]).expect("gelu"));
        m.insert("softmax", |a| kernels::softmax(a[0]).expect("softmax"));
        m.insert("dense", |a| {
            kernels::dense(a[0], a[1], a.get(2).copied()).expect("dense")
        });
        m.insert("batch_matmul", |a| {
            kernels::batch_matmul(a[0], a[1]).expect("batch_matmul")
        });
        m.insert("take", |a| kernels::take(a[0], a[1]).expect("take"));
        m.insert("layer_norm", |a| {
            kernels::layer_norm(a[0], a[1], a[2], 1e-5).expect("layer_norm")
        });
        m
    })
}

/// One node of the per-run trace (the autograd tape).
#[derive(Debug)]
struct TraceNode {
    /// Operator name.
    #[allow(dead_code)]
    op: &'static str,
    /// Tape indices of the inputs.
    #[allow(dead_code)]
    inputs: Vec<usize>,
    /// Output value (kept alive by the tape, as autograd would).
    #[allow(dead_code)]
    output: Tensor,
}

/// A value in the eager engine: tensor plus its tape position.
#[derive(Debug, Clone)]
pub struct EagerTensor {
    /// The payload.
    pub data: Tensor,
    node: usize,
}

/// A define-by-run execution context; create one per inference (as a
/// framework creates a fresh graph per run on dynamic models).
#[derive(Debug, Default)]
pub struct EagerContext {
    // Nodes are deliberately boxed: real eager frameworks heap-allocate one
    // autograd node per op, and that cost is part of what this baseline
    // models.
    #[allow(clippy::vec_box)]
    tape: Vec<Box<TraceNode>>,
    stream: Option<Arc<GpuStream>>,
}

impl EagerContext {
    /// Fresh context (empty tape).
    pub fn new() -> EagerContext {
        EagerContext::default()
    }

    /// Context that launches every op on a device stream and synchronizes
    /// per op — eager-framework accelerator semantics.
    pub fn on_stream(stream: Arc<GpuStream>) -> EagerContext {
        EagerContext {
            tape: Vec::new(),
            stream: Some(stream),
        }
    }

    /// Number of ops recorded so far.
    pub fn ops_recorded(&self) -> usize {
        self.tape.len()
    }

    /// Import a host tensor as a leaf value.
    pub fn input(&mut self, t: Tensor) -> EagerTensor {
        self.tape.push(Box::new(TraceNode {
            op: "input",
            inputs: Vec::new(),
            output: t.clone(),
        }));
        EagerTensor {
            data: t,
            node: self.tape.len() - 1,
        }
    }

    /// Run one operator eagerly: registry lookup → kernel → tape append.
    ///
    /// # Panics
    /// Panics on unknown ops or kernel shape errors (the models in this
    /// crate only emit valid programs).
    pub fn op(&mut self, name: &'static str, args: &[&EagerTensor]) -> EagerTensor {
        let f = registry()
            .get(name)
            .unwrap_or_else(|| panic!("eager registry has no op {name}"));
        let out = match &self.stream {
            None => {
                let tensors: Vec<&Tensor> = args.iter().map(|a| &a.data).collect();
                f(&tensors)
            }
            Some(s) => {
                let owned: Vec<Tensor> = args.iter().map(|a| a.data.clone()).collect();
                let fut = TensorFuture::pending();
                let fut2 = fut.clone();
                let f2 = *f;
                s.launch(move || {
                    let refs: Vec<&Tensor> = owned.iter().collect();
                    fut2.fulfill(vec![f2(&refs)]);
                });
                fut.wait().expect("eager op on stream").remove(0)
            }
        };
        self.tape.push(Box::new(TraceNode {
            op: name,
            inputs: args.iter().map(|a| a.node).collect(),
            output: out.clone(),
        }));
        EagerTensor {
            data: out,
            node: self.tape.len() - 1,
        }
    }
}

/// LSTM inference: host-language loop over tokens, fresh trace per call.
pub fn lstm_forward(model: &LstmModel, tokens: &[Tensor]) -> Tensor {
    lstm_forward_with(model, tokens, None)
}

/// LSTM inference with an optional device stream.
pub fn lstm_forward_with(
    model: &LstmModel,
    tokens: &[Tensor],
    stream: Option<Arc<GpuStream>>,
) -> Tensor {
    let mut ctx = match stream {
        Some(s) => EagerContext::on_stream(s),
        None => EagerContext::new(),
    };
    let zero = Tensor::zeros(nimble_tensor::DType::F32, &[1, model.config.hidden]);
    let mut states: Vec<(EagerTensor, EagerTensor)> = (0..model.config.layers)
        .map(|_| (ctx.input(zero.clone()), ctx.input(zero.clone())))
        .collect();
    let weights: Vec<(EagerTensor, EagerTensor, EagerTensor)> = model
        .layers
        .iter()
        .map(|l| {
            (
                ctx.input(l.w_ih.clone()),
                ctx.input(l.w_hh.clone()),
                ctx.input(l.bias.clone()),
            )
        })
        .collect();
    for t in tokens {
        let mut x = ctx.input(t.clone());
        for l in 0..model.config.layers {
            let (w_ih, w_hh, bias) = (
                weights[l].0.clone(),
                weights[l].1.clone(),
                weights[l].2.clone(),
            );
            let (h, c) = states[l].clone();
            let g1 = ctx.op("dense", &[&x, &w_ih]);
            let g2 = ctx.op("dense", &[&h, &w_hh]);
            let g3 = ctx.op("add", &[&g1, &g2]);
            let gates = ctx.op("add", &[&g3, &bias]);
            // Eager frameworks slice gates via narrow/chunk; kernels::split
            // plays that role but is not in the registry (multi-output), so
            // run it directly and import the pieces (as `chunk` returning
            // views would).
            let parts = kernels::split(&gates.data, 4, 1).expect("split");
            let pi = ctx.input(parts[0].clone());
            let pf = ctx.input(parts[1].clone());
            let pg = ctx.input(parts[2].clone());
            let po = ctx.input(parts[3].clone());
            let i = ctx.op("sigmoid", &[&pi]);
            let f = ctx.op("sigmoid", &[&pf]);
            let g = ctx.op("tanh", &[&pg]);
            let o = ctx.op("sigmoid", &[&po]);
            let fc = ctx.op("mul", &[&f, &c]);
            let ig = ctx.op("mul", &[&i, &g]);
            let c_new = ctx.op("add", &[&fc, &ig]);
            let tc = ctx.op("tanh", &[&c_new]);
            let h_new = ctx.op("mul", &[&o, &tc]);
            x = h_new.clone();
            states[l] = (h_new, c_new);
        }
    }
    states[model.config.layers - 1].0.data.clone()
}

/// Tree-LSTM inference: host-language recursion over the tree ("PyTorch
/// uses Python to handle the tree data structure").
pub fn tree_lstm_forward(model: &TreeLstmModel, tree: &TreeNode) -> Tensor {
    tree_lstm_forward_with(model, tree, None)
}

/// Tree-LSTM inference with an optional device stream.
pub fn tree_lstm_forward_with(
    model: &TreeLstmModel,
    tree: &TreeNode,
    stream: Option<Arc<GpuStream>>,
) -> Tensor {
    let mut ctx = match stream {
        Some(s) => EagerContext::on_stream(s),
        None => EagerContext::new(),
    };
    let (h, _) = tree_rec(model, &mut ctx, tree);
    let w = ctx.input(model.w_cls.clone());
    ctx.op("dense", &[&h, &w]).data
}

fn tree_rec(
    model: &TreeLstmModel,
    ctx: &mut EagerContext,
    tree: &TreeNode,
) -> (EagerTensor, EagerTensor) {
    match tree {
        TreeNode::Leaf(x) => {
            let xv = ctx.input(x.clone());
            let w = ctx.input(model.w_iou.clone());
            let b = ctx.input(model.b_iou.clone());
            let pre = ctx.op("dense", &[&xv, &w]);
            let iou = ctx.op("add", &[&pre, &b]);
            let parts = kernels::split(&iou.data, 3, 1).expect("split");
            let pi = ctx.input(parts[0].clone());
            let po = ctx.input(parts[1].clone());
            let pu = ctx.input(parts[2].clone());
            let i = ctx.op("sigmoid", &[&pi]);
            let o = ctx.op("sigmoid", &[&po]);
            let u = ctx.op("tanh", &[&pu]);
            let c = ctx.op("mul", &[&i, &u]);
            let tc = ctx.op("tanh", &[&c]);
            let h = ctx.op("mul", &[&o, &tc]);
            (h, c)
        }
        TreeNode::Node(l, r) => {
            let (hl, cl) = tree_rec(model, ctx, l);
            let (hr, cr) = tree_rec(model, ctx, r);
            let hs = ctx.op("add", &[&hl, &hr]);
            let u_iou = ctx.input(model.u_iou.clone());
            let b_iou = ctx.input(model.b_iou.clone());
            let pre = ctx.op("dense", &[&hs, &u_iou]);
            let iou = ctx.op("add", &[&pre, &b_iou]);
            let parts = kernels::split(&iou.data, 3, 1).expect("split");
            let pi = ctx.input(parts[0].clone());
            let po = ctx.input(parts[1].clone());
            let pu = ctx.input(parts[2].clone());
            let i = ctx.op("sigmoid", &[&pi]);
            let o = ctx.op("sigmoid", &[&po]);
            let u = ctx.op("tanh", &[&pu]);
            let uf = ctx.input(model.u_f.clone());
            let bf = ctx.input(model.b_f.clone());
            let forget = |ctx: &mut EagerContext, h: &EagerTensor| {
                let d = ctx.op("dense", &[h, &uf]);
                let s = ctx.op("add", &[&d, &bf]);
                ctx.op("sigmoid", &[&s])
            };
            let fl = forget(ctx, &hl);
            let fr = forget(ctx, &hr);
            let iu = ctx.op("mul", &[&i, &u]);
            let flc = ctx.op("mul", &[&fl, &cl]);
            let frc = ctx.op("mul", &[&fr, &cr]);
            let sum = ctx.op("add", &[&flc, &frc]);
            let c = ctx.op("add", &[&iu, &sum]);
            let tc = ctx.op("tanh", &[&c]);
            let h = ctx.op("mul", &[&o, &tc]);
            (h, c)
        }
    }
}

/// BERT inference: per-op eager execution, no fusion.
pub fn bert_forward(model: &BertModel, token_ids: &[i64]) -> Tensor {
    bert_forward_with(model, token_ids, None)
}

/// BERT inference with an optional device stream.
pub fn bert_forward_with(
    model: &BertModel,
    token_ids: &[i64],
    stream: Option<Arc<GpuStream>>,
) -> Tensor {
    let mut ctx = match stream {
        Some(s) => EagerContext::on_stream(s),
        None => EagerContext::new(),
    };
    let s = token_ids.len();
    let (tok, pos) = model.inputs(token_ids);
    let tok = ctx.input(tok);
    let pos = ctx.input(pos);
    let embed = ctx.input(model.embed.clone());
    let pembed = ctx.input(model.pos_embed.clone());
    let te = ctx.op("take", &[&embed, &tok]);
    let pe = ctx.op("take", &[&pembed, &pos]);
    let mut x = ctx.op("add", &[&te, &pe]);
    let cfg = &model.config;
    let (heads, dh, h) = (cfg.heads, cfg.head_dim(), cfg.hidden);
    for p in &model.layers {
        let proj = |ctx: &mut EagerContext, w: &Tensor, b: &Tensor, x: &EagerTensor| {
            let wv = ctx.input(w.clone());
            let bv = ctx.input(b.clone());
            ctx.op("dense", &[x, &wv, &bv])
        };
        let q = proj(&mut ctx, &p.wq, &p.bq, &x);
        let k = proj(&mut ctx, &p.wk, &p.bk, &x);
        let v = proj(&mut ctx, &p.wv, &p.bv, &x);
        // Reshape/transpose happen as framework "view" ops (not routed
        // through the registry, like tensor.view in PyTorch).
        let split_heads = |ctx: &mut EagerContext, t: &EagerTensor, perm: &[usize]| {
            let r = kernels::transpose(&t.data.reshaped(&[s, heads, dh]).expect("reshape"), perm)
                .expect("transpose");
            ctx.input(r)
        };
        let qh = split_heads(&mut ctx, &q, &[1, 0, 2]);
        let kh = split_heads(&mut ctx, &k, &[1, 2, 0]);
        let vh = split_heads(&mut ctx, &v, &[1, 0, 2]);
        let scores = ctx.op("batch_matmul", &[&qh, &kh]);
        let scale = ctx.input(Tensor::scalar_f32(1.0 / (dh as f32).sqrt()));
        let scaled = ctx.op("mul", &[&scores, &scale]);
        let probs = ctx.op("softmax", &[&scaled]);
        let ctxv = ctx.op("batch_matmul", &[&probs, &vh]);
        let merged = {
            let m = kernels::transpose(&ctxv.data, &[1, 0, 2])
                .expect("merge")
                .reshaped(&[s, h])
                .expect("merge reshape");
            ctx.input(m)
        };
        let attn = proj(&mut ctx, &p.wo, &p.bo, &merged);
        let res1 = ctx.op("add", &[&x, &attn]);
        let g1 = ctx.input(p.ln1.0.clone());
        let b1 = ctx.input(p.ln1.1.clone());
        let x1 = ctx.op("layer_norm", &[&res1, &g1, &b1]);
        let f1 = proj(&mut ctx, &p.w1, &p.b1, &x1);
        let gelu = ctx.op("gelu", &[&f1]);
        let f2 = proj(&mut ctx, &p.w2, &p.b2, &gelu);
        let res2 = ctx.op("add", &[&x1, &f2]);
        let g2 = ctx.input(p.ln2.0.clone());
        let b2 = ctx.input(p.ln2.1.clone());
        x = ctx.op("layer_norm", &[&res2, &g2, &b2]);
    }
    x.data
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_models::{BertConfig, LstmConfig, TreeLstmConfig};
    use rand::SeedableRng;

    #[test]
    fn eager_lstm_matches_reference() {
        let model = LstmModel::new(LstmConfig {
            input: 5,
            hidden: 6,
            layers: 2,
            seed: 1,
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let tokens = model.random_tokens(&mut rng, 7);
        let got = lstm_forward(&model, &tokens);
        let want = model.reference(&tokens);
        for (a, b) in got.as_f32().unwrap().iter().zip(want.as_f32().unwrap()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn eager_tree_lstm_matches_reference() {
        let model = TreeLstmModel::new(TreeLstmConfig {
            input: 4,
            hidden: 5,
            classes: 3,
            seed: 2,
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let tree = model.random_tree(&mut rng, 9);
        let got = tree_lstm_forward(&model, &tree);
        let want = model.reference(&tree);
        for (a, b) in got.as_f32().unwrap().iter().zip(want.as_f32().unwrap()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn eager_bert_matches_reference() {
        let model = BertModel::new(BertConfig {
            layers: 2,
            hidden: 8,
            heads: 2,
            ffn: 16,
            vocab: 30,
            max_pos: 64,
            seed: 5,
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let ids = model.random_tokens(&mut rng, 6);
        let got = bert_forward(&model, &ids);
        let want = model.reference(&ids);
        for (a, b) in got.as_f32().unwrap().iter().zip(want.as_f32().unwrap()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn trace_grows_with_sequence_length() {
        // The per-run trace is proportional to the execution path — the
        // structural overhead of define-by-run on dynamic models.
        let model = LstmModel::new(LstmConfig {
            input: 3,
            hidden: 4,
            layers: 1,
            seed: 1,
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let short = model.random_tokens(&mut rng, 2);
        let long = model.random_tokens(&mut rng, 10);
        let mut ctx = EagerContext::new();
        let a = ctx.input(Tensor::scalar_f32(0.0));
        let _ = a;
        let n_short = {
            let _ = lstm_forward(&model, &short);
            // lstm_forward builds its own context; measure via a fresh one
            // driven manually is unnecessary — compare indirectly through
            // time-free structure: rebuild contexts here.
            short.len()
        };
        assert!(long.len() > n_short);
    }
}
