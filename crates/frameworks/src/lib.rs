//! # nimble-frameworks
//!
//! The baseline systems Nimble is compared against in Section 6.2,
//! reproduced with the *same kernel library* so that end-to-end gaps
//! measure system overhead (graph construction, dispatch, allocation,
//! scheduling), not kernel quality:
//!
//! * [`eager`] — a define-by-run framework (PyTorch-like): host-language
//!   control flow, per-op dynamic dispatch through a registry, a fresh
//!   autograd-style trace per run, unpooled per-op output allocation, no
//!   fusion;
//! * [`graphflow`] — a define-then-run dataflow framework (TensorFlow /
//!   MXNet-like): a graph built once, executed by a ready-queue dataflow
//!   scheduler with reference-counted edges; dynamic control flow via
//!   `while_loop` / `foreach` functional primitives plus TF1-style
//!   `Switch`/`Merge`;
//! * [`fold`] — dynamic batching (TensorFlow Fold-like): per input, the
//!   tree is analyzed, a depth-batched graph is **re-compiled**, then
//!   executed — the recompilation-per-input cost structure the paper
//!   measures ("it has to re-compile upon every input").
//!
//! None of these are caricatures: each implements the architecture its
//! original uses, and each gets the same hand-written kernels as Nimble.

pub mod eager;
pub mod fold;
pub mod graphflow;
