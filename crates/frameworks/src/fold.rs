//! The dynamic-batching baseline (TensorFlow Fold-like).
//!
//! Fold's approach (Section 7): analyze the user's per-input computation,
//! identify operations that can be batched together, transform them into a
//! graph the framework can evaluate. The benefit is large batched kernels;
//! the cost is that *every input* has a different structure, so the
//! analysis + graph construction — the "compile" step — runs per input
//! ("TensorFlow Fold is 5.2× slower than Nimble on Intel CPU because it
//! has to re-compile upon every input", Section 6.2).
//!
//! For the child-sum Tree-LSTM, batching groups tree nodes by height:
//! every node whose children are complete at level `d` computes in one
//! batched dense call at level `d`.

use crate::graphflow::{Graph, GraphOp, Port};
use nimble_models::data::TreeNode;
use nimble_models::TreeLstmModel;
use nimble_tensor::{kernels, Tensor};
use std::collections::HashMap;

/// Statistics from one fold compilation (used by tests and benches).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FoldStats {
    /// Depth levels (batched super-steps).
    pub levels: usize,
    /// Graph nodes constructed for this input.
    pub graph_nodes: usize,
    /// Total tree nodes batched.
    pub tree_nodes: usize,
}

/// Per-level batching plan (intermediate analysis result).
struct LevelPlan {
    /// Leaf embeddings concatenated at level 0.
    leaf_inputs: Vec<Tensor>,
    /// For internal levels: (left child ref, right child ref) where a ref
    /// is (level, row) of the child's output.
    pairs: Vec<((usize, usize), (usize, usize))>,
}

/// Analyze a tree into depth levels (the Fold "blocks compiler" front
/// end). Returns the plan plus each node's (level, row) coordinate.
fn analyze(tree: &TreeNode, levels: &mut Vec<LevelPlan>) -> (usize, usize) {
    match tree {
        TreeNode::Leaf(x) => {
            if levels.is_empty() {
                levels.push(LevelPlan {
                    leaf_inputs: Vec::new(),
                    pairs: Vec::new(),
                });
            }
            levels[0].leaf_inputs.push(x.clone());
            (0, levels[0].leaf_inputs.len() - 1)
        }
        TreeNode::Node(l, r) => {
            let lref = analyze(l, levels);
            let rref = analyze(r, levels);
            let level = lref.0.max(rref.0) + 1;
            while levels.len() <= level {
                levels.push(LevelPlan {
                    leaf_inputs: Vec::new(),
                    pairs: Vec::new(),
                });
            }
            levels[level].pairs.push((lref, rref));
            (level, levels[level].pairs.len() - 1)
        }
    }
}

/// A per-input compiled fold program: a dataflow graph whose nodes are
/// batched level steps.
pub struct FoldProgram {
    graph: Graph,
    /// Statistics from compilation.
    pub stats: FoldStats,
}

/// Compile a tree into a batched program (runs per input).
pub fn compile(model: &TreeLstmModel, tree: &TreeNode) -> FoldProgram {
    let mut levels: Vec<LevelPlan> = Vec::new();
    let root = analyze(tree, &mut levels);
    let tree_nodes = tree.num_nodes();

    // Build the dataflow graph: one batched (h, c) pair of nodes per
    // level. Outputs of level d are [rows_d, H] matrices; child gathers
    // are row slices.
    let mut g = Graph::new(0);
    // (level -> (h node, c node))
    let mut level_nodes: HashMap<usize, (usize, usize)> = HashMap::new();

    // Level 0: batched leaf transform.
    let leaf_batch = {
        let rows: Vec<&Tensor> = levels[0].leaf_inputs.iter().collect();
        kernels::concat(&rows, 0).expect("leaf batch")
    };
    let leaves = g.add(GraphOp::Const(leaf_batch), vec![]);
    let (w_iou, b_iou) = (model.w_iou.clone(), model.b_iou.clone());
    let leaf_hc = g.kernel("leaf_batch", vec![Port::of(leaves)], move |ins| {
        let iou = kernels::add(
            &kernels::dense(&ins[0], &w_iou, None).expect("dense"),
            &b_iou,
        )
        .expect("bias");
        let parts = kernels::split(&iou, 3, 1).expect("split");
        let i = kernels::sigmoid(&parts[0]).expect("i");
        let o = kernels::sigmoid(&parts[1]).expect("o");
        let u = kernels::tanh(&parts[2]).expect("u");
        let c = kernels::mul(&i, &u).expect("c");
        let h = kernels::mul(&o, &kernels::tanh(&c).expect("tc")).expect("h");
        // Stack h and c as [2, rows, H] so one node carries both.
        let rows = h.dims()[0];
        let cols = h.dims()[1];
        let mut data = h.as_f32().expect("h").to_vec();
        data.extend_from_slice(c.as_f32().expect("c"));
        Tensor::from_vec_f32(data, &[2, rows, cols]).expect("stack")
    });
    level_nodes.insert(0, (leaf_hc, leaf_hc));

    for (level, plan) in levels.iter().enumerate().skip(1) {
        // Gather child rows from earlier level outputs.
        let pairs = plan.pairs.clone();
        let inputs: Vec<Port> = {
            // Depend on every level referenced by this one.
            let mut deps: Vec<usize> = pairs.iter().flat_map(|(l, r)| [l.0, r.0]).collect();
            deps.sort_unstable();
            deps.dedup();
            deps.iter().map(|d| Port::of(level_nodes[d].0)).collect()
        };
        let dep_levels: Vec<usize> = {
            let mut deps: Vec<usize> = pairs.iter().flat_map(|(l, r)| [l.0, r.0]).collect();
            deps.sort_unstable();
            deps.dedup();
            deps
        };
        let (u_iou, b_iou) = (model.u_iou.clone(), model.b_iou.clone());
        let (u_f, b_f) = (model.u_f.clone(), model.b_f.clone());
        let node = g.kernel("level_batch", inputs, move |ins| {
            // Map level -> its [2, rows, H] stack.
            let by_level: HashMap<usize, &Tensor> =
                dep_levels.iter().copied().zip(ins.iter()).collect();
            let pick = |(lvl, row): (usize, usize), which: usize| -> Tensor {
                let stack = by_level[&lvl];
                let h = stack.dims()[2];
                kernels::slice(stack, &[which, row, 0], &[which + 1, row + 1, h])
                    .expect("slice")
                    .reshaped(&[1, h])
                    .expect("row")
            };
            // Batch children.
            let hl: Vec<Tensor> = pairs.iter().map(|&(l, _)| pick(l, 0)).collect();
            let hr: Vec<Tensor> = pairs.iter().map(|&(_, r)| pick(r, 0)).collect();
            let cl: Vec<Tensor> = pairs.iter().map(|&(l, _)| pick(l, 1)).collect();
            let cr: Vec<Tensor> = pairs.iter().map(|&(_, r)| pick(r, 1)).collect();
            let cat = |rows: &[Tensor]| {
                let refs: Vec<&Tensor> = rows.iter().collect();
                kernels::concat(&refs, 0).expect("cat")
            };
            let (hl, hr, cl, cr) = (cat(&hl), cat(&hr), cat(&cl), cat(&cr));
            let hs = kernels::add(&hl, &hr).expect("hs");
            let iou = kernels::add(&kernels::dense(&hs, &u_iou, None).expect("dense"), &b_iou)
                .expect("bias");
            let parts = kernels::split(&iou, 3, 1).expect("split");
            let i = kernels::sigmoid(&parts[0]).expect("i");
            let o = kernels::sigmoid(&parts[1]).expect("o");
            let u = kernels::tanh(&parts[2]).expect("u");
            let f = |h: &Tensor| {
                kernels::sigmoid(
                    &kernels::add(&kernels::dense(h, &u_f, None).expect("uf"), &b_f).expect("bf"),
                )
                .expect("sig")
            };
            let c = kernels::add(
                &kernels::mul(&i, &u).expect("iu"),
                &kernels::add(
                    &kernels::mul(&f(&hl), &cl).expect("fl"),
                    &kernels::mul(&f(&hr), &cr).expect("fr"),
                )
                .expect("fsum"),
            )
            .expect("c");
            let h = kernels::mul(&o, &kernels::tanh(&c).expect("tc")).expect("h");
            let rows = h.dims()[0];
            let cols = h.dims()[1];
            let mut data = h.as_f32().expect("h").to_vec();
            data.extend_from_slice(c.as_f32().expect("c"));
            Tensor::from_vec_f32(data, &[2, rows, cols]).expect("stack")
        });
        level_nodes.insert(level, (node, node));
    }

    // Classifier on the root's h row.
    let (root_level, root_row) = root;
    let w_cls = model.w_cls.clone();
    let hidden = model.config.hidden;
    let cls = g.kernel(
        "classifier",
        vec![Port::of(level_nodes[&root_level].0)],
        move |ins| {
            let h = kernels::slice(&ins[0], &[0, root_row, 0], &[1, root_row + 1, hidden])
                .expect("root slice")
                .reshaped(&[1, hidden])
                .expect("root row");
            kernels::dense(&h, &w_cls, None).expect("classifier")
        },
    );
    g.set_outputs(vec![Port::of(cls)]);
    let stats = FoldStats {
        levels: levels.len(),
        graph_nodes: g.num_nodes(),
        tree_nodes,
    };
    FoldProgram { graph: g, stats }
}

impl FoldProgram {
    /// Execute the batched program.
    pub fn run(&self) -> Tensor {
        self.graph.run(&[]).remove(0)
    }

    /// Execute with an optional device stream.
    pub fn run_with(&self, stream: Option<&nimble_device::GpuStream>) -> Tensor {
        self.graph.run_with(&[], stream).remove(0)
    }
}

/// End-to-end Fold inference: compile (per input!) then run.
pub fn tree_lstm_forward(model: &TreeLstmModel, tree: &TreeNode) -> Tensor {
    compile(model, tree).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_models::TreeLstmConfig;
    use rand::SeedableRng;

    fn tiny_model() -> TreeLstmModel {
        TreeLstmModel::new(TreeLstmConfig {
            input: 4,
            hidden: 5,
            classes: 3,
            seed: 2,
        })
    }

    #[test]
    fn fold_matches_reference() {
        let model = tiny_model();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for leaves in [1usize, 2, 5, 11] {
            let tree = model.random_tree(&mut rng, leaves);
            let got = tree_lstm_forward(&model, &tree);
            let want = model.reference(&tree);
            for (a, b) in got.as_f32().unwrap().iter().zip(want.as_f32().unwrap()) {
                assert!((a - b).abs() < 1e-4, "leaves {leaves}");
            }
        }
    }

    #[test]
    fn batching_reduces_kernel_steps() {
        // A balanced 8-leaf tree has 15 nodes but only 4 levels → the fold
        // graph is much smaller than per-node execution.
        let model = tiny_model();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let tree = model.random_tree(&mut rng, 8);
        let prog = compile(&model, &tree);
        assert!(prog.stats.levels < prog.stats.tree_nodes);
        assert_eq!(prog.stats.tree_nodes, 15);
        assert!(prog.stats.graph_nodes <= prog.stats.tree_nodes);
    }

    #[test]
    fn recompilation_needed_per_structure() {
        // Different structures give different programs — the cost Fold pays
        // per input.
        let model = tiny_model();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = compile(&model, &model.random_tree(&mut rng, 4));
        let b = compile(&model, &model.random_tree(&mut rng, 12));
        assert_ne!(a.stats, b.stats);
    }
}
