//! # nimble-core
//!
//! The end-to-end compiler driver: takes a dynamic model as a typed IR
//! [`nimble_ir::Module`] and produces a VM [`nimble_vm::Executable`]
//! through the full pipeline of the paper (Figure 1 / Figure 2):
//!
//! ```text
//! IR → (constant fold, CSE, DCE) → fusion → type inference (Any/sub-shaping)
//!    → memory planning (explicit allocation + shape functions)
//!    → device placement (union-find, device_copy insertion)
//!    → bytecode lowering (20-instruction ISA, kernel table, constant pool)
//! ```
//!
//! The crate also contains the **static baseline runtime**
//! ([`static_runtime`]) — a TVM-style sequential graph executor over fully
//! static models — used by the Table 4 overhead study.

pub mod compile;
pub mod engine;
pub mod lower;
pub mod static_runtime;

pub use compile::{compile, CompileOptions, CompileReport};
pub use engine::{Completion, Engine, EngineConfig, EngineError, EngineStats, Ticket};
pub use nimble_passes::device_place::DeviceKind;
pub use nimble_vm::{ArenaStats, StorageArena};
pub use static_runtime::StaticGraph;

/// Errors raised during compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError(pub String);

impl CompileError {
    /// Construct from anything printable.
    pub fn msg(m: impl Into<String>) -> CompileError {
        CompileError(m.into())
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

impl From<nimble_ir::IrError> for CompileError {
    fn from(e: nimble_ir::IrError) -> Self {
        CompileError(e.to_string())
    }
}

impl From<nimble_vm::VmError> for CompileError {
    fn from(e: nimble_vm::VmError) -> Self {
        CompileError(e.to_string())
    }
}

impl From<nimble_tensor::TensorError> for CompileError {
    fn from(e: nimble_tensor::TensorError) -> Self {
        CompileError(e.to_string())
    }
}

/// Result alias for compilation.
pub type Result<T> = std::result::Result<T, CompileError>;
