//! Bytecode lowering: memory-planned, device-placed ANF IR → the VM's
//! 20-instruction ISA.
//!
//! Virtual registers are allocated SSA-style (one per binding; aliases
//! share registers). Control flow becomes `If`/`Goto` with relative
//! offsets; `match` becomes `GetTag` + tag tests; closures are
//! lambda-lifted into additional VM functions with their captures
//! prepended to the parameter list; kernel invocations become
//! `InvokePacked` entries referencing the executable's kernel table.

use crate::{CompileError, Result};
use nimble_ir::attrs::Attrs;
use nimble_ir::expr::{Expr, ExprKind, Function, Pattern};
use nimble_ir::visit::free_vars;
use nimble_ir::{Module, Var};
use nimble_passes::dialect;
use nimble_tensor::{DType, Tensor};
use nimble_vm::exe::{Executable, FusedMember, KernelDesc, MemberArg, VMFunction};
use nimble_vm::isa::Instruction;
use nimble_vm::object::TUPLE_TAG;
use std::collections::HashMap;

/// Attribute keys internal to the compilation pipeline, stripped before
/// descriptors are emitted.
const INTERNAL_ATTRS: [&str; 7] = [
    "num_outputs",
    "upper_bound",
    "symbolic",
    "device",
    "mode",
    "in_dtype_codes",
    "primitive",
];

fn strip_internal(attrs: &Attrs) -> Attrs {
    let mut out = Attrs::new();
    for (k, v) in &attrs.0 {
        if !INTERNAL_ATTRS.contains(&k.as_str()) {
            out.0.insert(k.clone(), v.clone());
        }
    }
    out
}

/// Module-level lowering state.
pub struct Lowering<'m> {
    module: &'m Module,
    constants: Vec<Tensor>,
    const_devices: Vec<u8>,
    const_memo: HashMap<usize, u32>,
    kernels: Vec<KernelDesc>,
    kernel_memo: HashMap<String, u32>,
    functions: Vec<Option<VMFunction>>,
    func_indices: HashMap<String, u32>,
}

/// Per-function lowering context.
struct Ctx {
    code: Vec<Instruction>,
    next_reg: u32,
    regs: HashMap<u32, u32>, // var id -> register
    name: String,
}

impl Ctx {
    fn fresh(&mut self) -> u32 {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }
}

/// Lower every function of a (planned) module into an executable.
///
/// # Errors
/// Fails on unbound variables, unknown constructors/globals, or malformed
/// dialect calls.
pub fn lower_module(module: &Module) -> Result<Executable> {
    let mut lowering = Lowering {
        module,
        constants: Vec::new(),
        const_devices: Vec::new(),
        const_memo: HashMap::new(),
        kernels: Vec::new(),
        kernel_memo: HashMap::new(),
        functions: Vec::new(),
        func_indices: HashMap::new(),
    };
    // Reserve indices for all module-level functions first so forward and
    // recursive references resolve.
    for (name, _) in module.functions() {
        let idx = lowering.functions.len() as u32;
        lowering.functions.push(None);
        lowering.func_indices.insert(name.0.clone(), idx);
    }
    for (name, func) in module.functions() {
        let idx = lowering.func_indices[&name.0];
        let vmf = lowering.lower_function(&name.0, func)?;
        lowering.functions[idx as usize] = Some(vmf);
    }
    let functions = lowering
        .functions
        .into_iter()
        .map(|f| f.ok_or_else(|| CompileError::msg("unlowered function slot")))
        .collect::<Result<Vec<_>>>()?;
    Ok(Executable {
        functions,
        constants: lowering.constants,
        const_devices: lowering.const_devices,
        kernels: lowering.kernels,
    })
}

impl<'m> Lowering<'m> {
    fn lower_function(&mut self, name: &str, func: &Function) -> Result<VMFunction> {
        let mut ctx = Ctx {
            code: Vec::new(),
            next_reg: 0,
            regs: HashMap::new(),
            name: name.to_string(),
        };
        for p in &func.params {
            let r = ctx.fresh();
            ctx.regs.insert(p.id, r);
        }
        let result = self.lower_block(&mut ctx, &func.body)?;
        ctx.code.push(Instruction::Ret { result });
        Ok(VMFunction {
            name: name.to_string(),
            num_params: func.params.len() as u32,
            num_regs: ctx.next_reg,
            code: ctx.code,
        })
    }

    fn lower_block(&mut self, ctx: &mut Ctx, block: &Expr) -> Result<u32> {
        let mut cur = block.clone();
        while let ExprKind::Let { var, value, body } = cur.kind() {
            let reg = self.lower_value(ctx, value)?;
            ctx.regs.insert(var.id, reg);
            cur = body.clone();
        }
        self.atom_reg(ctx, &cur, 0)
    }

    /// Register holding an atomic expression, loading constants on demand.
    /// `device_hint` records the preferred placement of constants.
    fn atom_reg(&mut self, ctx: &mut Ctx, atom: &Expr, device_hint: u8) -> Result<u32> {
        match atom.kind() {
            ExprKind::Var(v) => ctx
                .regs
                .get(&v.id)
                .copied()
                .ok_or_else(|| CompileError::msg(format!("{}: unbound variable {v}", ctx.name))),
            ExprKind::Constant(t) => {
                let index = self.intern_constant(atom.ref_id(), t, device_hint);
                let dst = ctx.fresh();
                ctx.code.push(Instruction::LoadConst { index, dst });
                Ok(dst)
            }
            other => Err(CompileError::msg(format!(
                "{}: expected atom, got {other:?}",
                ctx.name
            ))),
        }
    }

    fn intern_constant(&mut self, key: usize, t: &Tensor, device_hint: u8) -> u32 {
        if let Some(&idx) = self.const_memo.get(&key) {
            if device_hint == 1 {
                self.const_devices[idx as usize] = 1;
            }
            return idx;
        }
        let idx = self.constants.len() as u32;
        self.constants.push(t.clone());
        self.const_devices.push(device_hint);
        self.const_memo.insert(key, idx);
        idx
    }

    fn intern_kernel(&mut self, desc: KernelDesc) -> u32 {
        let key = format!("{desc:?}");
        if let Some(&idx) = self.kernel_memo.get(&key) {
            return idx;
        }
        let idx = self.kernels.len() as u32;
        self.kernels.push(desc);
        self.kernel_memo.insert(key, idx);
        idx
    }

    fn lower_value(&mut self, ctx: &mut Ctx, value: &Expr) -> Result<u32> {
        match value.kind() {
            ExprKind::Var(_) | ExprKind::Constant(_) => self.atom_reg(ctx, value, 0),
            ExprKind::Tuple(fields) => {
                let regs = fields
                    .iter()
                    .map(|f| self.atom_reg(ctx, f, 0))
                    .collect::<Result<Vec<_>>>()?;
                let dst = ctx.fresh();
                ctx.code.push(Instruction::AllocADT {
                    tag: TUPLE_TAG,
                    fields: regs,
                    dst,
                });
                Ok(dst)
            }
            ExprKind::TupleGet(t, i) => {
                let object = self.atom_reg(ctx, t, 0)?;
                let dst = ctx.fresh();
                ctx.code.push(Instruction::GetField {
                    object,
                    index: *i as u32,
                    dst,
                });
                Ok(dst)
            }
            ExprKind::Func(f) => self.lift_closure(ctx, f),
            ExprKind::If { cond, then, els } => self.lower_if(ctx, cond, then, els),
            ExprKind::Match { value, clauses } => self.lower_match(ctx, value, clauses),
            ExprKind::Call {
                callee,
                args,
                attrs,
            } => self.lower_call(ctx, callee, args, attrs),
            other => Err(CompileError::msg(format!(
                "{}: cannot lower {other:?}",
                ctx.name
            ))),
        }
    }

    fn lower_if(&mut self, ctx: &mut Ctx, cond: &Expr, then: &Expr, els: &Expr) -> Result<u32> {
        let cond_reg = self.atom_reg(ctx, cond, 0)?;
        let one = ctx.fresh();
        ctx.code
            .push(Instruction::LoadConsti { value: 1, dst: one });
        let out = ctx.fresh();
        let branch_at = ctx.code.len();
        ctx.code.push(Instruction::If {
            lhs: cond_reg,
            rhs: one,
            true_offset: 1,
            false_offset: 0, // patched below
        });
        let then_res = self.lower_block(ctx, then)?;
        ctx.code.push(Instruction::Move {
            src: then_res,
            dst: out,
        });
        let goto_at = ctx.code.len();
        ctx.code.push(Instruction::Goto { offset: 0 }); // patched below
        let else_start = ctx.code.len();
        if let Instruction::If { false_offset, .. } = &mut ctx.code[branch_at] {
            *false_offset = (else_start - branch_at) as i32;
        }
        let else_res = self.lower_block(ctx, els)?;
        ctx.code.push(Instruction::Move {
            src: else_res,
            dst: out,
        });
        let end = ctx.code.len();
        if let Instruction::Goto { offset } = &mut ctx.code[goto_at] {
            *offset = (end - goto_at) as i32;
        }
        Ok(out)
    }

    fn lower_match(
        &mut self,
        ctx: &mut Ctx,
        value: &Expr,
        clauses: &[nimble_ir::expr::Clause],
    ) -> Result<u32> {
        let scrutinee = self.atom_reg(ctx, value, 0)?;
        let tag_reg = ctx.fresh();
        ctx.code.push(Instruction::GetTag {
            object: scrutinee,
            dst: tag_reg,
        });
        let out = ctx.fresh();
        let mut end_gotos: Vec<usize> = Vec::new();
        let mut exhaustive = false;
        for clause in clauses {
            match &clause.pattern {
                Pattern::Constructor { name, fields } => {
                    let tag = self.module.constructor(name)?.tag;
                    let tag_const = ctx.fresh();
                    ctx.code.push(Instruction::LoadConsti {
                        value: tag as i64,
                        dst: tag_const,
                    });
                    let test_at = ctx.code.len();
                    ctx.code.push(Instruction::If {
                        lhs: tag_reg,
                        rhs: tag_const,
                        true_offset: 1,
                        false_offset: 0, // patched to next clause
                    });
                    // Destructure fields.
                    for (i, sub) in fields.iter().enumerate() {
                        self.bind_pattern(ctx, sub, scrutinee, i as u32)?;
                    }
                    let res = self.lower_block(ctx, &clause.body)?;
                    ctx.code.push(Instruction::Move { src: res, dst: out });
                    end_gotos.push(ctx.code.len());
                    ctx.code.push(Instruction::Goto { offset: 0 });
                    let next_clause = ctx.code.len();
                    if let Instruction::If { false_offset, .. } = &mut ctx.code[test_at] {
                        *false_offset = (next_clause - test_at) as i32;
                    }
                }
                Pattern::Bind(v) => {
                    ctx.regs.insert(v.id, scrutinee);
                    let res = self.lower_block(ctx, &clause.body)?;
                    ctx.code.push(Instruction::Move { src: res, dst: out });
                    end_gotos.push(ctx.code.len());
                    ctx.code.push(Instruction::Goto { offset: 0 });
                    exhaustive = true;
                }
                Pattern::Wildcard => {
                    let res = self.lower_block(ctx, &clause.body)?;
                    ctx.code.push(Instruction::Move { src: res, dst: out });
                    end_gotos.push(ctx.code.len());
                    ctx.code.push(Instruction::Goto { offset: 0 });
                    exhaustive = true;
                }
            }
            if exhaustive {
                break;
            }
        }
        if !exhaustive {
            ctx.code.push(Instruction::Fatal {
                message: "no matching clause".into(),
            });
        }
        let end = ctx.code.len();
        for g in end_gotos {
            if let Instruction::Goto { offset } = &mut ctx.code[g] {
                *offset = (end - g) as i32;
            }
        }
        Ok(out)
    }

    /// Bind one (possibly nested) pattern field of `object` at `index`.
    fn bind_pattern(
        &mut self,
        ctx: &mut Ctx,
        pattern: &Pattern,
        object: u32,
        index: u32,
    ) -> Result<()> {
        match pattern {
            Pattern::Wildcard => Ok(()),
            Pattern::Bind(v) => {
                let dst = ctx.fresh();
                ctx.code.push(Instruction::GetField { object, index, dst });
                ctx.regs.insert(v.id, dst);
                Ok(())
            }
            Pattern::Constructor { fields, .. } => {
                // Nested constructor patterns destructure without a tag
                // re-test (the type checker guarantees well-formedness for
                // the models in this repository).
                let dst = ctx.fresh();
                ctx.code.push(Instruction::GetField { object, index, dst });
                for (i, sub) in fields.iter().enumerate() {
                    self.bind_pattern(ctx, sub, dst, i as u32)?;
                }
                Ok(())
            }
        }
    }

    fn lift_closure(&mut self, ctx: &mut Ctx, f: &Function) -> Result<u32> {
        let captures: Vec<Var> = free_vars(&Expr::func(f.clone()));
        let mut params: Vec<Var> = captures.clone();
        params.extend(f.params.iter().cloned());
        let lifted = Function::new(params, f.body.clone(), f.ret_type.clone());
        let idx = self.functions.len() as u32;
        self.functions.push(None);
        let name = format!("{}.closure{}", ctx.name, idx);
        let vmf = self.lower_function(&name, &lifted)?;
        self.functions[idx as usize] = Some(vmf);
        let cap_regs = captures
            .iter()
            .map(|v| {
                ctx.regs
                    .get(&v.id)
                    .copied()
                    .ok_or_else(|| CompileError::msg(format!("unbound capture {v}")))
            })
            .collect::<Result<Vec<_>>>()?;
        let dst = ctx.fresh();
        ctx.code.push(Instruction::AllocClosure {
            func: idx,
            captures: cap_regs,
            dst,
        });
        Ok(dst)
    }

    fn lower_call(
        &mut self,
        ctx: &mut Ctx,
        callee: &Expr,
        args: &[Expr],
        attrs: &Attrs,
    ) -> Result<u32> {
        match callee.kind() {
            ExprKind::Op(name) => self.lower_op_call(ctx, name, args, attrs),
            ExprKind::Constructor(name) => {
                let tag = self.module.constructor(name)?.tag;
                let regs = args
                    .iter()
                    .map(|a| self.atom_reg(ctx, a, 0))
                    .collect::<Result<Vec<_>>>()?;
                let dst = ctx.fresh();
                ctx.code.push(Instruction::AllocADT {
                    tag,
                    fields: regs,
                    dst,
                });
                Ok(dst)
            }
            ExprKind::Global(g) => {
                let func = *self
                    .func_indices
                    .get(&g.0)
                    .ok_or_else(|| CompileError::msg(format!("unbound global {g}")))?;
                let regs = args
                    .iter()
                    .map(|a| self.atom_reg(ctx, a, 0))
                    .collect::<Result<Vec<_>>>()?;
                let dst = ctx.fresh();
                ctx.code.push(Instruction::Invoke {
                    func,
                    args: regs,
                    dst,
                });
                Ok(dst)
            }
            ExprKind::Var(_) => {
                let closure = self.atom_reg(ctx, callee, 0)?;
                let regs = args
                    .iter()
                    .map(|a| self.atom_reg(ctx, a, 0))
                    .collect::<Result<Vec<_>>>()?;
                let dst = ctx.fresh();
                ctx.code.push(Instruction::InvokeClosure {
                    closure,
                    args: regs,
                    dst,
                });
                Ok(dst)
            }
            ExprKind::Func(f) => {
                if attrs.int("primitive") == Some(1) {
                    // A fused primitive call that skipped memory planning:
                    // invoke it directly with a fresh output register.
                    let desc = self.fused_desc(f)?;
                    let kernel = self.intern_kernel(desc);
                    let mut regs = args
                        .iter()
                        .map(|a| self.atom_reg(ctx, a, 0))
                        .collect::<Result<Vec<_>>>()?;
                    let dst = ctx.fresh();
                    regs.push(dst);
                    ctx.code.push(Instruction::InvokePacked {
                        kernel,
                        args: regs,
                        num_outputs: 1,
                        device: 0,
                    });
                    Ok(dst)
                } else {
                    // Immediately-applied closure literal.
                    let closure = self.lift_closure(ctx, f)?;
                    let regs = args
                        .iter()
                        .map(|a| self.atom_reg(ctx, a, 0))
                        .collect::<Result<Vec<_>>>()?;
                    let dst = ctx.fresh();
                    ctx.code.push(Instruction::InvokeClosure {
                        closure,
                        args: regs,
                        dst,
                    });
                    Ok(dst)
                }
            }
            other => Err(CompileError::msg(format!(
                "{}: cannot call {other:?}",
                ctx.name
            ))),
        }
    }

    fn lower_op_call(
        &mut self,
        ctx: &mut Ctx,
        name: &str,
        args: &[Expr],
        attrs: &Attrs,
    ) -> Result<u32> {
        match name {
            n if n == dialect::ALLOC_STORAGE => {
                let dst = ctx.fresh();
                ctx.code.push(Instruction::AllocStorage {
                    size: attrs.int_or("size", 0) as u64,
                    alignment: attrs.int_or("alignment", 64) as u32,
                    device: attrs.int_or("device", 0) as u8,
                    dst,
                });
                Ok(dst)
            }
            n if n == dialect::ALLOC_TENSOR => {
                let storage = self.atom_reg(ctx, &args[0], 0)?;
                let shape = attrs
                    .int_vec("shape")
                    .ok_or_else(|| CompileError::msg("alloc_tensor: shape attr required"))?
                    .to_vec();
                let dtype = attrs
                    .dtype("dtype")
                    .ok_or_else(|| CompileError::msg("alloc_tensor: dtype attr required"))?;
                let dst = ctx.fresh();
                ctx.code.push(Instruction::AllocTensor {
                    storage,
                    offset: attrs.int_or("offset", 0) as u64,
                    shape,
                    dtype,
                    dst,
                });
                Ok(dst)
            }
            n if n == dialect::ALLOC_TENSOR_REG => {
                let shape = self.atom_reg(ctx, &args[0], 0)?;
                let dtype = attrs
                    .dtype("dtype")
                    .ok_or_else(|| CompileError::msg("alloc_tensor_reg: dtype attr required"))?;
                let dst = ctx.fresh();
                ctx.code.push(Instruction::AllocTensorReg {
                    shape,
                    dtype,
                    device: attrs.int_or("device", 0) as u8,
                    dst,
                });
                Ok(dst)
            }
            n if n == dialect::INVOKE_MUT => {
                let num_outputs = attrs.int_or("num_outputs", 1) as usize;
                let device = attrs.int_or("device", 0) as u8;
                let symbolic = attrs.boolean("symbolic").unwrap_or(false);
                let callee = &args[0];
                let desc = self.kernel_desc(callee, attrs, symbolic)?;
                let kernel = self.intern_kernel(desc);
                let operand_exprs = &args[1..];
                if operand_exprs.len() < num_outputs {
                    return Err(CompileError::msg("invoke_mut: fewer operands than outputs"));
                }
                let regs = operand_exprs
                    .iter()
                    .map(|a| self.atom_reg(ctx, a, device))
                    .collect::<Result<Vec<_>>>()?;
                let out_regs = regs[regs.len() - num_outputs..].to_vec();
                ctx.code.push(Instruction::InvokePacked {
                    kernel,
                    args: regs,
                    num_outputs: num_outputs as u32,
                    device,
                });
                if num_outputs == 1 {
                    Ok(out_regs[0])
                } else {
                    let dst = ctx.fresh();
                    ctx.code.push(Instruction::AllocADT {
                        tag: TUPLE_TAG,
                        fields: out_regs,
                        dst,
                    });
                    Ok(dst)
                }
            }
            n if n == dialect::INVOKE_SHAPE_FUNC => {
                let num_outputs = attrs.int_or("num_outputs", 1) as usize;
                let callee = &args[0];
                let desc = self.shape_func_desc(callee, attrs)?;
                let kernel = self.intern_kernel(desc);
                let mut regs = args[1..]
                    .iter()
                    .map(|a| self.atom_reg(ctx, a, 0))
                    .collect::<Result<Vec<_>>>()?;
                let out_regs: Vec<u32> = (0..num_outputs).map(|_| ctx.fresh()).collect();
                regs.extend(out_regs.iter().copied());
                ctx.code.push(Instruction::InvokePacked {
                    kernel,
                    args: regs,
                    num_outputs: num_outputs as u32,
                    device: 0, // shape functions always run on the CPU
                });
                if num_outputs == 1 {
                    Ok(out_regs[0])
                } else {
                    let dst = ctx.fresh();
                    ctx.code.push(Instruction::AllocADT {
                        tag: TUPLE_TAG,
                        fields: out_regs,
                        dst,
                    });
                    Ok(dst)
                }
            }
            n if n == dialect::KILL => {
                // Dropping the register's reference frees tensor + storage
                // (the ISA has no dedicated kill; liveness is realized by
                // overwriting the register).
                let reg = self.atom_reg(ctx, &args[0], 0)?;
                ctx.code
                    .push(Instruction::LoadConsti { value: 0, dst: reg });
                Ok(reg)
            }
            "shape_of" => {
                let tensor = self.atom_reg(ctx, &args[0], 0)?;
                let dst = ctx.fresh();
                ctx.code.push(Instruction::ShapeOf { tensor, dst });
                Ok(dst)
            }
            "device_copy" => {
                let src = self.atom_reg(ctx, &args[0], 0)?;
                let dst = ctx.fresh();
                ctx.code.push(Instruction::DeviceCopy {
                    src,
                    src_device: attrs.int_or("src_device", 0) as u8,
                    dst_device: attrs.int_or("dst_device", 0) as u8,
                    dst,
                });
                Ok(dst)
            }
            // Direct (un-planned) operator call: single fresh output.
            _ => {
                let desc = KernelDesc::Op {
                    name: name.to_string(),
                    attrs: strip_internal(attrs),
                    symbolic: attrs.boolean("symbolic").unwrap_or(false),
                };
                let kernel = self.intern_kernel(desc);
                let mut regs = args
                    .iter()
                    .map(|a| self.atom_reg(ctx, a, 0))
                    .collect::<Result<Vec<_>>>()?;
                let dst = ctx.fresh();
                regs.push(dst);
                ctx.code.push(Instruction::InvokePacked {
                    kernel,
                    args: regs,
                    num_outputs: 1,
                    device: 0,
                });
                Ok(dst)
            }
        }
    }

    fn kernel_desc(&mut self, callee: &Expr, attrs: &Attrs, symbolic: bool) -> Result<KernelDesc> {
        match callee.kind() {
            ExprKind::Op(name) => Ok(KernelDesc::Op {
                name: name.clone(),
                attrs: strip_internal(attrs),
                symbolic,
            }),
            ExprKind::Func(f) => self.fused_desc(f),
            other => Err(CompileError::msg(format!(
                "invoke_mut callee must be op or primitive, got {other:?}"
            ))),
        }
    }

    fn shape_func_desc(&mut self, callee: &Expr, attrs: &Attrs) -> Result<KernelDesc> {
        let in_dtypes: Vec<DType> = attrs
            .int_vec("in_dtype_codes")
            .unwrap_or(&[])
            .iter()
            .map(|&c| DType::from_code(c as u8).unwrap_or(DType::F32))
            .collect();
        match callee.kind() {
            ExprKind::Op(name) => Ok(KernelDesc::ShapeFuncOp {
                name: name.clone(),
                attrs: strip_internal(attrs),
                in_dtypes,
            }),
            ExprKind::Func(f) => {
                let (num_params, members) = self.fused_members(f)?;
                Ok(KernelDesc::ShapeFuncFused {
                    num_params,
                    members,
                    in_dtypes,
                })
            }
            other => Err(CompileError::msg(format!(
                "invoke_shape_func callee must be op or primitive, got {other:?}"
            ))),
        }
    }

    fn fused_desc(&mut self, f: &Function) -> Result<KernelDesc> {
        let (num_params, members) = self.fused_members(f)?;
        Ok(KernelDesc::Fused {
            num_params,
            members,
        })
    }

    fn fused_members(&mut self, f: &Function) -> Result<(u32, Vec<FusedMember>)> {
        let param_pos: HashMap<u32, u32> = f
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| (p.id, i as u32))
            .collect();
        let mut member_pos: HashMap<u32, u32> = HashMap::new();
        let mut members = Vec::new();
        let mut cur = f.body.clone();
        while let ExprKind::Let { var, value, body } = cur.kind() {
            let (op, op_args, op_attrs) = value
                .as_op_call()
                .ok_or_else(|| CompileError::msg("fused primitive member must be an op call"))?;
            let args = op_args
                .iter()
                .map(|a| match a.kind() {
                    ExprKind::Var(v) => {
                        if let Some(&p) = param_pos.get(&v.id) {
                            Ok(MemberArg::Param(p))
                        } else if let Some(&m) = member_pos.get(&v.id) {
                            Ok(MemberArg::Member(m))
                        } else {
                            Err(CompileError::msg(format!("unbound {v} in primitive")))
                        }
                    }
                    ExprKind::Constant(t) => {
                        Ok(MemberArg::Const(self.intern_constant(a.ref_id(), t, 0)))
                    }
                    other => Err(CompileError::msg(format!(
                        "unsupported primitive argument {other:?}"
                    ))),
                })
                .collect::<Result<Vec<_>>>()?;
            member_pos.insert(var.id, members.len() as u32);
            members.push(FusedMember {
                op: op.to_string(),
                attrs: op_attrs.clone(),
                args,
            });
            cur = body.clone();
        }
        Ok((f.params.len() as u32, members))
    }
}
