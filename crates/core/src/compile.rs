//! The end-to-end compile driver.

use crate::lower::lower_module;
use crate::Result;
use nimble_ir::Module;
use nimble_passes::device_place::{place_function, DeviceKind, PlacementReport};
use nimble_passes::memory_plan::{plan_function, MemPlanReport};
use nimble_passes::type_infer::infer_function;
use nimble_passes::{anf, fusion, opt};
use nimble_vm::Executable;

/// Compilation options (the ablation axes of Section 6.3).
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Compute-kernel target device.
    pub target: DeviceKind,
    /// Enable operator fusion.
    pub fuse: bool,
    /// Enable storage coalescing in memory planning.
    pub coalesce: bool,
    /// Enable constant folding / CSE / DCE.
    pub optimize: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            target: DeviceKind::Cpu,
            fuse: true,
            coalesce: true,
            optimize: true,
        }
    }
}

impl CompileOptions {
    /// Options targeting the simulated GPU.
    pub fn gpu() -> CompileOptions {
        CompileOptions {
            target: DeviceKind::Gpu,
            ..CompileOptions::default()
        }
    }
}

/// Aggregate statistics from compilation (consumed by the microbenchmark
/// harnesses).
#[derive(Debug, Clone, Default)]
pub struct CompileReport {
    /// Memory-planning totals summed over all functions.
    pub memplan: MemPlanReport,
    /// Device-placement totals.
    pub placement: PlacementReport,
    /// Sizes of fused groups across functions.
    pub fusion_groups: Vec<usize>,
    /// Total bytecode instructions emitted.
    pub instructions: usize,
    /// Kernel-table entries.
    pub kernels: usize,
    /// Weight constants packed into the process-wide pre-pack cache at
    /// compile time (shared by every VM session that loads this program).
    pub weights_prepacked: usize,
}

fn merge_memplan(total: &mut MemPlanReport, part: MemPlanReport) {
    total.tensors += part.tensors;
    total.storages += part.storages;
    total.storages_uncoalesced += part.storages_uncoalesced;
    total.planned_bytes += part.planned_bytes;
    total.unplanned_bytes += part.unplanned_bytes;
    total.dynamic_allocs += part.dynamic_allocs;
    total.shape_funcs += part.shape_funcs;
}

/// Compile a module through the full pipeline into a VM executable.
///
/// # Errors
/// Propagates type-inference failures (static type errors), planning
/// failures, and lowering failures.
pub fn compile(module: &Module, opts: &CompileOptions) -> Result<(Executable, CompileReport)> {
    let mut report = CompileReport::default();
    let mut planned = Module::new();
    for adt in module.adts() {
        planned.add_adt(adt.clone());
    }
    for (name, func) in module.functions() {
        // 1. Normalize.
        let mut f = anf::to_anf(func);
        // 2. Generic optimizations.
        if opts.optimize {
            f = opt::fold_constants(&f);
            f = anf::to_anf(&f);
            f = opt::eliminate_common_subexpr(&f);
            f = opt::eliminate_dead_code(&f);
        }
        // 3. Fusion (with the dynamic-aware policy).
        if opts.fuse {
            f = fusion::fuse_function(&f);
            report.fusion_groups.extend(fusion::fusion_stats(&f));
        }
        // 4. Type inference with Any propagation and sub-shaping.
        let (types, _ret) = infer_function(module, &f)?;
        // 5. Memory planning: explicit allocation + shape functions.
        let (f, mem) = plan_function(&f, &types, opts.coalesce)?;
        merge_memplan(&mut report.memplan, mem);
        // 6. Device placement.
        let (f, place) = place_function(&f, opts.target)?;
        report.placement.copies_inserted += place.copies_inserted;
        report.placement.cpu_values += place.cpu_values;
        report.placement.device_values += place.device_values;
        planned.add_function(&name.0, f);
    }
    // 7. Lower to bytecode.
    let exe = lower_module(&planned)?;
    report.instructions = exe.num_instructions();
    report.kernels = exe.kernels.len();
    // 8. Pre-pack weight constants into the process-wide cache so the
    // first inference (of every session sharing this process) skips the
    // packing pass.
    report.weights_prepacked = exe.prepack_weights();
    Ok((exe, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_device::DeviceSet;
    use nimble_ir::attrs::{AttrValue, Attrs};
    use nimble_ir::builder::FunctionBuilder;
    use nimble_ir::types::TensorType;
    use nimble_tensor::{DType, Tensor};
    use nimble_vm::{Object, VirtualMachine};
    use std::sync::Arc;

    fn run_main(exe: Executable, args: Vec<Object>) -> Tensor {
        let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
        vm.run("main", args).unwrap().wait_tensor().unwrap()
    }

    #[test]
    fn compile_and_run_static_chain() {
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::new(&[4], DType::F32));
        let a = fb.call("relu", vec![x], Attrs::new());
        let b = fb.call("tanh", vec![a], Attrs::new());
        let mut m = Module::new();
        m.add_function("main", fb.finish(b));
        let (exe, report) = compile(&m, &CompileOptions::default()).unwrap();
        assert!(report.instructions > 0);
        let out = run_main(
            exe,
            vec![Object::tensor(
                Tensor::from_vec_f32(vec![-1.0, 0.0, 1.0, 2.0], &[4]).unwrap(),
            )],
        );
        let v = out.as_f32().unwrap();
        assert_eq!(v[0], 0.0);
        assert!((v[3] - 2.0f32.tanh()).abs() < 1e-6);
    }

    #[test]
    fn compile_and_run_dynamic_concat() {
        // Dynamic rows exercise shape functions + AllocTensorReg end to
        // end.
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::with_any(&[None, Some(2)], DType::F32));
        let y = fb.param("y", TensorType::new(&[1, 2], DType::F32));
        let c = fb.call(
            "concat",
            vec![x, y],
            Attrs::new().with("axis", AttrValue::Int(0)),
        );
        let mut m = Module::new();
        m.add_function("main", fb.finish(c));
        let (exe, report) = compile(&m, &CompileOptions::default()).unwrap();
        assert!(report.memplan.dynamic_allocs >= 1);
        let out = run_main(
            exe,
            vec![
                Object::tensor(Tensor::ones_f32(&[3, 2])),
                Object::tensor(Tensor::from_vec_f32(vec![9.0, 9.0], &[1, 2]).unwrap()),
            ],
        );
        assert_eq!(out.dims(), &[4, 2]);
        assert_eq!(&out.as_f32().unwrap()[6..], &[9.0, 9.0]);
    }

    #[test]
    fn compile_and_run_fused_dense() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let w = Tensor::rand_f32(&mut rng, &[8, 4], 0.5);
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::with_any(&[None, Some(4)], DType::F32));
        let wc = fb.constant(w.clone());
        let d = fb.call("dense", vec![x, wc], Attrs::new());
        let t = fb.call("sigmoid", vec![d], Attrs::new());
        let mut m = Module::new();
        m.add_function("main", fb.finish(t));
        let (exe, report) = compile(&m, &CompileOptions::default()).unwrap();
        assert_eq!(report.fusion_groups, vec![2], "dense+sigmoid fused");
        let input = Tensor::rand_f32(&mut rng, &[5, 4], 1.0);
        let out = run_main(exe, vec![Object::tensor(input.clone())]);
        // Reference.
        let want = nimble_tensor::kernels::sigmoid(
            &nimble_tensor::kernels::dense(&input, &w, None).unwrap(),
        )
        .unwrap();
        assert_eq!(out.dims(), want.dims());
        for (a, b) in out.as_f32().unwrap().iter().zip(want.as_f32().unwrap()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn compile_control_flow() {
        // main(x, flag) = if flag { relu(x) } else { neg(x) }
        use nimble_ir::expr::{Expr, Function, Var};
        use nimble_ir::types::Type;
        let x = Var::fresh("x", Type::Tensor(TensorType::new(&[2], DType::F32)));
        let flag = Var::fresh("flag", Type::Tensor(TensorType::scalar(DType::Bool)));
        let body = Expr::if_(
            flag.to_expr(),
            Expr::call_op("relu", vec![x.to_expr()], Attrs::new()),
            Expr::call_op("neg", vec![x.to_expr()], Attrs::new()),
        );
        let mut m = Module::new();
        m.add_function("main", Function::new(vec![x, flag], body, Type::Unknown));
        let (exe, _) = compile(&m, &CompileOptions::default()).unwrap();
        let t = Tensor::from_vec_f32(vec![-3.0, 4.0], &[2]).unwrap();
        let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
        let r_true = vm
            .run(
                "main",
                vec![
                    Object::tensor(t.clone()),
                    Object::tensor(Tensor::scalar_bool(true)),
                ],
            )
            .unwrap()
            .wait_tensor()
            .unwrap();
        assert_eq!(r_true.as_f32().unwrap(), &[0.0, 4.0]);
        let r_false = vm
            .run(
                "main",
                vec![
                    Object::tensor(t),
                    Object::tensor(Tensor::scalar_bool(false)),
                ],
            )
            .unwrap()
            .wait_tensor()
            .unwrap();
        assert_eq!(r_false.as_f32().unwrap(), &[3.0, -4.0]);
    }

    #[test]
    fn compile_for_gpu_inserts_copies_and_runs() {
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::with_any(&[None, Some(2)], DType::F32));
        let y = fb.param("y", TensorType::new(&[1, 2], DType::F32));
        let c = fb.call(
            "concat",
            vec![x, y],
            Attrs::new().with("axis", AttrValue::Int(0)),
        );
        let t = fb.call("tanh", vec![c], Attrs::new());
        let mut m = Module::new();
        m.add_function("main", fb.finish(t));
        let (exe, report) = compile(&m, &CompileOptions::gpu()).unwrap();
        assert!(report.placement.copies_inserted > 0);
        let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::with_gpu())).unwrap();
        let out = vm
            .run(
                "main",
                vec![
                    Object::tensor(Tensor::ones_f32(&[2, 2])),
                    Object::tensor(Tensor::ones_f32(&[1, 2])),
                ],
            )
            .unwrap()
            .wait_tensor()
            .unwrap();
        assert_eq!(out.dims(), &[3, 2]);
        let expect = 1.0f32.tanh();
        assert!(out
            .as_f32()
            .unwrap()
            .iter()
            .all(|&v| (v - expect).abs() < 1e-6));
        assert!(vm.devices().gpu().launch_count() >= 1);
    }

    #[test]
    fn executable_serialization_end_to_end() {
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::new(&[3], DType::F32));
        let w = fb.constant(Tensor::from_vec_f32(vec![2.0, 2.0, 2.0], &[3]).unwrap());
        let p = fb.call("mul", vec![x, w], Attrs::new());
        let mut m = Module::new();
        m.add_function("main", fb.finish(p));
        let (exe, _) = compile(&m, &CompileOptions::default()).unwrap();
        let bytes = exe.save();
        let loaded = Executable::load(&bytes).unwrap();
        let out = run_main(
            loaded,
            vec![Object::tensor(
                Tensor::from_vec_f32(vec![1.0, 2.0, 3.0], &[3]).unwrap(),
            )],
        );
        assert_eq!(out.as_f32().unwrap(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn static_type_errors_rejected_at_compile_time() {
        let mut fb = FunctionBuilder::new("main");
        let a = fb.param("a", TensorType::new(&[2], DType::F32));
        let b = fb.param("b", TensorType::new(&[3], DType::F32));
        let s = fb.call("add", vec![a, b], Attrs::new());
        let mut m = Module::new();
        m.add_function("main", fb.finish(s));
        assert!(compile(&m, &CompileOptions::default()).is_err());
    }

    #[test]
    fn deferred_dynamic_check_fails_at_runtime() {
        // add(x: (Any,), y: (3,)) type-checks statically (gradual typing);
        // feeding an incompatible runtime shape must fail in the VM, not
        // crash.
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::with_any(&[None], DType::F32));
        let y = fb.param("y", TensorType::new(&[3], DType::F32));
        let s = fb.call("add", vec![x, y], Attrs::new());
        let mut m = Module::new();
        m.add_function("main", fb.finish(s));
        let (exe, _) = compile(&m, &CompileOptions::default()).unwrap();
        let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
        // Compatible: broadcast of (1,) against (3,).
        let ok = vm.run(
            "main",
            vec![
                Object::tensor(Tensor::ones_f32(&[1])),
                Object::tensor(Tensor::ones_f32(&[3])),
            ],
        );
        assert!(ok.is_ok());
        // Incompatible: (2,) against (3,).
        let err = vm.run(
            "main",
            vec![
                Object::tensor(Tensor::ones_f32(&[2])),
                Object::tensor(Tensor::ones_f32(&[3])),
            ],
        );
        assert!(err.is_err());
    }
}
