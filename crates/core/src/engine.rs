//! Concurrent inference engine: a bounded request queue in front of a
//! shared [`VirtualMachine`].
//!
//! The paper's VM loads a model once — kernels instantiated, constants
//! placed — and then serves requests. Because the loaded program is
//! immutable (`Send + Sync`), serving concurrent traffic needs no
//! duplication: N worker threads share one `Arc<VirtualMachine>`, each
//! owning only a cheap per-run [`Session`]. The queue between callers and
//! workers is bounded, so a saturated engine exerts backpressure on
//! [`Engine::submit`] instead of growing without limit.
//!
//! Workers drain the queue in small batches (one blocking pop, then up to
//! `max_batch - 1` opportunistic pops) so a busy queue amortizes the
//! wake-up cost across requests.

use crate::Result as CompileResult;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use nimble_vm::{Object, ProfileReport, Session, VirtualMachine, VmError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Engine::new`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads, each owning one [`Session`].
    pub workers: usize,
    /// Bounded queue capacity; a full queue blocks [`Engine::submit`].
    pub queue_capacity: usize,
    /// Max requests a worker drains per wake-up.
    pub max_batch: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 4,
            queue_capacity: 64,
            max_batch: 8,
        }
    }
}

impl EngineConfig {
    /// A config with the given worker count and defaults elsewhere.
    pub fn with_workers(workers: usize) -> EngineConfig {
        EngineConfig {
            workers,
            ..EngineConfig::default()
        }
    }
}

/// One finished request: the VM result plus its measured latencies.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The VM's result (or the error the run produced).
    pub result: std::result::Result<Object, VmError>,
    /// Submit-to-completion time, including time spent queued.
    pub latency: Duration,
    /// Time inside [`VirtualMachine::run_in`] only.
    pub execution: Duration,
    /// Index of the worker thread that served the request.
    pub worker: usize,
}

/// Why a request could not be submitted or completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The queue is at capacity (only from [`Engine::try_submit`]).
    Busy,
    /// The engine shut down before the request completed.
    Closed,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Busy => write!(f, "engine queue is full"),
            EngineError::Closed => write!(f, "engine has shut down"),
        }
    }
}

impl std::error::Error for EngineError {}

struct Request {
    function: String,
    args: Vec<Object>,
    reply: Sender<Completion>,
    submitted: Instant,
}

/// Handle to one in-flight request; resolves to a [`Completion`].
#[derive(Debug)]
pub struct Ticket {
    reply: Receiver<Completion>,
}

impl Ticket {
    /// Block until the request completes.
    ///
    /// # Errors
    /// [`EngineError::Closed`] when the engine shut down first.
    pub fn wait(self) -> std::result::Result<Completion, EngineError> {
        self.reply.recv().map_err(|_| EngineError::Closed)
    }
}

/// Aggregate counters kept by the workers (all monotonic since engine
/// creation).
#[derive(Debug, Default)]
struct Counters {
    completed: AtomicU64,
    latency_ns: AtomicU64,
    execution_ns: AtomicU64,
    max_latency_ns: AtomicU64,
    batches: AtomicU64,
}

/// Snapshot of engine counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Requests completed (successes and VM errors alike).
    pub completed: u64,
    /// Sum of submit-to-completion latencies (ns).
    pub total_latency_ns: u64,
    /// Sum of pure execution times (ns).
    pub total_execution_ns: u64,
    /// Worst single-request latency (ns).
    pub max_latency_ns: u64,
    /// Worker wake-ups that drained at least one request.
    pub batches: u64,
}

impl EngineStats {
    /// Mean submit-to-completion latency.
    pub fn mean_latency(&self) -> Duration {
        match self.total_latency_ns.checked_div(self.completed) {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::ZERO,
        }
    }
}

/// A multi-threaded serving loop over one shared loaded program.
pub struct Engine {
    vm: Arc<VirtualMachine>,
    queue: Sender<Request>,
    counters: Arc<Counters>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers.len())
            .field("completed", &self.stats().completed)
            .finish()
    }
}

impl Engine {
    /// Start `config.workers` threads serving `vm`.
    ///
    /// # Errors
    /// Fails when the config asks for zero workers, zero capacity, or a
    /// zero batch, or when thread spawning fails.
    pub fn new(vm: Arc<VirtualMachine>, config: EngineConfig) -> CompileResult<Engine> {
        if config.workers == 0 || config.queue_capacity == 0 || config.max_batch == 0 {
            return Err(crate::CompileError::msg(
                "engine config: workers, queue_capacity and max_batch must be nonzero",
            ));
        }
        let (queue, rx) = bounded::<Request>(config.queue_capacity);
        let counters = Arc::new(Counters::default());
        let mut workers = Vec::with_capacity(config.workers);
        for worker_idx in 0..config.workers {
            let vm = Arc::clone(&vm);
            let rx = rx.clone();
            let counters = Arc::clone(&counters);
            let max_batch = config.max_batch;
            let handle = std::thread::Builder::new()
                .name(format!("nimble-engine-{worker_idx}"))
                .spawn(move || worker_loop(&vm, &rx, &counters, worker_idx, max_batch))
                .map_err(|e| crate::CompileError::msg(format!("spawn engine worker: {e}")))?;
            workers.push(handle);
        }
        Ok(Engine {
            vm,
            queue,
            counters,
            workers,
        })
    }

    /// The shared loaded program this engine serves.
    pub fn vm(&self) -> &Arc<VirtualMachine> {
        &self.vm
    }

    /// Enqueue a request, blocking while the queue is full (backpressure).
    pub fn submit(&self, function: &str, args: Vec<Object>) -> Ticket {
        let (reply_tx, reply_rx) = unbounded();
        let req = Request {
            function: function.to_string(),
            args,
            reply: reply_tx,
            submitted: Instant::now(),
        };
        // Workers only exit after the queue sender is dropped, so while the
        // engine is alive a send cannot fail.
        self.queue.send(req).expect("engine workers terminated");
        Ticket { reply: reply_rx }
    }

    /// Enqueue a request without blocking.
    ///
    /// # Errors
    /// [`EngineError::Busy`] when the queue is at capacity.
    pub fn try_submit(
        &self,
        function: &str,
        args: Vec<Object>,
    ) -> std::result::Result<Ticket, EngineError> {
        let (reply_tx, reply_rx) = unbounded();
        let req = Request {
            function: function.to_string(),
            args,
            reply: reply_tx,
            submitted: Instant::now(),
        };
        match self.queue.try_send(req) {
            Ok(()) => Ok(Ticket { reply: reply_rx }),
            Err(TrySendError::Full(_)) => Err(EngineError::Busy),
            Err(TrySendError::Disconnected(_)) => Err(EngineError::Closed),
        }
    }

    /// Submit and wait — the synchronous convenience path.
    ///
    /// # Errors
    /// [`EngineError::Closed`] when the engine shut down mid-request.
    pub fn run(
        &self,
        function: &str,
        args: Vec<Object>,
    ) -> std::result::Result<Completion, EngineError> {
        self.submit(function, args).wait()
    }

    /// Snapshot the aggregate request counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            completed: self.counters.completed.load(Ordering::Relaxed),
            total_latency_ns: self.counters.latency_ns.load(Ordering::Relaxed),
            total_execution_ns: self.counters.execution_ns.load(Ordering::Relaxed),
            max_latency_ns: self.counters.max_latency_ns.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
        }
    }

    /// Profile aggregated across all workers' sessions (see
    /// [`VirtualMachine::profile_report`]); exact because every session
    /// merges its per-run profile into the VM's shared totals.
    pub fn profile_report(&self) -> ProfileReport {
        self.vm.profile_report()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Disconnect the queue; workers finish what is already enqueued,
        // then exit, so no accepted request is dropped.
        let (dummy, _) = bounded::<Request>(1);
        drop(std::mem::replace(&mut self.queue, dummy));
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(
    vm: &VirtualMachine,
    rx: &Receiver<Request>,
    counters: &Counters,
    worker_idx: usize,
    max_batch: usize,
) {
    // Lane = worker index: each worker's kernels get their own device
    // stream, so requests overlap on the simulated GPU.
    let mut session = Session::with_lane(worker_idx);
    let mut batch = Vec::with_capacity(max_batch);
    // Blocking pop; `Err` means the engine dropped its sender — drain ends.
    while let Ok(first) = rx.recv() {
        batch.push(first);
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }
        counters.batches.fetch_add(1, Ordering::Relaxed);
        for req in batch.drain(..) {
            let exec_start = Instant::now();
            let result = vm.run_in(&mut session, &req.function, req.args);
            let execution = exec_start.elapsed();
            let latency = req.submitted.elapsed();
            counters.completed.fetch_add(1, Ordering::Relaxed);
            counters
                .latency_ns
                .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
            counters
                .execution_ns
                .fetch_add(execution.as_nanos() as u64, Ordering::Relaxed);
            counters
                .max_latency_ns
                .fetch_max(latency.as_nanos() as u64, Ordering::Relaxed);
            // A dropped Ticket just means the caller stopped listening.
            let _ = req.reply.send(Completion {
                result,
                latency,
                execution,
                worker: worker_idx,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use nimble_device::DeviceSet;
    use nimble_ir::attrs::Attrs;
    use nimble_ir::builder::FunctionBuilder;
    use nimble_ir::types::TensorType;
    use nimble_ir::Module;
    use nimble_tensor::{DType, Tensor};

    fn identity_plus_one_vm() -> Arc<VirtualMachine> {
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::new(&[4], DType::F32));
        let one = fb.constant(Tensor::ones_f32(&[4]));
        let y = fb.call("add", vec![x, one], Attrs::new());
        let mut module = Module::new();
        module.add_function("main", fb.finish(y));
        let (exe, _) = compile(&module, &CompileOptions::default()).expect("compile");
        Arc::new(VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).expect("vm"))
    }

    #[test]
    fn serves_requests_and_counts_them() {
        let engine = Engine::new(identity_plus_one_vm(), EngineConfig::with_workers(2)).unwrap();
        let tickets: Vec<Ticket> = (0..10)
            .map(|i| {
                engine.submit(
                    "main",
                    vec![Object::tensor(
                        Tensor::from_vec_f32(vec![i as f32; 4], &[4]).unwrap(),
                    )],
                )
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let done = t.wait().unwrap();
            let out = done.result.unwrap().wait_tensor().unwrap();
            assert_eq!(out.as_f32().unwrap(), &[i as f32 + 1.0; 4]);
            assert!(done.latency >= done.execution);
        }
        let stats = engine.stats();
        assert_eq!(stats.completed, 10);
        assert!(stats.batches >= 1 && stats.batches <= 10);
        assert!(stats.mean_latency() > Duration::ZERO);
    }

    #[test]
    fn try_submit_reports_backpressure() {
        // 1 worker, tiny queue: park the worker on a first request, then
        // fill the queue until Busy appears.
        let vm = identity_plus_one_vm();
        let engine = Engine::new(
            Arc::clone(&vm),
            EngineConfig {
                workers: 1,
                queue_capacity: 2,
                max_batch: 1,
            },
        )
        .unwrap();
        let arg = || vec![Object::tensor(Tensor::ones_f32(&[4]))];
        let mut tickets = Vec::new();
        let mut saw_busy = false;
        for _ in 0..200 {
            match engine.try_submit("main", arg()) {
                Ok(t) => tickets.push(t),
                Err(EngineError::Busy) => {
                    saw_busy = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(saw_busy, "queue of capacity 2 never filled");
        for t in tickets {
            assert!(t.wait().unwrap().result.is_ok());
        }
    }

    #[test]
    fn zero_workers_is_rejected() {
        let vm = identity_plus_one_vm();
        assert!(Engine::new(vm, EngineConfig::with_workers(0)).is_err());
    }

    #[test]
    fn drop_completes_accepted_requests() {
        let vm = identity_plus_one_vm();
        let engine = Engine::new(vm, EngineConfig::with_workers(2)).unwrap();
        let tickets: Vec<Ticket> = (0..16)
            .map(|_| engine.submit("main", vec![Object::tensor(Tensor::ones_f32(&[4]))]))
            .collect();
        drop(engine);
        for t in tickets {
            assert!(t.wait().unwrap().result.is_ok());
        }
    }

    #[test]
    fn profiler_sums_match_across_workers() {
        let vm = identity_plus_one_vm();
        vm.set_profiling(true);
        let engine = Engine::new(Arc::clone(&vm), EngineConfig::with_workers(4)).unwrap();
        let tickets: Vec<Ticket> = (0..32)
            .map(|_| engine.submit("main", vec![Object::tensor(Tensor::ones_f32(&[4]))]))
            .collect();
        for t in tickets {
            t.wait().unwrap().result.unwrap();
        }
        let report = engine.profile_report();
        assert_eq!(vm.profiled_runs(), 32);
        // Every request runs the same single-kernel program.
        assert_eq!(report.kernel_invocations, 32);
        assert!(report.instructions >= 32);
    }
}
