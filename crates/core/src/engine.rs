//! Concurrent inference engine: a bounded request queue in front of a
//! shared [`VirtualMachine`].
//!
//! The paper's VM loads a model once — kernels instantiated, constants
//! placed — and then serves requests. Because the loaded program is
//! immutable (`Send + Sync`), serving concurrent traffic needs no
//! duplication: N worker threads share one `Arc<VirtualMachine>`, each
//! owning only a cheap per-run [`Session`]. The queue between callers and
//! workers is bounded, so a saturated engine exerts backpressure on
//! [`Engine::submit`] instead of growing without limit.
//!
//! Workers drain the queue in small batches (one blocking pop, then up to
//! `max_batch - 1` opportunistic pops) so a busy queue amortizes the
//! wake-up cost across requests.
//!
//! Requests may carry a **deadline** ([`Engine::submit_with_deadline`]):
//! a request whose deadline has already passed when a worker dequeues it
//! is *not* executed — its ticket resolves to [`EngineError::Expired`].
//! This keeps a backlogged queue from burning device time on answers
//! nobody is still waiting for, and is the mechanism the serving layer's
//! router builds its latency guarantees on.
//!
//! [`Engine::shutdown`] drains gracefully: the queue stops accepting new
//! work, workers finish everything already enqueued (honoring deadlines),
//! and then join. Dropping the engine performs the same drain, so every
//! accepted request always receives exactly one terminal reply —
//! completion, expiry, or [`EngineError::Closed`] — never silence.

use crate::Result as CompileResult;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use nimble_obs::{Category as ObsCat, SpanContext};
use nimble_vm::{
    ArenaStats, BatchPlan, Object, ProfileReport, Session, StorageArena, VirtualMachine, VmError,
};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a worker parks in `recv_timeout` before re-checking the pause
/// gate and abort flag. Bounds the latency of [`Engine::pause_and_wait`]
/// and [`Engine::kill`] on an idle engine; on the hot path it is only the
/// wake-up period of an otherwise idle worker.
const GATE_POLL: Duration = Duration::from_millis(10);

/// Tuning knobs for [`Engine::new`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads, each owning one [`Session`].
    pub workers: usize,
    /// Bounded queue capacity; a full queue blocks [`Engine::submit`].
    pub queue_capacity: usize,
    /// Max requests a worker drains per wake-up.
    pub max_batch: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 4,
            queue_capacity: 64,
            max_batch: 8,
        }
    }
}

impl EngineConfig {
    /// A config with the given worker count and defaults elsewhere.
    pub fn with_workers(workers: usize) -> EngineConfig {
        EngineConfig {
            workers,
            ..EngineConfig::default()
        }
    }
}

/// One finished request: the VM result plus its measured latencies.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The VM's result (or the error the run produced).
    pub result: std::result::Result<Object, VmError>,
    /// Submit-to-completion time, including time spent queued.
    pub latency: Duration,
    /// Time spent waiting in the queue before a worker picked the request
    /// up (`latency ≈ queued + execution`).
    pub queued: Duration,
    /// Time inside [`VirtualMachine::run_in`] only. For a member of a
    /// dynamically formed batch this is the *whole batch's* run time
    /// (members share one execution).
    pub execution: Duration,
    /// Index of the worker thread that served the request.
    pub worker: usize,
    /// How many requests shared the VM execution that produced this
    /// completion (1 on the unbatched path).
    pub batch_size: usize,
}

/// Why a request could not be submitted or completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The queue is at capacity (only from [`Engine::try_submit`]).
    Busy,
    /// The engine shut down before the request completed.
    Closed,
    /// The request's deadline passed before a worker could start it.
    Expired,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Busy => write!(f, "engine queue is full"),
            EngineError::Closed => write!(f, "engine has shut down"),
            EngineError::Expired => write!(f, "request deadline expired while queued"),
        }
    }
}

impl std::error::Error for EngineError {}

struct Request {
    function: String,
    args: Vec<Object>,
    reply: Sender<std::result::Result<Completion, EngineError>>,
    submitted: Instant,
    deadline: Option<Instant>,
    /// Trace context carried across the queue (the router's, or one the
    /// engine started itself for direct submissions).
    ctx: SpanContext,
    /// Whether this engine made the sampling decision (no upstream trace)
    /// and therefore records the trace's root span at the terminal state.
    owns_root: bool,
    /// Submission time on the obs clock; 0 when the trace is not sampled.
    submitted_ns: u64,
}

/// Trace fields for a request being submitted: adopt the caller's context
/// when one exists, otherwise make the admission sampling decision here.
fn admission_ctx() -> (SpanContext, bool, u64) {
    let cur = nimble_obs::current();
    let (ctx, owns_root) = if cur.is_none() {
        (nimble_obs::start_trace(), true)
    } else {
        (cur, false)
    };
    let submitted_ns = if ctx.is_sampled() {
        nimble_obs::now_ns()
    } else {
        0
    };
    (ctx, owns_root && ctx.is_sampled(), submitted_ns)
}

/// Handle to one in-flight request; resolves to a [`Completion`].
#[derive(Debug)]
pub struct Ticket {
    reply: Receiver<std::result::Result<Completion, EngineError>>,
}

impl Ticket {
    /// Block until the request reaches a terminal state.
    ///
    /// # Errors
    /// [`EngineError::Expired`] when the deadline passed while queued,
    /// [`EngineError::Closed`] when the engine shut down first.
    pub fn wait(self) -> std::result::Result<Completion, EngineError> {
        self.reply.recv().map_err(|_| EngineError::Closed)?
    }

    /// A ticket that immediately resolves to [`EngineError::Closed`]
    /// (used when a request is submitted to an already-drained engine).
    fn closed() -> Ticket {
        let (_tx, rx) = unbounded();
        Ticket { reply: rx }
    }
}

/// Aggregate counters kept by the workers (all monotonic since engine
/// creation).
#[derive(Debug, Default)]
struct Counters {
    completed: AtomicU64,
    expired: AtomicU64,
    closed: AtomicU64,
    latency_ns: AtomicU64,
    queue_ns: AtomicU64,
    execution_ns: AtomicU64,
    max_latency_ns: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    batches_formed: AtomicU64,
    padded_units: AtomicU64,
    used_units: AtomicU64,
}

/// "No batch formed yet" sentinel for the last-formed-bucket atomic.
const NO_BUCKET: u64 = u64::MAX;

/// Control block shared between an engine and its workers: the chaos/scale
/// pause gate, the kill switch, and the replica label the serving layer
/// stamps into this engine's spans.
#[derive(Debug)]
struct WorkerCtrl {
    /// While `true`, workers park at the gate between requests.
    paused: Mutex<bool>,
    /// Wakes gate-parked workers on resume/kill; workers also notify it
    /// when they park, so [`Engine::pause_and_wait`] can observe quiesce.
    cond: Condvar,
    /// Workers currently parked at the pause gate.
    at_gate: AtomicUsize,
    /// Kill switch: once set, workers answer every remaining request with
    /// [`EngineError::Closed`] instead of executing it.
    aborted: AtomicBool,
    /// Replica id recorded in this engine's `engine.queue`/`engine.run`
    /// spans (0 for an unsharded engine).
    label: AtomicU64,
    /// Shape bucket of the most recently formed batch ([`NO_BUCKET`] when
    /// none yet) — the shard layer's shape-affinity admission hint.
    last_bucket: AtomicU64,
    /// Ring of recently admitted request shape keys (stored as `key + 1`;
    /// 0 = empty slot) — the shard layer's specialization-warmth hint:
    /// among equally loaded replicas, one that recently ran a shape the
    /// model's specialization cache holds is preferred for it.
    warm_shapes: [AtomicU64; WARM_RING],
    /// Next ring slot to overwrite.
    warm_cursor: AtomicUsize,
}

/// Slots in the recently-admitted-shape ring.
const WARM_RING: usize = 8;

impl Default for WorkerCtrl {
    fn default() -> WorkerCtrl {
        WorkerCtrl {
            paused: Mutex::new(false),
            cond: Condvar::new(),
            at_gate: AtomicUsize::new(0),
            aborted: AtomicBool::new(false),
            label: AtomicU64::new(0),
            last_bucket: AtomicU64::new(NO_BUCKET),
            warm_shapes: std::array::from_fn(|_| AtomicU64::new(0)),
            warm_cursor: AtomicUsize::new(0),
        }
    }
}

/// Snapshot of engine counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Requests completed (successes and VM errors alike).
    pub completed: u64,
    /// Requests dropped at dequeue because their deadline had passed.
    pub expired: u64,
    /// Requests answered [`EngineError::Closed`] without executing (only
    /// nonzero after [`Engine::kill`] abandoned queued work).
    pub closed: u64,
    /// Requests currently waiting in the queue.
    pub queue_depth: u64,
    /// Sum of submit-to-completion latencies (ns).
    pub total_latency_ns: u64,
    /// Sum of queue-wait times — submit to worker pickup (ns).
    pub total_queue_ns: u64,
    /// Sum of pure execution times (ns).
    pub total_execution_ns: u64,
    /// Worst single-request latency (ns).
    pub max_latency_ns: u64,
    /// Worker wake-ups that drained at least one request.
    pub batches: u64,
    /// Requests served through a dynamically formed batch.
    pub batched_requests: u64,
    /// Dynamically formed batches executed (each one VM run).
    pub batches_formed: u64,
    /// Padding shape units (tokens/steps) added by pad-to-bucket.
    pub padded_units: u64,
    /// Real shape units carried by batched requests.
    pub used_units: u64,
}

impl EngineStats {
    /// Mean submit-to-completion latency.
    pub fn mean_latency(&self) -> Duration {
        match self.total_latency_ns.checked_div(self.completed) {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::ZERO,
        }
    }

    /// Mean queue-wait (submit to worker pickup) per completed request.
    pub fn mean_queue_wait(&self) -> Duration {
        match self.total_queue_ns.checked_div(self.completed) {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::ZERO,
        }
    }

    /// Mean pure execution time per completed request.
    pub fn mean_execution(&self) -> Duration {
        match self.total_execution_ns.checked_div(self.completed) {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::ZERO,
        }
    }

    /// Fraction of batched shape units that were padding
    /// (`padded / (padded + used)`; 0 when nothing batched yet).
    pub fn pad_waste_ratio(&self) -> f64 {
        let total = self.padded_units + self.used_units;
        if total == 0 {
            0.0
        } else {
            self.padded_units as f64 / total as f64
        }
    }
}

/// A multi-threaded serving loop over one shared loaded program.
pub struct Engine {
    vm: Arc<VirtualMachine>,
    /// `None` once [`Engine::shutdown`] has run; new submissions then get
    /// an immediately-closed ticket instead of reaching workers.
    queue: Mutex<Option<Sender<Request>>>,
    /// Kept only to observe queue depth (never received from).
    depth: Receiver<Request>,
    counters: Arc<Counters>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    ctrl: Arc<WorkerCtrl>,
    /// One storage arena per worker (empty when `NIMBLE_ARENA=off`).
    /// Workers keep them warm across requests; the engine exposes their
    /// summed stats and trims them on shutdown.
    arenas: Vec<Arc<StorageArena>>,
    /// Dynamic-batching plan (None = unbatched path, also forced by
    /// `NIMBLE_BATCH=off` at construction).
    plan: Option<Arc<BatchPlan>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers.lock().unwrap().len())
            .field("completed", &self.stats().completed)
            .finish()
    }
}

impl Engine {
    /// Start `config.workers` threads serving `vm`.
    ///
    /// # Errors
    /// Fails when the config asks for zero workers, zero capacity, or a
    /// zero batch, or when thread spawning fails.
    pub fn new(vm: Arc<VirtualMachine>, config: EngineConfig) -> CompileResult<Engine> {
        Engine::with_plan(vm, config, None)
    }

    /// [`Engine::new`] plus a dynamic-batching plan: workers additionally
    /// group compatible same-bucket requests from each drain into one
    /// padded batched execution (see [`nimble_vm::batch`]). The
    /// `NIMBLE_BATCH=off` environment escape hatch drops the plan here,
    /// restoring the unbatched path unchanged.
    ///
    /// # Errors
    /// Same conditions as [`Engine::new`].
    pub fn with_plan(
        vm: Arc<VirtualMachine>,
        config: EngineConfig,
        plan: Option<Arc<BatchPlan>>,
    ) -> CompileResult<Engine> {
        if config.workers == 0 || config.queue_capacity == 0 || config.max_batch == 0 {
            return Err(crate::CompileError::msg(
                "engine config: workers, queue_capacity and max_batch must be nonzero",
            ));
        }
        let plan = if nimble_vm::batching_disabled() {
            None
        } else {
            plan
        };
        let (queue, rx) = bounded::<Request>(config.queue_capacity);
        let counters = Arc::new(Counters::default());
        let ctrl = Arc::new(WorkerCtrl::default());
        let mut workers = Vec::with_capacity(config.workers);
        let mut arenas = Vec::new();
        for worker_idx in 0..config.workers {
            let vm = Arc::clone(&vm);
            let worker_rx = rx.clone();
            let counters = Arc::clone(&counters);
            let ctrl = Arc::clone(&ctrl);
            let max_batch = config.max_batch;
            let plan = plan.clone();
            // Engine-owned arena so stats/trim work from outside the
            // worker; the session recycles storage into it across every
            // request the worker serves.
            let arena = StorageArena::shared_default();
            if let Some(a) = &arena {
                arenas.push(Arc::clone(a));
            }
            let handle = std::thread::Builder::new()
                .name(format!("nimble-engine-{worker_idx}"))
                .spawn(move || {
                    Worker {
                        vm: &vm,
                        rx: &worker_rx,
                        counters: &counters,
                        ctrl: &ctrl,
                        worker_idx,
                        max_batch,
                        plan,
                        session: Session::with_lane_and_arena(worker_idx, arena),
                    }
                    .run()
                })
                .map_err(|e| crate::CompileError::msg(format!("spawn engine worker: {e}")))?;
            workers.push(handle);
        }
        Ok(Engine {
            vm,
            queue: Mutex::new(Some(queue)),
            depth: rx,
            counters,
            workers: Mutex::new(workers),
            ctrl,
            arenas,
            plan,
        })
    }

    /// The shared loaded program this engine serves.
    pub fn vm(&self) -> &Arc<VirtualMachine> {
        &self.vm
    }

    /// The dynamic-batching plan this engine runs with (None = unbatched).
    pub fn plan(&self) -> Option<&Arc<BatchPlan>> {
        self.plan.as_ref()
    }

    /// Shape bucket of the most recently formed batch, or `None` when no
    /// batch has formed yet. The shard layer uses this as its
    /// shape-affinity admission hint.
    pub fn last_formed_bucket(&self) -> Option<usize> {
        match self.ctrl.last_bucket.load(Ordering::Relaxed) {
            NO_BUCKET => None,
            b => Some(b as usize),
        }
    }

    /// Test hook: seed the last-formed-bucket hint without running a
    /// batch, so affinity routing is testable deterministically.
    #[doc(hidden)]
    pub fn set_last_formed_bucket(&self, bucket: usize) {
        self.ctrl
            .last_bucket
            .store(bucket as u64, Ordering::Relaxed);
    }

    /// Note that a request with shape key `key` was admitted to this
    /// replica (called by the shard layer on admission; lossy by design —
    /// a ring of the last few shapes, not a history).
    pub fn note_warm_shape(&self, key: u64) {
        if self.has_warm_shape(key) {
            return;
        }
        let slot =
            self.ctrl.warm_cursor.fetch_add(1, Ordering::Relaxed) % self.ctrl.warm_shapes.len();
        self.ctrl.warm_shapes[slot].store(key.wrapping_add(1), Ordering::Relaxed);
    }

    /// Whether `key` is in this replica's recently admitted shape ring.
    pub fn has_warm_shape(&self, key: u64) -> bool {
        let tagged = key.wrapping_add(1);
        self.ctrl
            .warm_shapes
            .iter()
            .any(|s| s.load(Ordering::Relaxed) == tagged)
    }

    /// A clone of the queue sender, or `None` after shutdown. Cloning
    /// under the lock and sending outside it keeps blocking sends from
    /// stalling [`Engine::shutdown`]'s lock acquisition; workers only exit
    /// once every clone is dropped, so a send that races shutdown is still
    /// drained, never stranded.
    fn sender(&self) -> Option<Sender<Request>> {
        self.queue.lock().unwrap().clone()
    }

    /// Enqueue a request, blocking while the queue is full (backpressure).
    ///
    /// After [`Engine::shutdown`] the returned ticket resolves immediately
    /// to [`EngineError::Closed`].
    pub fn submit(&self, function: &str, args: Vec<Object>) -> Ticket {
        self.submit_inner(function, args, None)
    }

    /// [`Engine::submit`] with a deadline: if the deadline passes before a
    /// worker dequeues the request, it is skipped and the ticket resolves
    /// to [`EngineError::Expired`].
    pub fn submit_with_deadline(
        &self,
        function: &str,
        args: Vec<Object>,
        deadline: Instant,
    ) -> Ticket {
        self.submit_inner(function, args, Some(deadline))
    }

    fn submit_inner(&self, function: &str, args: Vec<Object>, deadline: Option<Instant>) -> Ticket {
        let Some(queue) = self.sender() else {
            return Ticket::closed();
        };
        let (reply_tx, reply_rx) = unbounded();
        let (ctx, owns_root, submitted_ns) = admission_ctx();
        let req = Request {
            function: function.to_string(),
            args,
            reply: reply_tx,
            submitted: Instant::now(),
            deadline,
            ctx,
            owns_root,
            submitted_ns,
        };
        match queue.send(req) {
            Ok(()) => Ticket { reply: reply_rx },
            // Workers already exited (shutdown raced us): closed ticket.
            Err(_) => Ticket::closed(),
        }
    }

    /// Enqueue a request without blocking.
    ///
    /// # Errors
    /// [`EngineError::Busy`] when the queue is at capacity,
    /// [`EngineError::Closed`] after shutdown.
    pub fn try_submit(
        &self,
        function: &str,
        args: Vec<Object>,
    ) -> std::result::Result<Ticket, EngineError> {
        self.try_submit_inner(function, args, None)
    }

    /// [`Engine::try_submit`] with a deadline (see
    /// [`Engine::submit_with_deadline`]).
    ///
    /// # Errors
    /// [`EngineError::Busy`] when the queue is at capacity,
    /// [`EngineError::Closed`] after shutdown.
    pub fn try_submit_with_deadline(
        &self,
        function: &str,
        args: Vec<Object>,
        deadline: Instant,
    ) -> std::result::Result<Ticket, EngineError> {
        self.try_submit_inner(function, args, Some(deadline))
    }

    fn try_submit_inner(
        &self,
        function: &str,
        args: Vec<Object>,
        deadline: Option<Instant>,
    ) -> std::result::Result<Ticket, EngineError> {
        let Some(queue) = self.sender() else {
            return Err(EngineError::Closed);
        };
        let (reply_tx, reply_rx) = unbounded();
        let (ctx, owns_root, submitted_ns) = admission_ctx();
        let req = Request {
            function: function.to_string(),
            args,
            reply: reply_tx,
            submitted: Instant::now(),
            deadline,
            ctx,
            owns_root,
            submitted_ns,
        };
        match queue.try_send(req) {
            Ok(()) => Ok(Ticket { reply: reply_rx }),
            Err(TrySendError::Full(_)) => Err(EngineError::Busy),
            Err(TrySendError::Disconnected(_)) => Err(EngineError::Closed),
        }
    }

    /// Submit and wait — the synchronous convenience path.
    ///
    /// # Errors
    /// [`EngineError::Closed`] when the engine shut down mid-request.
    pub fn run(
        &self,
        function: &str,
        args: Vec<Object>,
    ) -> std::result::Result<Completion, EngineError> {
        self.submit(function, args).wait()
    }

    /// Drain and stop: refuse new submissions, let workers finish every
    /// request already enqueued (expiring those past their deadline), then
    /// join them and trim the worker arenas back to the device pools.
    /// A paused engine is resumed first — a graceful drain executes the
    /// backlog, it never strands it.
    /// Idempotent; concurrent callers all block until the drain completes.
    pub fn shutdown(&self) {
        self.resume();
        // Dropping the primary sender disconnects the channel once every
        // transient clone held by an in-flight submit is gone too.
        drop(self.queue.lock().unwrap().take());
        let mut workers = self.workers.lock().unwrap();
        for w in workers.drain(..) {
            let _ = w.join();
        }
        // Retired engines keep no recycled storage warm (model unload /
        // hot-swap returns to the pre-load memory baseline).
        self.trim_arenas();
    }

    /// Abrupt stop — the chaos-harness "replica dies" primitive. Unlike
    /// [`Engine::shutdown`], queued requests are *not* executed: each one
    /// is answered with [`EngineError::Closed`] (never silence), the
    /// request currently mid-execution (if any) completes — the simulated
    /// process death is at request granularity — and the workers exit.
    /// Idempotent; safe after `shutdown`.
    pub fn kill(&self) {
        self.ctrl.aborted.store(true, Ordering::Release);
        // Wake gate-parked workers so they can observe the kill.
        self.ctrl.cond.notify_all();
        self.shutdown();
    }

    /// Whether [`Engine::kill`] has run.
    pub fn is_killed(&self) -> bool {
        self.ctrl.aborted.load(Ordering::Acquire)
    }

    /// Freeze the workers between requests and return once every worker
    /// is parked at the pause gate: nothing is mid-execution, so queue
    /// contents (and [`Engine::queue_depth`]) are exact until
    /// [`Engine::resume`]. The chaos harness uses this to make fault
    /// injection deterministic; submissions stay open while paused.
    pub fn pause_and_wait(&self) {
        *self.ctrl.paused.lock().unwrap() = true;
        let workers = self.workers.lock().unwrap().len();
        while self.ctrl.at_gate.load(Ordering::Acquire) < workers
            && !self.ctrl.aborted.load(Ordering::Acquire)
        {
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Reopen the pause gate (see [`Engine::pause_and_wait`]). Idempotent.
    pub fn resume(&self) {
        *self.ctrl.paused.lock().unwrap() = false;
        self.ctrl.cond.notify_all();
    }

    /// Stamp this engine's `engine.queue`/`engine.run` spans with a
    /// replica id (set by the shard layer; 0 means unsharded).
    pub fn set_replica_label(&self, label: u64) {
        self.ctrl.label.store(label, Ordering::Relaxed);
    }

    /// The replica id set by [`Engine::set_replica_label`].
    pub fn replica_label(&self) -> u64 {
        self.ctrl.label.load(Ordering::Relaxed)
    }

    /// Summed arena counters across all workers (all-zero when arenas are
    /// disabled via `NIMBLE_ARENA=off`).
    pub fn arena_stats(&self) -> ArenaStats {
        let mut total = ArenaStats::default();
        for arena in &self.arenas {
            total.merge(&arena.stats());
        }
        total
    }

    /// Return every block parked in the worker arenas to the device pools;
    /// yields the bytes released. In-flight requests are unaffected (their
    /// storage re-parks on drop).
    pub fn trim_arenas(&self) -> u64 {
        self.arenas.iter().map(|a| a.trim()).sum()
    }

    /// Requests currently waiting in the queue (not yet dequeued by a
    /// worker).
    pub fn queue_depth(&self) -> usize {
        self.depth.len()
    }

    /// Snapshot the aggregate request counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            completed: self.counters.completed.load(Ordering::Relaxed),
            expired: self.counters.expired.load(Ordering::Relaxed),
            closed: self.counters.closed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth() as u64,
            total_latency_ns: self.counters.latency_ns.load(Ordering::Relaxed),
            total_queue_ns: self.counters.queue_ns.load(Ordering::Relaxed),
            total_execution_ns: self.counters.execution_ns.load(Ordering::Relaxed),
            max_latency_ns: self.counters.max_latency_ns.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            batched_requests: self.counters.batched_requests.load(Ordering::Relaxed),
            batches_formed: self.counters.batches_formed.load(Ordering::Relaxed),
            padded_units: self.counters.padded_units.load(Ordering::Relaxed),
            used_units: self.counters.used_units.load(Ordering::Relaxed),
        }
    }

    /// Profile aggregated across all workers' sessions (see
    /// [`VirtualMachine::profile_report`]); exact because every session
    /// merges its per-run profile into the VM's shared totals.
    pub fn profile_report(&self) -> ProfileReport {
        self.vm.profile_report()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A request a worker has committed to serve: past the abort and deadline
/// checks, queue wait measured, queue span recorded.
struct Picked {
    req: Request,
    queued: Duration,
}

/// One engine worker thread: the drain loop, the batch-forming stage, and
/// both (unbatched / batched) execution paths.
struct Worker<'a> {
    vm: &'a VirtualMachine,
    rx: &'a Receiver<Request>,
    counters: &'a Counters,
    ctrl: &'a WorkerCtrl,
    worker_idx: usize,
    max_batch: usize,
    plan: Option<Arc<BatchPlan>>,
    // Lane = worker index: each worker's kernels get their own device
    // stream, so requests overlap on the simulated GPU. The session
    // reuses the engine-owned arena across every request this worker
    // serves.
    session: Session,
}

impl Worker<'_> {
    fn run(mut self) {
        let mut batch = Vec::with_capacity(self.max_batch);
        loop {
            // Pause gate: while paused, park *before* touching the channel
            // so `pause_and_wait` can guarantee no request is mid-flight
            // and the queue contents are exact.
            {
                let mut paused = self.ctrl.paused.lock().unwrap();
                if *paused && !self.ctrl.aborted.load(Ordering::Acquire) {
                    self.ctrl.at_gate.fetch_add(1, Ordering::Release);
                    self.ctrl.cond.notify_all();
                    while *paused && !self.ctrl.aborted.load(Ordering::Acquire) {
                        paused = self.ctrl.cond.wait(paused).unwrap();
                    }
                    self.ctrl.at_gate.fetch_sub(1, Ordering::Release);
                }
            }
            // Timed pop so a paused/killed engine cycles back to the gate;
            // `Disconnected` means every sender is gone and the queue is
            // empty — the drain is complete, nothing can be stranded.
            let first = match self.rx.recv_timeout(GATE_POLL) {
                Ok(req) => req,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            };
            batch.push(first);
            while batch.len() < self.max_batch {
                match self.rx.try_recv() {
                    Ok(req) => batch.push(req),
                    Err(_) => break,
                }
            }
            self.counters.batches.fetch_add(1, Ordering::Relaxed);
            self.serve_drained(std::mem::take(&mut batch));
        }
    }

    /// Serve one drained set: with no plan every request runs alone (the
    /// pre-batching path, byte for byte); with a plan, same-bucket
    /// requests for the plan's function are grouped, optionally topped up
    /// within `max_wait`, and executed as padded batches.
    fn serve_drained(&mut self, drained: Vec<Request>) {
        let Some(plan) = self.plan.clone() else {
            for req in drained {
                if let Some(p) = self.pick(req) {
                    self.execute_single(p);
                }
            }
            return;
        };

        // Partition at pull time. The deadline check runs *here*, as each
        // request enters the forming batch — an already-expired request
        // must never pad-inflate a batch (it is answered Expired and takes
        // no slot).
        let mut singles: Vec<Picked> = Vec::new();
        let mut groups: Vec<(usize, Vec<(Picked, usize)>)> = Vec::new();
        let mut members = 0usize;
        let mut partition =
            |w: &mut Self, req: Request, groups: &mut Vec<(usize, Vec<(Picked, usize)>)>| {
                let Some(p) = w.pick(req) else {
                    return false;
                };
                if p.req.function == plan.function {
                    if let Some(key) = (plan.key)(&p.req.args) {
                        if let Some(bucket) = plan.bucket_for(key) {
                            match groups.iter_mut().find(|(b, _)| *b == bucket) {
                                Some((_, g)) => g.push((p, key)),
                                None => groups.push((bucket, vec![(p, key)])),
                            }
                            return true;
                        }
                    }
                }
                singles.push(p);
                false
            };
        for req in drained {
            if partition(self, req, &mut groups) {
                members += 1;
            }
        }

        // Top-up: while nothing batchable has reached `min_batch`, hold
        // the forming batch open for up to `max_wait` hoping same-bucket
        // traffic arrives. Deadline pressure closes the batch early: the
        // wait never extends past any member's deadline, so a request
        // admitted with time to spare is not expired by the wait itself.
        let undersized = |groups: &Vec<(usize, Vec<(Picked, usize)>)>| {
            groups.iter().all(|(_, g)| g.len() < plan.config.min_batch)
        };
        if members > 0 && plan.config.max_wait > Duration::ZERO && undersized(&groups) {
            let mut close_at = Instant::now() + plan.config.max_wait;
            for (_, g) in &groups {
                for (p, _) in g {
                    if let Some(d) = p.req.deadline {
                        close_at = close_at.min(d);
                    }
                }
            }
            while members < self.max_batch && undersized(&groups) {
                let now = Instant::now();
                if now >= close_at {
                    break;
                }
                match self.rx.recv_timeout(close_at - now) {
                    Ok(req) => {
                        let deadline = req.deadline;
                        if partition(self, req, &mut groups) {
                            members += 1;
                            if let Some(d) = deadline {
                                close_at = close_at.min(d);
                            }
                        }
                    }
                    Err(_) => break,
                }
            }
        }

        for p in singles {
            self.execute_single(p);
        }
        for (bucket, group) in groups {
            if group.len() < plan.config.min_batch {
                // Not worth padding: run members on the unbatched path.
                for (p, _) in group {
                    self.execute_single(p);
                }
            } else {
                self.execute_batched(&plan, bucket, group);
            }
        }
    }

    /// Abort and deadline checks at the moment a worker pulls a request
    /// out of the queue (into a forming batch or straight to execution).
    /// Replies and returns `None` when the request must not execute.
    fn pick(&self, req: Request) -> Option<Picked> {
        if self.ctrl.aborted.load(Ordering::Acquire) {
            // Killed replica: abandoned work is answered explicitly,
            // never executed, never silent. Payload drops first so a
            // caller observing Closed sees memory back at baseline.
            let Request { args, reply, .. } = req;
            drop(args);
            self.counters.closed.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(Err(EngineError::Closed));
            return None;
        }
        // Queue wait ends the moment this worker picks the request up
        // (also recorded as a span under the request's trace, tagged with
        // the replica label).
        let queued = req.submitted.elapsed();
        let dequeued_ns = if req.ctx.is_sampled() {
            let now = nimble_obs::now_ns();
            nimble_obs::record_under(
                req.ctx,
                "engine.queue",
                ObsCat::Engine,
                req.submitted_ns,
                now,
                self.ctrl.label.load(Ordering::Relaxed),
            );
            now
        } else {
            0
        };
        // Deadline-aware pickup: a request nobody is waiting for anymore
        // is answered with Expired instead of executed (or batched).
        if let Some(deadline) = req.deadline {
            if Instant::now() >= deadline {
                // Release the request's payload (argument tensors and any
                // storage already allocated for them) *before* replying: a
                // caller observing Expired must be able to assert memory
                // is back at its idle baseline without racing this
                // worker's cleanup.
                let Request {
                    args,
                    reply,
                    ctx,
                    owns_root,
                    submitted_ns,
                    ..
                } = req;
                drop(args);
                self.counters.expired.fetch_add(1, Ordering::Relaxed);
                if owns_root {
                    nimble_obs::record_root(
                        ctx,
                        "engine.request",
                        ObsCat::Engine,
                        submitted_ns,
                        dequeued_ns,
                        2,
                    );
                }
                let _ = reply.send(Err(EngineError::Expired));
                return None;
            }
        }
        Some(Picked { req, queued })
    }

    /// Unbatched execution of one picked request.
    fn execute_single(&mut self, p: Picked) {
        let Picked { req, queued } = p;
        let exec_start = Instant::now();
        let result = {
            let _g = nimble_obs::enter(req.ctx);
            // High half: replica label; low half: worker index.
            let tag = (self.ctrl.label.load(Ordering::Relaxed) << 32) | self.worker_idx as u64;
            let _s = nimble_obs::span_full("engine.run", ObsCat::Engine, tag);
            self.vm.run_in(&mut self.session, &req.function, req.args)
        };
        let execution = exec_start.elapsed();
        self.finish(
            FinishedRequest {
                reply: req.reply,
                submitted: req.submitted,
                ctx: req.ctx,
                owns_root: req.owns_root,
                submitted_ns: req.submitted_ns,
            },
            result,
            queued,
            execution,
            1,
        );
        self.counters
            .execution_ns
            .fetch_add(execution.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Batched execution: gather the members' padded inputs, run the
    /// `main_b{bucket}` entry once on this worker's session, scatter the
    /// per-member slices back. Any batched-path error (gather, VM run,
    /// scatter) falls back to running every member unbatched, so batching
    /// can only change *when* a request runs, never its outcome.
    fn execute_batched(&mut self, plan: &BatchPlan, bucket: usize, group: Vec<(Picked, usize)>) {
        let size = group.len();
        self.ctrl
            .last_bucket
            .store(bucket as u64, Ordering::Relaxed);
        // Spans land under the batch leader's trace: the first member
        // with a sampled context (members keep their own engine.queue /
        // terminal spans regardless).
        let leader = group
            .iter()
            .map(|(p, _)| p.req.ctx)
            .find(|c| c.is_sampled())
            .unwrap_or(SpanContext::NONE);
        let tag = (self.ctrl.label.load(Ordering::Relaxed) << 32) | self.worker_idx as u64;
        let form_start = nimble_obs::now_ns();
        let member_args: Vec<Vec<Object>> = group.iter().map(|(p, _)| p.req.args.clone()).collect();
        let keys: Vec<usize> = group.iter().map(|(_, k)| *k).collect();
        let gathered = (plan.gather)(&member_args, &keys, bucket);
        drop(member_args);
        nimble_obs::record_under(
            leader,
            "batch.form",
            ObsCat::Engine,
            form_start,
            nimble_obs::now_ns(),
            size as u64,
        );
        let batched_args = match gathered {
            Ok(args) => args,
            Err(_) => return self.fall_back(group),
        };

        let exec_start = Instant::now();
        let result = {
            let _g = nimble_obs::enter(leader);
            let _s = nimble_obs::span_full("batch.run", ObsCat::Engine, tag);
            self.vm
                .run_in(&mut self.session, &plan.entry(bucket), batched_args)
        };
        let execution = exec_start.elapsed();
        let batched = match result {
            Ok(out) => out,
            Err(_) => return self.fall_back(group),
        };

        let scatter_start = nimble_obs::now_ns();
        let outputs = (plan.scatter)(&batched, &keys, bucket);
        drop(batched);
        nimble_obs::record_under(
            leader,
            "batch.scatter",
            ObsCat::Engine,
            scatter_start,
            nimble_obs::now_ns(),
            size as u64,
        );
        let outputs = match outputs {
            Ok(outs) if outs.len() == size => outs,
            _ => return self.fall_back(group),
        };

        // Fan out per-member completions; the batch's run time is shared.
        self.counters
            .batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.counters.batches_formed.fetch_add(1, Ordering::Relaxed);
        let used: u64 = keys.iter().map(|&k| k as u64).sum();
        self.counters.used_units.fetch_add(used, Ordering::Relaxed);
        let padded = (bucket * size) as u64 - used;
        self.counters
            .padded_units
            .fetch_add(padded, Ordering::Relaxed);
        // A batch that is mostly padding is a tail-latency suspect (its
        // members paid for shape units nobody used): pin every member's
        // flight buffer so the traces survive tail-based retention.
        if padded.saturating_mul(2) > (bucket * size) as u64 {
            for (p, _) in &group {
                nimble_obs::flight::pin(p.req.ctx, nimble_obs::flight::PIN_PAD_BATCH);
            }
        }
        // The batch ran once: its execution wall time is added once, not
        // per member, so utilization counters track real device time.
        self.counters
            .execution_ns
            .fetch_add(execution.as_nanos() as u64, Ordering::Relaxed);
        for ((p, _), output) in group.into_iter().zip(outputs) {
            let Picked { req, queued } = p;
            drop(req.args);
            self.finish(
                FinishedRequest {
                    reply: req.reply,
                    submitted: req.submitted,
                    ctx: req.ctx,
                    owns_root: req.owns_root,
                    submitted_ns: req.submitted_ns,
                },
                Ok(output),
                queued,
                execution,
                size,
            );
        }
    }

    /// Batched-path error recovery: run every member individually on the
    /// unbatched path, preserving per-request semantics exactly.
    fn fall_back(&mut self, group: Vec<(Picked, usize)>) {
        for (p, _) in group {
            self.execute_single(p);
        }
    }

    /// Terminal bookkeeping shared by both paths: counters, root span,
    /// reply.
    fn finish(
        &self,
        req: FinishedRequest,
        result: std::result::Result<Object, VmError>,
        queued: Duration,
        execution: Duration,
        batch_size: usize,
    ) {
        let latency = req.submitted.elapsed();
        if req.owns_root {
            nimble_obs::record_root(
                req.ctx,
                "engine.request",
                ObsCat::Engine,
                req.submitted_ns,
                nimble_obs::now_ns(),
                if result.is_ok() { 0 } else { 1 },
            );
        }
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        self.counters
            .latency_ns
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
        self.counters
            .queue_ns
            .fetch_add(queued.as_nanos() as u64, Ordering::Relaxed);
        self.counters
            .max_latency_ns
            .fetch_max(latency.as_nanos() as u64, Ordering::Relaxed);
        // A dropped Ticket just means the caller stopped listening.
        let _ = req.reply.send(Ok(Completion {
            result,
            latency,
            queued,
            execution,
            worker: self.worker_idx,
            batch_size,
        }));
    }
}

/// The slice of a [`Request`] that survives to terminal bookkeeping
/// (arguments are consumed by execution or dropped before the reply).
struct FinishedRequest {
    reply: Sender<std::result::Result<Completion, EngineError>>,
    submitted: Instant,
    ctx: SpanContext,
    owns_root: bool,
    submitted_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use nimble_device::DeviceSet;
    use nimble_ir::attrs::Attrs;
    use nimble_ir::builder::FunctionBuilder;
    use nimble_ir::types::TensorType;
    use nimble_ir::Module;
    use nimble_tensor::{DType, Tensor};

    fn identity_plus_one_vm() -> Arc<VirtualMachine> {
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::new(&[4], DType::F32));
        let one = fb.constant(Tensor::ones_f32(&[4]));
        let y = fb.call("add", vec![x, one], Attrs::new());
        let mut module = Module::new();
        module.add_function("main", fb.finish(y));
        let (exe, _) = compile(&module, &CompileOptions::default()).expect("compile");
        Arc::new(VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).expect("vm"))
    }

    #[test]
    fn serves_requests_and_counts_them() {
        let engine = Engine::new(identity_plus_one_vm(), EngineConfig::with_workers(2)).unwrap();
        let tickets: Vec<Ticket> = (0..10)
            .map(|i| {
                engine.submit(
                    "main",
                    vec![Object::tensor(
                        Tensor::from_vec_f32(vec![i as f32; 4], &[4]).unwrap(),
                    )],
                )
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let done = t.wait().unwrap();
            let out = done.result.unwrap().wait_tensor().unwrap();
            assert_eq!(out.as_f32().unwrap(), &[i as f32 + 1.0; 4]);
            assert!(done.latency >= done.execution);
        }
        let stats = engine.stats();
        assert_eq!(stats.completed, 10);
        assert_eq!(stats.expired, 0);
        assert!(stats.batches >= 1 && stats.batches <= 10);
        assert!(stats.mean_latency() > Duration::ZERO);
    }

    #[test]
    fn try_submit_reports_backpressure() {
        // 1 worker, tiny queue: park the worker on a first request, then
        // fill the queue until Busy appears.
        let vm = identity_plus_one_vm();
        let engine = Engine::new(
            Arc::clone(&vm),
            EngineConfig {
                workers: 1,
                queue_capacity: 2,
                max_batch: 1,
            },
        )
        .unwrap();
        let arg = || vec![Object::tensor(Tensor::ones_f32(&[4]))];
        let mut tickets = Vec::new();
        let mut saw_busy = false;
        for _ in 0..200 {
            match engine.try_submit("main", arg()) {
                Ok(t) => tickets.push(t),
                Err(EngineError::Busy) => {
                    saw_busy = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(saw_busy, "queue of capacity 2 never filled");
        for t in tickets {
            assert!(t.wait().unwrap().result.is_ok());
        }
    }

    #[test]
    fn zero_workers_is_rejected() {
        let vm = identity_plus_one_vm();
        assert!(Engine::new(vm, EngineConfig::with_workers(0)).is_err());
    }

    #[test]
    fn drop_completes_accepted_requests() {
        let vm = identity_plus_one_vm();
        let engine = Engine::new(vm, EngineConfig::with_workers(2)).unwrap();
        let tickets: Vec<Ticket> = (0..16)
            .map(|_| engine.submit("main", vec![Object::tensor(Tensor::ones_f32(&[4]))]))
            .collect();
        drop(engine);
        for t in tickets {
            assert!(t.wait().unwrap().result.is_ok());
        }
    }

    #[test]
    fn shutdown_drains_then_rejects_new_work() {
        let vm = identity_plus_one_vm();
        let engine = Engine::new(vm, EngineConfig::with_workers(2)).unwrap();
        let tickets: Vec<Ticket> = (0..16)
            .map(|_| engine.submit("main", vec![Object::tensor(Tensor::ones_f32(&[4]))]))
            .collect();
        engine.shutdown();
        // Everything accepted before shutdown completed.
        for t in tickets {
            assert!(t.wait().unwrap().result.is_ok());
        }
        assert_eq!(engine.stats().completed, 16);
        assert_eq!(engine.queue_depth(), 0);
        // New work after shutdown resolves to Closed, never blocks.
        let late = engine.submit("main", vec![Object::tensor(Tensor::ones_f32(&[4]))]);
        assert_eq!(late.wait().unwrap_err(), EngineError::Closed);
        assert_eq!(
            engine
                .try_submit("main", vec![Object::tensor(Tensor::ones_f32(&[4]))])
                .unwrap_err(),
            EngineError::Closed
        );
        // Idempotent.
        engine.shutdown();
    }

    #[test]
    fn expired_deadline_skips_execution() {
        let vm = identity_plus_one_vm();
        let engine = Engine::new(
            Arc::clone(&vm),
            EngineConfig {
                workers: 1,
                queue_capacity: 64,
                max_batch: 1,
            },
        )
        .unwrap();
        // A deadline already in the past must expire, not execute.
        let past = Instant::now() - Duration::from_millis(1);
        let t =
            engine.submit_with_deadline("main", vec![Object::tensor(Tensor::ones_f32(&[4]))], past);
        assert_eq!(t.wait().unwrap_err(), EngineError::Expired);
        // A generous deadline completes normally.
        let future = Instant::now() + Duration::from_secs(60);
        let t = engine.submit_with_deadline(
            "main",
            vec![Object::tensor(Tensor::ones_f32(&[4]))],
            future,
        );
        assert!(t.wait().unwrap().result.is_ok());
        let stats = engine.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn queue_exec_latency_split() {
        let engine = Engine::new(
            identity_plus_one_vm(),
            EngineConfig {
                workers: 1,
                queue_capacity: 64,
                max_batch: 2,
            },
        )
        .unwrap();
        let tickets: Vec<Ticket> = (0..8)
            .map(|_| engine.submit("main", vec![Object::tensor(Tensor::ones_f32(&[4]))]))
            .collect();
        for t in tickets {
            let done = t.wait().unwrap();
            assert!(done.result.is_ok());
            // Queue wait ends before execution starts, and both fit inside
            // the end-to-end latency.
            assert!(done.latency >= done.queued);
            assert!(done.latency >= done.queued + done.execution);
        }
        let stats = engine.stats();
        assert_eq!(stats.completed, 8);
        assert!(stats.total_latency_ns >= stats.total_queue_ns + stats.total_execution_ns);
        assert!(stats.mean_latency() >= stats.mean_queue_wait());
        assert!(stats.mean_latency() >= stats.mean_execution());
    }

    #[test]
    fn pause_freezes_dequeue_and_resume_drains() {
        let engine = Engine::new(
            identity_plus_one_vm(),
            EngineConfig {
                workers: 2,
                queue_capacity: 16,
                max_batch: 4,
            },
        )
        .unwrap();
        engine.pause_and_wait();
        let tickets: Vec<Ticket> = (0..6)
            .map(|_| engine.submit("main", vec![Object::tensor(Tensor::ones_f32(&[4]))]))
            .collect();
        // Paused workers never touch the channel: depth is exact & stable.
        assert_eq!(engine.queue_depth(), 6);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(engine.queue_depth(), 6);
        assert_eq!(engine.stats().completed, 0);
        engine.resume();
        for t in tickets {
            assert!(t.wait().unwrap().result.is_ok());
        }
        assert_eq!(engine.stats().completed, 6);
    }

    #[test]
    fn kill_answers_queued_work_with_closed() {
        let engine = Engine::new(
            identity_plus_one_vm(),
            EngineConfig {
                workers: 1,
                queue_capacity: 16,
                max_batch: 2,
            },
        )
        .unwrap();
        engine.pause_and_wait();
        let tickets: Vec<Ticket> = (0..5)
            .map(|_| engine.submit("main", vec![Object::tensor(Tensor::ones_f32(&[4]))]))
            .collect();
        engine.kill();
        // Every queued request resolves — explicitly Closed, not silence,
        // and not executed.
        for t in tickets {
            assert_eq!(t.wait().unwrap_err(), EngineError::Closed);
        }
        let stats = engine.stats();
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.closed, 5);
        assert!(engine.is_killed());
        // New work after a kill is refused like after shutdown.
        assert_eq!(
            engine
                .try_submit("main", vec![Object::tensor(Tensor::ones_f32(&[4]))])
                .unwrap_err(),
            EngineError::Closed
        );
        // Idempotent.
        engine.kill();
    }

    #[test]
    fn shutdown_of_paused_engine_executes_backlog() {
        let engine = Engine::new(identity_plus_one_vm(), EngineConfig::with_workers(2)).unwrap();
        engine.pause_and_wait();
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| engine.submit("main", vec![Object::tensor(Tensor::ones_f32(&[4]))]))
            .collect();
        // Graceful drain un-pauses: accepted work runs, nothing strands.
        engine.shutdown();
        for t in tickets {
            assert!(t.wait().unwrap().result.is_ok());
        }
        assert_eq!(engine.stats().completed, 4);
    }

    #[test]
    fn replica_label_round_trips() {
        let engine = Engine::new(identity_plus_one_vm(), EngineConfig::with_workers(1)).unwrap();
        assert_eq!(engine.replica_label(), 0);
        engine.set_replica_label(7);
        assert_eq!(engine.replica_label(), 7);
    }

    #[test]
    fn profiler_sums_match_across_workers() {
        let vm = identity_plus_one_vm();
        vm.set_profiling(true);
        let engine = Engine::new(Arc::clone(&vm), EngineConfig::with_workers(4)).unwrap();
        let tickets: Vec<Ticket> = (0..32)
            .map(|_| engine.submit("main", vec![Object::tensor(Tensor::ones_f32(&[4]))]))
            .collect();
        for t in tickets {
            t.wait().unwrap().result.unwrap();
        }
        let report = engine.profile_report();
        assert_eq!(vm.profiled_runs(), 32);
        // Every request runs the same single-kernel program.
        assert_eq!(report.kernel_invocations, 32);
        assert!(report.instructions >= 32);
    }

    // ---- dynamic batching ------------------------------------------------

    use nimble_tensor::kernels;
    use nimble_vm::BatchConfig;

    /// `main(x: [Any]) = x + x` plus the padded batched entry
    /// `main_b4(x: [Any, 4]) = x + x`. Elementwise, so batched rows are
    /// trivially bitwise-identical to unbatched vectors.
    fn batchable_vm() -> Arc<VirtualMachine> {
        let mut module = Module::new();
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::with_any(&[None], DType::F32));
        let y = fb.call("add", vec![x.clone(), x], Attrs::new());
        module.add_function("main", fb.finish(y));
        let mut fb = FunctionBuilder::new("main_b4");
        let x = fb.param("x", TensorType::with_any(&[None, Some(4)], DType::F32));
        let y = fb.call("add", vec![x.clone(), x], Attrs::new());
        module.add_function("main_b4", fb.finish(y));
        let (exe, _) = compile(&module, &CompileOptions::default()).expect("compile");
        Arc::new(VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).expect("vm"))
    }

    fn vector_plan(config: BatchConfig) -> Arc<BatchPlan> {
        Arc::new(BatchPlan {
            function: "main".to_string(),
            config,
            key: Arc::new(|args: &[Object]| {
                let dims = args.first()?.tensor_shape().ok()?;
                (dims.len() == 1 && dims[0] > 0).then_some(dims[0])
            }),
            gather: Arc::new(|members, keys, bucket| {
                let mut data = vec![0f32; members.len() * bucket];
                for (i, (args, &k)) in members.iter().zip(keys).enumerate() {
                    let t = args[0].wait_tensor()?;
                    data[i * bucket..i * bucket + k].copy_from_slice(t.as_f32()?);
                }
                let batched = nimble_tensor::Tensor::from_vec_f32(data, &[members.len(), bucket])?;
                Ok(vec![Object::tensor(batched)])
            }),
            scatter: Arc::new(|out, keys, _bucket| {
                let t = out.wait_tensor()?;
                keys.iter()
                    .enumerate()
                    .map(|(i, &k)| {
                        let row = kernels::slice_axis(&t, 0, i, i + 1)?;
                        let trimmed = kernels::slice_axis(&row, 1, 0, k)?;
                        Ok(Object::tensor(trimmed.reshaped(&[k])?))
                    })
                    .collect()
            }),
        })
    }

    fn vec_arg(data: Vec<f32>) -> Vec<Object> {
        let n = data.len();
        vec![Object::tensor(Tensor::from_vec_f32(data, &[n]).unwrap())]
    }

    /// Serializes engine construction against the `NIMBLE_BATCH` env-var
    /// test below (`batching_disabled` is read at construction time).
    fn env_lock() -> &'static std::sync::Mutex<()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        &LOCK
    }

    #[test]
    fn batched_outputs_bitwise_match_and_are_counted() {
        let vm = batchable_vm();
        let plan = vector_plan(BatchConfig {
            buckets: vec![4],
            min_batch: 2,
            max_batch: 8,
            max_wait: Duration::from_millis(20),
        });
        let engine = {
            let _g = env_lock().lock().unwrap();
            Engine::with_plan(
                Arc::clone(&vm),
                EngineConfig {
                    workers: 1,
                    queue_capacity: 16,
                    max_batch: 8,
                },
                Some(plan),
            )
            .unwrap()
        };
        // Pause so the whole wave is queued before the single worker
        // drains it — the drain then forms one padded batch.
        engine.pause_and_wait();
        let inputs: Vec<Vec<f32>> = vec![
            vec![1.5, -2.25],
            vec![0.1, 0.2, 0.3, 0.4],
            vec![7.0, 8.5, -0.5],
            vec![std::f32::consts::PI],
        ];
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|v| engine.submit("main", vec_arg(v.clone())))
            .collect();
        engine.resume();
        for (v, t) in inputs.iter().zip(tickets) {
            let out = t.wait().unwrap();
            let got = out.result.unwrap().wait_tensor().unwrap();
            let got = got.as_f32().unwrap();
            assert_eq!(got.len(), v.len());
            for (g, x) in got.iter().zip(v) {
                // Bitwise, not approximate: batching must not perturb
                // results at all.
                assert_eq!(g.to_bits(), (x + x).to_bits());
            }
            assert!(out.batch_size >= 1);
        }
        let stats = engine.stats();
        assert_eq!(stats.completed, 4);
        assert!(stats.batches_formed >= 1, "no batch formed");
        assert!(stats.batched_requests >= 2);
        // Units: every batched member pads to the bucket edge.
        assert_eq!(
            stats.padded_units + stats.used_units,
            4 * stats.batched_requests
        );
        assert!(stats.pad_waste_ratio() >= 0.0 && stats.pad_waste_ratio() < 1.0);
        assert_eq!(engine.last_formed_bucket(), Some(4));
    }

    #[test]
    fn nimble_batch_off_restores_unbatched_path() {
        let vm = batchable_vm();
        let plan = vector_plan(BatchConfig::default());
        let engine = {
            let _g = env_lock().lock().unwrap();
            std::env::set_var("NIMBLE_BATCH", "off");
            let e = Engine::with_plan(Arc::clone(&vm), EngineConfig::with_workers(1), Some(plan));
            std::env::remove_var("NIMBLE_BATCH");
            e.unwrap()
        };
        assert!(engine.plan().is_none());
        let tickets: Vec<Ticket> = (0..6)
            .map(|_| engine.submit("main", vec_arg(vec![1.0, 2.0])))
            .collect();
        for t in tickets {
            let done = t.wait().unwrap();
            assert!(done.result.is_ok());
            assert_eq!(done.batch_size, 1);
        }
        let stats = engine.stats();
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.batched_requests, 0);
        assert_eq!(stats.batches_formed, 0);
        assert_eq!(engine.last_formed_bucket(), None);
    }

    #[test]
    fn expired_request_never_joins_a_forming_batch() {
        let vm = batchable_vm();
        let plan = vector_plan(BatchConfig {
            buckets: vec![4],
            min_batch: 2,
            max_batch: 8,
            max_wait: Duration::ZERO,
        });
        let engine = {
            let _g = env_lock().lock().unwrap();
            Engine::with_plan(
                Arc::clone(&vm),
                EngineConfig {
                    workers: 1,
                    queue_capacity: 16,
                    max_batch: 8,
                },
                Some(plan),
            )
            .unwrap()
        };
        engine.pause_and_wait();
        // The expired request sits between two live ones: the deadline
        // check at pull-into-forming-batch time must drop it before it
        // can claim a batch slot or pad-inflate the gather.
        let a = engine.submit("main", vec_arg(vec![1.0, 2.0]));
        let dead = engine.submit_with_deadline(
            "main",
            vec_arg(vec![3.0]),
            Instant::now() - Duration::from_millis(1),
        );
        let b = engine.submit("main", vec_arg(vec![4.0, 5.0, 6.0]));
        engine.resume();
        assert_eq!(dead.wait().unwrap_err(), EngineError::Expired);
        let got_a = a.wait().unwrap();
        let got_b = b.wait().unwrap();
        assert!(got_a.result.is_ok() && got_b.result.is_ok());
        let stats = engine.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 2);
        // The expired request contributed nothing to batch accounting.
        assert_eq!(stats.batched_requests, 2);
        assert_eq!(stats.used_units, 5);
        assert_eq!(stats.padded_units, 3);
    }

    #[test]
    fn batched_path_errors_fall_back_to_unbatched() {
        let vm = batchable_vm();
        // Bucket 8 has no compiled `main_b8` entry: the batched run fails
        // and every member must still complete on the unbatched path.
        let plan = vector_plan(BatchConfig {
            buckets: vec![8],
            min_batch: 2,
            max_batch: 8,
            max_wait: Duration::ZERO,
        });
        let engine = {
            let _g = env_lock().lock().unwrap();
            Engine::with_plan(
                Arc::clone(&vm),
                EngineConfig {
                    workers: 1,
                    queue_capacity: 16,
                    max_batch: 8,
                },
                Some(plan),
            )
            .unwrap()
        };
        engine.pause_and_wait();
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| engine.submit("main", vec_arg(vec![i as f32; 2])))
            .collect();
        engine.resume();
        for (i, t) in tickets.into_iter().enumerate() {
            let done = t.wait().unwrap();
            let out = done.result.unwrap().wait_tensor().unwrap();
            assert_eq!(out.as_f32().unwrap(), &[2.0 * i as f32; 2]);
            assert_eq!(done.batch_size, 1);
        }
        let stats = engine.stats();
        assert_eq!(stats.completed, 4);
        // The failed batch never counts as formed.
        assert_eq!(stats.batches_formed, 0);
        assert_eq!(stats.batched_requests, 0);
    }

    #[test]
    fn undersized_group_runs_unbatched() {
        let vm = batchable_vm();
        let plan = vector_plan(BatchConfig {
            buckets: vec![4],
            min_batch: 3,
            max_batch: 8,
            max_wait: Duration::ZERO,
        });
        let engine = {
            let _g = env_lock().lock().unwrap();
            Engine::with_plan(
                Arc::clone(&vm),
                EngineConfig {
                    workers: 1,
                    queue_capacity: 16,
                    max_batch: 8,
                },
                Some(plan),
            )
            .unwrap()
        };
        // A lone request can never meet min_batch = 3 with max_wait = 0:
        // it must run unbatched rather than stall.
        let t = engine.submit("main", vec_arg(vec![2.5, -1.0]));
        let done = t.wait().unwrap();
        assert_eq!(done.batch_size, 1);
        let got = done.result.unwrap().wait_tensor().unwrap();
        assert_eq!(got.as_f32().unwrap(), &[5.0, -2.0]);
        let stats = engine.stats();
        assert_eq!(stats.batches_formed, 0);
        assert_eq!(stats.batched_requests, 0);
    }
}
