//! The static baseline runtime (the "TVM" rows of Table 4 and the
//! footprint comparison of Section 6.3).
//!
//! For fully static models, a deep-learning compiler needs none of
//! Nimble's machinery: shapes are known, so memory is pre-planned with a
//! liveness-based arena, kernels are specialized to exact shapes, and the
//! runtime is a sequential executor that "traverses the input data flow
//! graph in topological order and invokes operators sequentially"
//! (Section 5). This module implements that baseline over the *same*
//! kernels the VM uses, so Nimble-vs-static differences isolate the cost
//! of dynamism (symbolic kernels, shape functions, VM dispatch, dynamic
//! allocation).

use crate::{CompileError, Result};
use nimble_codegen::kernel::Kernel;
use nimble_ir::expr::{Expr, ExprKind, Function};
use nimble_ir::Module;
use nimble_passes::type_infer::infer_function;
use nimble_passes::{anf, fusion, opt};
use nimble_tensor::Tensor;
use std::collections::HashMap;

/// Where a step reads a value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueRef {
    /// Model input by position.
    Param(usize),
    /// Constant-pool entry.
    Const(usize),
    /// Output slot of an earlier step.
    Slot(usize),
}

#[derive(Debug)]
struct Step {
    kernel: Kernel,
    inputs: Vec<ValueRef>,
    output: usize,
}

/// A compiled static graph: pre-planned slots, sequential execution.
#[derive(Debug)]
pub struct StaticGraph {
    steps: Vec<Step>,
    constants: Vec<Tensor>,
    num_params: usize,
    num_slots: usize,
    result: ValueRef,
    arena_bytes: u64,
    unshared_bytes: u64,
}

impl StaticGraph {
    /// Compile the `main` function of a fully static module.
    ///
    /// # Errors
    /// Fails when the model contains control flow, ADTs, or any dynamic
    /// shape — exactly the cases the static baseline cannot express.
    pub fn compile(module: &Module, fuse: bool) -> Result<StaticGraph> {
        let func = module.function("main")?;
        let mut f = anf::to_anf(func);
        f = opt::fold_constants(&f);
        f = anf::to_anf(&f);
        f = opt::eliminate_dead_code(&f);
        if fuse {
            f = fusion::fuse_function(&f);
        }
        let (types, ret) = infer_function(module, &f)?;
        let ret_tt = ret.as_tensor()?;
        if !ret_tt.is_static() {
            return Err(CompileError::msg(
                "static runtime requires fully static shapes",
            ));
        }
        build_graph(&f, &types)
    }

    /// Execute on a set of input tensors.
    ///
    /// # Errors
    /// Propagates kernel failures and input-count mismatches.
    pub fn run(&self, inputs: &[Tensor]) -> Result<Tensor> {
        if inputs.len() != self.num_params {
            return Err(CompileError::msg(format!(
                "static graph expects {} inputs, got {}",
                self.num_params,
                inputs.len()
            )));
        }
        let mut slots: Vec<Option<Tensor>> = vec![None; self.num_slots];
        let fetch = |slots: &[Option<Tensor>], r: ValueRef| -> Result<Tensor> {
            Ok(match r {
                ValueRef::Param(i) => inputs[i].clone(),
                ValueRef::Const(i) => self.constants[i].clone(),
                ValueRef::Slot(i) => slots[i]
                    .clone()
                    .ok_or_else(|| CompileError::msg("slot read before write"))?,
            })
        };
        for step in &self.steps {
            let ins: Vec<Tensor> = step
                .inputs
                .iter()
                .map(|&r| fetch(&slots, r))
                .collect::<Result<_>>()?;
            let outs = step
                .kernel
                .invoke(&ins)
                .map_err(|e| CompileError::msg(e.to_string()))?;
            slots[step.output] = Some(
                outs.into_iter()
                    .next()
                    .ok_or_else(|| CompileError::msg("kernel produced no output"))?,
            );
        }
        fetch(&slots, self.result)
    }

    /// Bytes of intermediate memory after static planning (liveness-based
    /// arena reuse) — the "TVM statically analyze and pre-allocate memory"
    /// number of the footprint study.
    pub fn arena_bytes(&self) -> u64 {
        self.arena_bytes
    }

    /// Bytes the same intermediates would need without reuse.
    pub fn unshared_bytes(&self) -> u64 {
        self.unshared_bytes
    }

    /// Number of kernel invocations per run.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }
}

fn build_graph(f: &Function, types: &nimble_passes::type_infer::TypeMap) -> Result<StaticGraph> {
    let mut param_pos: HashMap<u32, usize> = HashMap::new();
    for (i, p) in f.params.iter().enumerate() {
        param_pos.insert(p.id, i);
    }
    let mut constants: Vec<Tensor> = Vec::new();
    let mut const_memo: HashMap<usize, usize> = HashMap::new();
    let mut slot_of: HashMap<u32, usize> = HashMap::new();
    let mut slot_bytes: Vec<u64> = Vec::new();
    let mut steps: Vec<Step> = Vec::new();

    let value_ref = |a: &Expr,
                     constants: &mut Vec<Tensor>,
                     const_memo: &mut HashMap<usize, usize>,
                     slot_of: &HashMap<u32, usize>,
                     param_pos: &HashMap<u32, usize>|
     -> Result<ValueRef> {
        match a.kind() {
            ExprKind::Var(v) => {
                if let Some(&p) = param_pos.get(&v.id) {
                    Ok(ValueRef::Param(p))
                } else if let Some(&s) = slot_of.get(&v.id) {
                    Ok(ValueRef::Slot(s))
                } else {
                    Err(CompileError::msg(format!("unbound {v} in static graph")))
                }
            }
            ExprKind::Constant(t) => {
                let idx = *const_memo.entry(a.ref_id()).or_insert_with(|| {
                    constants.push(t.clone());
                    constants.len() - 1
                });
                Ok(ValueRef::Const(idx))
            }
            other => Err(CompileError::msg(format!(
                "static graph arguments must be atoms, got {other:?}"
            ))),
        }
    };

    let mut cur = f.body.clone();
    while let ExprKind::Let { var, value, body } = cur.kind() {
        let (kernel, args) = match value.kind() {
            ExprKind::Call {
                callee,
                args,
                attrs,
            } => match callee.kind() {
                ExprKind::Op(name) => (
                    Kernel::from_op(name, attrs, false)
                        .map_err(|e| CompileError::msg(e.to_string()))?,
                    args.clone(),
                ),
                ExprKind::Func(pf) if fusion::is_primitive_call(value) => (
                    Kernel::from_primitive(pf).map_err(|e| CompileError::msg(e.to_string()))?,
                    args.clone(),
                ),
                other => {
                    return Err(CompileError::msg(format!(
                        "static graph supports only operator calls, got {other:?}"
                    )))
                }
            },
            other => {
                return Err(CompileError::msg(format!(
                    "static graph supports only kernel bindings, got {other:?}"
                )))
            }
        };
        let inputs = args
            .iter()
            .map(|a| value_ref(a, &mut constants, &mut const_memo, &slot_of, &param_pos))
            .collect::<Result<Vec<_>>>()?;
        // Output size from the inferred type.
        let tt = types
            .var(var)
            .ok_or_else(|| CompileError::msg("missing type in static graph"))?
            .as_tensor()?;
        if !tt.is_static() {
            return Err(CompileError::msg(
                "static runtime requires fully static shapes",
            ));
        }
        let out_slot = slot_bytes.len();
        slot_bytes.push(tt.max_nbytes(1));
        slot_of.insert(var.id, out_slot);
        steps.push(Step {
            kernel,
            inputs,
            output: out_slot,
        });
        cur = body.clone();
    }
    let result = value_ref(&cur, &mut constants, &mut const_memo, &slot_of, &param_pos)?;

    // Liveness-based arena plan: last read position per slot, greedy reuse.
    let mut last_use: Vec<usize> = (0..slot_bytes.len()).collect();
    for (pos, step) in steps.iter().enumerate() {
        for r in &step.inputs {
            if let ValueRef::Slot(s) = r {
                last_use[*s] = pos;
            }
        }
    }
    if let ValueRef::Slot(s) = result {
        last_use[s] = usize::MAX;
    }
    let mut arena: Vec<(u64, usize)> = Vec::new(); // (size, free_after)
    let mut arena_bytes = 0u64;
    for (pos, step) in steps.iter().enumerate() {
        let size = slot_bytes[step.output];
        let end = last_use[step.output];
        if let Some(block) = arena
            .iter_mut()
            .find(|(bsize, free_after)| *free_after < pos && *bsize >= size)
        {
            block.1 = end;
        } else {
            arena.push((size, end));
            arena_bytes += size;
        }
    }
    let unshared_bytes = slot_bytes.iter().sum();

    Ok(StaticGraph {
        steps,
        constants,
        num_params: f.params.len(),
        num_slots: slot_bytes.len(),
        result,
        arena_bytes,
        unshared_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_ir::attrs::Attrs;
    use nimble_ir::builder::FunctionBuilder;
    use nimble_ir::types::TensorType;
    use nimble_tensor::DType;

    #[test]
    fn runs_static_chain() {
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::new(&[4], DType::F32));
        let a = fb.call("relu", vec![x], Attrs::new());
        let b = fb.call("tanh", vec![a], Attrs::new());
        let mut m = Module::new();
        m.add_function("main", fb.finish(b));
        let g = StaticGraph::compile(&m, true).unwrap();
        let out = g
            .run(&[Tensor::from_vec_f32(vec![-1.0, 0.0, 1.0, 2.0], &[4]).unwrap()])
            .unwrap();
        assert_eq!(out.as_f32().unwrap()[0], 0.0);
        assert!((out.as_f32().unwrap()[3] - 2.0f32.tanh()).abs() < 1e-6);
        // Fusion compressed the two ops into one step.
        assert_eq!(g.num_steps(), 1);
    }

    #[test]
    fn rejects_dynamic_shapes() {
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::with_any(&[None], DType::F32));
        let a = fb.call("relu", vec![x], Attrs::new());
        let mut m = Module::new();
        m.add_function("main", fb.finish(a));
        assert!(StaticGraph::compile(&m, true).is_err());
    }

    #[test]
    fn arena_reuses_disjoint_lifetimes() {
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::new(&[64], DType::F32));
        let mut h = x;
        for _ in 0..4 {
            h = fb.call("tanh", vec![h], Attrs::new());
        }
        let mut m = Module::new();
        m.add_function("main", fb.finish(h));
        // Disable fusion so the chain stays 4 steps.
        let g = StaticGraph::compile(&m, false).unwrap();
        assert_eq!(g.num_steps(), 4);
        assert!(g.arena_bytes() < g.unshared_bytes());
    }

    #[test]
    fn input_count_checked() {
        let mut fb = FunctionBuilder::new("main");
        let x = fb.param("x", TensorType::new(&[2], DType::F32));
        let a = fb.call("relu", vec![x], Attrs::new());
        let mut m = Module::new();
        m.add_function("main", fb.finish(a));
        let g = StaticGraph::compile(&m, true).unwrap();
        assert!(g.run(&[]).is_err());
    }
}
