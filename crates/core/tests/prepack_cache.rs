//! The weight pre-pack cache across compile and VM sessions: constants are
//! packed once at compile time, every session loading the program shares
//! the same panels (cache size stays flat), and the cached path is
//! bitwise-identical to packing from scratch.
//!
//! Kept as a single `#[test]`: the cache is process-global, and this file
//! being its own integration-test binary means no other test races it —
//! as long as everything stays in one function.

use nimble_core::{compile, CompileOptions};
use nimble_device::DeviceSet;
use nimble_ir::attrs::Attrs;
use nimble_ir::builder::FunctionBuilder;
use nimble_ir::types::TensorType;
use nimble_ir::Module;
use nimble_tensor::{prepack, DType, Tensor};
use nimble_vm::{Object, VirtualMachine};
use rand::SeedableRng;
use std::sync::Arc;

fn run_once(vm: &VirtualMachine, input: &Tensor) -> Vec<u32> {
    vm.run("main", vec![Object::tensor(input.clone())])
        .unwrap()
        .wait_tensor()
        .unwrap()
        .as_f32()
        .unwrap()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

#[test]
fn sessions_share_packed_weights_and_match_uncached() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let w1 = Tensor::rand_f32(&mut rng, &[24, 16], 0.5);
    let w2 = Tensor::rand_f32(&mut rng, &[8, 24], 0.5);

    // main(x) = dense(relu(dense(x, w1)), w2) — two distinct weight
    // constants feeding dense kernels.
    let mut fb = FunctionBuilder::new("main");
    let x = fb.param("x", TensorType::with_any(&[None, Some(16)], DType::F32));
    let wc1 = fb.constant(w1.clone());
    let d1 = fb.call("dense", vec![x, wc1], Attrs::new());
    let r = fb.call("relu", vec![d1], Attrs::new());
    let wc2 = fb.constant(w2.clone());
    let d2 = fb.call("dense", vec![r, wc2], Attrs::new());
    let mut module = Module::new();
    module.add_function("main", fb.finish(d2));

    prepack::clear_cache();
    let (exe, report) = compile(&module, &CompileOptions::default()).unwrap();
    assert_eq!(
        report.weights_prepacked, 2,
        "both dense weights pack at compile time"
    );
    let after_compile = prepack::cache_len();
    assert!(after_compile >= 2, "cache holds the packed weights");

    // Two sessions loading the same program: no new cache entries — they
    // share the compile-time panels (the executable clone shares weight
    // buffers, so the identity keys match).
    let devices = Arc::new(DeviceSet::cpu_only());
    let vm1 = VirtualMachine::new(exe.clone(), devices.clone()).unwrap();
    let vm2 = VirtualMachine::new(exe.clone(), devices.clone()).unwrap();
    assert_eq!(
        prepack::cache_len(),
        after_compile,
        "loading sessions must reuse the compile-time packs, not add new ones"
    );

    let input = Tensor::rand_f32(&mut rng, &[5, 16], 1.0);
    let out1 = run_once(&vm1, &input);
    let out2 = run_once(&vm2, &input);
    assert_eq!(out1, out2, "sessions sharing packs agree bitwise");
    assert_eq!(
        prepack::cache_len(),
        after_compile,
        "inference hits the cache; no repacking"
    );

    // Drop the cache and load a fresh session: weights repack from
    // scratch, and the result must be bitwise-identical to the cached
    // runs (packing is layout-only; it never changes reduction order).
    prepack::clear_cache();
    assert_eq!(prepack::cache_len(), 0);
    let vm3 = VirtualMachine::new(exe, devices).unwrap();
    assert!(prepack::cache_len() >= 2, "load-time repack after clear");
    let out3 = run_once(&vm3, &input);
    assert_eq!(out1, out3, "uncached and cached results agree bitwise");
}
