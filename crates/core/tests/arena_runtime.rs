//! Arena/runtime consistency tests at the compiler level.
//!
//! 1. The memory planner's report agrees with what the interpreter
//!    actually allocates: for loop-free programs, planned storage count
//!    (`storages` + `dynamic_allocs`) is an upper bound on the arena
//!    allocations one request performs — and therefore on the distinct
//!    arena blocks it touches. A planner that under-reported (claimed
//!    more coalescing than lowering delivers) would fail this.
//! 2. The engine's deadline-expiry path releases storage it never ran:
//!    flooding an engine with already-expired requests leaves the worker
//!    arenas at their idle baseline (zero live bytes), and trimming
//!    returns the device pool to its pre-engine level.

use nimble_core::{compile, CompileOptions, Engine, EngineConfig};
use nimble_device::{DeviceId, DeviceSet};
use nimble_ir::builder::FunctionBuilder;
use nimble_ir::types::TensorType;
use nimble_ir::{Attrs, DType, Expr, Module};
use nimble_tensor::Tensor;
use nimble_vm::{Object, Session, StorageArena, VirtualMachine};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const UNARY: [&str; 5] = ["tanh", "sigmoid", "relu", "neg", "gelu"];
const BINARY: [&str; 5] = ["add", "sub", "mul", "maximum", "minimum"];
const COLS: usize = 4;

/// A loop-free elementwise chain over two inputs (recipe as in the
/// compiler fuzzer, minus recursion — so every planned alloc executes
/// exactly once per request). `dynamic` picks dynamic-row inputs (the
/// `AllocTensorReg` path) vs fully static shapes (the coalesced
/// `AllocStorage` path).
fn build(steps: &[(u8, u8, u8)], rows: usize, dynamic: bool) -> Module {
    let mut fb = FunctionBuilder::new("main");
    let ty = if dynamic {
        TensorType::with_any(&[None, Some(COLS as u64)], DType::F32)
    } else {
        TensorType::new(&[rows as u64, COLS as u64], DType::F32)
    };
    let p0 = fb.param("a", ty.clone());
    let p1 = fb.param("b", ty);
    let mut exprs: Vec<Expr> = vec![p0, p1];
    for &(opk, a, b) in steps {
        let ai = a as usize % exprs.len();
        let e = if opk % 2 == 0 {
            let name = UNARY[opk as usize % UNARY.len()];
            Expr::call_op(name, vec![exprs[ai].clone()], Attrs::new())
        } else {
            let bi = b as usize % exprs.len();
            let name = BINARY[opk as usize % BINARY.len()];
            Expr::call_op(
                name,
                vec![exprs[ai].clone(), exprs[bi].clone()],
                Attrs::new(),
            )
        };
        exprs.push(e);
    }
    let result = exprs.last().unwrap().clone();
    let mut module = Module::new();
    module.add_function("main", fb.finish(result));
    module
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn planned_storage_bounds_runtime_arena_blocks(
        steps in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..10),
        rows in 1usize..6,
        dynamic in any::<bool>(),
    ) {
        let module = build(&steps, rows, dynamic);
        for coalesce in [true, false] {
            let opts = CompileOptions { coalesce, ..CompileOptions::default() };
            let (exe, report) = compile(&module, &opts).unwrap();
            let planned = report.memplan.storages + report.memplan.dynamic_allocs;
            let vm = VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap();
            let arena = Arc::new(StorageArena::new());
            let mut session = Session::with_lane_and_arena(0, Some(Arc::clone(&arena)));
            let args = || vec![
                Object::tensor(Tensor::ones_f32(&[rows, COLS])),
                Object::tensor(Tensor::ones_f32(&[rows, COLS])),
            ];
            // Warm-up request, then measure one steady-state request.
            vm.run_in(&mut session, "main", args()).unwrap();
            let before = arena.stats();
            let result = vm.run_in(&mut session, "main", args()).unwrap();
            let after = arena.stats();
            drop(result);
            // Arena allocations in one request ≥ distinct blocks touched,
            // so the planner's storage count bounding allocations bounds
            // blocks too.
            let allocs = (after.hits + after.misses) - (before.hits + before.misses);
            prop_assert!(
                planned as u64 >= allocs,
                "coalesce={coalesce} dynamic={dynamic}: planner reported \
                 {planned} storages but one request performed {allocs} \
                 arena allocations"
            );
        }
    }
}

/// Dynamic two-op chain used by the expiry test: completed requests
/// exercise `AllocTensorReg` through the worker arenas.
fn dynamic_module() -> Module {
    let mut fb = FunctionBuilder::new("main");
    let x = fb.param("x", TensorType::with_any(&[None, Some(4)], DType::F32));
    let a = Expr::call_op("tanh", vec![x], Attrs::new());
    let b = Expr::call_op("relu", vec![a], Attrs::new());
    let mut m = Module::new();
    m.add_function("main", fb.finish(b));
    m
}

#[test]
fn expired_requests_release_storage_to_idle_baseline() {
    let devices = Arc::new(DeviceSet::cpu_only());
    let pool_baseline = devices.pool(DeviceId::Cpu).stats().live_bytes;
    let (exe, _) = compile(&dynamic_module(), &CompileOptions::default()).unwrap();
    let vm = Arc::new(VirtualMachine::new(exe, Arc::clone(&devices)).unwrap());
    let engine = Engine::new(
        Arc::clone(&vm),
        EngineConfig {
            workers: 2,
            queue_capacity: 256,
            max_batch: 4,
        },
    )
    .unwrap();
    let arg = |rows: usize| vec![Object::tensor(Tensor::ones_f32(&[rows, 4]))];

    // Warm the arenas with real traffic and establish the idle baseline.
    let warm: Vec<_> = (0..16)
        .map(|i| engine.submit("main", arg(1 + i % 5)))
        .collect();
    for t in warm {
        t.wait().unwrap().result.unwrap();
    }
    let idle = engine.arena_stats();
    assert_eq!(idle.live_bytes, 0, "warmup left storage live: {idle:?}");

    // Flood with requests whose deadline has already passed: none may
    // execute, and none may strand the storage carried by their argument
    // tensors or allocated on their behalf.
    let past = Instant::now() - Duration::from_millis(1);
    let flood: Vec<_> = (0..200)
        .map(|i| engine.submit_with_deadline("main", arg(1 + i % 7), past))
        .collect();
    let mut expired = 0;
    for t in flood {
        match t.wait() {
            Err(nimble_core::EngineError::Expired) => expired += 1,
            other => panic!("expected Expired, got {other:?}"),
        }
    }
    assert_eq!(expired, 200);

    // The moment every Expired reply has been observed, memory is already
    // back at the idle baseline — the worker drops an expired request's
    // payload *before* replying.
    let stats = engine.arena_stats();
    assert_eq!(
        stats.live_bytes, 0,
        "expired requests leaked storage: {stats:?}"
    );
    assert_eq!(
        stats.hits + stats.misses,
        idle.hits + idle.misses,
        "expired requests must not allocate"
    );

    // Shutdown trims the arenas; the device pool balances to pre-engine.
    engine.shutdown();
    let final_stats = engine.arena_stats();
    assert_eq!(final_stats.retained_bytes, 0);
    assert_eq!(
        devices.pool(DeviceId::Cpu).stats().live_bytes,
        pool_baseline,
        "pool did not return to baseline after shutdown"
    );
}
