//! Property tests for the engine's request queue: whatever the worker
//! count, queue capacity, batch size, or arrival order, no request is
//! dropped, duplicated, or paired with the wrong reply.
//!
//! Each request is tagged by encoding a distinct value in its input
//! tensor; the model adds one, so ticket `i` must resolve to `tag(i) + 1`
//! and nothing else.

use nimble_core::{compile, CompileOptions, Engine, EngineConfig};
use nimble_device::DeviceSet;
use nimble_ir::attrs::Attrs;
use nimble_ir::builder::FunctionBuilder;
use nimble_ir::types::TensorType;
use nimble_ir::Module;
use nimble_tensor::{DType, Tensor};
use nimble_vm::{Object, VirtualMachine};
use proptest::prelude::*;
use std::sync::Arc;

fn add_one_vm() -> Arc<VirtualMachine> {
    let mut fb = FunctionBuilder::new("main");
    let x = fb.param("x", TensorType::new(&[2], DType::F32));
    let one = fb.constant(Tensor::ones_f32(&[2]));
    let y = fb.call("add", vec![x, one], Attrs::new());
    let mut module = Module::new();
    module.add_function("main", fb.finish(y));
    let (exe, _) = compile(&module, &CompileOptions::default()).unwrap();
    Arc::new(VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).unwrap())
}

fn tag_input(tag: u32) -> Vec<Object> {
    vec![Object::tensor(
        Tensor::from_vec_f32(vec![tag as f32, tag as f32 + 0.5], &[2]).unwrap(),
    )]
}

fn check_tag(tag: u32, out: &Tensor) {
    assert_eq!(
        out.as_f32().unwrap(),
        &[tag as f32 + 1.0, tag as f32 + 1.5],
        "reply mis-paired for tag {tag}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sequential submission: every tag comes back exactly once on its
    /// own ticket, for arbitrary engine shapes.
    #[test]
    fn no_request_lost_or_mispaired(
        workers in 1usize..6,
        queue_capacity in 1usize..16,
        max_batch in 1usize..8,
        requests in 1usize..48,
    ) {
        let engine = Engine::new(
            add_one_vm(),
            EngineConfig { workers, queue_capacity, max_batch },
        ).unwrap();
        let tickets: Vec<_> = (0..requests as u32)
            .map(|tag| (tag, engine.submit("main", tag_input(tag))))
            .collect();
        for (tag, ticket) in tickets {
            let done = ticket.wait().unwrap();
            let out = done.result.unwrap().wait_tensor().unwrap();
            check_tag(tag, &out);
        }
        prop_assert_eq!(engine.stats().completed, requests as u64);
    }

    /// Racy arrival order: several submitter threads interleave their
    /// submissions nondeterministically; pairing must still hold and the
    /// completed count must equal the total submitted.
    #[test]
    fn concurrent_submitters_never_cross_replies(
        workers in 1usize..5,
        queue_capacity in 1usize..8,
        submitters in 2usize..5,
        per_submitter in 1usize..16,
    ) {
        let engine = Arc::new(Engine::new(
            add_one_vm(),
            EngineConfig { workers, queue_capacity, max_batch: 4 },
        ).unwrap());
        let handles: Vec<_> = (0..submitters)
            .map(|s| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    for r in 0..per_submitter {
                        let tag = (s * 1000 + r) as u32;
                        // submit() blocks on a full queue: backpressure is
                        // part of the arrival-order nondeterminism here.
                        let done = engine.submit("main", tag_input(tag)).wait().unwrap();
                        let out = done.result.unwrap().wait_tensor().unwrap();
                        check_tag(tag, &out);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(
            engine.stats().completed,
            (submitters * per_submitter) as u64
        );
    }
}
