//! End-to-end lifecycle of the shape specializer against a compiled
//! dense stack: attach → observe → background tune + bitwise-gated
//! install → fast-path dispatch → eviction → shutdown. Every dispatch,
//! before and after any install, must be bitwise identical to the
//! symbolic-only outputs captured pre-attach, and teardown must return
//! the process-wide prepack cache to its pre-attach size.
//!
//! The prepack cache is process-global, so each `#[test]` builds its own
//! VM and phrases cache assertions as deltas.

use nimble_core::{compile, CompileOptions};
use nimble_device::DeviceSet;
use nimble_ir::attrs::Attrs;
use nimble_ir::builder::FunctionBuilder;
use nimble_ir::types::TensorType;
use nimble_ir::Module;
use nimble_specialize::{ModelSpecializer, SpecializeConfig};
use nimble_tensor::{prepack, DType, Tensor};
use nimble_vm::{Object, VirtualMachine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// `main(x: [?, width])`: two dense(+bias)+relu blocks — after fusion,
/// two specializable dense anchors.
fn mlp_module(width: usize, seed: u64) -> Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fb = FunctionBuilder::new("main");
    let mut x = fb.param(
        "x",
        TensorType::with_any(&[None, Some(width as u64)], DType::F32),
    );
    for _ in 0..2 {
        let w = fb.constant(Tensor::rand_f32(&mut rng, &[width, width], 0.5));
        let b = fb.constant(Tensor::rand_f32(&mut rng, &[width], 0.5));
        x = fb.call("dense", vec![x, w, b], Attrs::new());
        x = fb.call("relu", vec![x], Attrs::new());
    }
    let mut m = Module::new();
    m.add_function("main", fb.finish(x));
    m
}

fn build_vm(width: usize, seed: u64) -> Arc<VirtualMachine> {
    let (exe, _) = compile(&mlp_module(width, seed), &CompileOptions::default()).expect("compile");
    exe.prepack_weights();
    Arc::new(VirtualMachine::new(exe, Arc::new(DeviceSet::cpu_only())).expect("vm"))
}

fn run_rows(vm: &VirtualMachine, x: &Tensor) -> Vec<u32> {
    vm.run("main", vec![Object::tensor(x.clone())])
        .expect("run")
        .wait_tensor()
        .expect("tensor")
        .as_f32()
        .expect("f32")
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

#[test]
fn install_serves_hot_shapes_bitwise_identically() {
    let width = 16;
    let vm = build_vm(width, 7);
    let baseline = prepack::cache_len();
    let mut rng = StdRng::seed_from_u64(11);
    let shapes = [1usize, 3, 5];
    let inputs: Vec<Tensor> = shapes
        .iter()
        .map(|&m| Tensor::rand_f32(&mut rng, &[m, width], 1.0))
        .collect();
    // Symbolic-only reference, captured before the hook exists.
    let reference: Vec<Vec<u32>> = inputs.iter().map(|x| run_rows(&vm, x)).collect();

    let spec = ModelSpecializer::attach(
        &vm,
        SpecializeConfig {
            hit_threshold: 2,
            max_trials: 4,
            repeats: 1,
            ..SpecializeConfig::default()
        },
    )
    .expect("dense anchors must be found");

    // Three rounds per shape: crosses the threshold and keeps dispatching
    // while tunes are in flight — every output must stay bitwise equal.
    for _ in 0..3 {
        for (x, want) in inputs.iter().zip(&reference) {
            assert_eq!(&run_rows(&vm, x), want, "divergence while warming");
        }
    }
    spec.quiesce();
    let s = spec.stats();
    // Two fused dense anchors x three shapes, each past the threshold
    // exactly once (dispatch here is single-threaded, so exact).
    assert_eq!(s.tunes, 6, "exactly-once tune enqueue broke: {s:?}");
    assert_eq!(s.installs + s.rejected, s.tunes, "tune outcome leak: {s:?}");
    assert_eq!(s.evictions, 0, "no eviction expected under capacity");

    // Hot phase: installed kernels now serve; outputs stay bitwise equal.
    let hits_before = s.hits;
    for (x, want) in inputs.iter().zip(&reference) {
        assert_eq!(&run_rows(&vm, x), want, "divergence on the fast path");
    }
    let s = spec.stats();
    if s.installs > 0 {
        assert!(s.hits > hits_before, "installed kernels never dispatched");
        assert!(
            shapes.iter().any(|&m| spec.is_warm(m)),
            "no warm shape after install"
        );
    }

    // A never-observed shape still runs (symbolic fallback) and counts as
    // a miss, not an error.
    let cold = Tensor::rand_f32(&mut rng, &[7, width], 1.0);
    let direct = run_rows(&vm, &cold);
    assert_eq!(direct.len(), 7 * width);

    // Teardown releases every specialized layout; the shared base packs
    // (owned by the executable) survive.
    spec.shutdown();
    assert_eq!(spec.stats().extra_pack_entries, 0);
    assert_eq!(
        prepack::cache_len(),
        baseline,
        "shutdown must unwind to the pre-attach prepack size"
    );
    // Hook detached: dispatch still bitwise identical.
    for (x, want) in inputs.iter().zip(&reference) {
        assert_eq!(&run_rows(&vm, x), want, "divergence after shutdown");
    }
}

#[test]
fn capacity_eviction_never_strands_a_live_kernel() {
    let width = 12;
    let vm = build_vm(width, 23);
    let baseline = prepack::cache_len();
    let mut rng = StdRng::seed_from_u64(29);
    let inputs: Vec<Tensor> = (1usize..=6)
        .map(|m| Tensor::rand_f32(&mut rng, &[m, width], 1.0))
        .collect();
    let reference: Vec<Vec<u32>> = inputs.iter().map(|x| run_rows(&vm, x)).collect();

    // Capacity far below the 2 anchors x 6 shapes the stream observes:
    // the LRU churns continuously, including entries mid-tune.
    let spec = ModelSpecializer::attach(
        &vm,
        SpecializeConfig {
            hit_threshold: 1,
            capacity: 3,
            max_trials: 2,
            repeats: 1,
            ..SpecializeConfig::default()
        },
    )
    .expect("dense anchors must be found");

    for _ in 0..4 {
        for (x, want) in inputs.iter().zip(&reference) {
            assert_eq!(&run_rows(&vm, x), want, "divergence under eviction churn");
        }
    }
    spec.quiesce();
    let s = spec.stats();
    assert!(s.evictions > 0, "capacity 3 must evict: {s:?}");
    assert!(s.cache_len <= 3, "capacity cap violated: {s:?}");
    // Installed kernels pin at most one extra layout each; eviction must
    // have released the rest (the exact count depends on tuner choices).
    assert!(
        s.extra_pack_entries <= s.installed,
        "evicted entries left packs behind: {s:?}"
    );

    // Dropping every entry releases every specialized layout even while
    // the VM keeps serving.
    spec.evict_all();
    let s = spec.stats();
    assert_eq!(s.cache_len, 0);
    assert_eq!(s.extra_pack_entries, 0, "evict_all stranded packs: {s:?}");
    for (x, want) in inputs.iter().zip(&reference) {
        assert_eq!(&run_rows(&vm, x), want, "divergence after evict_all");
    }

    spec.shutdown();
    assert_eq!(prepack::cache_len(), baseline);
}
